//! The joint top-k processor (§5) as a standalone facility.
//!
//! The paper presents joint top-k computation — all users' top-k results
//! from one index traversal — as a contribution "of independent interest".
//! This example uses it directly (no MaxBRSTkNN query at all): a food
//! delivery platform refreshing every customer's top-10 restaurant list,
//! comparing the per-user baseline against the shared traversal.
//!
//! ```sh
//! cargo run --release --example joint_topk_demo
//! ```

use std::time::Instant;

use datagen::{generate_objects, generate_workload, CorpusConfig, UserGenConfig};
use maxbrstknn::mbrstk_core::topk::individual::{individual_topk, individual_topk_parallel};
use maxbrstknn::mbrstk_core::topk::joint::joint_topk;
use maxbrstknn::prelude::*;

fn main() {
    let objects = generate_objects(&CorpusConfig::flickr_like(20_000));
    let wl = generate_workload(
        &objects,
        &UserGenConfig {
            num_users: 1_000,
            area: 8.0,
            uw: 25,
            ul: 3,
            num_locations: 1,
            seed: 99,
        },
    );
    let k = 10;
    let engine = Engine::build(objects, wl.users, WeightModel::lm(), 0.5);

    // --- Baseline: one IR-tree search per user. ---
    engine.io.reset();
    let t0 = Instant::now();
    let base = engine.baseline_user_topk(k);
    let base_ms = t0.elapsed().as_secs_f64() * 1e3;
    let base_io = engine.io.total();

    // --- Joint: one MIR-tree traversal for the super-user, then local
    //     refinement per user (Algorithms 1 + 2). ---
    engine.io.reset();
    let t0 = Instant::now();
    let su = engine.super_user();
    let out = joint_topk(&engine.mir, &su, k, &engine.ctx, &engine.io);
    let joint_results = individual_topk(&engine.users, &out, k, &engine.ctx);
    let joint_ms = t0.elapsed().as_secs_f64() * 1e3;
    let joint_io = engine.io.total();

    // Both must produce identical thresholds.
    for (b, j) in base.iter().zip(&joint_results) {
        assert!((b.rsk - j.rsk).abs() < 1e-9, "user {} differs", b.user);
    }

    println!(
        "top-{k} for {} users over {} objects:",
        joint_results.len(),
        20_000
    );
    println!("  baseline : {base_ms:8.1} ms, {base_io:8} simulated I/Os");
    println!("  joint    : {joint_ms:8.1} ms, {joint_io:8} simulated I/Os");
    println!(
        "  joint saves {:.0}× runtime and {:.0}× I/O, with identical results",
        base_ms / joint_ms,
        base_io as f64 / joint_io as f64
    );
    println!(
        "  retrieved object pool: |LO| = {}, |RO| = {}, RSk(us) = {:.4}",
        out.lo.len(),
        out.ro.len(),
        out.rsk_us
    );

    // The per-user refinement stage parallelizes trivially (extension;
    // the measured pipeline stays single-threaded like the paper's).
    let t0 = Instant::now();
    let par = individual_topk_parallel(&engine.users, &out, k, &engine.ctx, 8);
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(par.len(), joint_results.len());
    println!("  refinement stage on 8 threads: {par_ms:.1} ms (identical results)");

    // Show one user's feed.
    let u = &joint_results[0];
    println!(
        "  sample — user {} top-{k}: {:?}",
        u.user,
        &u.topk[..k.min(u.topk.len())]
    );
}
