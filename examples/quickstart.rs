//! Quickstart: answer one MaxBRSTkNN query on a hand-built dataset.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use maxbrstknn::prelude::*;

fn main() {
    // --- A tiny city: four restaurants, six customers. ---
    let mut dict = Dictionary::new();
    let sushi = dict.intern("sushi");
    let seafood = dict.intern("seafood");
    let noodles = dict.intern("noodles");
    let coffee = dict.intern("coffee");

    let objects = vec![
        ObjectData {
            id: 0,
            point: Point::new(1.0, 1.0),
            doc: Document::from_terms([sushi, seafood]),
        },
        ObjectData {
            id: 1,
            point: Point::new(9.0, 9.0),
            doc: Document::from_terms([noodles]),
        },
        ObjectData {
            id: 2,
            point: Point::new(5.0, 5.0),
            doc: Document::from_terms([coffee]),
        },
        ObjectData {
            id: 3,
            point: Point::new(2.0, 8.0),
            doc: Document::from_terms([noodles, coffee]),
        },
    ];
    let users = vec![
        UserData {
            id: 0,
            point: Point::new(1.5, 1.5),
            doc: Document::from_terms([sushi]),
        },
        UserData {
            id: 1,
            point: Point::new(2.0, 1.0),
            doc: Document::from_terms([sushi, seafood]),
        },
        UserData {
            id: 2,
            point: Point::new(8.5, 9.0),
            doc: Document::from_terms([noodles]),
        },
        UserData {
            id: 3,
            point: Point::new(5.0, 4.5),
            doc: Document::from_terms([coffee]),
        },
        UserData {
            id: 4,
            point: Point::new(2.5, 2.0),
            doc: Document::from_terms([seafood, noodles]),
        },
        UserData {
            id: 5,
            point: Point::new(1.0, 2.5),
            doc: Document::from_terms([sushi, coffee]),
        },
    ];

    // Build scorer + disk-resident indexes in one call.
    let engine = Engine::build(objects, users, WeightModel::lm(), 0.5).with_user_index();

    // Where should a new venue go, and which two dishes should it list,
    // to be a top-1 choice for as many customers as possible?
    let spec = QuerySpec {
        ox_doc: Document::new(),
        locations: vec![
            Point::new(1.8, 1.8), // downtown, near the sushi crowd
            Point::new(8.8, 8.8), // uptown, near the noodle crowd
            Point::new(5.0, 5.0), // midtown
        ],
        keywords: vec![sushi, seafood, noodles, coffee],
        ws: 2,
        k: 1,
    };

    for method in [Method::JointExact, Method::JointGreedy, Method::Baseline] {
        engine.io.reset();
        let ans = engine.query(&spec, method);
        let kws: Vec<&str> = ans
            .keywords
            .iter()
            .map(|&t| dict.name(t).unwrap())
            .collect();
        println!(
            "{method:?}: place at location #{} with menu {:?} → wins {} customers {:?} \
             ({} simulated I/Os)",
            ans.location,
            kws,
            ans.cardinality(),
            ans.brstknn,
            engine.io.total(),
        );
    }
}
