//! The paper's Example 1 at realistic scale: social-media advertisement
//! placement over a synthetic Flickr-like collection.
//!
//! A brand wants to geo-target one advertisement. Each user sees only
//! their top-k most relevant ads (spatial proximity + text match). The
//! query picks the geo-anchor and up to `ws` ad keywords that put the ad
//! in the most users' top-k feeds — and compares the paper's methods on
//! runtime and simulated I/O while doing it.
//!
//! ```sh
//! cargo run --release --example advert_placement
//! ```

use std::time::Instant;

use datagen::{generate_objects, generate_workload, CorpusConfig, UserGenConfig};
use maxbrstknn::prelude::*;

fn main() {
    // 10K competing advertisements (the object set), Zipf-tagged.
    let objects = generate_objects(&CorpusConfig::flickr_like(10_000));

    // 300 users in a 5×5 window, 3 interests each from a 20-keyword pool.
    let wl = generate_workload(
        &objects,
        &UserGenConfig {
            num_users: 300,
            area: 5.0,
            uw: 20,
            ul: 3,
            num_locations: 40,
            seed: 2024,
        },
    );

    println!(
        "Collection: {} ads, {} users, {} candidate anchors, {} candidate keywords",
        objects.len(),
        wl.users.len(),
        wl.candidate_locations.len(),
        wl.candidate_keywords.len()
    );

    let engine =
        Engine::build(objects, wl.users, WeightModel::lm(), 0.5).with_user_index();

    let spec = QuerySpec {
        ox_doc: Document::new(),
        locations: wl.candidate_locations,
        keywords: wl.candidate_keywords,
        ws: 3, // ad has room for three keywords
        k: 10, // each user sees ten ads
    };

    let mut exact_card = 0;
    for method in [
        Method::JointExact,
        Method::JointGreedy,
        Method::UserIndexGreedy,
        Method::Baseline,
    ] {
        engine.io.reset();
        let start = Instant::now();
        let ans = engine.query(&spec, method);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let io = engine.io.snapshot();
        if method == Method::JointExact {
            exact_card = ans.cardinality();
        }
        println!(
            "{method:?}: reaches {} users | anchor #{} keywords {:?} | {:.1} ms | \
             {} node I/Os + {} inverted-file blocks",
            ans.cardinality(),
            ans.location,
            ans.keywords,
            elapsed,
            io.node_visits,
            io.invfile_blocks,
        );
        // Greedy keeps its quality guarantee on this workload.
        if method == Method::JointGreedy {
            assert!(ans.cardinality() as f64 >= 0.632 * exact_card as f64 - 1.0);
        }
    }
}
