//! The paper's Example 1 at realistic scale: social-media advertisement
//! placement over a synthetic Flickr-like collection.
//!
//! A brand wants to geo-target a *campaign*: several ad variants, each
//! with its own shortlist of geo-anchors. Each user sees only their top-k
//! most relevant ads (spatial proximity + text match). Every query picks
//! the anchor and up to `ws` ad keywords that put its variant in the most
//! users' top-k feeds. The whole campaign runs through
//! [`Engine::query_batch_threads`], which fans the variants out across
//! worker threads and reports per-query latency and simulated I/O — and we
//! double-check the batch answers are bit-identical to sequential
//! execution while comparing the paper's methods.
//!
//! Every variant targets the same feed depth `k`, so the engine runs with
//! the cross-query threshold cache enabled: the per-user top-k phase is
//! computed once per method family and every later variant (and the
//! sequential double-check) reuses it — the serving configuration, not
//! the paper's cold-measurement one.
//!
//! ```sh
//! cargo run --release --example advert_placement
//! ```

use datagen::{generate_objects, generate_workload, CorpusConfig, UserGenConfig};
use maxbrstknn::prelude::*;

fn main() {
    // 10K competing advertisements (the object set), Zipf-tagged.
    let objects = generate_objects(&CorpusConfig::flickr_like(10_000));

    // 300 users in a 5×5 window, 3 interests each from a 20-keyword pool.
    let wl = generate_workload(
        &objects,
        &UserGenConfig {
            num_users: 300,
            area: 5.0,
            uw: 20,
            ul: 3,
            num_locations: 40,
            seed: 2024,
        },
    );

    println!(
        "Collection: {} ads, {} users, {} candidate anchors, {} candidate keywords",
        objects.len(),
        wl.users.len(),
        wl.candidate_locations.len(),
        wl.candidate_keywords.len()
    );

    let engine = Engine::build(objects, wl.users, WeightModel::lm(), 0.5)
        .with_user_index()
        .with_threshold_cache();

    // The campaign: 8 ad variants, each siting against a different
    // 10-anchor shortlist carved out of the candidate pool.
    let variants: Vec<QuerySpec> = (0..8)
        .map(|i| {
            let mut anchors = wl.candidate_locations.clone();
            let shift = i * 5 % anchors.len();
            anchors.rotate_left(shift);
            anchors.truncate(10);
            QuerySpec {
                ox_doc: Document::new(),
                locations: anchors,
                keywords: wl.candidate_keywords.clone(),
                ws: 3, // each ad has room for three keywords
                k: 10, // each user sees ten ads
            }
        })
        .collect();
    println!(
        "Campaign: {} ad variants, 4 worker threads\n",
        variants.len()
    );

    let mut exact_cardinalities: Vec<usize> = Vec::new();
    for method in [
        Method::JointExact,
        Method::JointGreedy,
        Method::UserIndexGreedy,
        Method::Baseline,
    ] {
        let start = std::time::Instant::now();
        let outcomes = engine.query_batch_threads(&variants, method, 4);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if method == Method::JointExact {
            exact_cardinalities = outcomes.iter().map(|o| o.result.cardinality()).collect();
        }

        // Parallel answers are bit-identical to sequential ones.
        for (out, spec) in outcomes.iter().zip(&variants) {
            assert_eq!(out.result, engine.query(spec, method));
        }

        let total_reach: usize = outcomes.iter().map(|o| o.result.cardinality()).sum();
        let total_io: u64 = outcomes.iter().map(|o| o.stats.io.total()).sum();
        let best = outcomes
            .iter()
            .enumerate()
            .max_by_key(|(_, o)| o.result.cardinality())
            .expect("non-empty campaign");
        println!(
            "{:<18} reaches {total_reach:>4} users across the campaign | best variant #{} \
             (anchor {}, keywords {:?}, {} users) | {wall_ms:>7.1} ms wall, {total_io:>6} \
             simulated I/Os total",
            method.name(),
            best.0,
            best.1.result.location,
            best.1.result.keywords,
            best.1.result.cardinality(),
        );

        // Greedy keeps its quality guarantee, variant by variant.
        if method == Method::JointGreedy {
            for (g, &e) in outcomes.iter().zip(&exact_cardinalities) {
                assert!(g.result.cardinality() as f64 >= 0.632 * e as f64 - 1.0);
            }
        }
    }

    let tc = engine.thresholds.as_ref().expect("enabled above");
    println!(
        "\nThreshold cache: {} top-k computations served {} lookups \
         (the campaign paid each method family's top-k phase once)",
        tc.misses(),
        tc.hits() + tc.misses(),
    );
}
