//! The paper's running example (Figure 1 / Example 2): choose a site and a
//! one-item menu for a new restaurant `ox` so it becomes the top-1
//! spatial-textual choice of the most users.
//!
//! Users u1..u4 and restaurants o1, o2 are laid out as in Figure 1; the
//! candidate locations are l1, l2, l3 and the menu choices are
//! {sushi, seafood, noodles} with a budget of one item. The paper's
//! answer: place `ox` at l1 with menu "sushi", winning u1, u2 and u3.
//!
//! ```sh
//! cargo run --release --example restaurant_sites
//! ```

use maxbrstknn::prelude::*;

fn main() {
    let mut dict = Dictionary::new();
    let sushi = dict.intern("sushi");
    let seafood = dict.intern("seafood");
    let noodles = dict.intern("noodles");

    // Geometry mirroring Figure 1: u1,u2,u3 cluster on the left around l1,
    // u4 sits to the right next to o2; o1 is below the cluster.
    let objects = vec![
        ObjectData {
            id: 0,
            point: Point::new(2.0, 1.0),
            doc: Document::from_terms([sushi]),
        }, // o1
        ObjectData {
            id: 1,
            point: Point::new(8.0, 4.0),
            doc: Document::from_terms([noodles]),
        }, // o2
    ];
    let users = vec![
        UserData {
            id: 0,
            point: Point::new(1.0, 4.0),
            doc: Document::from_terms([sushi, seafood]),
        }, // u1
        UserData {
            id: 1,
            point: Point::new(2.0, 5.0),
            doc: Document::from_terms([sushi]),
        }, // u2
        UserData {
            id: 2,
            point: Point::new(3.0, 4.0),
            doc: Document::from_terms([sushi, noodles]),
        }, // u3
        UserData {
            id: 3,
            point: Point::new(7.0, 4.5),
            doc: Document::from_terms([noodles]),
        }, // u4
    ];

    let engine = Engine::build(objects, users, WeightModel::KeywordOverlap, 0.5);

    let locations = vec![
        Point::new(2.0, 4.5), // l1 — inside the user cluster
        Point::new(5.0, 1.0), // l2 — south, away from everyone
        Point::new(6.5, 5.5), // l3 — near u4 but next to o2
    ];
    let spec = QuerySpec {
        ox_doc: Document::new(),
        locations,
        keywords: vec![sushi, seafood, noodles],
        ws: 1, // "the number of menu items that can be displayed is 1"
        k: 1,  // top-1 restaurant per user
    };

    let ans = engine.query(&spec, Method::JointExact);
    let menu: Vec<&str> = ans
        .keywords
        .iter()
        .map(|&t| dict.name(t).unwrap())
        .collect();
    println!(
        "Best site: l{} — menu {:?} — top-1 restaurant for {} users: {:?}",
        ans.location + 1,
        menu,
        ans.cardinality(),
        ans.brstknn
            .iter()
            .map(|u| format!("u{}", u + 1))
            .collect::<Vec<_>>(),
    );

    assert_eq!(ans.location, 0, "the paper's answer is l1");
    assert_eq!(menu, vec!["sushi"], "the paper's answer is 'sushi'");
    assert_eq!(ans.cardinality(), 3, "ox wins u1, u2, u3");
    println!("Matches Example 2 of the paper: l1 + sushi wins u1,u2,u3.");
}
