//! ℓ-MaxBRSTkNN: shortlist the ℓ best sites instead of a single winner.
//!
//! Real site-selection workflows rarely commit to the single optimum — a
//! shortlist goes to the negotiation stage. This example asks for the top
//! three ⟨location, keyword⟩ tuples over a synthetic city and prints their
//! audiences, exercising the `query_top_l` extension (the spatial-textual
//! analogue of Wong et al.'s ℓ-MaxBRkNN).
//!
//! ```sh
//! cargo run --release --example top_sites
//! ```

use datagen::{generate_objects, generate_workload, CorpusConfig, UserGenConfig};
use maxbrstknn::mbrstk_core::select::location::KeywordSelector;
use maxbrstknn::prelude::*;

fn main() {
    let objects = generate_objects(&CorpusConfig::flickr_like(8_000));
    let wl = generate_workload(
        &objects,
        &UserGenConfig {
            num_users: 250,
            area: 6.0,
            uw: 18,
            ul: 3,
            num_locations: 30,
            seed: 555,
        },
    );
    let engine = Engine::build(objects, wl.users, WeightModel::lm(), 0.5);

    let spec = QuerySpec {
        ox_doc: Document::new(),
        locations: wl.candidate_locations,
        keywords: wl.candidate_keywords,
        ws: 2,
        k: 10,
    };

    let shortlist = engine.query_top_l(&spec, KeywordSelector::Exact, 3);
    println!("Top-{} candidate sites:", shortlist.len());
    for (rank, r) in shortlist.iter().enumerate() {
        let loc = spec.locations[r.location];
        println!(
            "  #{}: location {:>2} at ({:.2}, {:.2}) with keywords {:?} → {} users",
            rank + 1,
            r.location,
            loc.x,
            loc.y,
            r.keywords,
            r.cardinality(),
        );
    }

    // Shortlists are ordered and the head matches the single-best query.
    assert!(shortlist
        .windows(2)
        .all(|w| w[0].cardinality() >= w[1].cardinality()));
    let single = engine.query(&spec, Method::JointExact);
    assert_eq!(shortlist[0].cardinality(), single.cardinality());
    println!("Head of the shortlist matches the single-winner query.");
}
