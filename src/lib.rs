//! # maxbrstknn
//!
//! A complete Rust reproduction of **"Maximizing Bichromatic Reverse
//! Spatial and Textual k Nearest Neighbor Queries"** (Choudhury,
//! Culpepper, Sellis & Cao, PVLDB 9(6), 2016).
//!
//! Given users `U` and objects `O` — each a location plus a keyword set —
//! a `MaxBRSTkNN(ox, L, W, ws, k)` query picks the candidate location
//! `ℓ ∈ L` and keyword set `W' ⊆ W (|W'| ≤ ws)` that maximize the number
//! of users who would rank the query object `ox` among their top-k
//! spatial-textual results. Think: where to open a restaurant and what to
//! put on the menu so the most customers see it in their top-k.
//!
//! ## Quickstart
//!
//! ```
//! use maxbrstknn::prelude::*;
//!
//! // Two restaurants, three customers, on a 10×10 map.
//! let mut dict = Dictionary::new();
//! let (sushi, noodles) = (dict.intern("sushi"), dict.intern("noodles"));
//! let objects = vec![
//!     ObjectData { id: 0, point: Point::new(2.0, 2.0), doc: Document::from_terms([sushi]) },
//!     ObjectData { id: 1, point: Point::new(8.0, 8.0), doc: Document::from_terms([noodles]) },
//! ];
//! let users = vec![
//!     UserData { id: 0, point: Point::new(2.5, 2.0), doc: Document::from_terms([sushi]) },
//!     UserData { id: 1, point: Point::new(3.0, 3.0), doc: Document::from_terms([sushi, noodles]) },
//!     UserData { id: 2, point: Point::new(7.5, 8.0), doc: Document::from_terms([noodles]) },
//! ];
//! let engine = Engine::build(objects, users, WeightModel::lm(), 0.5);
//!
//! // Where should a new place go, and which dish should it advertise?
//! let spec = QuerySpec {
//!     ox_doc: Document::new(),
//!     locations: vec![Point::new(2.2, 2.5), Point::new(8.0, 7.5)],
//!     keywords: vec![sushi, noodles],
//!     ws: 1,
//!     k: 1,
//! };
//! let answer = engine.query(&spec, Method::JointExact);
//! assert!(!answer.brstknn.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`geo`] | points, MBRs, min/max distances, normalized proximity `SS` |
//! | [`text`] | dictionary, documents, TF-IDF / LM / keyword-overlap `TS` |
//! | [`storage`] | simulated 4 KB-page disk and the paper's I/O accounting |
//! | [`index`] | R-tree skeleton, IR-tree, MIR-tree, MIUR-tree |
//! | [`core`](mbrstk_core) | Algorithms 1–4, baselines, §7 pipeline, [`Engine`](mbrstk_core::Engine) |
//! | [`obs`](mbrstk_obs) | metrics registry, mergeable histograms, JSON / Prometheus export |
//! | [`datagen`] | Flickr-like / Yelp-like generators, §8 user protocol |

pub use datagen;
pub use geo;
pub use index;
pub use mbrstk_core;
pub use mbrstk_obs;
pub use storage;
pub use text;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use geo::{Point, Rect, SpatialContext};
    pub use mbrstk_core::{
        Engine, Method, ObjectData, QueryResult, QuerySpec, ScoreContext, UserData, UserGroup,
    };
    pub use storage::CodecId;
    pub use text::{Dictionary, Document, TermId, TextScorer, WeightModel};
}
