//! Property-based tests of the index family on random data.

use geo::{Point, Rect};
use index::{
    BuildItem, BuildTree, ChildRef, IndexedObject, IndexedUser, MiurTree, PostingMode,
    RTreeBuilder, StTree, UserRef,
};
use proptest::prelude::*;
use storage::IoStats;
use text::{Document, TermId, TextScorer, WeightModel, WeightedDoc};

prop_compose! {
    fn point()(x in -50.0f64..50.0, y in -50.0f64..50.0) -> Point {
        Point::new(x, y)
    }
}

prop_compose! {
    fn objects()(pts in prop::collection::vec((point(), prop::collection::vec(0u32..8, 1..5)), 1..80))
        -> Vec<(Point, Vec<TermId>)>
    {
        pts.into_iter()
            .map(|(p, ts)| (p, ts.into_iter().map(TermId).collect()))
            .collect()
    }
}

fn build_indexed(data: &[(Point, Vec<TermId>)]) -> (Vec<IndexedObject>, TextScorer) {
    let docs: Vec<Document> = data
        .iter()
        .map(|(_, ts)| Document::from_terms(ts.iter().copied()))
        .collect();
    let scorer = TextScorer::from_docs(WeightModel::lm(), &docs);
    let objs = data
        .iter()
        .zip(&docs)
        .enumerate()
        .map(|(i, ((p, _), d))| IndexedObject {
            id: i as u32,
            point: *p,
            doc: scorer.weigh(d),
        })
        .collect();
    (objs, scorer)
}

/// Walks the tree gathering every object with its leaf-stored weights.
fn collect_all(tree: &StTree, io: &IoStats) -> Vec<(u32, Point, WeightedDoc)> {
    let all_terms: Vec<TermId> = (0..16).map(TermId).collect();
    let mut out = Vec::new();
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let node = tree.read_node(id, io);
        let postings = tree.read_postings(&node, &all_terms, io);
        for (i, e) in node.entries.iter().enumerate() {
            match e.child {
                ChildRef::Node(c) => stack.push(c),
                ChildRef::Object(oid) => {
                    let w = WeightedDoc::from_pairs(
                        postings.per_entry[i].iter().map(|&(t, mx, _)| (t, mx)).collect(),
                    );
                    out.push((oid, node.entry_point(i), w));
                }
            }
        }
    }
    out.sort_by_key(|&(id, _, _)| id);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every object written is read back bit-exactly (location + weights).
    #[test]
    fn sttree_roundtrip(data in objects(), fanout in 2usize..10) {
        let (objs, _) = build_indexed(&data);
        let tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, fanout.max(2));
        let io = IoStats::new();
        let got = collect_all(&tree, &io);
        prop_assert_eq!(got.len(), objs.len());
        for (g, o) in got.iter().zip(&objs) {
            prop_assert_eq!(g.0, o.id);
            prop_assert_eq!(g.1, o.point);
            prop_assert_eq!(&g.2, &o.doc);
        }
    }

    /// Inner-node posting maxima dominate every leaf weight below them and
    /// MBRs contain every descendant point.
    #[test]
    fn sttree_bounds_dominate(data in objects(), fanout in 3usize..8) {
        let (objs, _) = build_indexed(&data);
        let tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, fanout);
        let io = IoStats::new();
        let all_terms: Vec<TermId> = (0..16).map(TermId).collect();

        fn check(
            tree: &StTree,
            node_rec: storage::RecordId,
            objs: &[IndexedObject],
            all_terms: &[TermId],
            io: &IoStats,
        ) -> Result<(), TestCaseError> {
            let node = tree.read_node(node_rec, io);
            let postings = tree.read_postings(&node, all_terms, io);
            for (i, e) in node.entries.iter().enumerate() {
                if let ChildRef::Node(c) = e.child {
                    // Gather descendant objects of c.
                    let mut descs = Vec::new();
                    let mut stack = vec![c];
                    while let Some(id) = stack.pop() {
                        let nv = tree.read_node(id, io);
                        for ee in &nv.entries {
                            match ee.child {
                                ChildRef::Node(cc) => stack.push(cc),
                                ChildRef::Object(o) => descs.push(o),
                            }
                        }
                    }
                    for &oid in &descs {
                        let obj = &objs[oid as usize];
                        prop_assert!(e.rect.contains_point(&obj.point));
                        for &(t, w) in &obj.doc.entries {
                            let row = &postings.per_entry[i];
                            let posted = row
                                .iter()
                                .find(|&&(pt, _, _)| pt == t)
                                .map(|&(_, mx, _)| mx)
                                .unwrap_or(0.0);
                            prop_assert!(
                                posted >= w - 1e-12,
                                "max posting must dominate descendant weight"
                            );
                        }
                    }
                    check(tree, c, objs, all_terms, io)?;
                }
            }
            Ok(())
        }
        check(&tree, tree.root(), &objs, &all_terms, &io)?;
    }

    /// Insertion-built trees hold the R-tree invariants and serialize to a
    /// queryable StTree containing every object.
    #[test]
    fn insertion_tree_roundtrips(data in objects()) {
        let (objs, _) = build_indexed(&data);
        let mut b = RTreeBuilder::new(4);
        for (pos, o) in objs.iter().enumerate() {
            b.insert(BuildItem {
                id: pos as u32,
                rect: Rect::from_point(o.point),
            });
        }
        let (items, tree) = b.finish();
        tree.check_invariants(&items).unwrap();
        let st = StTree::from_build_tree(&tree, &items, &objs, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        prop_assert_eq!(collect_all(&st, &io).len(), objs.len());
    }

    /// Dynamic insertion yields a complete, bit-exact object set no matter
    /// how the build is split between bulk load and inserts.
    #[test]
    fn dynamic_insert_completeness(data in objects(), split_pct in 10usize..90, fanout in 4usize..10) {
        let (objs, _) = build_indexed(&data);
        let split = (objs.len() * split_pct / 100).max(1);
        let mut tree = StTree::build_with_fanout(&objs[..split], PostingMode::MaxMin, fanout);
        for o in &objs[split..] {
            tree.insert(o);
        }
        let io = IoStats::new();
        let got = collect_all(&tree, &io);
        prop_assert_eq!(got.len(), objs.len());
        for (g, o) in got.iter().zip(&objs) {
            prop_assert_eq!(g.0, o.id);
            prop_assert_eq!(g.1, o.point);
            prop_assert_eq!(&g.2, &o.doc);
        }
    }

    /// Random deletions leave exactly the surviving objects, queryable.
    #[test]
    fn dynamic_remove_completeness(data in objects(), kill_pct in 10usize..90, fanout in 4usize..10) {
        let (objs, _) = build_indexed(&data);
        let mut tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, fanout);
        let kill = (objs.len() * kill_pct / 100).min(objs.len());
        for o in &objs[..kill] {
            prop_assert!(tree.remove(o.id, o.point));
        }
        let io = IoStats::new();
        let got = collect_all(&tree, &io);
        prop_assert_eq!(got.len(), objs.len() - kill);
        for (g, o) in got.iter().zip(&objs[kill..]) {
            prop_assert_eq!(g.0, o.id);
            prop_assert_eq!(g.1, o.point);
            prop_assert_eq!(&g.2, &o.doc);
        }
    }

    /// Bulk-loaded trees hold the invariants for any fanout.
    #[test]
    fn bulk_load_invariants(data in objects(), fanout in 2usize..12) {
        let items: Vec<BuildItem> = data
            .iter()
            .enumerate()
            .map(|(i, (p, _))| BuildItem { id: i as u32, rect: Rect::from_point(*p) })
            .collect();
        let tree = BuildTree::bulk_load(&items, fanout.max(2));
        tree.check_invariants(&items).unwrap();
    }

    /// MIUR IntUni vectors bound every descendant's keyword set.
    #[test]
    fn miur_intuni_sound(data in objects(), fanout in 3usize..8) {
        let users: Vec<IndexedUser> = data
            .iter()
            .enumerate()
            .map(|(i, (p, ts))| IndexedUser {
                id: i as u32,
                point: *p,
                doc: Document::from_terms(ts.iter().copied()),
                norm: ts.len() as f64,
            })
            .collect();
        let tree = MiurTree::build_with_fanout(&users, fanout);
        let io = IoStats::new();

        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            for e in &node.entries {
                let descs: Vec<u32> = match e.child {
                    UserRef::User(u) => vec![u],
                    UserRef::Node(c) => {
                        stack.push(c);
                        let mut out = Vec::new();
                        let mut s2 = vec![c];
                        while let Some(x) = s2.pop() {
                            let nv = tree.read_node(x, &io);
                            for ee in &nv.entries {
                                match ee.child {
                                    UserRef::Node(cc) => s2.push(cc),
                                    UserRef::User(u) => out.push(u),
                                }
                            }
                        }
                        out
                    }
                };
                prop_assert_eq!(descs.len(), e.count as usize);
                for d in descs {
                    let doc = &users[d as usize].doc;
                    for t in doc.terms() {
                        prop_assert!(e.uni.contains(&t));
                    }
                    for &t in &e.int {
                        prop_assert!(doc.contains(t));
                    }
                }
            }
        }
    }
}
