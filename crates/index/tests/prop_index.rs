//! Randomized-property tests of the index family on random data.
//!
//! Cases come from a seeded SplitMix64 stream (no `proptest` dependency —
//! the registry is unavailable in the build environment), so runs are
//! deterministic and failures reproduce exactly.

use geo::{Point, Rect};
use index::{
    BuildItem, BuildTree, ChildRef, IndexedObject, IndexedUser, MiurTree, PostingMode,
    RTreeBuilder, StTree, UserRef,
};
use storage::IoStats;
use text::{Document, TermId, TextScorer, WeightModel, WeightedDoc};

const CASES: usize = 32;

use splitmix::SplitMix64 as Gen;

/// Domain-specific case generators on the shared SplitMix64 core.
trait GenExt {
    fn point(&mut self) -> Point;
    /// 1–79 objects: a point plus 1–4 terms from an 8-term vocabulary.
    fn objects(&mut self) -> Vec<(Point, Vec<TermId>)>;
}

impl GenExt for Gen {
    fn point(&mut self) -> Point {
        Point::new(self.unit() * 100.0 - 50.0, self.unit() * 100.0 - 50.0)
    }

    fn objects(&mut self) -> Vec<(Point, Vec<TermId>)> {
        let n = 1 + self.below(79) as usize;
        (0..n)
            .map(|_| {
                let p = self.point();
                let k = 1 + self.below(4) as usize;
                let ts = (0..k).map(|_| TermId(self.below(8) as u32)).collect();
                (p, ts)
            })
            .collect()
    }
}

fn build_indexed(data: &[(Point, Vec<TermId>)]) -> (Vec<IndexedObject>, TextScorer) {
    let docs: Vec<Document> = data
        .iter()
        .map(|(_, ts)| Document::from_terms(ts.iter().copied()))
        .collect();
    let scorer = TextScorer::from_docs(WeightModel::lm(), &docs);
    let objs = data
        .iter()
        .zip(&docs)
        .enumerate()
        .map(|(i, ((p, _), d))| IndexedObject {
            id: i as u32,
            point: *p,
            doc: scorer.weigh(d),
        })
        .collect();
    (objs, scorer)
}

/// Walks the tree gathering every object with its leaf-stored weights.
fn collect_all(tree: &StTree, io: &IoStats) -> Vec<(u32, Point, WeightedDoc)> {
    let all_terms: Vec<TermId> = (0..16).map(TermId).collect();
    let mut out = Vec::new();
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let node = tree.read_node(id, io);
        let postings = tree.read_postings(&node, &all_terms, io);
        for (i, e) in node.entries.iter().enumerate() {
            match e.child {
                ChildRef::Node(c) => stack.push(c),
                ChildRef::Object(oid) => {
                    let w = WeightedDoc::from_pairs(
                        postings.per_entry[i]
                            .iter()
                            .map(|&(t, mx, _)| (t, mx))
                            .collect(),
                    );
                    out.push((oid, node.entry_point(i), w));
                }
            }
        }
    }
    out.sort_by_key(|&(id, _, _)| id);
    out
}

/// Every object written is read back bit-exactly (location + weights).
#[test]
fn sttree_roundtrip() {
    let mut g = Gen(31);
    for _ in 0..CASES {
        let data = g.objects();
        let fanout = (2 + g.below(8) as usize).max(2);
        let (objs, _) = build_indexed(&data);
        let tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, fanout);
        let io = IoStats::new();
        let got = collect_all(&tree, &io);
        assert_eq!(got.len(), objs.len());
        for (g, o) in got.iter().zip(&objs) {
            assert_eq!(g.0, o.id);
            assert_eq!(g.1, o.point);
            assert_eq!(&g.2, &o.doc);
        }
    }
}

/// Inner-node posting maxima dominate every leaf weight below them and
/// MBRs contain every descendant point.
#[test]
fn sttree_bounds_dominate() {
    fn check(
        tree: &StTree,
        node_rec: storage::RecordId,
        objs: &[IndexedObject],
        all_terms: &[TermId],
        io: &IoStats,
    ) {
        let node = tree.read_node(node_rec, io);
        let postings = tree.read_postings(&node, all_terms, io);
        for (i, e) in node.entries.iter().enumerate() {
            if let ChildRef::Node(c) = e.child {
                // Gather descendant objects of c.
                let mut descs = Vec::new();
                let mut stack = vec![c];
                while let Some(id) = stack.pop() {
                    let nv = tree.read_node(id, io);
                    for ee in &nv.entries {
                        match ee.child {
                            ChildRef::Node(cc) => stack.push(cc),
                            ChildRef::Object(o) => descs.push(o),
                        }
                    }
                }
                for &oid in &descs {
                    let obj = &objs[oid as usize];
                    assert!(e.rect.contains_point(&obj.point));
                    for &(t, w) in &obj.doc.entries {
                        let row = &postings.per_entry[i];
                        let posted = row
                            .iter()
                            .find(|&&(pt, _, _)| pt == t)
                            .map(|&(_, mx, _)| mx)
                            .unwrap_or(0.0);
                        assert!(
                            posted >= w - 1e-12,
                            "max posting must dominate descendant weight"
                        );
                    }
                }
                check(tree, c, objs, all_terms, io);
            }
        }
    }

    let mut g = Gen(32);
    for _ in 0..CASES {
        let data = g.objects();
        let fanout = 3 + g.below(5) as usize;
        let (objs, _) = build_indexed(&data);
        let tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, fanout);
        let io = IoStats::new();
        let all_terms: Vec<TermId> = (0..16).map(TermId).collect();
        check(&tree, tree.root(), &objs, &all_terms, &io);
    }
}

/// Insertion-built trees hold the R-tree invariants and serialize to a
/// queryable StTree containing every object.
#[test]
fn insertion_tree_roundtrips() {
    let mut g = Gen(33);
    for _ in 0..CASES {
        let data = g.objects();
        let (objs, _) = build_indexed(&data);
        let mut b = RTreeBuilder::new(4);
        for (pos, o) in objs.iter().enumerate() {
            b.insert(BuildItem {
                id: pos as u32,
                rect: Rect::from_point(o.point),
            });
        }
        let (items, tree) = b.finish();
        tree.check_invariants(&items).unwrap();
        let st = StTree::from_build_tree(&tree, &items, &objs, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        assert_eq!(collect_all(&st, &io).len(), objs.len());
    }
}

/// Dynamic insertion yields a complete, bit-exact object set no matter how
/// the build is split between bulk load and inserts.
#[test]
fn dynamic_insert_completeness() {
    let mut g = Gen(34);
    for _ in 0..CASES {
        let data = g.objects();
        let split_pct = 10 + g.below(80) as usize;
        let fanout = 4 + g.below(6) as usize;
        let (objs, _) = build_indexed(&data);
        let split = (objs.len() * split_pct / 100).max(1);
        let mut tree = StTree::build_with_fanout(&objs[..split], PostingMode::MaxMin, fanout);
        for o in &objs[split..] {
            tree.insert(o);
        }
        let io = IoStats::new();
        let got = collect_all(&tree, &io);
        assert_eq!(got.len(), objs.len());
        for (g, o) in got.iter().zip(&objs) {
            assert_eq!(g.0, o.id);
            assert_eq!(g.1, o.point);
            assert_eq!(&g.2, &o.doc);
        }
    }
}

/// Random deletions leave exactly the surviving objects, queryable.
#[test]
fn dynamic_remove_completeness() {
    let mut g = Gen(35);
    for _ in 0..CASES {
        let data = g.objects();
        let kill_pct = 10 + g.below(80) as usize;
        let fanout = 4 + g.below(6) as usize;
        let (objs, _) = build_indexed(&data);
        let mut tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, fanout);
        let kill = (objs.len() * kill_pct / 100).min(objs.len());
        for o in &objs[..kill] {
            assert!(tree.remove(o.id, o.point).is_some());
        }
        let io = IoStats::new();
        let got = collect_all(&tree, &io);
        assert_eq!(got.len(), objs.len() - kill);
        for (g, o) in got.iter().zip(&objs[kill..]) {
            assert_eq!(g.0, o.id);
            assert_eq!(g.1, o.point);
            assert_eq!(&g.2, &o.doc);
        }
    }
}

/// Bulk-loaded trees hold the invariants for any fanout.
#[test]
fn bulk_load_invariants() {
    let mut g = Gen(36);
    for _ in 0..CASES {
        let data = g.objects();
        let fanout = (2 + g.below(10) as usize).max(2);
        let items: Vec<BuildItem> = data
            .iter()
            .enumerate()
            .map(|(i, (p, _))| BuildItem {
                id: i as u32,
                rect: Rect::from_point(*p),
            })
            .collect();
        let tree = BuildTree::bulk_load(&items, fanout);
        tree.check_invariants(&items).unwrap();
    }
}

/// MIUR IntUni vectors bound every descendant's keyword set.
#[test]
fn miur_intuni_sound() {
    let mut g = Gen(37);
    for _ in 0..CASES {
        let data = g.objects();
        let fanout = 3 + g.below(5) as usize;
        let users: Vec<IndexedUser> = data
            .iter()
            .enumerate()
            .map(|(i, (p, ts))| IndexedUser {
                id: i as u32,
                point: *p,
                doc: Document::from_terms(ts.iter().copied()),
                norm: ts.len() as f64,
            })
            .collect();
        let tree = MiurTree::build_with_fanout(&users, fanout);
        let io = IoStats::new();

        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            for e in &node.entries {
                let descs: Vec<u32> = match e.child {
                    UserRef::User(u) => vec![u],
                    UserRef::Node(c) => {
                        stack.push(c);
                        let mut out = Vec::new();
                        let mut s2 = vec![c];
                        while let Some(x) = s2.pop() {
                            let nv = tree.read_node(x, &io);
                            for ee in &nv.entries {
                                match ee.child {
                                    UserRef::Node(cc) => s2.push(cc),
                                    UserRef::User(u) => out.push(u),
                                }
                            }
                        }
                        out
                    }
                };
                assert_eq!(descs.len(), e.count as usize);
                for d in descs {
                    let doc = &users[d as usize].doc;
                    for t in doc.terms() {
                        assert!(e.uni.contains(&t));
                    }
                    for &t in &e.int {
                        assert!(doc.contains(t));
                    }
                }
            }
        }
    }
}
