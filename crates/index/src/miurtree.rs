//! The MIUR-tree (§7): a disk-resident user index.
//!
//! An MIUR-tree is an R-tree over user locations where every node entry is
//! augmented with the *union* and the *intersection* of the keyword sets in
//! its subtree (the `IntUni` vectors of Fig. 4) plus the number of users
//! stored below it. It lets the candidate-selection algorithm bound the
//! relevance of a whole group of users at once, and skip computing top-k
//! results for user subtrees that can never contain a BRSTkNN.

use geo::{Point, Rect};
use storage::codec::{Reader, Writer};
use storage::{BlockFile, CodecId, IoStats, RecordId};
use text::{Document, TermId};

use crate::rtree::{quadratic_partition, BuildItem, BuildTree, DEFAULT_MAX_ENTRIES};
use crate::{SpliceReport, TreeEdit};

/// A user ready for indexing.
#[derive(Debug, Clone)]
pub struct IndexedUser {
    /// Application user id (dense).
    pub id: u32,
    /// Location `u.l`.
    pub point: Point,
    /// Keyword set `u.d`.
    pub doc: Document,
    /// The user's text normalizer `N(u)` under the query's weight model
    /// (see [`text::TextScorer::normalizer`]). Stored in the tree so node
    /// entries can carry sound `N(u)` brackets for whole subtrees — the
    /// group upper/lower bound estimations of §7 need them.
    pub norm: f64,
}

/// What an MIUR entry points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserRef {
    /// Inner entry: child node record.
    Node(RecordId),
    /// Leaf entry: a user id.
    User(u32),
}

/// One deserialized MIUR node entry.
#[derive(Debug, Clone)]
pub struct MiurEntryView {
    /// MBR of the subtree (degenerate for leaf entries).
    pub rect: Rect,
    /// Target of the entry.
    pub child: UserRef,
    /// Number of users in the subtree (1 for leaf entries).
    pub count: u32,
    /// Union of the subtree's keyword sets, ascending.
    pub uni: Vec<TermId>,
    /// Intersection of the subtree's keyword sets, ascending.
    pub int: Vec<TermId>,
    /// Minimum `N(u)` over the subtree's users.
    pub norm_min: f64,
    /// Maximum `N(u)` over the subtree's users.
    pub norm_max: f64,
}

/// A deserialized MIUR node.
#[derive(Debug, Clone)]
pub struct MiurNodeView {
    /// Record id of the node.
    pub id: RecordId,
    /// True when entries are users.
    pub is_leaf: bool,
    /// The node's entries with their `IntUni` vectors.
    pub entries: Vec<MiurEntryView>,
}

/// Reusable decode buffers for [`MiurTree::read_node_ref`].
///
/// Entry slots (and the `uni`/`int` vectors inside them) are cleared and
/// refilled, never dropped, so repeated reads of same-shaped nodes stop
/// allocating after the first pass.
#[derive(Debug, Default)]
pub struct MiurScratch {
    entries: Vec<MiurEntryView>,
    live: usize,
    is_leaf: bool,
    // Columnar column buffers.
    ids: Vec<u32>,
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
    counts: Vec<u32>,
    uni_lens: Vec<u32>,
    int_lens: Vec<u32>,
    uni_terms: Vec<u32>,
    int_terms: Vec<u32>,
    norm_min: Vec<f64>,
    norm_max: Vec<f64>,
}

/// An unused entry slot awaiting its first overwrite.
fn blank_entry() -> MiurEntryView {
    MiurEntryView {
        rect: Rect::from_point(Point::new(0.0, 0.0)),
        child: UserRef::User(0),
        count: 0,
        uni: Vec::new(),
        int: Vec::new(),
        norm_min: 0.0,
        norm_max: 0.0,
    }
}

impl MiurScratch {
    /// Grows the slot pool to `n` live entries, clearing the term vectors
    /// of each reused slot.
    fn reset_entries(&mut self, n: usize) {
        while self.entries.len() < n {
            self.entries.push(blank_entry());
        }
        for e in &mut self.entries[..n] {
            e.uni.clear();
            e.int.clear();
        }
        self.live = n;
    }
}

/// A zero-copy view of one MIUR node, borrowing the entries decoded into
/// a [`MiurScratch`]. The owned escape hatch is
/// [`MiurNodeRef::to_owned_view`].
#[derive(Debug, Clone, Copy)]
pub struct MiurNodeRef<'a> {
    /// Record id of the node.
    pub id: RecordId,
    /// True when entries are users.
    pub is_leaf: bool,
    /// The node's entries with their `IntUni` vectors.
    pub entries: &'a [MiurEntryView],
}

impl MiurNodeRef<'_> {
    /// Materializes an owned [`MiurNodeView`].
    pub fn to_owned_view(&self) -> MiurNodeView {
        MiurNodeView {
            id: self.id,
            is_leaf: self.is_leaf,
            entries: self.entries.to_vec(),
        }
    }
}

/// The disk-resident MIUR-tree.
///
/// `Clone` duplicates the tree record-for-record (see
/// [`crate::StTree`]'s note on the copy-on-write serving path).
#[derive(Debug, Clone)]
pub struct MiurTree {
    nodes: BlockFile,
    intuni: BlockFile,
    root: RecordId,
    height: u32,
    num_users: usize,
    fanout: usize,
    codec: CodecId,
}

/// Page-cache key of an MIUR node record (the `2 <<33` tag keeps the key
/// space disjoint from the IR/MIR trees sharing one [`IoStats`] cache).
fn miur_node_key(id: RecordId) -> u64 {
    (2 << 33) | u64::from(id.0)
}

/// Page-cache key of an MIUR IntUni record.
fn miur_intuni_key(id: RecordId) -> u64 {
    (3 << 33) | u64::from(id.0)
}

/// Builds the leaf entry summarizing one user.
fn leaf_entry(user: &IndexedUser) -> MiurEntryView {
    let terms: Vec<TermId> = user.doc.terms().collect();
    MiurEntryView {
        rect: Rect::from_point(user.point),
        child: UserRef::User(user.id),
        count: 1,
        uni: terms.clone(),
        int: terms,
        norm_min: user.norm,
        norm_max: user.norm,
    }
}

/// Aggregates a node's entries into the entry its parent stores for it:
/// bounding MBR, union/intersection of the IntUni vectors, user count and
/// the normalizer bracket — the §7 summary repair that must run along the
/// whole affected root-to-leaf path on every mutation.
fn aggregate_entries(entries: &[MiurEntryView], rec: RecordId) -> MiurEntryView {
    debug_assert!(!entries.is_empty());
    MiurEntryView {
        rect: Rect::bounding_rects(entries.iter().map(|e| e.rect)).expect("non-empty"),
        child: UserRef::Node(rec),
        count: entries.iter().map(|e| e.count).sum(),
        uni: union_sorted(entries.iter().map(|e| e.uni.as_slice())),
        int: intersect_sorted(entries.iter().map(|e| e.int.as_slice())),
        norm_min: entries
            .iter()
            .map(|e| e.norm_min)
            .fold(f64::INFINITY, f64::min),
        norm_max: entries.iter().map(|e| e.norm_max).fold(0.0f64, f64::max),
    }
}

impl MiurTree {
    /// Bulk loads the tree over `users` with the default fanout.
    pub fn build(users: &[IndexedUser]) -> Self {
        Self::build_with_fanout(users, DEFAULT_MAX_ENTRIES)
    }

    /// Bulk loads with an explicit node capacity and the default
    /// ([`CodecId::Verbatim`]) record codec.
    ///
    /// # Panics
    /// Panics when `users` is empty.
    pub fn build_with_fanout(users: &[IndexedUser], fanout: usize) -> Self {
        Self::build_with_fanout_codec(users, fanout, CodecId::default())
    }

    /// Bulk loads with an explicit node capacity and record codec (see
    /// [`crate::StTree::build_with_fanout_codec`]).
    pub fn build_with_fanout_codec(users: &[IndexedUser], fanout: usize, codec: CodecId) -> Self {
        let items: Vec<BuildItem> = users
            .iter()
            .enumerate()
            .map(|(pos, u)| BuildItem {
                id: pos as u32,
                rect: Rect::from_point(u.point),
            })
            .collect();
        let tree = BuildTree::bulk_load(&items, fanout);

        let mut out = MiurTree {
            nodes: BlockFile::with_codec(codec),
            intuni: BlockFile::with_codec(codec),
            root: RecordId(0),
            height: tree.height,
            num_users: users.len(),
            fanout,
            codec,
        };

        // build index -> the entry the parent stores for that node.
        let mut done: std::collections::HashMap<usize, MiurEntryView> =
            std::collections::HashMap::new();
        let mut order: Vec<usize> = (0..tree.nodes.len()).collect();
        order.sort_by_key(|&n| tree.nodes[n].level);
        let mut scratch = TreeEdit::default();

        for n in order {
            let node = &tree.nodes[n];
            let entries: Vec<MiurEntryView> = if node.is_leaf() {
                node.items
                    .iter()
                    .map(|&pos| leaf_entry(&users[items[pos].id as usize]))
                    .collect()
            } else {
                node.children.iter().map(|&c| done[&c].clone()).collect()
            };
            let rec = out.write_node(node.is_leaf(), &entries, &mut scratch);
            done.insert(n, aggregate_entries(&entries, rec));
        }

        let UserRef::Node(root) = done[&tree.root].child else {
            unreachable!()
        };
        out.root = root;
        out
    }

    /// Inserts one user into the disk-resident tree: least-enlargement
    /// descent to a leaf, quadratic splits on overflow, and repair of
    /// every IntUni vector, user count and normalizer bracket along the
    /// affected root-to-leaf path. Copy-on-write like [`crate::StTree`]:
    /// superseded records are freed and their page-cache keys reported in
    /// the returned [`TreeEdit`].
    pub fn insert(&mut self, user: &IndexedUser) -> TreeEdit {
        let mut edit = TreeEdit::default();
        let rect = Rect::from_point(user.point);
        let mut path: Vec<(MiurNodeView, usize)> = Vec::new();
        let mut current = self.read_node_tracked(self.root, &mut edit);
        while !current.is_leaf {
            let best = current
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.rect
                        .enlargement(&rect)
                        .total_cmp(&b.rect.enlargement(&rect))
                        .then(a.rect.area().total_cmp(&b.rect.area()))
                })
                .map(|(i, _)| i)
                .expect("inner node with no entries");
            let UserRef::Node(next) = current.entries[best].child else {
                unreachable!("inner entries reference nodes")
            };
            path.push((current, best));
            current = self.read_node_tracked(next, &mut edit);
        }

        let mut entries = current.entries.clone();
        entries.push(leaf_entry(user));
        self.num_users += 1;
        self.retire(&current, &mut edit);

        let mut carry = self.write_level(true, entries, &mut edit);
        for (node, child_idx) in path.into_iter().rev() {
            let mut entries = node.entries.clone();
            let prior_iu = self.intuni.get(self.intuni_of(node.id)).to_vec();
            self.retire(&node, &mut edit);
            let (first, rest) = carry.split_first().expect("at least one child");
            entries[child_idx] = first.clone();
            entries.extend(rest.iter().cloned());
            carry = self.write_level_reusing(false, entries, Some(&prior_iu), &mut edit);
        }

        if carry.len() == 1 {
            let UserRef::Node(rec) = carry[0].child else {
                unreachable!()
            };
            self.root = rec;
        } else {
            let top = self.write_level(false, carry, &mut edit);
            assert_eq!(top.len(), 1, "root split produces one new root");
            let UserRef::Node(rec) = top[0].child else {
                unreachable!()
            };
            self.root = rec;
            self.height += 1;
        }
        edit
    }

    /// Removes a user from the tree (CondenseTree, mirroring
    /// [`crate::StTree::remove`]): underflowing nodes dissolve and their
    /// surviving users are reinserted; a root with a single inner child
    /// collapses. Returns `None` when no entry with that id exists at that
    /// location.
    pub fn remove(&mut self, id: u32, point: Point) -> Option<TreeEdit> {
        let mut edit = TreeEdit::default();
        let rect = Rect::from_point(point);
        let mut path: Vec<(MiurNodeView, usize)> = Vec::new();
        let leaf = self.find_leaf(self.root, id, &rect, &mut path, &mut edit)?;

        let pos = leaf
            .entries
            .iter()
            .position(|e| e.child == UserRef::User(id))
            .expect("find_leaf verified membership");
        let mut entries = leaf.entries.clone();
        entries.remove(pos);
        self.num_users -= 1;
        self.retire(&leaf, &mut edit);

        // Underflow threshold below the split fill (see the StTree remove
        // docs): a freshly split node survives a following delete.
        let min_fill = (self.fanout / 4).max(1);
        let mut orphans: Vec<IndexedUser> = Vec::new();
        let mut carry: Option<MiurEntryView> = None;
        if entries.len() >= min_fill || path.is_empty() {
            if entries.is_empty() {
                self.write_empty_root(&mut edit);
                return Some(edit);
            }
            let written = self.write_level(true, entries, &mut edit);
            carry = Some(written.into_iter().next().expect("no split on delete"));
        } else {
            // Leaf entries carry the exact per-user summary (uni == the
            // user's keyword set, norm_min == norm_max == N(u)), so the
            // orphans reconstruct losslessly.
            for e in &entries {
                let UserRef::User(uid) = e.child else {
                    unreachable!()
                };
                orphans.push(IndexedUser {
                    id: uid,
                    point: e.rect.min,
                    doc: Document::from_terms(e.uni.iter().copied()),
                    norm: e.norm_min,
                });
            }
        }

        for (node, child_idx) in path.into_iter().rev() {
            let mut entries = node.entries.clone();
            let prior_iu = self.intuni.get(self.intuni_of(node.id)).to_vec();
            self.retire(&node, &mut edit);
            match carry.take() {
                Some(entry) => entries[child_idx] = entry,
                None => {
                    entries.remove(child_idx);
                }
            }
            if entries.is_empty() {
                continue; // dissolve this node too
            }
            let written = self.write_level_reusing(false, entries, Some(&prior_iu), &mut edit);
            carry = Some(written.into_iter().next().expect("no split on delete"));
        }

        match carry {
            Some(entry) => {
                let UserRef::Node(rec) = entry.child else {
                    unreachable!()
                };
                self.root = rec;
                loop {
                    let root = self.read_node_tracked(self.root, &mut edit);
                    if root.is_leaf || root.entries.len() > 1 {
                        break;
                    }
                    let UserRef::Node(only) = root.entries[0].child else {
                        unreachable!()
                    };
                    self.retire(&root, &mut edit);
                    self.root = only;
                    self.height -= 1;
                }
            }
            None => self.write_empty_root(&mut edit),
        }

        self.num_users -= orphans.len();
        for u in &orphans {
            let sub = self.insert(u);
            edit.absorb(sub);
        }
        Some(edit)
    }

    /// Depth-first search for the leaf holding `(id, rect)`.
    fn find_leaf(
        &self,
        node_rec: RecordId,
        id: u32,
        rect: &Rect,
        path: &mut Vec<(MiurNodeView, usize)>,
        edit: &mut TreeEdit,
    ) -> Option<MiurNodeView> {
        let node = self.read_node_tracked(node_rec, edit);
        if node.is_leaf {
            if node.entries.iter().any(|e| e.child == UserRef::User(id)) {
                return Some(node);
            }
            return None;
        }
        for (i, e) in node.entries.iter().enumerate() {
            if let UserRef::Node(c) = e.child {
                if e.rect.intersects(rect) {
                    path.push((node.clone(), i));
                    if let Some(found) = self.find_leaf(c, id, rect, path, edit) {
                        return Some(found);
                    }
                    path.pop();
                }
            }
        }
        None
    }

    /// Serializes one (possibly overfull) node level, splitting when
    /// needed. Returns the parent entries of the written node(s).
    fn write_level(
        &mut self,
        is_leaf: bool,
        entries: Vec<MiurEntryView>,
        edit: &mut TreeEdit,
    ) -> Vec<MiurEntryView> {
        self.write_level_reusing(is_leaf, entries, None, edit)
    }

    /// [`MiurTree::write_level`] with the retired node's IntUni payload:
    /// when the rewritten node's IntUni bytes come out identical (user
    /// counts live in the *node* record, so a pure count/child repair
    /// leaves the summary payload untouched), the payload write is an
    /// extent splice and charges no simulated payload I/O. Reuse only
    /// applies when the level does not split.
    fn write_level_reusing(
        &mut self,
        is_leaf: bool,
        entries: Vec<MiurEntryView>,
        prior_iu: Option<&[u8]>,
        edit: &mut TreeEdit,
    ) -> Vec<MiurEntryView> {
        let groups: Vec<Vec<usize>> = if entries.len() <= self.fanout {
            vec![(0..entries.len()).collect()]
        } else {
            let rects: Vec<Rect> = entries.iter().map(|e| e.rect).collect();
            let (a, b) = quadratic_partition(&rects, self.fanout / 2);
            vec![a, b]
        };
        let reuse = if groups.len() == 1 { prior_iu } else { None };
        groups
            .into_iter()
            .map(|group| {
                let g_entries: Vec<MiurEntryView> =
                    group.iter().map(|&i| entries[i].clone()).collect();
                let rec = self.write_node_reusing(is_leaf, &g_entries, reuse, edit);
                aggregate_entries(&g_entries, rec)
            })
            .collect()
    }

    /// Serializes one node (IntUni record first, then the node record).
    fn write_node(
        &mut self,
        is_leaf: bool,
        entries: &[MiurEntryView],
        edit: &mut TreeEdit,
    ) -> RecordId {
        self.write_node_reusing(is_leaf, entries, None, edit)
    }

    /// [`MiurTree::write_node`], spliced for free when the IntUni payload
    /// matches `prior_iu` (see [`MiurTree::write_level_reusing`]).
    fn write_node_reusing(
        &mut self,
        is_leaf: bool,
        entries: &[MiurEntryView],
        prior_iu: Option<&[u8]>,
        edit: &mut TreeEdit,
    ) -> RecordId {
        let iu_payload = serialize_intuni(entries, self.codec);
        if prior_iu != Some(iu_payload.as_slice()) {
            edit.payload_blocks += storage::blocks_for(iu_payload.len());
        }
        let iu_rec = self.intuni.put(&iu_payload);
        edit.node_writes += 1;
        self.put_node_record(is_leaf, iu_rec, entries)
    }

    /// Appends the node half of one node record (the IntUni payload must
    /// already be stored under `iu_rec`).
    fn put_node_record(
        &mut self,
        is_leaf: bool,
        iu_rec: RecordId,
        entries: &[MiurEntryView],
    ) -> RecordId {
        self.nodes
            .put(&serialize_miur_node(is_leaf, iu_rec, entries, self.codec))
    }

    /// Frees a superseded node and its IntUni record.
    fn retire(&mut self, node: &MiurNodeView, edit: &mut TreeEdit) {
        let iu_rec = self.intuni_of(node.id);
        edit.stale_keys.push(miur_node_key(node.id));
        edit.stale_keys.push(miur_intuni_key(iu_rec));
        self.nodes.free(node.id);
        self.intuni.free(iu_rec);
    }

    /// The IntUni record a node record points at.
    fn intuni_of(&self, id: RecordId) -> RecordId {
        let mut r = Reader::new(self.nodes.get(id));
        r.get_u8();
        match self.codec {
            CodecId::Verbatim => RecordId(r.get_u32()),
            CodecId::Columnar => RecordId(r.get_varint_u32()),
        }
    }

    /// Installs an empty leaf root (the tree just lost its last user).
    fn write_empty_root(&mut self, edit: &mut TreeEdit) {
        self.root = self.write_node(true, &[], edit);
        self.height = 1;
    }

    /// Persists the tree to `dir` (`nodes.mbrs`, `intuni.mbrs`,
    /// `meta.mbrs`); creates the directory when missing. As with
    /// [`crate::StTree::save`], freed records persist as empty
    /// placeholders.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        storage::save_blockfile(&self.nodes, &dir.join("nodes.mbrs"))?;
        storage::save_blockfile(&self.intuni, &dir.join("intuni.mbrs"))?;
        let mut w = Writer::new();
        w.put_u32(self.root.0);
        w.put_u32(self.height);
        w.put_u64(self.num_users as u64);
        w.put_u32(self.fanout as u32);
        std::fs::write(dir.join("meta.mbrs"), w.into_bytes())
    }

    /// Reopens a tree saved by [`MiurTree::save`].
    pub fn load(dir: &std::path::Path) -> std::io::Result<Self> {
        let nodes = storage::load_blockfile(&dir.join("nodes.mbrs"))?;
        let intuni = storage::load_blockfile(&dir.join("intuni.mbrs"))?;
        let meta = std::fs::read(dir.join("meta.mbrs"))?;
        let mut r = Reader::new(&meta);
        let codec = nodes.codec();
        Ok(MiurTree {
            nodes,
            intuni,
            root: RecordId(r.get_u32()),
            height: r.get_u32(),
            num_users: r.get_u64() as usize,
            fanout: r.get_u32() as usize,
            codec,
        })
    }

    /// The record codec this tree's block files are encoded with.
    #[inline]
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// Record id of the root.
    #[inline]
    pub fn root(&self) -> RecordId {
        self.root
    }

    /// Tree height (1 = root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Node capacity used during construction.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Total bytes of live node records.
    pub fn node_bytes(&self) -> u64 {
        self.nodes.bytes()
    }

    /// Total bytes of live IntUni records.
    pub fn intuni_bytes(&self) -> u64 {
        self.intuni.bytes()
    }

    /// Byte footprint the live tree would occupy under the
    /// [`CodecId::Verbatim`] codec (see [`crate::StTree::logical_bytes`]).
    pub fn logical_bytes(&self) -> u64 {
        if self.codec == CodecId::Verbatim {
            return self.node_bytes() + self.intuni_bytes();
        }
        let mut total = 0u64;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let (node, iu_rec, _) = self.parse_node(id);
            total += serialize_miur_node(node.is_leaf, iu_rec, &node.entries, CodecId::Verbatim)
                .len() as u64;
            total += serialize_intuni(&node.entries, CodecId::Verbatim).len() as u64;
            for e in &node.entries {
                if let UserRef::Node(c) = e.child {
                    stack.push(c);
                }
            }
        }
        total
    }

    /// Simulated I/O to write the whole live tree from scratch (see
    /// [`crate::StTree::footprint_io`]).
    pub fn footprint_io(&self) -> u64 {
        self.nodes.live_records() as u64 + self.intuni.live_payload_blocks()
    }

    /// Freed placeholder record slots across both block files (see
    /// [`crate::StTree::freed_records`]).
    pub fn freed_records(&self) -> u64 {
        (self.nodes.freed_records() + self.intuni.freed_records()) as u64
    }

    /// Rewrites the live tree into fresh block files with densely packed
    /// record ids, dropping the freed placeholder slots left behind by
    /// mutations (see [`crate::StTree::compacted`]).
    pub fn compacted(&self) -> MiurTree {
        let mut out = MiurTree {
            nodes: BlockFile::with_codec(self.codec),
            intuni: BlockFile::with_codec(self.codec),
            root: RecordId(0),
            height: self.height,
            num_users: self.num_users,
            fanout: self.fanout,
            codec: self.codec,
        };
        let mut scratch = TreeEdit::default();
        out.root = out.adopt_subtree(self, self.root, &mut scratch);
        out
    }

    /// Copies one subtree of `src` into this (fresh) tree, children first
    /// so parent entries can point at the remapped record ids. The IntUni
    /// payload is re-serialized from the parsed view, which reproduces the
    /// source bytes exactly (the layout is deterministic in the entries).
    fn adopt_subtree(&mut self, src: &MiurTree, rec: RecordId, scratch: &mut TreeEdit) -> RecordId {
        let (node, _, _) = src.parse_node(rec);
        let entries: Vec<MiurEntryView> = node
            .entries
            .iter()
            .map(|e| {
                let mut e = e.clone();
                if let UserRef::Node(c) = e.child {
                    e.child = UserRef::Node(self.adopt_subtree(src, c, scratch));
                }
                e
            })
            .collect();
        self.write_node(node.is_leaf, &entries, scratch)
    }

    /// [`MiurTree::save`] of a [`MiurTree::compacted`] copy: freed
    /// placeholder records are reclaimed instead of persisting as empty
    /// slots.
    pub fn save_compacted(&self, dir: &std::path::Path) -> std::io::Result<()> {
        self.compacted().save(dir)
    }

    /// Bulk re-norm splice — the MIUR half of the two-tier incremental
    /// corpus refresh (see [`crate::StTree::splice_reweighed`]).
    ///
    /// A corpus refresh changes user *normalizers* `N(u)` (they sum the
    /// scorer's per-term maxima) but never locations, keyword sets or
    /// counts, so only the `norm_min`/`norm_max` brackets along
    /// root-to-leaf paths containing a re-normed user need repair. Every
    /// untouched subtree's records are copied verbatim into the fresh
    /// block files and charged no simulated I/O; rewritten paths pay
    /// their reads and writes, and ancestors whose bracket is unchanged
    /// by the repair splice their IntUni records untouched.
    pub fn splice_reweighed(
        &self,
        renormed: &std::collections::HashMap<u32, f64>,
    ) -> (MiurTree, SpliceReport) {
        let mut out = MiurTree {
            nodes: BlockFile::with_codec(self.codec),
            intuni: BlockFile::with_codec(self.codec),
            root: RecordId(0),
            height: self.height,
            num_users: self.num_users,
            fanout: self.fanout,
            codec: self.codec,
        };
        let mut report = SpliceReport::default();
        let (root, _) = out.splice_sub(self, self.root, renormed, &mut report);
        out.root = root;
        (out, report)
    }

    /// Recursive worker of [`MiurTree::splice_reweighed`]: copies or
    /// rewrites the subtree under `rec` (of `src`) into `self`, children
    /// first. Returns the new record id and, when the subtree's
    /// parent-visible summary changed, the new parent entry.
    fn splice_sub(
        &mut self,
        src: &MiurTree,
        rec: RecordId,
        renormed: &std::collections::HashMap<u32, f64>,
        report: &mut SpliceReport,
    ) -> (RecordId, Option<MiurEntryView>) {
        let (node, iu_rec, iu_bytes) = src.parse_node(rec);
        let old_summary = (!node.entries.is_empty()).then(|| aggregate_entries(&node.entries, rec));

        if node.is_leaf {
            let mut entries = node.entries.clone();
            let mut touched = 0u64;
            for e in &mut entries {
                let UserRef::User(id) = e.child else {
                    unreachable!("leaf entries reference users")
                };
                if let Some(&norm) = renormed.get(&id) {
                    e.norm_min = norm;
                    e.norm_max = norm;
                    touched += 1;
                }
            }
            if touched == 0 {
                let rec = self.copy_spliced(src, &node, entries, iu_rec, report);
                return (rec, None);
            }
            report.reweighed_entries += touched;
            report.edit.read_ios += 1 + storage::blocks_for(iu_bytes);
            let new_rec = self.write_spliced(true, &entries, report);
            let new_summary = aggregate_entries(&entries, new_rec);
            let changed = old_summary
                .as_ref()
                .is_none_or(|old| !summary_unchanged(old, &new_summary));
            return (new_rec, changed.then_some(new_summary));
        }

        // Inner node: splice every child first.
        let mut entries = node.entries.clone();
        let mut any_changed = false;
        for e in &mut entries {
            let UserRef::Node(c) = e.child else {
                unreachable!("inner entries reference nodes")
            };
            let (new_child, changed) = self.splice_sub(src, c, renormed, report);
            match changed {
                Some(mut summary) => {
                    summary.child = UserRef::Node(new_child);
                    *e = summary;
                    any_changed = true;
                }
                None => e.child = UserRef::Node(new_child),
            }
        }
        if !any_changed {
            let rec = self.copy_spliced(src, &node, entries, iu_rec, report);
            return (rec, None);
        }
        report.edit.read_ios += 1 + storage::blocks_for(iu_bytes);
        let new_rec = self.write_spliced(false, &entries, report);
        let new_summary = aggregate_entries(&entries, new_rec);
        let changed = old_summary
            .as_ref()
            .is_none_or(|old| !summary_unchanged(old, &new_summary));
        (new_rec, changed.then_some(new_summary))
    }

    /// Verbatim splice of one node: IntUni payload copied byte-for-byte,
    /// node record re-emitted with remapped record ids only. Charged no
    /// simulated I/O (extent remap; see [`SpliceReport`]).
    fn copy_spliced(
        &mut self,
        src: &MiurTree,
        node: &MiurNodeView,
        entries: Vec<MiurEntryView>,
        iu_rec: RecordId,
        report: &mut SpliceReport,
    ) -> RecordId {
        debug_assert_eq!(self.codec, src.codec, "cross-codec splice");
        let iu = self.intuni.put(src.intuni.get(iu_rec));
        report.spliced_records += 2;
        self.put_node_record(node.is_leaf, iu, &entries)
    }

    /// Writes one rewritten node, charging the splice report.
    fn write_spliced(
        &mut self,
        is_leaf: bool,
        entries: &[MiurEntryView],
        report: &mut SpliceReport,
    ) -> RecordId {
        let payload = serialize_intuni(entries, self.codec);
        report.edit.payload_blocks += storage::blocks_for(payload.len());
        let iu = self.intuni.put(&payload);
        report.edit.node_writes += 1;
        self.put_node_record(is_leaf, iu, entries)
    }

    /// Reads a node with its IntUni vectors, charging one node visit plus
    /// the IntUni file's blocks (the paper's inverted-file rule applies to
    /// the textual payload of the node). Owned convenience over
    /// [`MiurTree::read_node_ref`].
    pub fn read_node(&self, id: RecordId, io: &IoStats) -> MiurNodeView {
        let mut scratch = MiurScratch::default();
        self.read_node_ref(id, io, &mut scratch).to_owned_view()
    }

    /// Reads a node into `scratch`, charging exactly like
    /// [`MiurTree::read_node`]. The returned view borrows the scratch
    /// entries; slots are cleared, not freed, between reads.
    pub fn read_node_ref<'a>(
        &self,
        id: RecordId,
        io: &IoStats,
        scratch: &'a mut MiurScratch,
    ) -> MiurNodeRef<'a> {
        io.charge_node_visit_keyed(miur_node_key(id));
        let (iu_rec, iu_bytes) = self.parse_node_into(id, scratch);
        io.charge_invfile_keyed(miur_intuni_key(iu_rec), iu_bytes);
        MiurNodeRef {
            id,
            is_leaf: scratch.is_leaf,
            entries: &scratch.entries[..scratch.live],
        }
    }

    /// Reads a node on the maintenance path (no [`IoStats`] charge; the
    /// cost lands in the edit's counters).
    fn read_node_tracked(&self, id: RecordId, edit: &mut TreeEdit) -> MiurNodeView {
        let (view, _, iu_bytes) = self.parse_node(id);
        edit.read_ios += 1 + storage::blocks_for(iu_bytes);
        view
    }

    /// Owned-view wrapper around [`MiurTree::parse_node_into`].
    fn parse_node(&self, id: RecordId) -> (MiurNodeView, RecordId, usize) {
        let mut scratch = MiurScratch::default();
        let (iu_rec, iu_bytes) = self.parse_node_into(id, &mut scratch);
        (
            MiurNodeView {
                id,
                is_leaf: scratch.is_leaf,
                entries: scratch.entries[..scratch.live].to_vec(),
            },
            iu_rec,
            iu_bytes,
        )
    }

    /// Deserializes a node and its IntUni payload into `scratch` slots.
    ///
    /// Verbatim interleaves the two readers row by row; Columnar decodes
    /// each column in full (ids, rect coordinate columns, counts, then the
    /// IntUni columns) and zips the rows together at the end.
    fn parse_node_into(&self, id: RecordId, scratch: &mut MiurScratch) -> (RecordId, usize) {
        let payload = self.nodes.record_bytes(id);
        let mut r = Reader::new(payload);
        let is_leaf = r.get_u8() != 0;
        scratch.is_leaf = is_leaf;
        let (iu_rec, iu_bytes);
        match self.codec {
            CodecId::Verbatim => {
                iu_rec = RecordId(r.get_u32());
                let n = r.get_u32() as usize;
                scratch.reset_entries(n);

                let iu_payload = self.intuni.record_bytes(iu_rec);
                iu_bytes = iu_payload.len();
                let mut iu = Reader::new(iu_payload);

                for e in &mut scratch.entries[..n] {
                    let raw = r.get_u32();
                    e.rect = Rect::new(
                        Point::new(r.get_f64(), r.get_f64()),
                        Point::new(r.get_f64(), r.get_f64()),
                    );
                    e.count = r.get_u32();
                    e.child = if is_leaf {
                        UserRef::User(raw)
                    } else {
                        UserRef::Node(RecordId(raw))
                    };
                    let n_uni = iu.get_u32() as usize;
                    e.uni.extend((0..n_uni).map(|_| TermId(iu.get_u32())));
                    let n_int = iu.get_u32() as usize;
                    e.int.extend((0..n_int).map(|_| TermId(iu.get_u32())));
                    e.norm_min = iu.get_f64();
                    e.norm_max = iu.get_f64();
                }
                debug_assert!(r.is_exhausted() && iu.is_exhausted());
            }
            CodecId::Columnar => {
                let c = storage::codec(self.codec);
                iu_rec = RecordId(r.get_varint_u32());
                let n = r.get_varint_u32() as usize;
                scratch.reset_entries(n);
                let MiurScratch {
                    entries,
                    ids,
                    min_x,
                    min_y,
                    max_x,
                    max_y,
                    counts,
                    uni_lens,
                    int_lens,
                    uni_terms,
                    int_terms,
                    norm_min,
                    norm_max,
                    ..
                } = scratch;
                ids.clear();
                min_x.clear();
                min_y.clear();
                max_x.clear();
                max_y.clear();
                counts.clear();
                uni_lens.clear();
                int_lens.clear();
                uni_terms.clear();
                int_terms.clear();
                norm_min.clear();
                norm_max.clear();
                c.get_clustered_u32s(&mut r, n, ids);
                c.get_f64s(&mut r, n, min_x);
                c.get_f64s(&mut r, n, min_y);
                c.get_f64s_vs(&mut r, n, min_x, max_x);
                c.get_f64s_vs(&mut r, n, min_y, max_y);
                c.get_packed_u32s(&mut r, n, counts);

                let iu_payload = self.intuni.record_bytes(iu_rec);
                iu_bytes = iu_payload.len();
                let mut iu = Reader::new(iu_payload);
                c.get_packed_u32s(&mut iu, n, uni_lens);
                c.get_packed_u32s(&mut iu, n, int_lens);
                c.get_clustered_u32s(
                    &mut iu,
                    uni_lens.iter().map(|&l| l as usize).sum(),
                    uni_terms,
                );
                c.get_clustered_u32s(
                    &mut iu,
                    int_lens.iter().map(|&l| l as usize).sum(),
                    int_terms,
                );
                c.get_f64s(&mut iu, n, norm_min);
                c.get_f64s_vs(&mut iu, n, norm_min, norm_max);

                let (mut u_off, mut i_off) = (0usize, 0usize);
                for (i, e) in entries[..n].iter_mut().enumerate() {
                    let (lu, li) = (uni_lens[i] as usize, int_lens[i] as usize);
                    e.rect = Rect::new(
                        Point::new(min_x[i], min_y[i]),
                        Point::new(max_x[i], max_y[i]),
                    );
                    e.child = if is_leaf {
                        UserRef::User(ids[i])
                    } else {
                        UserRef::Node(RecordId(ids[i]))
                    };
                    e.count = counts[i];
                    e.uni
                        .extend(uni_terms[u_off..u_off + lu].iter().map(|&t| TermId(t)));
                    e.int
                        .extend(int_terms[i_off..i_off + li].iter().map(|&t| TermId(t)));
                    e.norm_min = norm_min[i];
                    e.norm_max = norm_max[i];
                    u_off += lu;
                    i_off += li;
                }
                debug_assert!(r.is_exhausted() && iu.is_exhausted());
            }
        }
        (iu_rec, iu_bytes)
    }
}

/// Serializes the node half of one node record (the spatial/count columns;
/// the summary vectors live in the IntUni record under `iu_rec`).
fn serialize_miur_node(
    is_leaf: bool,
    iu_rec: RecordId,
    entries: &[MiurEntryView],
    codec: CodecId,
) -> Vec<u8> {
    let ref_id = |e: &MiurEntryView| match e.child {
        UserRef::Node(rid) => rid.0,
        UserRef::User(uid) => uid,
    };
    match codec {
        CodecId::Verbatim => {
            let mut w = Writer::new();
            w.put_u8(u8::from(is_leaf));
            w.put_u32(iu_rec.0);
            w.put_u32(entries.len() as u32);
            for e in entries {
                w.put_u32(ref_id(e));
                w.put_f64(e.rect.min.x);
                w.put_f64(e.rect.min.y);
                w.put_f64(e.rect.max.x);
                w.put_f64(e.rect.max.y);
                w.put_u32(e.count);
            }
            w.into_bytes()
        }
        CodecId::Columnar => {
            let c = storage::codec(codec);
            let mut w = Writer::new();
            w.put_u8(u8::from(is_leaf));
            w.put_varint_u32(iu_rec.0);
            w.put_varint_u32(entries.len() as u32);
            let ids: Vec<u32> = entries.iter().map(ref_id).collect();
            c.put_clustered_u32s(&mut w, &ids);
            let col =
                |f: fn(&Rect) -> f64| entries.iter().map(|e| f(&e.rect)).collect::<Vec<f64>>();
            let (min_x, min_y) = (col(|r| r.min.x), col(|r| r.min.y));
            c.put_f64s(&mut w, &min_x);
            c.put_f64s(&mut w, &min_y);
            c.put_f64s_vs(&mut w, &col(|r| r.max.x), &min_x);
            c.put_f64s_vs(&mut w, &col(|r| r.max.y), &min_y);
            let counts: Vec<u32> = entries.iter().map(|e| e.count).collect();
            c.put_packed_u32s(&mut w, &counts);
            w.into_bytes()
        }
    }
}

/// Serializes the IntUni half of one node (layout deterministic in the
/// entries, so re-serializing a parsed node reproduces its bytes exactly).
///
/// The Columnar layout stores the vector lengths bit-packed, both term
/// columns as one zigzag-delta run each (terms ascend within an entry, so
/// only entry boundaries cost a sign flip), and the norm bracket as an
/// XOR-prev column plus an XOR-vs-min column — leaf brackets have
/// `norm_min == norm_max` and collapse to one byte per entry.
fn serialize_intuni(entries: &[MiurEntryView], codec: CodecId) -> Vec<u8> {
    match codec {
        CodecId::Verbatim => {
            let mut w = Writer::new();
            for e in entries {
                w.put_u32(e.uni.len() as u32);
                for &t in &e.uni {
                    w.put_u32(t.0);
                }
                w.put_u32(e.int.len() as u32);
                for &t in &e.int {
                    w.put_u32(t.0);
                }
                w.put_f64(e.norm_min);
                w.put_f64(e.norm_max);
            }
            w.into_bytes()
        }
        CodecId::Columnar => {
            let c = storage::codec(codec);
            let mut w = Writer::new();
            let uni_lens: Vec<u32> = entries.iter().map(|e| e.uni.len() as u32).collect();
            let int_lens: Vec<u32> = entries.iter().map(|e| e.int.len() as u32).collect();
            c.put_packed_u32s(&mut w, &uni_lens);
            c.put_packed_u32s(&mut w, &int_lens);
            let uni_terms: Vec<u32> = entries
                .iter()
                .flat_map(|e| e.uni.iter().map(|t| t.0))
                .collect();
            c.put_clustered_u32s(&mut w, &uni_terms);
            let int_terms: Vec<u32> = entries
                .iter()
                .flat_map(|e| e.int.iter().map(|t| t.0))
                .collect();
            c.put_clustered_u32s(&mut w, &int_terms);
            let norm_min: Vec<f64> = entries.iter().map(|e| e.norm_min).collect();
            c.put_f64s(&mut w, &norm_min);
            let norm_max: Vec<f64> = entries.iter().map(|e| e.norm_max).collect();
            c.put_f64s_vs(&mut w, &norm_max, &norm_min);
            w.into_bytes()
        }
    }
}

/// True when two parent-entry summaries agree on everything a parent
/// stores *about* the child (MBR, count, IntUni vectors, norm bracket) —
/// the child record id is expected to differ across a splice and is
/// deliberately not compared.
fn summary_unchanged(a: &MiurEntryView, b: &MiurEntryView) -> bool {
    a.rect == b.rect
        && a.count == b.count
        && a.uni == b.uni
        && a.int == b.int
        && a.norm_min == b.norm_min
        && a.norm_max == b.norm_max
}

/// Union of ascending term slices, ascending output.
fn union_sorted<'a>(lists: impl Iterator<Item = &'a [TermId]>) -> Vec<TermId> {
    let mut all: Vec<TermId> = lists.flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Intersection of ascending term slices, ascending output.
fn intersect_sorted<'a>(mut lists: impl Iterator<Item = &'a [TermId]>) -> Vec<TermId> {
    let Some(first) = lists.next() else {
        return Vec::new();
    };
    let mut acc: Vec<TermId> = first.to_vec();
    for list in lists {
        let mut next = Vec::with_capacity(acc.len().min(list.len()));
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < list.len() {
            match acc[i].cmp(&list[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    next.push(acc[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc = next;
        if acc.is_empty() {
            break;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// 12 users; everyone has term 0, user i also has term 1 + i % 3.
    fn users() -> Vec<IndexedUser> {
        (0..12)
            .map(|i| IndexedUser {
                id: i,
                point: Point::new(f64::from(i), f64::from(i % 4)),
                doc: Document::from_terms([t(0), t(1 + i % 3)]),
                norm: 2.0,
            })
            .collect()
    }

    fn gather_users(tree: &MiurTree, io: &IoStats) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, io);
            for e in &node.entries {
                match e.child {
                    UserRef::Node(c) => stack.push(c),
                    UserRef::User(u) => out.push(u),
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn all_users_present() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        assert_eq!(gather_users(&tree, &io), (0..12).collect::<Vec<_>>());
        assert_eq!(tree.num_users(), 12);
    }

    /// Compaction after churn drops every freed placeholder while keeping
    /// users, byte footprint and summaries identical; the compacted save
    /// reclaims the slots on disk.
    #[test]
    fn compacted_drops_placeholders_and_preserves_users() {
        let us = users();
        let mut tree = MiurTree::build_with_fanout(&us[..6], 4);
        for u in &us[6..] {
            tree.insert(u);
        }
        for u in &us[..4] {
            tree.remove(u.id, u.point).unwrap();
        }
        assert!(tree.freed_records() > 0);

        let compact = tree.compacted();
        assert_eq!(compact.freed_records(), 0);
        assert_eq!(compact.num_users(), tree.num_users());
        assert_eq!(compact.height(), tree.height());
        assert_eq!(compact.node_bytes(), tree.node_bytes());
        assert_eq!(compact.intuni_bytes(), tree.intuni_bytes());
        let io = IoStats::new();
        assert_eq!(gather_users(&compact, &io), gather_users(&tree, &io));
        // Root summaries (counts, IntUni, norm bracket) survive verbatim.
        let a = tree.read_node(tree.root(), &io);
        let b = compact.read_node(compact.root(), &io);
        let summarize = |n: &MiurNodeView| {
            let mut rows: Vec<_> = n
                .entries
                .iter()
                .map(|e| {
                    (
                        e.count,
                        e.uni.clone(),
                        e.int.clone(),
                        e.norm_min,
                        e.norm_max,
                    )
                })
                .collect();
            rows.sort_by(|x, y| x.partial_cmp(y).unwrap());
            rows
        };
        assert_eq!(summarize(&a), summarize(&b));

        let base = std::env::temp_dir().join(format!("mbrstk-miur-compact-{}", std::process::id()));
        tree.save(&base.join("plain")).unwrap();
        tree.save_compacted(&base.join("compact")).unwrap();
        let plain = MiurTree::load(&base.join("plain")).unwrap();
        let reopened = MiurTree::load(&base.join("compact")).unwrap();
        assert!(reopened.nodes.len() < plain.nodes.len());
        assert_eq!(gather_users(&reopened, &io), gather_users(&tree, &io));
        std::fs::remove_dir_all(base).ok();
    }

    #[test]
    fn counts_sum_to_subtree_sizes() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        let root = tree.read_node(tree.root(), &io);
        let total: u32 = root.entries.iter().map(|e| e.count).sum();
        assert_eq!(total, 12);
    }

    /// The IntUni invariant: a node entry's union ⊇ every descendant's
    /// keywords and its intersection ⊆ every descendant's keywords.
    #[test]
    fn intuni_vectors_bound_descendants() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();

        fn descendants(tree: &MiurTree, id: RecordId, io: &IoStats) -> Vec<u32> {
            let node = tree.read_node(id, io);
            let mut out = Vec::new();
            for e in &node.entries {
                match e.child {
                    UserRef::User(u) => out.push(u),
                    UserRef::Node(c) => out.extend(descendants(tree, c, io)),
                }
            }
            out
        }

        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            for e in &node.entries {
                let descs = match e.child {
                    UserRef::User(u) => vec![u],
                    UserRef::Node(c) => {
                        stack.push(c);
                        descendants(&tree, c, &io)
                    }
                };
                assert_eq!(descs.len(), e.count as usize);
                for d in descs {
                    let doc = &us[d as usize].doc;
                    for term in doc.terms() {
                        assert!(e.uni.contains(&term), "union misses a descendant term");
                    }
                    for &term in &e.int {
                        assert!(doc.contains(term), "intersection has a non-shared term");
                    }
                }
            }
        }
    }

    #[test]
    fn shared_term_survives_to_root() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        // Everyone has t0, so every entry's intersection contains it.
        let root = tree.read_node(tree.root(), &io);
        for e in &root.entries {
            assert!(e.int.contains(&t(0)));
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let dir = std::env::temp_dir().join(format!("mbrstk-miur-{}", std::process::id()));
        tree.save(&dir).unwrap();
        let loaded = MiurTree::load(&dir).unwrap();
        assert_eq!(loaded.root(), tree.root());
        assert_eq!(loaded.num_users(), tree.num_users());
        let io = IoStats::new();
        assert_eq!(gather_users(&loaded, &io), (0..12).collect::<Vec<_>>());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn io_charged_per_node() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        tree.read_node(tree.root(), &io);
        let snap = io.snapshot();
        assert_eq!(snap.node_visits, 1);
        assert!(snap.invfile_blocks >= 1);
    }

    /// Shared invariant check: every entry's IntUni vectors, count and
    /// normalizer bracket must bound its descendants.
    fn check_intuni_invariants(tree: &MiurTree, us: &[IndexedUser]) {
        let io = IoStats::new();
        fn descendants(tree: &MiurTree, id: RecordId, io: &IoStats) -> Vec<u32> {
            let node = tree.read_node(id, io);
            let mut out = Vec::new();
            for e in &node.entries {
                match e.child {
                    UserRef::User(u) => out.push(u),
                    UserRef::Node(c) => out.extend(descendants(tree, c, io)),
                }
            }
            out
        }
        let by_id = |id: u32| us.iter().find(|u| u.id == id).expect("known user");
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            for e in &node.entries {
                let descs = match e.child {
                    UserRef::User(u) => vec![u],
                    UserRef::Node(c) => {
                        stack.push(c);
                        descendants(tree, c, &io)
                    }
                };
                assert_eq!(descs.len(), e.count as usize, "count repair failed");
                for d in descs {
                    let u = by_id(d);
                    for term in u.doc.terms() {
                        assert!(e.uni.contains(&term), "union misses descendant term");
                    }
                    for &term in &e.int {
                        assert!(u.doc.contains(term), "intersection has non-shared term");
                    }
                    assert!(e.rect.contains_point(&u.point), "MBR containment");
                    assert!(e.norm_min <= u.norm + 1e-12 && u.norm <= e.norm_max + 1e-12);
                }
            }
        }
    }

    /// Incremental insertion repairs counts, IntUni vectors and norm
    /// brackets along every affected path.
    #[test]
    fn dynamic_insert_preserves_invariants() {
        let us = users();
        let mut tree = MiurTree::build_with_fanout(&us[..3], 4);
        for u in &us[3..] {
            let edit = tree.insert(u);
            assert!(edit.io_total() > 0);
            assert!(!edit.stale_keys.is_empty());
        }
        assert_eq!(tree.num_users(), 12);
        let io = IoStats::new();
        assert_eq!(gather_users(&tree, &io), (0..12).collect::<Vec<_>>());
        check_intuni_invariants(&tree, &us);
    }

    /// Removal dissolves underflowing nodes and repairs the summaries; the
    /// survivors stay exactly queryable.
    #[test]
    fn dynamic_remove_preserves_invariants() {
        let us = users();
        let mut tree = MiurTree::build_with_fanout(&us, 4);
        for u in us.iter().filter(|u| u.id % 3 == 0) {
            assert!(tree.remove(u.id, u.point).is_some());
        }
        assert!(tree.remove(0, us[0].point).is_none(), "already gone");
        let survivors: Vec<IndexedUser> = us.iter().filter(|u| u.id % 3 != 0).cloned().collect();
        assert_eq!(tree.num_users(), survivors.len());
        let io = IoStats::new();
        let got = gather_users(&tree, &io);
        assert_eq!(
            got,
            survivors.iter().map(|u| u.id).collect::<Vec<_>>(),
            "surviving user set"
        );
        check_intuni_invariants(&tree, &survivors);
    }

    /// Byte accounting stays live across churn (no append-only drift),
    /// and the height grows and shrinks with the population.
    #[test]
    fn churn_keeps_accounting_live() {
        let us = users();
        let mut tree = MiurTree::build_with_fanout(&us, 4);
        let fresh_bytes = tree.node_bytes() + tree.intuni_bytes();
        for u in &us {
            tree.insert(&IndexedUser {
                id: u.id + 100,
                ..u.clone()
            });
        }
        for u in &us {
            tree.remove(u.id + 100, u.point).unwrap();
        }
        assert_eq!(tree.num_users(), 12);
        let churned = tree.node_bytes() + tree.intuni_bytes();
        assert!(
            churned <= fresh_bytes * 3,
            "churned {churned} vs fresh {fresh_bytes}: accounting drifted"
        );
        assert!(tree.footprint_io() > 0);
    }

    /// The bulk re-norm splice repairs exactly the brackets along touched
    /// paths, splices everything else verbatim (free), and matches a tree
    /// bulk-built from users carrying the new norms.
    #[test]
    fn splice_reweighed_repairs_norm_brackets() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);

        // Re-norm users 2 and 9 (norms move the brackets).
        let renormed: std::collections::HashMap<u32, f64> =
            [(2u32, 5.0f64), (9, 0.5)].into_iter().collect();
        let (spliced, report) = tree.splice_reweighed(&renormed);
        assert_eq!(report.reweighed_entries, 2);
        assert!(report.spliced_records > 0);
        assert!(report.io_total() > 0);
        assert_eq!(spliced.num_users(), tree.num_users());
        assert_eq!(spliced.height(), tree.height());
        assert_eq!(spliced.freed_records(), 0);

        let io = IoStats::new();
        assert_eq!(gather_users(&spliced, &io), gather_users(&tree, &io));

        // Every invariant holds against the re-normed user table.
        let renormed_users: Vec<IndexedUser> = us
            .iter()
            .map(|u| IndexedUser {
                norm: renormed.get(&u.id).copied().unwrap_or(u.norm),
                ..u.clone()
            })
            .collect();
        check_intuni_invariants(&spliced, &renormed_users);
        // And the brackets are *tight*: the repaired leaf entries carry
        // exactly the new norms.
        let mut stack = vec![spliced.root()];
        while let Some(id) = stack.pop() {
            let node = spliced.read_node(id, &io);
            for e in &node.entries {
                match e.child {
                    UserRef::Node(c) => stack.push(c),
                    UserRef::User(u) => {
                        let want = renormed.get(&u).copied().unwrap_or(2.0);
                        assert_eq!(e.norm_min, want, "user {u}");
                        assert_eq!(e.norm_max, want, "user {u}");
                    }
                }
            }
        }
    }

    /// An empty re-norm map splices every record verbatim at zero
    /// simulated I/O, reclaiming churn placeholders on the way.
    #[test]
    fn splice_reweighed_empty_map_is_pure_splice() {
        let us = users();
        let mut tree = MiurTree::build_with_fanout(&us, 4);
        for u in &us[..3] {
            tree.remove(u.id, u.point).unwrap();
        }
        for u in &us[..3] {
            tree.insert(u);
        }
        assert!(tree.freed_records() > 0);
        let (spliced, report) = tree.splice_reweighed(&std::collections::HashMap::new());
        assert_eq!(report.io_total(), 0);
        assert_eq!(report.reweighed_entries, 0);
        assert_eq!(spliced.freed_records(), 0);
        assert_eq!(spliced.node_bytes(), tree.node_bytes());
        assert_eq!(spliced.intuni_bytes(), tree.intuni_bytes());
        let io = IoStats::new();
        assert_eq!(gather_users(&spliced, &io), gather_users(&tree, &io));
    }

    /// Ancestor splice: a re-norm strictly inside an entry's existing
    /// bracket rewrites the touched leaf but leaves the root's IntUni
    /// record spliced verbatim (its bracket is unchanged).
    #[test]
    fn splice_reweighed_keeps_ancestors_when_bracket_unchanged() {
        // Norms 1.0 / 3.0 in every leaf, so moving a norm to 2.0 stays
        // inside each bracket.
        let us: Vec<IndexedUser> = (0..12)
            .map(|i| IndexedUser {
                id: i,
                point: Point::new(f64::from(i), f64::from(i % 4)),
                doc: Document::from_terms([t(0)]),
                norm: if i % 2 == 0 { 1.0 } else { 3.0 },
            })
            .collect();
        let tree = MiurTree::build_with_fanout(&us, 4);
        assert!(tree.height() >= 2);
        // Pick a user whose re-norm to 2.0 cannot move its leaf bracket:
        // a norm-1.0 user in a leaf that also holds *another* 1.0 and a
        // 3.0. Derived from the built tree, so the choice is layout-proof.
        let io = IoStats::new();
        let mut eligible = None;
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            if !node.is_leaf {
                for e in &node.entries {
                    let UserRef::Node(c) = e.child else { panic!() };
                    stack.push(c);
                }
                continue;
            }
            let mins = node.entries.iter().filter(|e| e.norm_min == 1.0).count();
            let maxs = node.entries.iter().filter(|e| e.norm_max == 3.0).count();
            if mins >= 2 && maxs >= 1 {
                let UserRef::User(u) = node
                    .entries
                    .iter()
                    .find(|e| e.norm_min == 1.0)
                    .unwrap()
                    .child
                else {
                    panic!()
                };
                eligible = Some(u);
            }
        }
        let user = eligible.expect("some leaf holds a redundant bracket witness");
        let renormed: std::collections::HashMap<u32, f64> = [(user, 2.0f64)].into_iter().collect();
        let (spliced, report) = tree.splice_reweighed(&renormed);
        assert_eq!(report.reweighed_entries, 1);
        assert_eq!(
            report.edit.node_writes, 1,
            "bracket unchanged above the leaf: ancestors splice"
        );
        assert_eq!(gather_users(&spliced, &io), gather_users(&tree, &io));
    }

    #[test]
    fn save_load_keeps_fanout() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let dir = std::env::temp_dir().join(format!("mbrstk-miur-fan-{}", std::process::id()));
        tree.save(&dir).unwrap();
        let mut loaded = MiurTree::load(&dir).unwrap();
        assert_eq!(loaded.fanout(), 4);
        // A reopened tree keeps accepting mutations.
        loaded.insert(&IndexedUser {
            id: 99,
            point: Point::new(3.3, 1.1),
            doc: Document::from_terms([t(0)]),
            norm: 2.0,
        });
        assert_eq!(loaded.num_users(), 13);
        std::fs::remove_dir_all(dir).ok();
    }

    /// One comparable entry row: rect, count, uni/int terms, norm bracket.
    type EntryRow = (Rect, u32, Vec<TermId>, Vec<TermId>, f64, f64);

    /// Flattens a tree into comparable rows (summaries only — record ids
    /// differ across codecs because varint payloads change nothing about
    /// allocation order, but the assert stays id-free for robustness).
    fn rows(tree: &MiurTree) -> Vec<(bool, Vec<EntryRow>)> {
        let io = IoStats::new();
        let mut out = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            let summary = node
                .entries
                .iter()
                .map(|e| {
                    if let UserRef::Node(c) = e.child {
                        stack.push(c);
                    }
                    (
                        e.rect,
                        e.count,
                        e.uni.clone(),
                        e.int.clone(),
                        e.norm_min,
                        e.norm_max,
                    )
                })
                .collect();
            out.push((node.is_leaf, summary));
        }
        out
    }

    /// Both codecs decode to identical trees (bit-exact summaries) and the
    /// columnar encoding is strictly smaller, through builds and churn.
    #[test]
    fn columnar_codec_is_lossless_and_smaller() {
        let us = users();
        let mut v = MiurTree::build_with_fanout_codec(&us[..8], 4, CodecId::Verbatim);
        let mut c = MiurTree::build_with_fanout_codec(&us[..8], 4, CodecId::Columnar);
        assert_eq!(rows(&v), rows(&c), "fresh build");
        assert!(c.node_bytes() < v.node_bytes());
        assert!(c.intuni_bytes() < v.intuni_bytes());

        for u in &us[8..] {
            v.insert(u);
            c.insert(u);
        }
        for u in &us[..3] {
            assert!(v.remove(u.id, u.point).is_some());
            assert!(c.remove(u.id, u.point).is_some());
        }
        assert_eq!(rows(&v), rows(&c), "after churn");
        assert_eq!(c.codec(), CodecId::Columnar);
        assert_eq!(c.compacted().codec(), CodecId::Columnar);
        let (spliced, _) = c.splice_reweighed(&std::collections::HashMap::new());
        assert_eq!(rows(&spliced), rows(&c), "splice under columnar");
    }

    /// The count/summary split: user counts live in the *node* record, so
    /// an insert that leaves an ancestor's union, intersection and norm
    /// bracket unchanged splices that ancestor's IntUni record for free —
    /// only the touched leaf's summary payload is charged.
    #[test]
    fn insert_reuses_ancestor_intuni_when_summary_unchanged() {
        for codec in CodecId::ALL {
            let us = users();
            let mut tree = MiurTree::build_with_fanout_codec(&us, 8, codec);
            assert!(tree.height() >= 2);

            // A clone of user 0 (fresh id): every ancestor's uni/int/norm
            // summary is already saturated, only counts move.
            let clone = IndexedUser {
                id: 100,
                ..us[0].clone()
            };
            let edit = tree.insert(&clone);
            assert_eq!(
                edit.payload_blocks, 1,
                "{codec:?}: only the leaf summary is rewritten"
            );

            // A novel term dirties the union along the whole path: every
            // level pays its summary write.
            let novel = IndexedUser {
                id: 101,
                point: us[0].point,
                doc: Document::from_terms([t(0), t(77)]),
                norm: 2.0,
            };
            let edit = tree.insert(&novel);
            assert_eq!(
                edit.payload_blocks,
                u64::from(tree.height()),
                "{codec:?}: union change repairs each level"
            );
            check_intuni_invariants(
                &tree,
                &[us.as_slice(), &[clone.clone(), novel.clone()]].concat(),
            );
        }
    }

    #[test]
    fn sorted_set_helpers() {
        let a = [t(1), t(3), t(5)];
        let b = [t(3), t(4), t(5)];
        assert_eq!(
            union_sorted([a.as_slice(), b.as_slice()].into_iter()),
            vec![t(1), t(3), t(4), t(5)]
        );
        assert_eq!(
            intersect_sorted([a.as_slice(), b.as_slice()].into_iter()),
            vec![t(3), t(5)]
        );
        assert_eq!(intersect_sorted(std::iter::empty()), Vec::<TermId>::new());
    }
}
