//! The MIUR-tree (§7): a disk-resident user index.
//!
//! An MIUR-tree is an R-tree over user locations where every node entry is
//! augmented with the *union* and the *intersection* of the keyword sets in
//! its subtree (the `IntUni` vectors of Fig. 4) plus the number of users
//! stored below it. It lets the candidate-selection algorithm bound the
//! relevance of a whole group of users at once, and skip computing top-k
//! results for user subtrees that can never contain a BRSTkNN.

use geo::{Point, Rect};
use storage::codec::{Reader, Writer};
use storage::{BlockFile, IoStats, RecordId};
use text::{Document, TermId};

use crate::rtree::{BuildItem, BuildTree, DEFAULT_MAX_ENTRIES};

/// A user ready for indexing.
#[derive(Debug, Clone)]
pub struct IndexedUser {
    /// Application user id (dense).
    pub id: u32,
    /// Location `u.l`.
    pub point: Point,
    /// Keyword set `u.d`.
    pub doc: Document,
    /// The user's text normalizer `N(u)` under the query's weight model
    /// (see [`text::TextScorer::normalizer`]). Stored in the tree so node
    /// entries can carry sound `N(u)` brackets for whole subtrees — the
    /// group upper/lower bound estimations of §7 need them.
    pub norm: f64,
}

/// What an MIUR entry points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserRef {
    /// Inner entry: child node record.
    Node(RecordId),
    /// Leaf entry: a user id.
    User(u32),
}

/// One deserialized MIUR node entry.
#[derive(Debug, Clone)]
pub struct MiurEntryView {
    /// MBR of the subtree (degenerate for leaf entries).
    pub rect: Rect,
    /// Target of the entry.
    pub child: UserRef,
    /// Number of users in the subtree (1 for leaf entries).
    pub count: u32,
    /// Union of the subtree's keyword sets, ascending.
    pub uni: Vec<TermId>,
    /// Intersection of the subtree's keyword sets, ascending.
    pub int: Vec<TermId>,
    /// Minimum `N(u)` over the subtree's users.
    pub norm_min: f64,
    /// Maximum `N(u)` over the subtree's users.
    pub norm_max: f64,
}

/// A deserialized MIUR node.
#[derive(Debug, Clone)]
pub struct MiurNodeView {
    /// Record id of the node.
    pub id: RecordId,
    /// True when entries are users.
    pub is_leaf: bool,
    /// The node's entries with their `IntUni` vectors.
    pub entries: Vec<MiurEntryView>,
}

/// The disk-resident MIUR-tree.
#[derive(Debug)]
pub struct MiurTree {
    nodes: BlockFile,
    intuni: BlockFile,
    root: RecordId,
    height: u32,
    num_users: usize,
}

impl MiurTree {
    /// Bulk loads the tree over `users` with the default fanout.
    pub fn build(users: &[IndexedUser]) -> Self {
        Self::build_with_fanout(users, DEFAULT_MAX_ENTRIES)
    }

    /// Bulk loads with an explicit node capacity.
    ///
    /// # Panics
    /// Panics when `users` is empty.
    pub fn build_with_fanout(users: &[IndexedUser], fanout: usize) -> Self {
        let items: Vec<BuildItem> = users
            .iter()
            .enumerate()
            .map(|(pos, u)| BuildItem {
                id: pos as u32,
                rect: Rect::from_point(u.point),
            })
            .collect();
        let tree = BuildTree::bulk_load(&items, fanout);

        let mut nodes = BlockFile::new();
        let mut intuni = BlockFile::new();
        // build index -> (record, count, uni, int, norm_min, norm_max)
        #[allow(clippy::type_complexity)]
        let mut done: std::collections::HashMap<
            usize,
            (RecordId, u32, Vec<TermId>, Vec<TermId>, f64, f64),
        > = std::collections::HashMap::new();

        let mut order: Vec<usize> = (0..tree.nodes.len()).collect();
        order.sort_by_key(|&n| tree.nodes[n].level);

        for n in order {
            let node = &tree.nodes[n];
            struct E {
                r: UserRef,
                rect: Rect,
                count: u32,
                uni: Vec<TermId>,
                int: Vec<TermId>,
                norm_min: f64,
                norm_max: f64,
            }
            let entries: Vec<E> = if node.is_leaf() {
                node.items
                    .iter()
                    .map(|&pos| {
                        let u = &users[items[pos].id as usize];
                        let terms: Vec<TermId> = u.doc.terms().collect();
                        E {
                            r: UserRef::User(u.id),
                            rect: Rect::from_point(u.point),
                            count: 1,
                            uni: terms.clone(),
                            int: terms,
                            norm_min: u.norm,
                            norm_max: u.norm,
                        }
                    })
                    .collect()
            } else {
                node.children
                    .iter()
                    .map(|&c| {
                        let (rid, count, uni, int, nmin, nmax) = done[&c].clone();
                        E {
                            r: UserRef::Node(rid),
                            rect: tree.nodes[c].rect,
                            count,
                            uni,
                            int,
                            norm_min: nmin,
                            norm_max: nmax,
                        }
                    })
                    .collect()
            };

            // Serialize IntUni vectors (plus the normalizer bracket).
            let mut w = Writer::new();
            for e in &entries {
                w.put_u32(e.uni.len() as u32);
                for &t in &e.uni {
                    w.put_u32(t.0);
                }
                w.put_u32(e.int.len() as u32);
                for &t in &e.int {
                    w.put_u32(t.0);
                }
                w.put_f64(e.norm_min);
                w.put_f64(e.norm_max);
            }
            let iu_rec = intuni.put(&w.into_bytes());

            // Serialize node record.
            let mut w = Writer::new();
            w.put_u8(u8::from(node.is_leaf()));
            w.put_u32(iu_rec.0);
            w.put_u32(entries.len() as u32);
            for e in &entries {
                let id = match e.r {
                    UserRef::Node(rid) => rid.0,
                    UserRef::User(uid) => uid,
                };
                w.put_u32(id);
                w.put_f64(e.rect.min.x);
                w.put_f64(e.rect.min.y);
                w.put_f64(e.rect.max.x);
                w.put_f64(e.rect.max.y);
                w.put_u32(e.count);
            }
            let node_rec = nodes.put(&w.into_bytes());

            // Parent aggregate.
            let count: u32 = entries.iter().map(|e| e.count).sum();
            let uni = union_sorted(entries.iter().map(|e| e.uni.as_slice()));
            let int = intersect_sorted(entries.iter().map(|e| e.int.as_slice()));
            let nmin = entries
                .iter()
                .map(|e| e.norm_min)
                .fold(f64::INFINITY, f64::min);
            let nmax = entries.iter().map(|e| e.norm_max).fold(0.0f64, f64::max);
            done.insert(n, (node_rec, count, uni, int, nmin, nmax));
        }

        MiurTree {
            nodes,
            intuni,
            root: done[&tree.root].0,
            height: tree.height,
            num_users: users.len(),
        }
    }

    /// Persists the tree to `dir` (`nodes.mbrs`, `intuni.mbrs`,
    /// `meta.mbrs`); creates the directory when missing.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        storage::save_blockfile(&self.nodes, &dir.join("nodes.mbrs"))?;
        storage::save_blockfile(&self.intuni, &dir.join("intuni.mbrs"))?;
        let mut w = Writer::new();
        w.put_u32(self.root.0);
        w.put_u32(self.height);
        w.put_u64(self.num_users as u64);
        std::fs::write(dir.join("meta.mbrs"), w.into_bytes())
    }

    /// Reopens a tree saved by [`MiurTree::save`].
    pub fn load(dir: &std::path::Path) -> std::io::Result<Self> {
        let nodes = storage::load_blockfile(&dir.join("nodes.mbrs"))?;
        let intuni = storage::load_blockfile(&dir.join("intuni.mbrs"))?;
        let meta = std::fs::read(dir.join("meta.mbrs"))?;
        let mut r = Reader::new(&meta);
        Ok(MiurTree {
            nodes,
            intuni,
            root: RecordId(r.get_u32()),
            height: r.get_u32(),
            num_users: r.get_u64() as usize,
        })
    }

    /// Record id of the root.
    #[inline]
    pub fn root(&self) -> RecordId {
        self.root
    }

    /// Tree height (1 = root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Total bytes of node records.
    pub fn node_bytes(&self) -> u64 {
        self.nodes.bytes()
    }

    /// Total bytes of IntUni records.
    pub fn intuni_bytes(&self) -> u64 {
        self.intuni.bytes()
    }

    /// Reads a node with its IntUni vectors, charging one node visit plus
    /// the IntUni file's blocks (the paper's inverted-file rule applies to
    /// the textual payload of the node).
    pub fn read_node(&self, id: RecordId, io: &IoStats) -> MiurNodeView {
        io.charge_node_visit_keyed((2 << 33) | u64::from(id.0));
        let payload = self.nodes.get(id);
        let mut r = Reader::new(payload);
        let is_leaf = r.get_u8() != 0;
        let iu_rec = RecordId(r.get_u32());
        let n = r.get_u32() as usize;

        let iu_payload = self.intuni.get(iu_rec);
        io.charge_invfile_keyed((3 << 33) | u64::from(iu_rec.0), iu_payload.len());
        let mut iu = Reader::new(iu_payload);

        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.get_u32();
            let rect = Rect::new(
                Point::new(r.get_f64(), r.get_f64()),
                Point::new(r.get_f64(), r.get_f64()),
            );
            let count = r.get_u32();
            let n_uni = iu.get_u32() as usize;
            let uni: Vec<TermId> = (0..n_uni).map(|_| TermId(iu.get_u32())).collect();
            let n_int = iu.get_u32() as usize;
            let int: Vec<TermId> = (0..n_int).map(|_| TermId(iu.get_u32())).collect();
            let norm_min = iu.get_f64();
            let norm_max = iu.get_f64();
            entries.push(MiurEntryView {
                rect,
                child: if is_leaf {
                    UserRef::User(raw)
                } else {
                    UserRef::Node(RecordId(raw))
                },
                count,
                uni,
                int,
                norm_min,
                norm_max,
            });
        }
        debug_assert!(r.is_exhausted() && iu.is_exhausted());
        MiurNodeView {
            id,
            is_leaf,
            entries,
        }
    }
}

/// Union of ascending term slices, ascending output.
fn union_sorted<'a>(lists: impl Iterator<Item = &'a [TermId]>) -> Vec<TermId> {
    let mut all: Vec<TermId> = lists.flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Intersection of ascending term slices, ascending output.
fn intersect_sorted<'a>(mut lists: impl Iterator<Item = &'a [TermId]>) -> Vec<TermId> {
    let Some(first) = lists.next() else {
        return Vec::new();
    };
    let mut acc: Vec<TermId> = first.to_vec();
    for list in lists {
        let mut next = Vec::with_capacity(acc.len().min(list.len()));
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < list.len() {
            match acc[i].cmp(&list[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    next.push(acc[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc = next;
        if acc.is_empty() {
            break;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// 12 users; everyone has term 0, user i also has term 1 + i % 3.
    fn users() -> Vec<IndexedUser> {
        (0..12)
            .map(|i| IndexedUser {
                id: i,
                point: Point::new(f64::from(i), f64::from(i % 4)),
                doc: Document::from_terms([t(0), t(1 + i % 3)]),
                norm: 2.0,
            })
            .collect()
    }

    fn gather_users(tree: &MiurTree, io: &IoStats) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, io);
            for e in &node.entries {
                match e.child {
                    UserRef::Node(c) => stack.push(c),
                    UserRef::User(u) => out.push(u),
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn all_users_present() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        assert_eq!(gather_users(&tree, &io), (0..12).collect::<Vec<_>>());
        assert_eq!(tree.num_users(), 12);
    }

    #[test]
    fn counts_sum_to_subtree_sizes() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        let root = tree.read_node(tree.root(), &io);
        let total: u32 = root.entries.iter().map(|e| e.count).sum();
        assert_eq!(total, 12);
    }

    /// The IntUni invariant: a node entry's union ⊇ every descendant's
    /// keywords and its intersection ⊆ every descendant's keywords.
    #[test]
    fn intuni_vectors_bound_descendants() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();

        fn descendants(tree: &MiurTree, id: RecordId, io: &IoStats) -> Vec<u32> {
            let node = tree.read_node(id, io);
            let mut out = Vec::new();
            for e in &node.entries {
                match e.child {
                    UserRef::User(u) => out.push(u),
                    UserRef::Node(c) => out.extend(descendants(tree, c, io)),
                }
            }
            out
        }

        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            for e in &node.entries {
                let descs = match e.child {
                    UserRef::User(u) => vec![u],
                    UserRef::Node(c) => {
                        stack.push(c);
                        descendants(&tree, c, &io)
                    }
                };
                assert_eq!(descs.len(), e.count as usize);
                for d in descs {
                    let doc = &us[d as usize].doc;
                    for term in doc.terms() {
                        assert!(e.uni.contains(&term), "union misses a descendant term");
                    }
                    for &term in &e.int {
                        assert!(doc.contains(term), "intersection has a non-shared term");
                    }
                }
            }
        }
    }

    #[test]
    fn shared_term_survives_to_root() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        // Everyone has t0, so every entry's intersection contains it.
        let root = tree.read_node(tree.root(), &io);
        for e in &root.entries {
            assert!(e.int.contains(&t(0)));
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let dir = std::env::temp_dir().join(format!("mbrstk-miur-{}", std::process::id()));
        tree.save(&dir).unwrap();
        let loaded = MiurTree::load(&dir).unwrap();
        assert_eq!(loaded.root(), tree.root());
        assert_eq!(loaded.num_users(), tree.num_users());
        let io = IoStats::new();
        assert_eq!(gather_users(&loaded, &io), (0..12).collect::<Vec<_>>());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn io_charged_per_node() {
        let us = users();
        let tree = MiurTree::build_with_fanout(&us, 4);
        let io = IoStats::new();
        tree.read_node(tree.root(), &io);
        let snap = io.snapshot();
        assert_eq!(snap.node_visits, 1);
        assert!(snap.invfile_blocks >= 1);
    }

    #[test]
    fn sorted_set_helpers() {
        let a = [t(1), t(3), t(5)];
        let b = [t(3), t(4), t(5)];
        assert_eq!(
            union_sorted([a.as_slice(), b.as_slice()].into_iter()),
            vec![t(1), t(3), t(4), t(5)]
        );
        assert_eq!(
            intersect_sorted([a.as_slice(), b.as_slice()].into_iter()),
            vec![t(3), t(5)]
        );
        assert_eq!(intersect_sorted(std::iter::empty()), Vec::<TermId>::new());
    }
}
