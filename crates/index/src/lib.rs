//! Spatial-textual indexes for the MaxBRSTkNN reproduction.
//!
//! The paper builds on a family of R-tree-based spatial-textual indexes:
//!
//! * the **IR-tree** of Cong et al. (the paper's ref. 3) — an R-tree whose
//!   nodes carry inverted files with the *maximum* weight of each term in
//!   the node's subtree,
//! * the **MIR-tree** (§5.1) — the paper's extension in which every posting
//!   stores both the maximum and the minimum term weight (minimum over the
//!   subtree *intersection*, 0 when the term is missing from any document
//!   below),
//! * the **MIUR-tree** (§7) — a user-side R-tree whose nodes carry the
//!   union and intersection of the keyword sets below plus the number of
//!   users in each subtree.
//!
//! All three share the same R-tree skeleton, built here by Sort-Tile-
//! Recursive bulk loading (with a classic quadratic-split insertion path
//! for incremental updates). The trees are *disk resident*: nodes and
//! inverted files are serialized into [`storage::BlockFile`]s at build
//! time, and every query-time access deserializes a record and charges the
//! paper's simulated I/O ([`storage::IoStats`]).

// The read path is meant to be zero-copy: a clone that merely appeases the
// borrow checker belongs in a scratch buffer instead.
#![deny(clippy::redundant_clone)]

mod edit;
mod miurtree;
mod rtree;
mod sttree;

pub use edit::{SpliceReport, TreeEdit};
pub use miurtree::{
    IndexedUser, MiurEntryView, MiurNodeRef, MiurNodeView, MiurScratch, MiurTree, UserRef,
};
pub use rtree::{BuildItem, BuildTree, RTreeBuilder, DEFAULT_MAX_ENTRIES};
pub use sttree::{
    ChildRef, EntryView, IndexedObject, NodeRef, NodeScratch, NodeView, PostingMode, Postings,
    PostingsRef, PostingsScratch, StTree,
};
