//! The disk-resident spatial-textual tree: IR-tree and MIR-tree layouts.
//!
//! Both trees share one physical organization (§5.1): an R-tree whose every
//! node carries an inverted file over the node's *entries*. A posting for
//! term `t` under entry `e` stores the maximum — and, in the MIR-tree, also
//! the minimum — weight of `t` across all documents in the subtree below
//! `e`. The minimum is taken over the subtree *intersection*: it is 0 when
//! any document below `e` lacks `t` (Fig. 3 / Table 2 of the paper).
//!
//! [`PostingMode::MaxOnly`] reproduces the original IR-tree of Cong et al.
//! (used by the paper's baseline); [`PostingMode::MaxMin`] is the paper's
//! MIR-tree. The only physical difference is posting width, which is why
//! the paper reports identical construction/update costs — and why the
//! MIR-tree's inverted files are slightly larger, which our block
//! accounting faithfully reflects.

use std::collections::HashMap;

use geo::{Point, Rect};
use storage::codec::{Reader, Writer};
use storage::{BlockFile, CodecId, IoStats, RecordId};
use text::{TermId, WeightedDoc};

use crate::rtree::{quadratic_partition, BuildItem, BuildTree, DEFAULT_MAX_ENTRIES};
use crate::{SpliceReport, TreeEdit};

/// Whether postings carry only maxima (IR-tree) or maxima and minima
/// (MIR-tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostingMode {
    /// Original IR-tree postings: `⟨entry, maxw⟩`.
    MaxOnly,
    /// MIR-tree postings: `⟨entry, maxw, minw⟩`.
    MaxMin,
}

/// An object ready for indexing: id, location, precomputed term weights.
#[derive(Debug, Clone)]
pub struct IndexedObject {
    /// Application object id (dense, used to index object tables).
    pub id: u32,
    /// Location `o.l`.
    pub point: Point,
    /// Model weights of `o.d` (see [`text::TextScorer::weigh`]).
    pub doc: WeightedDoc,
}

/// What an entry of a node points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// An inner entry: the record id of a child node.
    Node(RecordId),
    /// A leaf entry: an object id.
    Object(u32),
}

/// One deserialized entry of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryView {
    /// The entry's MBR (degenerate for leaf entries — the object location).
    pub rect: Rect,
    /// Target of the entry.
    pub child: ChildRef,
}

/// A deserialized tree node.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Record id of this node.
    pub id: RecordId,
    /// True for leaves (entries are objects).
    pub is_leaf: bool,
    /// The node's entries.
    pub entries: Vec<EntryView>,
    invfile: RecordId,
}

impl NodeView {
    /// Location of leaf entry `i` (its degenerate MBR corner).
    pub fn entry_point(&self, i: usize) -> Point {
        self.entries[i].rect.min
    }
}

/// Postings of one node restricted to a set of query terms.
///
/// `per_entry[i]` lists `(term, maxw, minw)` ascending by term for entry
/// `i`; in [`PostingMode::MaxOnly`] the minimum mirrors the maximum at the
/// leaf level and is unavailable above it (the IR-tree stores no minima),
/// so it is reported as 0.
#[derive(Debug, Clone)]
pub struct Postings {
    /// Per-entry `(term, maxw, minw)` triples, ascending by term.
    pub per_entry: Vec<Vec<(TermId, f64, f64)>>,
}

/// Reusable decode buffers for [`StTree::read_node_ref`].
///
/// Verbatim records are read in place and leave the scratch untouched;
/// Columnar records decode their columns here. Buffers are cleared (not
/// freed) per read, so a scratch that has seen a node of each size again
/// never allocates.
#[derive(Debug, Default)]
pub struct NodeScratch {
    ids: Vec<u32>,
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
}

/// A zero-copy view of one tree node.
///
/// Under [`CodecId::Verbatim`] the view borrows the record payload
/// directly (the v2 structure-of-arrays layout makes every column
/// addressable by offset); under [`CodecId::Columnar`] it borrows the
/// columns decoded into the caller's [`NodeScratch`]. Either way no
/// per-entry allocation happens on the read path. Mutation and splice
/// code that needs an owned node keeps using [`NodeRef::to_owned_view`].
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'a> {
    id: RecordId,
    is_leaf: bool,
    invfile: RecordId,
    n: usize,
    repr: NodeRepr<'a>,
}

#[derive(Debug, Clone, Copy)]
enum NodeRepr<'a> {
    /// Full Verbatim payload; entry columns start at byte 9.
    Verbatim(&'a [u8]),
    /// Columnar payload decoded into caller scratch.
    Columns(&'a NodeScratch),
}

#[inline]
fn raw_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

#[inline]
fn raw_f64(bytes: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

impl<'a> NodeRef<'a> {
    fn decode(
        id: RecordId,
        payload: &'a [u8],
        codec: CodecId,
        scratch: &'a mut NodeScratch,
    ) -> Self {
        let mut r = Reader::new(payload);
        match codec {
            CodecId::Verbatim => {
                let is_leaf = r.get_u8() != 0;
                let invfile = RecordId(r.get_u32());
                let n = r.get_u32() as usize;
                debug_assert_eq!(payload.len(), 9 + 36 * n);
                NodeRef {
                    id,
                    is_leaf,
                    invfile,
                    n,
                    repr: NodeRepr::Verbatim(payload),
                }
            }
            CodecId::Columnar => {
                let c = storage::codec(codec);
                let is_leaf = r.get_u8() != 0;
                let invfile = RecordId(r.get_varint_u32());
                let n = r.get_varint_u32() as usize;
                let NodeScratch {
                    ids,
                    min_x,
                    min_y,
                    max_x,
                    max_y,
                } = &mut *scratch;
                ids.clear();
                min_x.clear();
                min_y.clear();
                max_x.clear();
                max_y.clear();
                c.get_clustered_u32s(&mut r, n, ids);
                c.get_f64s(&mut r, n, min_x);
                c.get_f64s(&mut r, n, min_y);
                c.get_f64s_vs(&mut r, n, min_x, max_x);
                c.get_f64s_vs(&mut r, n, min_y, max_y);
                debug_assert!(r.is_exhausted());
                NodeRef {
                    id,
                    is_leaf,
                    invfile,
                    n,
                    repr: NodeRepr::Columns(scratch),
                }
            }
        }
    }

    /// Record id of this node.
    #[inline]
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// True for leaves (entries are objects).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.is_leaf
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the node has no entries (empty root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn raw_id(&self, i: usize) -> u32 {
        debug_assert!(i < self.n);
        match self.repr {
            NodeRepr::Verbatim(b) => raw_u32(b, 9 + 4 * i),
            NodeRepr::Columns(s) => s.ids[i],
        }
    }

    /// Target of entry `i`.
    #[inline]
    pub fn child(&self, i: usize) -> ChildRef {
        let raw = self.raw_id(i);
        if self.is_leaf {
            ChildRef::Object(raw)
        } else {
            ChildRef::Node(RecordId(raw))
        }
    }

    /// MBR of entry `i` (degenerate for leaf entries).
    #[inline]
    pub fn rect(&self, i: usize) -> Rect {
        debug_assert!(i < self.n);
        match self.repr {
            NodeRepr::Verbatim(b) => {
                let n = self.n;
                Rect::new(
                    Point::new(
                        raw_f64(b, 9 + 4 * n + 8 * i),
                        raw_f64(b, 9 + 12 * n + 8 * i),
                    ),
                    Point::new(
                        raw_f64(b, 9 + 20 * n + 8 * i),
                        raw_f64(b, 9 + 28 * n + 8 * i),
                    ),
                )
            }
            NodeRepr::Columns(s) => Rect::new(
                Point::new(s.min_x[i], s.min_y[i]),
                Point::new(s.max_x[i], s.max_y[i]),
            ),
        }
    }

    /// Location of leaf entry `i` (its degenerate MBR corner).
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.rect(i).min
    }

    /// Entry `i` as an owned [`EntryView`].
    #[inline]
    pub fn entry(&self, i: usize) -> EntryView {
        EntryView {
            rect: self.rect(i),
            child: self.child(i),
        }
    }

    /// Materializes an owned [`NodeView`] — the escape hatch for mutation
    /// and splice paths that outlive the borrow.
    pub fn to_owned_view(&self) -> NodeView {
        NodeView {
            id: self.id,
            is_leaf: self.is_leaf,
            entries: (0..self.n).map(|i| self.entry(i)).collect(),
            invfile: self.invfile,
        }
    }
}

/// Reusable decode buffers for [`StTree::read_postings_ref`].
///
/// Rows are cleared, never dropped, between reads; columnar list columns
/// decode into the column buffers. After one read per distinct node shape
/// the scratch stops allocating.
#[derive(Debug, Default)]
pub struct PostingsScratch {
    rows: Vec<Vec<(TermId, f64, f64)>>,
    touched: Vec<(usize, usize)>,
    idxs: Vec<u32>,
    maxs: Vec<f64>,
    mins: Vec<f64>,
    term_ids: Vec<u32>,
    lens: Vec<u32>,
    sizes: Vec<u32>,
}

impl PostingsScratch {
    /// Clears and exposes the first `n` rows.
    fn reset_rows(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
        }
        for row in &mut self.rows[..n] {
            row.clear();
        }
    }
}

/// Borrowed postings of one node restricted to a set of query terms —
/// the zero-copy twin of [`Postings`], living in a [`PostingsScratch`].
#[derive(Debug, Clone, Copy)]
pub struct PostingsRef<'a> {
    rows: &'a [Vec<(TermId, f64, f64)>],
}

impl PostingsRef<'_> {
    /// `(term, maxw, minw)` rows for entry `i`, ascending by term.
    #[inline]
    pub fn entry(&self, i: usize) -> &[(TermId, f64, f64)] {
        &self.rows[i]
    }

    /// Number of entries covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the node had no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Materializes owned [`Postings`].
    pub fn to_owned_postings(&self) -> Postings {
        Postings {
            per_entry: self.rows.to_vec(),
        }
    }
}

/// A disk-resident IR-tree / MIR-tree.
///
/// `Clone` duplicates the tree record-for-record (the block files are
/// plain in-memory stores); the copy-on-write serving path uses it when a
/// mutation races a long-lived engine snapshot.
#[derive(Debug, Clone)]
pub struct StTree {
    mode: PostingMode,
    codec: CodecId,
    nodes: BlockFile,
    invfiles: BlockFile,
    root: RecordId,
    height: u32,
    num_objects: usize,
    fanout: usize,
}

impl StTree {
    /// Bulk loads the tree over `objects` with the default fanout.
    pub fn build(objects: &[IndexedObject], mode: PostingMode) -> Self {
        Self::build_with_fanout(objects, mode, DEFAULT_MAX_ENTRIES)
    }

    /// Bulk loads with an explicit node capacity and the default
    /// ([`CodecId::Verbatim`]) record codec.
    ///
    /// # Panics
    /// Panics when `objects` is empty.
    pub fn build_with_fanout(objects: &[IndexedObject], mode: PostingMode, fanout: usize) -> Self {
        Self::build_with_fanout_codec(objects, mode, fanout, CodecId::default())
    }

    /// Bulk loads with an explicit node capacity and record codec. The
    /// codec is fixed at build time and travels with the tree: every
    /// mutation, splice, and compaction re-encodes with the same codec.
    pub fn build_with_fanout_codec(
        objects: &[IndexedObject],
        mode: PostingMode,
        fanout: usize,
        codec: CodecId,
    ) -> Self {
        let items: Vec<BuildItem> = objects
            .iter()
            .enumerate()
            .map(|(pos, o)| BuildItem {
                id: pos as u32,
                rect: Rect::from_point(o.point),
            })
            .collect();
        let tree = BuildTree::bulk_load(&items, fanout);
        Self::from_build_tree_codec(&tree, &items, objects, mode, fanout, codec)
    }

    /// Bulk loads with *text-first* leaf clustering (CIR/DIR-inspired).
    ///
    /// §5.1 notes the MIR-tree "can be constructed in the same manner as
    /// the DIR-tree", i.e. with nodes grouped by textual as well as
    /// spatial criteria. This variant packs leaves primarily by each
    /// object's dominant (highest-weight) term and only secondarily by
    /// location, then builds the upper levels spatially (STR on leaf
    /// centers). Leaves get coherent vocabularies — smaller per-node
    /// inverted files and sharper `MaxTS` bounds — at the cost of looser
    /// MBRs. The `figures -- ablation` harness quantifies the trade-off.
    pub fn build_text_first(objects: &[IndexedObject], mode: PostingMode, fanout: usize) -> Self {
        assert!(!objects.is_empty(), "cannot index an empty object set");
        assert!(fanout >= 2, "fanout must be at least 2");
        let items: Vec<BuildItem> = objects
            .iter()
            .enumerate()
            .map(|(pos, o)| BuildItem {
                id: pos as u32,
                rect: Rect::from_point(o.point),
            })
            .collect();

        // Order: dominant term, then x, then y.
        let dominant = |o: &IndexedObject| -> u32 {
            o.doc
                .entries
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|&(t, _)| t.0)
                .unwrap_or(u32::MAX)
        };
        let mut order: Vec<usize> = (0..objects.len()).collect();
        order.sort_by(|&a, &b| {
            dominant(&objects[a])
                .cmp(&dominant(&objects[b]))
                .then(objects[a].point.x.total_cmp(&objects[b].point.x))
                .then(objects[a].point.y.total_cmp(&objects[b].point.y))
        });

        // Sequential leaf packing in that order.
        let mut nodes: Vec<crate::rtree::BuildNode> = Vec::new();
        let mut leaf_ids: Vec<usize> = Vec::new();
        for run in order.chunks(fanout) {
            let rect = Rect::bounding_rects(run.iter().map(|&i| items[i].rect)).unwrap();
            nodes.push(crate::rtree::BuildNode {
                rect,
                children: Vec::new(),
                items: run.to_vec(),
                level: 0,
            });
            leaf_ids.push(nodes.len() - 1);
        }

        // Upper levels: plain spatial STR over the level below.
        let mut level_nodes = leaf_ids;
        let mut height = 1;
        while level_nodes.len() > 1 {
            let leaf_items: Vec<BuildItem> = level_nodes
                .iter()
                .map(|&n| BuildItem {
                    id: n as u32,
                    rect: nodes[n].rect,
                })
                .collect();
            let grouped = BuildTree::bulk_load(&leaf_items, fanout);
            // Take only the first level above the pseudo-leaves.
            let mut next = Vec::new();
            for bn in grouped.nodes.iter().filter(|bn| bn.is_leaf()) {
                let children: Vec<usize> = bn.items.iter().map(|&i| level_nodes[i]).collect();
                let rect = Rect::bounding_rects(children.iter().map(|&c| nodes[c].rect)).unwrap();
                nodes.push(crate::rtree::BuildNode {
                    rect,
                    children,
                    items: Vec::new(),
                    level: height,
                });
                next.push(nodes.len() - 1);
            }
            level_nodes = next;
            height += 1;
        }

        let tree = BuildTree {
            root: level_nodes[0],
            nodes,
            height,
            max_entries: fanout,
        };
        Self::from_build_tree(&tree, &items, objects, mode, fanout)
    }

    /// Serializes a finished [`BuildTree`] (exposed so tests can exercise
    /// insertion-built trees through the same disk layout).
    pub fn from_build_tree(
        tree: &BuildTree,
        items: &[BuildItem],
        objects: &[IndexedObject],
        mode: PostingMode,
        fanout: usize,
    ) -> Self {
        Self::from_build_tree_codec(tree, items, objects, mode, fanout, CodecId::default())
    }

    /// [`StTree::from_build_tree`] with an explicit record codec.
    pub fn from_build_tree_codec(
        tree: &BuildTree,
        items: &[BuildItem],
        objects: &[IndexedObject],
        mode: PostingMode,
        fanout: usize,
        codec: CodecId,
    ) -> Self {
        let mut nodes = BlockFile::with_codec(codec);
        let mut invfiles = BlockFile::with_codec(codec);
        // node build-index -> (record id, subtree term aggregate).
        let mut done: HashMap<usize, (RecordId, TermAgg)> = HashMap::new();

        // Serialize bottom-up so child record ids exist before parents.
        let mut order: Vec<usize> = (0..tree.nodes.len()).collect();
        order.sort_by_key(|&n| tree.nodes[n].level);

        for n in order {
            let node = &tree.nodes[n];
            let (entry_refs, entry_rects, entry_aggs): (Vec<ChildRef>, Vec<Rect>, Vec<TermAgg>) =
                if node.is_leaf() {
                    let mut refs = Vec::with_capacity(node.items.len());
                    let mut rects = Vec::with_capacity(node.items.len());
                    let mut aggs = Vec::with_capacity(node.items.len());
                    for &pos in &node.items {
                        let obj = &objects[items[pos].id as usize];
                        refs.push(ChildRef::Object(obj.id));
                        rects.push(Rect::from_point(obj.point));
                        aggs.push(TermAgg::from_doc(&obj.doc));
                    }
                    (refs, rects, aggs)
                } else {
                    let mut refs = Vec::with_capacity(node.children.len());
                    let mut rects = Vec::with_capacity(node.children.len());
                    let mut aggs = Vec::with_capacity(node.children.len());
                    for &c in &node.children {
                        let (rid, agg) = &done[&c];
                        refs.push(ChildRef::Node(*rid));
                        rects.push(tree.nodes[c].rect);
                        aggs.push(agg.clone());
                    }
                    (refs, rects, aggs)
                };

            let inv_rec = invfiles.put(&serialize_invfile(&entry_aggs, mode, codec));
            let node_rec = nodes.put(&serialize_node(
                node.is_leaf(),
                inv_rec,
                &entry_refs,
                &entry_rects,
                codec,
            ));
            let node_agg = TermAgg::merge_entries(&entry_aggs);
            done.insert(n, (node_rec, node_agg));
        }

        let root = done[&tree.root].0;
        StTree {
            mode,
            codec,
            nodes,
            invfiles,
            root,
            height: tree.height,
            num_objects: objects.len(),
            fanout,
        }
    }

    /// Inserts one object into the disk-resident tree — the §5.1 update
    /// path ("the splitting and merging of the nodes are executed in the
    /// same manner as the IR-tree"; min weights are maintained in the same
    /// pass as max weights, which is the paper's cost argument).
    ///
    /// Follows the classic least-enlargement descent with quadratic node
    /// splits. The affected root-to-leaf path is re-serialized as fresh
    /// records (copy-on-write, like a disk page allocator) and the
    /// superseded records are freed, so [`StTree::node_bytes`] /
    /// [`StTree::invfile_bytes`] keep reporting the live footprint. The
    /// returned [`TreeEdit`] carries the maintenance I/O and the
    /// page-cache keys the caller must flush; the query-side
    /// [`storage::IoStats`] is deliberately not charged (the paper's
    /// metrics measure query I/O, not maintenance).
    pub fn insert(&mut self, obj: &IndexedObject) -> TreeEdit {
        let mut edit = TreeEdit::default();
        let rect = Rect::from_point(obj.point);
        // Descend by least enlargement, collecting the path.
        let mut path: Vec<(NodeView, usize)> = Vec::new(); // (node, chosen child idx)
        let mut current = self.read_node_tracked(self.root, &mut edit);
        while !current.is_leaf {
            let best = current
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.rect
                        .enlargement(&rect)
                        .total_cmp(&b.rect.enlargement(&rect))
                        .then(a.rect.area().total_cmp(&b.rect.area()))
                })
                .map(|(i, _)| i)
                .expect("inner node with no entries");
            let ChildRef::Node(next) = current.entries[best].child else {
                unreachable!("inner entries reference nodes")
            };
            path.push((current, best));
            current = self.read_node_tracked(next, &mut edit);
        }

        // Extend the leaf.
        let mut refs: Vec<ChildRef> = current.entries.iter().map(|e| e.child).collect();
        let mut rects: Vec<Rect> = current.entries.iter().map(|e| e.rect).collect();
        let mut aggs = self.full_aggs_tracked(&current, &mut edit);
        let old_summary = level_summary(&rects, &aggs);
        refs.push(ChildRef::Object(obj.id));
        rects.push(rect);
        aggs.push(TermAgg::from_doc(&obj.doc));
        self.num_objects += 1;
        self.retire(&current, &mut edit);

        // Write the (possibly split) leaf, then walk back up. Once the
        // rewritten child's summary (MBR + term aggregate) matches what
        // its parent already stores, ancestors only need the fresh child
        // record id spliced in — their inverted files are bit-identical
        // and are reused untouched (the common case: a typical insert
        // shifts no upper-level maxima, and minima are already poisoned
        // to 0 up there). This is what keeps incremental maintenance an
        // order of magnitude below a rebuild.
        let mut carry = self.write_level(true, refs, rects, aggs, &mut edit);
        let mut cheap = summary_unchanged(&carry, &old_summary);
        for (node, child_idx) in path.into_iter().rev() {
            if cheap {
                let rec = self.splice_child(&node, child_idx, carry[0].0, &mut edit);
                carry = vec![(rec, carry[0].1, TermAgg::default())];
                continue;
            }
            let mut refs: Vec<ChildRef> = node.entries.iter().map(|e| e.child).collect();
            let mut rects: Vec<Rect> = node.entries.iter().map(|e| e.rect).collect();
            let mut aggs = self.full_aggs_tracked(&node, &mut edit);
            let old_summary = level_summary(&rects, &aggs);
            self.retire(&node, &mut edit);
            // Replace the descended child with the rewritten one (and its
            // split sibling when present).
            let (first, rest) = carry.split_first().expect("at least one child");
            refs[child_idx] = ChildRef::Node(first.0);
            rects[child_idx] = first.1;
            aggs[child_idx] = first.2.clone();
            for extra in rest {
                refs.push(ChildRef::Node(extra.0));
                rects.push(extra.1);
                aggs.push(extra.2.clone());
            }
            carry = self.write_level(false, refs, rects, aggs, &mut edit);
            cheap = summary_unchanged(&carry, &old_summary);
        }

        // Grow a new root when the old one split.
        if carry.len() == 1 {
            self.root = carry[0].0;
        } else {
            let refs: Vec<ChildRef> = carry.iter().map(|c| ChildRef::Node(c.0)).collect();
            let rects: Vec<Rect> = carry.iter().map(|c| c.1).collect();
            let aggs: Vec<TermAgg> = carry.iter().map(|c| c.2.clone()).collect();
            let top = self.write_level(false, refs, rects, aggs, &mut edit);
            assert_eq!(top.len(), 1, "root split produces one new root");
            self.root = top[0].0;
            self.height += 1;
        }
        edit
    }

    /// Removes an object from the disk-resident tree — the delete side of
    /// §5.1's update path. Returns `None` when no entry with that id is
    /// found at that location, otherwise the mutation's [`TreeEdit`].
    ///
    /// Classic R-tree CondenseTree: find the leaf holding the entry,
    /// remove it, and when a node underflows (below ⌈fanout/4⌉ entries —
    /// deliberately below the split fill of ⌈fanout/2⌉, so a split
    /// followed by a delete doesn't immediately dissolve the fresh node)
    /// dissolve it and re-[`StTree::insert`] the orphaned objects. A root
    /// with a single inner child is collapsed (height shrinks). Superseded
    /// records — including inverted files whose posting lists emptied —
    /// are freed, keeping the byte accounting live.
    pub fn remove(&mut self, id: u32, point: Point) -> Option<TreeEdit> {
        let mut edit = TreeEdit::default();
        // Locate the leaf whose MBR covers the point and holds the id.
        let rect = Rect::from_point(point);
        let mut path: Vec<(NodeView, usize)> = Vec::new();
        let leaf = self.find_leaf(self.root, id, &rect, &mut path, &mut edit)?;

        // Drop the entry from the leaf.
        let pos = leaf
            .entries
            .iter()
            .position(|e| e.child == ChildRef::Object(id))
            .expect("find_leaf verified membership");
        let mut refs: Vec<ChildRef> = leaf.entries.iter().map(|e| e.child).collect();
        let mut rects: Vec<Rect> = leaf.entries.iter().map(|e| e.rect).collect();
        let mut aggs = self.full_aggs_tracked(&leaf, &mut edit);
        let old_summary = level_summary(&rects, &aggs);
        refs.remove(pos);
        rects.remove(pos);
        aggs.remove(pos);
        self.num_objects -= 1;
        self.retire(&leaf, &mut edit);

        let min_fill = (self.fanout / 4).max(1);
        // Orphaned objects to reinsert when nodes dissolve.
        let mut orphans: Vec<IndexedObject> = Vec::new();
        // The rewritten child to splice into the parent (None = dissolved).
        let mut carry: Option<(RecordId, Rect, TermAgg)> = None;
        // Same cheap ancestor splice as on insert: once the rewritten
        // child's parent-visible summary is unchanged (the removed object
        // held no subtree maximum and didn't define the MBR), ancestors
        // reuse their inverted files untouched.
        let mut cheap = false;
        if refs.len() >= min_fill || path.is_empty() {
            if refs.is_empty() {
                // Deleting the last object entirely empties the tree — keep
                // a valid empty leaf root.
                self.write_empty_root(&mut edit);
                return Some(edit);
            }
            let written = self.write_level(true, refs, rects, aggs, &mut edit);
            cheap = summary_unchanged(&written, &old_summary);
            carry = Some(written.into_iter().next().expect("no split on delete"));
        } else {
            // Underflow: dissolve the leaf, reinsert its survivors later.
            for (r, (rc, agg)) in refs.iter().zip(rects.iter().zip(aggs.iter())) {
                let ChildRef::Object(oid) = *r else {
                    unreachable!()
                };
                orphans.push(IndexedObject {
                    id: oid,
                    point: rc.min,
                    doc: WeightedDoc::from_pairs(
                        agg.terms.iter().map(|&(t, mx, _)| (t, mx)).collect(),
                    ),
                });
            }
        }

        // Walk back up, splicing or dropping the rewritten child.
        for (node, child_idx) in path.into_iter().rev() {
            if cheap {
                let (rec, rc, _) = carry.take().expect("cheap implies a rewritten child");
                let new_rec = self.splice_child(&node, child_idx, rec, &mut edit);
                carry = Some((new_rec, rc, TermAgg::default()));
                continue;
            }
            let mut refs: Vec<ChildRef> = node.entries.iter().map(|e| e.child).collect();
            let mut rects: Vec<Rect> = node.entries.iter().map(|e| e.rect).collect();
            let mut aggs = self.full_aggs_tracked(&node, &mut edit);
            let old_summary = level_summary(&rects, &aggs);
            self.retire(&node, &mut edit);
            match carry.take() {
                Some((rec, rc, agg)) => {
                    refs[child_idx] = ChildRef::Node(rec);
                    rects[child_idx] = rc;
                    aggs[child_idx] = agg;
                }
                None => {
                    refs.remove(child_idx);
                    rects.remove(child_idx);
                    aggs.remove(child_idx);
                }
            }
            if refs.is_empty() {
                continue; // dissolve this node too (carry stays None)
            }
            let written = self.write_level(false, refs, rects, aggs, &mut edit);
            cheap = summary_unchanged(&written, &old_summary);
            carry = Some(written.into_iter().next().expect("no split on delete"));
        }

        match carry {
            Some((rec, _, _)) => {
                self.root = rec;
                // Collapse a root with one inner child.
                loop {
                    let root = self.read_node_tracked(self.root, &mut edit);
                    if root.is_leaf || root.entries.len() > 1 {
                        break;
                    }
                    let ChildRef::Node(only) = root.entries[0].child else {
                        unreachable!()
                    };
                    self.retire(&root, &mut edit);
                    self.root = only;
                    self.height -= 1;
                }
            }
            None => {
                // Everything dissolved: start over from an empty leaf.
                self.write_empty_root(&mut edit);
            }
        }

        // Reinsert survivors of dissolved leaves.
        self.num_objects -= orphans.len();
        for o in &orphans {
            let sub = self.insert(o);
            edit.absorb(sub);
        }
        Some(edit)
    }

    /// Cheap ancestor repair: rewrites only the node record, splicing the
    /// fresh child id at `child_idx` while keeping every rect and the
    /// whole inverted file untouched (the old invfile record is reused,
    /// not freed). Only sound when the child's summary is unchanged —
    /// see the cheap-path discussion in [`StTree::insert`].
    fn splice_child(
        &mut self,
        node: &NodeView,
        child_idx: usize,
        child: RecordId,
        edit: &mut TreeEdit,
    ) -> RecordId {
        let mut refs: Vec<ChildRef> = node.entries.iter().map(|e| e.child).collect();
        let rects: Vec<Rect> = node.entries.iter().map(|e| e.rect).collect();
        refs[child_idx] = ChildRef::Node(child);
        edit.stale_keys.push(node_cache_key(self.mode, node.id));
        self.nodes.free(node.id);
        edit.node_writes += 1;
        self.nodes.put(&serialize_node(
            false,
            node.invfile,
            &refs,
            &rects,
            self.codec,
        ))
    }

    /// Frees a superseded node and its inverted file, remembering their
    /// page-cache keys.
    fn retire(&mut self, node: &NodeView, edit: &mut TreeEdit) {
        edit.stale_keys.push(node_cache_key(self.mode, node.id));
        edit.stale_keys
            .push(invfile_cache_key(self.mode, node.invfile));
        self.nodes.free(node.id);
        self.invfiles.free(node.invfile);
    }

    /// Installs an empty leaf root (the tree just lost its last object).
    fn write_empty_root(&mut self, edit: &mut TreeEdit) {
        let inv_payload = serialize_invfile(&[], self.mode, self.codec);
        edit.payload_blocks += storage::blocks_for(inv_payload.len());
        let inv = self.invfiles.put(&inv_payload);
        edit.node_writes += 1;
        self.root = self
            .nodes
            .put(&serialize_node(true, inv, &[], &[], self.codec));
        self.height = 1;
    }

    /// Depth-first search for the leaf holding `(id, rect)`; records the
    /// descent path (nodes with the child index taken).
    fn find_leaf(
        &self,
        node_rec: RecordId,
        id: u32,
        rect: &Rect,
        path: &mut Vec<(NodeView, usize)>,
        edit: &mut TreeEdit,
    ) -> Option<NodeView> {
        let node = self.read_node_tracked(node_rec, edit);
        if node.is_leaf {
            if node.entries.iter().any(|e| e.child == ChildRef::Object(id)) {
                return Some(node);
            }
            return None;
        }
        for (i, e) in node.entries.iter().enumerate() {
            if let ChildRef::Node(c) = e.child {
                if e.rect.intersects(rect) {
                    path.push((node.clone(), i));
                    if let Some(found) = self.find_leaf(c, id, rect, path, edit) {
                        return Some(found);
                    }
                    path.pop();
                }
            }
        }
        None
    }

    /// Serializes one (possibly overfull) node, splitting when needed.
    /// Returns the written node(s): `(record, rect, aggregate)`.
    fn write_level(
        &mut self,
        is_leaf: bool,
        refs: Vec<ChildRef>,
        rects: Vec<Rect>,
        aggs: Vec<TermAgg>,
        edit: &mut TreeEdit,
    ) -> Vec<(RecordId, Rect, TermAgg)> {
        let groups: Vec<Vec<usize>> = if refs.len() <= self.fanout {
            vec![(0..refs.len()).collect()]
        } else {
            let (a, b) = quadratic_partition(&rects, self.fanout / 2);
            vec![a, b]
        };
        groups
            .into_iter()
            .map(|group| {
                let g_refs: Vec<ChildRef> = group.iter().map(|&i| refs[i]).collect();
                let g_rects: Vec<Rect> = group.iter().map(|&i| rects[i]).collect();
                let g_aggs: Vec<TermAgg> = group.iter().map(|&i| aggs[i].clone()).collect();
                let inv_payload = serialize_invfile(&g_aggs, self.mode, self.codec);
                edit.payload_blocks += storage::blocks_for(inv_payload.len());
                let inv = self.invfiles.put(&inv_payload);
                edit.node_writes += 1;
                let rec = self
                    .nodes
                    .put(&serialize_node(is_leaf, inv, &g_refs, &g_rects, self.codec));
                let rect = Rect::bounding_rects(g_rects.iter().copied()).expect("non-empty");
                (rec, rect, TermAgg::merge_entries(&g_aggs))
            })
            .collect()
    }

    /// Reads a node on the maintenance path: the query-side
    /// [`IoStats`] is not charged, but the cost lands in the edit's
    /// maintenance counters.
    fn read_node_tracked(&self, id: RecordId, edit: &mut TreeEdit) -> NodeView {
        edit.read_ios += 1;
        deserialize_node(id, self.nodes.get(id), self.codec)
    }

    /// Reconstructs every entry's full term aggregate from the node's
    /// inverted file (maintenance path).
    fn full_aggs_tracked(&self, node: &NodeView, edit: &mut TreeEdit) -> Vec<TermAgg> {
        let payload = self.invfiles.get(node.invfile);
        edit.read_ios += storage::blocks_for(payload.len());
        let all = deserialize_all_postings(payload, self.mode, node.entries.len(), self.codec);
        all.into_iter().map(|terms| TermAgg { terms }).collect()
    }

    /// Persists the tree to `dir` (three files: `nodes.mbrs`,
    /// `invfiles.mbrs`, `meta.mbrs`). The directory is created when
    /// missing. Records freed by earlier mutations persist as empty
    /// placeholders (record ids must stay stable); a reopened tree
    /// therefore reports the same byte footprint but counts those
    /// placeholders in [`StTree::footprint_io`] until the next rebuild.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        storage::save_blockfile(&self.nodes, &dir.join("nodes.mbrs"))?;
        storage::save_blockfile(&self.invfiles, &dir.join("invfiles.mbrs"))?;
        let mut w = Writer::new();
        w.put_u8(match self.mode {
            PostingMode::MaxOnly => 0,
            PostingMode::MaxMin => 1,
        });
        w.put_u32(self.root.0);
        w.put_u32(self.height);
        w.put_u64(self.num_objects as u64);
        w.put_u32(self.fanout as u32);
        std::fs::write(dir.join("meta.mbrs"), w.into_bytes())
    }

    /// Reopens a tree saved by [`StTree::save`].
    pub fn load(dir: &std::path::Path) -> std::io::Result<Self> {
        let nodes = storage::load_blockfile(&dir.join("nodes.mbrs"))?;
        let invfiles = storage::load_blockfile(&dir.join("invfiles.mbrs"))?;
        let meta = std::fs::read(dir.join("meta.mbrs"))?;
        let mut r = Reader::new(&meta);
        let mode = if r.get_u8() == 0 {
            PostingMode::MaxOnly
        } else {
            PostingMode::MaxMin
        };
        let root = RecordId(r.get_u32());
        let height = r.get_u32();
        let num_objects = r.get_u64() as usize;
        let fanout = r.get_u32() as usize;
        // The record codec travels in the block-file headers.
        let codec = nodes.codec();
        Ok(StTree {
            mode,
            codec,
            nodes,
            invfiles,
            root,
            height,
            num_objects,
            fanout,
        })
    }

    /// Record id of the root node.
    #[inline]
    pub fn root(&self) -> RecordId {
        self.root
    }

    /// Tree height (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed objects.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Posting layout in use.
    #[inline]
    pub fn mode(&self) -> PostingMode {
        self.mode
    }

    /// Record codec in use.
    #[inline]
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// Node capacity used during construction.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Total bytes of all *live* node records (index footprint reporting;
    /// records superseded by [`StTree::insert`] / [`StTree::remove`] are
    /// freed and no longer counted).
    pub fn node_bytes(&self) -> u64 {
        self.nodes.bytes()
    }

    /// Total bytes of all live inverted files.
    pub fn invfile_bytes(&self) -> u64 {
        self.invfiles.bytes()
    }

    /// Byte footprint the live tree would occupy under the
    /// [`CodecId::Verbatim`] codec — the logical (uncompressed) size a
    /// compressing codec's ratio is measured against. Equals
    /// `node_bytes() + invfile_bytes()` when the tree already is Verbatim.
    pub fn logical_bytes(&self) -> u64 {
        if self.codec == CodecId::Verbatim {
            return self.node_bytes() + self.invfile_bytes();
        }
        let mut total = 0u64;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = deserialize_node(id, self.nodes.get(id), self.codec);
            let refs: Vec<ChildRef> = node.entries.iter().map(|e| e.child).collect();
            let rects: Vec<Rect> = node.entries.iter().map(|e| e.rect).collect();
            total += serialize_node(node.is_leaf, node.invfile, &refs, &rects, CodecId::Verbatim)
                .len() as u64;
            let aggs: Vec<TermAgg> = deserialize_all_postings(
                self.invfiles.get(node.invfile),
                self.mode,
                node.entries.len(),
                self.codec,
            )
            .into_iter()
            .map(|terms| TermAgg { terms })
            .collect();
            total += serialize_invfile(&aggs, self.mode, CodecId::Verbatim).len() as u64;
            for e in &node.entries {
                if let ChildRef::Node(c) = e.child {
                    stack.push(c);
                }
            }
        }
        total
    }

    /// Simulated I/O to write the whole live tree from scratch: one I/O
    /// per node record plus ⌈bytes / 4096⌉ per inverted file — the full
    /// rebuild cost an incremental update avoids.
    pub fn footprint_io(&self) -> u64 {
        self.nodes.live_records() as u64 + self.invfiles.live_payload_blocks()
    }

    /// Freed placeholder record slots across both block files. Mutations
    /// retire superseded records but must keep ids stable, so the slots
    /// linger until a compacting rewrite ([`StTree::compacted`]) or a
    /// full rebuild reclaims them.
    pub fn freed_records(&self) -> u64 {
        (self.nodes.freed_records() + self.invfiles.freed_records()) as u64
    }

    /// Rewrites the live tree into fresh block files with densely packed
    /// record ids: structure, payloads and query behaviour are identical,
    /// but the freed placeholder slots accumulated by
    /// [`StTree::insert`] / [`StTree::remove`] are gone. The engine-level
    /// corpus refresh gets compaction for free by rebuilding from the
    /// live tables; `compacted` covers the other case — reclaiming space
    /// without re-weighing anything.
    pub fn compacted(&self) -> StTree {
        let mut out = StTree {
            mode: self.mode,
            codec: self.codec,
            nodes: BlockFile::with_codec(self.codec),
            invfiles: BlockFile::with_codec(self.codec),
            root: RecordId(0),
            height: self.height,
            num_objects: self.num_objects,
            fanout: self.fanout,
        };
        out.root = out.adopt_subtree(self, self.root);
        out
    }

    /// Copies one subtree of `src` into this (fresh) tree, children
    /// first so parent entries can point at the remapped record ids.
    /// Inverted-file payloads are copied verbatim — compressed records
    /// splice byte-for-byte because both trees share one codec.
    fn adopt_subtree(&mut self, src: &StTree, rec: RecordId) -> RecordId {
        debug_assert_eq!(self.codec, src.codec, "cross-codec splice");
        let node = deserialize_node(rec, src.nodes.get(rec), src.codec);
        let refs: Vec<ChildRef> = node
            .entries
            .iter()
            .map(|e| match e.child {
                ChildRef::Node(c) => ChildRef::Node(self.adopt_subtree(src, c)),
                obj => obj,
            })
            .collect();
        let rects: Vec<Rect> = node.entries.iter().map(|e| e.rect).collect();
        let inv = self.invfiles.put(src.invfiles.get(node.invfile));
        self.nodes.put(&serialize_node(
            node.is_leaf,
            inv,
            &refs,
            &rects,
            self.codec,
        ))
    }

    /// [`StTree::save`] of a [`StTree::compacted`] copy: freed placeholder
    /// records are reclaimed instead of persisting as empty slots, so the
    /// on-disk file shrinks to the live footprint.
    pub fn save_compacted(&self, dir: &std::path::Path) -> std::io::Result<()> {
        self.compacted().save(dir)
    }

    /// Bulk re-weigh splice — the tree half of the two-tier incremental
    /// corpus refresh.
    ///
    /// Produces a twin of this tree over fresh, densely packed block
    /// files in which every leaf entry named in `reweighed` carries its
    /// new weight vector. The tree *structure* (node grouping, MBRs,
    /// height) is preserved exactly — a refresh changes weights, never
    /// locations — so only the inverted files along root-to-leaf paths
    /// that contain a re-weighed object need recomputed aggregates; every
    /// other subtree's records are copied verbatim and charged no
    /// simulated I/O (see [`SpliceReport`] for the extent-remap cost
    /// model). The per-mutation ancestor splice of [`StTree::insert`]
    /// generalizes here to bulk form: once a rewritten subtree's merged
    /// term aggregate matches its old value, its ancestors reuse their
    /// inverted files untouched.
    ///
    /// Exactness: a subtree containing no re-weighed object has
    /// bit-identical leaf weights, hence bit-identical aggregates, so the
    /// verbatim copy *is* the recomputation. Callers are responsible for
    /// `reweighed` covering every object whose stored weights differ from
    /// the target scorer's (the engine-level drift ledger guarantees
    /// this), and for the target scorer's `wmax` dominating every weight
    /// left in place.
    pub fn splice_reweighed(
        &self,
        reweighed: &HashMap<u32, WeightedDoc>,
    ) -> (StTree, SpliceReport) {
        let mut out = StTree {
            mode: self.mode,
            codec: self.codec,
            nodes: BlockFile::with_codec(self.codec),
            invfiles: BlockFile::with_codec(self.codec),
            root: RecordId(0),
            height: self.height,
            num_objects: self.num_objects,
            fanout: self.fanout,
        };
        let mut report = SpliceReport::default();
        let (root, _) = out.splice_sub(self, self.root, reweighed, &mut report);
        out.root = root;
        (out, report)
    }

    /// Recursive worker of [`StTree::splice_reweighed`]: copies or
    /// rewrites the subtree under `rec` (of `src`) into `self`, children
    /// first. Returns the new record id and, when the subtree's
    /// parent-visible term aggregate changed, its new value (`None` lets
    /// the parent keep its inverted file verbatim — the bulk ancestor
    /// splice).
    fn splice_sub(
        &mut self,
        src: &StTree,
        rec: RecordId,
        reweighed: &HashMap<u32, WeightedDoc>,
        report: &mut SpliceReport,
    ) -> (RecordId, Option<TermAgg>) {
        let node = deserialize_node(rec, src.nodes.get(rec), src.codec);
        let rects: Vec<Rect> = node.entries.iter().map(|e| e.rect).collect();

        if node.is_leaf {
            let refs: Vec<ChildRef> = node.entries.iter().map(|e| e.child).collect();
            let touched: Vec<usize> = refs
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, ChildRef::Object(id) if reweighed.contains_key(id)))
                .map(|(i, _)| i)
                .collect();
            if touched.is_empty() {
                return (self.copy_spliced(src, &node, refs, &rects, report), None);
            }
            let (mut aggs, old_merged) = self.read_old_aggs(src, &node, report);
            for i in touched {
                let ChildRef::Object(id) = refs[i] else {
                    unreachable!("leaf entries reference objects")
                };
                let mut agg = TermAgg::from_doc(&reweighed[&id]);
                if self.mode == PostingMode::MaxOnly {
                    // The IR-tree stores no minima; deserialized rows
                    // report 0, so recomputed rows must too for the
                    // changed-summary comparison to stay meaningful.
                    for row in &mut agg.terms {
                        row.2 = 0.0;
                    }
                }
                aggs[i] = agg;
                report.reweighed_entries += 1;
            }
            let new_merged = TermAgg::merge_entries(&aggs);
            let rec = self.write_spliced(true, &refs, &rects, &aggs, report);
            let changed = (new_merged != old_merged).then_some(new_merged);
            return (rec, changed);
        }

        // Inner node: splice every child first (post-order, so child
        // record ids exist before the parent serializes).
        let children: Vec<(RecordId, Option<TermAgg>)> = node
            .entries
            .iter()
            .map(|e| {
                let ChildRef::Node(c) = e.child else {
                    unreachable!("inner entries reference nodes")
                };
                self.splice_sub(src, c, reweighed, report)
            })
            .collect();
        let refs: Vec<ChildRef> = children.iter().map(|&(r, _)| ChildRef::Node(r)).collect();
        if children.iter().all(|(_, agg)| agg.is_none()) {
            return (self.copy_spliced(src, &node, refs, &rects, report), None);
        }
        let (mut aggs, old_merged) = self.read_old_aggs(src, &node, report);
        for (i, (_, agg)) in children.into_iter().enumerate() {
            if let Some(agg) = agg {
                aggs[i] = agg;
            }
        }
        let new_merged = TermAgg::merge_entries(&aggs);
        let rec = self.write_spliced(false, &refs, &rects, &aggs, report);
        let changed = (new_merged != old_merged).then_some(new_merged);
        (rec, changed)
    }

    /// Verbatim splice of one node: the inverted-file payload is copied
    /// byte-for-byte and the node record is re-emitted with remapped
    /// record ids only. Charged no simulated I/O (extent remap), counted
    /// in [`SpliceReport::spliced_records`].
    fn copy_spliced(
        &mut self,
        src: &StTree,
        node: &NodeView,
        refs: Vec<ChildRef>,
        rects: &[Rect],
        report: &mut SpliceReport,
    ) -> RecordId {
        let inv = self.invfiles.put(src.invfiles.get(node.invfile));
        report.spliced_records += 2;
        self.nodes
            .put(&serialize_node(node.is_leaf, inv, &refs, rects, self.codec))
    }

    /// Reads a node's old per-entry aggregates (and their merge) on the
    /// rewrite path, charging the read to the splice report.
    fn read_old_aggs(
        &self,
        src: &StTree,
        node: &NodeView,
        report: &mut SpliceReport,
    ) -> (Vec<TermAgg>, TermAgg) {
        let payload = src.invfiles.get(node.invfile);
        report.edit.read_ios += 1 + storage::blocks_for(payload.len());
        let aggs: Vec<TermAgg> =
            deserialize_all_postings(payload, src.mode, node.entries.len(), src.codec)
                .into_iter()
                .map(|terms| TermAgg { terms })
                .collect();
        let merged = TermAgg::merge_entries(&aggs);
        (aggs, merged)
    }

    /// Writes one rewritten node (recomputed inverted file + node record),
    /// charging the splice report.
    fn write_spliced(
        &mut self,
        is_leaf: bool,
        refs: &[ChildRef],
        rects: &[Rect],
        aggs: &[TermAgg],
        report: &mut SpliceReport,
    ) -> RecordId {
        let payload = serialize_invfile(aggs, self.mode, self.codec);
        report.edit.payload_blocks += storage::blocks_for(payload.len());
        let inv = self.invfiles.put(&payload);
        report.edit.node_writes += 1;
        self.nodes
            .put(&serialize_node(is_leaf, inv, refs, rects, self.codec))
    }

    /// Reads (visits) a node, charging one simulated I/O (free on a warm
    /// cache hit when the counter carries one). Owned-view convenience
    /// over [`StTree::read_node_ref`] for mutation paths and tests.
    pub fn read_node(&self, id: RecordId, io: &IoStats) -> NodeView {
        let mut scratch = NodeScratch::default();
        self.read_node_ref(id, io, &mut scratch).to_owned_view()
    }

    /// Reads (visits) a node zero-copy: Verbatim payloads are viewed in
    /// place, Columnar payloads decode into `scratch`. Charges exactly
    /// like [`StTree::read_node`] (one node visit, free on warm cache
    /// hit).
    pub fn read_node_ref<'a>(
        &'a self,
        id: RecordId,
        io: &IoStats,
        scratch: &'a mut NodeScratch,
    ) -> NodeRef<'a> {
        io.charge_node_visit_keyed(node_cache_key(self.mode, id));
        NodeRef::decode(id, self.nodes.record_bytes(id), self.codec, scratch)
    }

    /// Loads the node's inverted file and extracts postings for `terms`
    /// (which must be sorted ascending). Owned convenience over
    /// [`StTree::read_postings_ref`] — identical I/O charges.
    pub fn read_postings(&self, node: &NodeView, terms: &[TermId], io: &IoStats) -> Postings {
        let mut scratch = PostingsScratch::default();
        self.postings_impl(node.invfile, node.entries.len(), terms, io, &mut scratch)
            .to_owned_postings()
    }

    /// Zero-copy postings read for a [`NodeRef`].
    ///
    /// Under [`CodecId::Verbatim`] the whole file is loaded and charged
    /// ⌈file bytes / 4096⌉ simulated I/Os — the paper's inverted-file
    /// rule. Under [`CodecId::Columnar`] the skip table lets the read
    /// touch only the directory and the wanted term lists, so the charge
    /// is the number of *distinct 4 KB pages those extents overlap* — a
    /// partial-column read of a cold record. The record keeps one cache
    /// key either way; a warm hit is free. Rows decode into `scratch`,
    /// which is cleared, not freed, between reads.
    pub fn read_postings_ref<'a>(
        &self,
        node: &NodeRef<'_>,
        terms: &[TermId],
        io: &IoStats,
        scratch: &'a mut PostingsScratch,
    ) -> PostingsRef<'a> {
        self.postings_impl(node.invfile, node.len(), terms, io, scratch)
    }

    fn postings_impl<'a>(
        &self,
        invfile: RecordId,
        num_entries: usize,
        terms: &[TermId],
        io: &IoStats,
        scratch: &'a mut PostingsScratch,
    ) -> PostingsRef<'a> {
        debug_assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "terms must be sorted"
        );
        let payload = self.invfiles.record_bytes(invfile);
        let key = invfile_cache_key(self.mode, invfile);
        match self.codec {
            CodecId::Verbatim => {
                io.charge_invfile_keyed(key, payload.len());
                deserialize_postings_into(payload, self.mode, terms, num_entries, scratch);
            }
            CodecId::Columnar => {
                deserialize_postings_columnar_into(payload, self.mode, terms, num_entries, scratch);
                io.charge_invfile_blocks_keyed(key, storage::pages_for_ranges(&scratch.touched));
            }
        }
        PostingsRef {
            rows: &scratch.rows[..num_entries],
        }
    }
}

/// The summary a parent stores for a node: its MBR and merged term
/// aggregate. `None` MBR only for an empty node (never summarized).
fn level_summary(rects: &[Rect], aggs: &[TermAgg]) -> (Option<Rect>, TermAgg) {
    (
        Rect::bounding_rects(rects.iter().copied()),
        TermAgg::merge_entries(aggs),
    )
}

/// True when a rewrite produced exactly one node whose parent-visible
/// summary (MBR + aggregate) matches the old one — the condition for the
/// cheap ancestor splice.
fn summary_unchanged(carry: &[(RecordId, Rect, TermAgg)], old: &(Option<Rect>, TermAgg)) -> bool {
    carry.len() == 1 && Some(carry[0].1) == old.0 && carry[0].2 == old.1
}

/// Cache key for a node record (distinct per posting mode so IR and MIR
/// trees sharing one counter never alias).
fn node_cache_key(mode: PostingMode, id: RecordId) -> u64 {
    let kind = match mode {
        PostingMode::MaxOnly => 0u64,
        PostingMode::MaxMin => 1,
    };
    (kind << 33) | u64::from(id.0)
}

/// Cache key for an inverted-file record.
fn invfile_cache_key(mode: PostingMode, id: RecordId) -> u64 {
    node_cache_key(mode, id) | (1 << 32)
}

/// Subtree term aggregate carried during construction: per term, the max
/// weight anywhere below, and the min weight when the term is in the
/// subtree intersection (0 otherwise).
///
/// `PartialEq` compares the sorted term rows exactly; mutation paths use
/// it to detect that a rewritten child's summary is unchanged and switch
/// to the cheap ancestor splice (see [`StTree::insert`]).
#[derive(Debug, Clone, Default, PartialEq)]
struct TermAgg {
    /// `(term, max, min)` sorted by term; `min == 0` ⇔ not in intersection.
    terms: Vec<(TermId, f64, f64)>,
}

impl TermAgg {
    fn from_doc(doc: &WeightedDoc) -> Self {
        TermAgg {
            terms: doc.entries.iter().map(|&(t, w)| (t, w, w)).collect(),
        }
    }

    /// Merges sibling aggregates into the parent-entry aggregate.
    fn merge_entries(entries: &[TermAgg]) -> Self {
        let mut map: HashMap<TermId, (f64, f64, usize)> = HashMap::new();
        for agg in entries {
            for &(t, max, min) in &agg.terms {
                let slot = map.entry(t).or_insert((0.0, f64::INFINITY, 0));
                slot.0 = slot.0.max(max);
                // min == 0 means "not in this entry's intersection"; it
                // poisons the parent's intersection too.
                slot.1 = slot.1.min(if min > 0.0 { min } else { 0.0 });
                slot.2 += 1;
            }
        }
        let total = entries.len();
        let mut terms: Vec<(TermId, f64, f64)> = map
            .into_iter()
            .map(|(t, (max, min, seen))| {
                let min = if seen == total && min > 0.0 { min } else { 0.0 };
                (t, max, min)
            })
            .collect();
        terms.sort_unstable_by_key(|&(t, _, _)| t);
        TermAgg { terms }
    }
}

// ---------------------------------------------------------------------
// On-disk layouts.
//
// Verbatim node record, v2 (fixed-stride structure-of-arrays; same byte
// count as the interleaved v1 — 9 + 36·n — so every block/byte accounting
// formula is unchanged, but each column is addressable by offset and a
// [`NodeRef`] can read fields in place without decoding the record):
//   u8  is_leaf
//   u32 invfile record id
//   u32 n entries
//   n × u32 child refs
//   n × f64 min.x   n × f64 min.y   n × f64 max.x   n × f64 max.y
//
// Verbatim inverted-file record, v2 (directory + per-term SoA blocks,
// lists ascending by term; block bytes = list_len × 12 (MaxOnly) / 20
// (MaxMin), identical to v1):
//   u32 n_terms
//   n_terms × { u32 term, u32 list_len }
//   per-term blocks: list_len × u32 entry_idx,
//                    list_len × f64 max [, list_len × f64 min]
//
// Columnar node record — every field becomes a column encoded through the
// Columnar codec primitives:
//   u8 is_leaf, varint invfile id, varint n
//   clustered column: n child refs (zigzag'd deltas)
//   f64 column: n × min.x (XOR previous)
//   f64 column: n × min.y (XOR previous)
//   f64 column vs min.x: n × max.x (degenerate leaf rects → 1 byte)
//   f64 column vs min.y: n × max.y
//
// Columnar inverted-file record — directory plus a skip table of encoded
// list sizes (varint lists have no fixed stride, so partial reads need
// explicit extents):
//   varint n_terms
//   ascending column: n_terms term ids
//   n_terms × varint list_len
//   n_terms × varint list_bytes        (the skip table)
//   per-term list blocks, ascending by term:
//     ascending column: list_len entry indexes
//     f64 column: list_len maxima (XOR previous)
//     [f64 column vs maxima: list_len minima]   (MaxMin only)
// ---------------------------------------------------------------------

fn serialize_node(
    is_leaf: bool,
    invfile: RecordId,
    refs: &[ChildRef],
    rects: &[Rect],
    codec: CodecId,
) -> Vec<u8> {
    let ref_id = |r: &ChildRef| match *r {
        ChildRef::Node(rid) => rid.0,
        ChildRef::Object(oid) => oid,
    };
    match codec {
        CodecId::Verbatim => {
            let mut w = Writer::with_capacity(9 + refs.len() * 36);
            w.put_u8(u8::from(is_leaf));
            w.put_u32(invfile.0);
            w.put_u32(refs.len() as u32);
            for r in refs {
                w.put_u32(ref_id(r));
            }
            for rect in rects {
                w.put_f64(rect.min.x);
            }
            for rect in rects {
                w.put_f64(rect.min.y);
            }
            for rect in rects {
                w.put_f64(rect.max.x);
            }
            for rect in rects {
                w.put_f64(rect.max.y);
            }
            w.into_bytes()
        }
        CodecId::Columnar => {
            let c = storage::codec(codec);
            let mut w = Writer::with_capacity(3 + refs.len() * 12);
            w.put_u8(u8::from(is_leaf));
            w.put_varint_u32(invfile.0);
            w.put_varint_u32(refs.len() as u32);
            let ids: Vec<u32> = refs.iter().map(ref_id).collect();
            c.put_clustered_u32s(&mut w, &ids);
            let col = |f: fn(&Rect) -> f64| rects.iter().map(f).collect::<Vec<f64>>();
            let (min_x, min_y) = (col(|r| r.min.x), col(|r| r.min.y));
            c.put_f64s(&mut w, &min_x);
            c.put_f64s(&mut w, &min_y);
            c.put_f64s_vs(&mut w, &col(|r| r.max.x), &min_x);
            c.put_f64s_vs(&mut w, &col(|r| r.max.y), &min_y);
            w.into_bytes()
        }
    }
}

fn deserialize_node(id: RecordId, payload: &[u8], codec: CodecId) -> NodeView {
    let mut scratch = NodeScratch::default();
    NodeRef::decode(id, payload, codec, &mut scratch).to_owned_view()
}

/// `term -> [(entry_idx, max, min)]` lists plus the ascending term order.
type TermLists = (Vec<TermId>, HashMap<TermId, Vec<(u32, f64, f64)>>);

/// Gathers per-entry aggregates into `term -> [(entry_idx, max, min)]`
/// lists, ascending by term (entry indexes ascend within each list by
/// construction).
fn gather_lists(entry_aggs: &[TermAgg]) -> TermLists {
    let mut lists: HashMap<TermId, Vec<(u32, f64, f64)>> = HashMap::new();
    for (i, agg) in entry_aggs.iter().enumerate() {
        for &(t, max, min) in &agg.terms {
            lists.entry(t).or_default().push((i as u32, max, min));
        }
    }
    let mut terms: Vec<TermId> = lists.keys().copied().collect();
    terms.sort_unstable();
    (terms, lists)
}

fn serialize_invfile(entry_aggs: &[TermAgg], mode: PostingMode, codec: CodecId) -> Vec<u8> {
    let (terms, lists) = gather_lists(entry_aggs);
    match codec {
        CodecId::Verbatim => {
            let mut w = Writer::new();
            w.put_u32(terms.len() as u32);
            for &t in &terms {
                w.put_u32(t.0);
                w.put_u32(lists[&t].len() as u32);
            }
            for &t in &terms {
                let list = &lists[&t];
                for &(idx, _, _) in list {
                    w.put_u32(idx);
                }
                for &(_, max, _) in list {
                    w.put_f64(max);
                }
                if mode == PostingMode::MaxMin {
                    for &(_, _, min) in list {
                        w.put_f64(min);
                    }
                }
            }
            w.into_bytes()
        }
        CodecId::Columnar => {
            let c = storage::codec(codec);
            // Encode each term's list block first so the directory can
            // carry the skip table of encoded sizes.
            let blocks: Vec<Vec<u8>> = terms
                .iter()
                .map(|t| {
                    let list = &lists[t];
                    let mut b = Writer::new();
                    let idxs: Vec<u32> = list.iter().map(|&(i, _, _)| i).collect();
                    c.put_ascending_u32s(&mut b, &idxs);
                    let maxs: Vec<f64> = list.iter().map(|&(_, m, _)| m).collect();
                    c.put_f64s(&mut b, &maxs);
                    if mode == PostingMode::MaxMin {
                        let mins: Vec<f64> = list.iter().map(|&(_, _, m)| m).collect();
                        c.put_f64s_vs(&mut b, &mins, &maxs);
                    }
                    b.into_bytes()
                })
                .collect();
            let mut w = Writer::new();
            w.put_varint_u32(terms.len() as u32);
            let term_ids: Vec<u32> = terms.iter().map(|t| t.0).collect();
            c.put_ascending_u32s(&mut w, &term_ids);
            for &t in &terms {
                w.put_varint_u32(lists[&t].len() as u32);
            }
            for b in &blocks {
                w.put_varint_u32(b.len() as u32);
            }
            for b in &blocks {
                w.put_bytes(b);
            }
            w.into_bytes()
        }
    }
}

/// Decoded columnar inverted-file directory: per term, `(term, list_len,
/// block_start, block_end)` absolute byte extents, plus the directory's
/// own end offset.
fn columnar_directory(r: &mut Reader) -> (Vec<(TermId, usize, usize, usize)>, usize) {
    let c = storage::codec(CodecId::Columnar);
    let n_terms = r.get_varint_u32() as usize;
    let mut term_ids = Vec::new();
    c.get_ascending_u32s(r, n_terms, &mut term_ids);
    let lens: Vec<usize> = (0..n_terms).map(|_| r.get_varint_u32() as usize).collect();
    let bytes: Vec<usize> = (0..n_terms).map(|_| r.get_varint_u32() as usize).collect();
    let dir_end = r.position();
    let mut dir = Vec::with_capacity(n_terms);
    let mut offset = dir_end;
    for i in 0..n_terms {
        dir.push((TermId(term_ids[i]), lens[i], offset, offset + bytes[i]));
        offset += bytes[i];
    }
    (dir, dir_end)
}

/// Decodes one columnar list block (positioned at its start) into
/// `per_entry` rows.
fn decode_columnar_list(
    r: &mut Reader,
    t: TermId,
    len: usize,
    mode: PostingMode,
    per_entry: &mut [Vec<(TermId, f64, f64)>],
) {
    let (mut idxs, mut maxs, mut mins) = (Vec::new(), Vec::new(), Vec::new());
    decode_columnar_list_into(r, t, len, mode, &mut idxs, &mut maxs, &mut mins, per_entry);
}

/// Scratch-buffer core of [`decode_columnar_list`]: columns decode into
/// the caller's reusable buffers before scattering into `per_entry` rows.
#[allow(clippy::too_many_arguments)]
fn decode_columnar_list_into(
    r: &mut Reader,
    t: TermId,
    len: usize,
    mode: PostingMode,
    idxs: &mut Vec<u32>,
    maxs: &mut Vec<f64>,
    mins: &mut Vec<f64>,
    per_entry: &mut [Vec<(TermId, f64, f64)>],
) {
    let c = storage::codec(CodecId::Columnar);
    idxs.clear();
    maxs.clear();
    mins.clear();
    c.get_ascending_u32s(r, len, idxs);
    c.get_f64s(r, len, maxs);
    if mode == PostingMode::MaxMin {
        c.get_f64s_vs(r, len, maxs, mins);
    } else {
        mins.resize(len, 0.0);
    }
    for i in 0..len {
        per_entry[idxs[i] as usize].push((t, maxs[i], mins[i]));
    }
}

/// Decodes the entire inverted file into per-entry `(term, max, min)`
/// rows (maintenance path — query reads use [`deserialize_postings`] /
/// [`deserialize_postings_columnar`]).
fn deserialize_all_postings(
    payload: &[u8],
    mode: PostingMode,
    num_entries: usize,
    codec: CodecId,
) -> Vec<Vec<(TermId, f64, f64)>> {
    let mut r = Reader::new(payload);
    let mut per_entry: Vec<Vec<(TermId, f64, f64)>> = vec![Vec::new(); num_entries];
    match codec {
        CodecId::Verbatim => {
            let n_terms = r.get_u32() as usize;
            let mut dir = Vec::with_capacity(n_terms);
            for _ in 0..n_terms {
                let t = TermId(r.get_u32());
                let len = r.get_u32() as usize;
                dir.push((t, len));
            }
            let mut idxs = Vec::new();
            let mut maxs = Vec::new();
            for (t, len) in dir {
                // SoA block: indexes, then maxima, then minima.
                idxs.clear();
                maxs.clear();
                for _ in 0..len {
                    idxs.push(r.get_u32() as usize);
                }
                for _ in 0..len {
                    maxs.push(r.get_f64());
                }
                for i in 0..len {
                    let min = if mode == PostingMode::MaxMin {
                        r.get_f64()
                    } else {
                        0.0
                    };
                    per_entry[idxs[i]].push((t, maxs[i], min));
                }
            }
        }
        CodecId::Columnar => {
            let (dir, _) = columnar_directory(&mut r);
            for (t, len, start, _) in dir {
                debug_assert_eq!(r.position(), start);
                decode_columnar_list(&mut r, t, len, mode, &mut per_entry);
            }
        }
    }
    debug_assert!(r.is_exhausted());
    // Directory ascends by term, so each row is already sorted.
    per_entry
}

/// Decodes the wanted term lists of a Verbatim (v2 SoA) inverted file
/// into `scratch.rows` — fully in place: the fixed-stride directory and
/// the per-term column blocks are addressed by offset, so nothing but the
/// output rows is written.
fn deserialize_postings_into(
    payload: &[u8],
    mode: PostingMode,
    wanted: &[TermId],
    num_entries: usize,
    scratch: &mut PostingsScratch,
) {
    scratch.reset_rows(num_entries);
    let n_terms = raw_u32(payload, 0) as usize;
    let posting_width = match mode {
        PostingMode::MaxOnly => 12,
        PostingMode::MaxMin => 20,
    };
    let mut offset = 4 + n_terms * 8;
    let mut w = 0usize;
    for j in 0..n_terms {
        // Directory entry j: (term, list_len) at fixed stride 8.
        let t = TermId(raw_u32(payload, 4 + 8 * j));
        let len = raw_u32(payload, 8 + 8 * j) as usize;
        // Advance the wanted cursor (both sides ascend).
        while w < wanted.len() && wanted[w] < t {
            w += 1;
        }
        if w < wanted.len() && wanted[w] == t {
            let max_base = offset + 4 * len;
            let min_base = max_base + 8 * len;
            for i in 0..len {
                let idx = raw_u32(payload, offset + 4 * i) as usize;
                let max = raw_f64(payload, max_base + 8 * i);
                let min = if mode == PostingMode::MaxMin {
                    raw_f64(payload, min_base + 8 * i)
                } else {
                    0.0
                };
                scratch.rows[idx].push((t, max, min));
            }
        }
        offset += len * posting_width;
    }
    debug_assert_eq!(offset, payload.len());
}

/// Columnar twin of [`deserialize_postings_into`]: decodes only the
/// directory and the wanted lists into `scratch`, recording the byte
/// extents it touched in `scratch.touched` (ascending — the caller
/// charges partial pages from them).
fn deserialize_postings_columnar_into(
    payload: &[u8],
    mode: PostingMode,
    wanted: &[TermId],
    num_entries: usize,
    scratch: &mut PostingsScratch,
) {
    scratch.reset_rows(num_entries);
    let PostingsScratch {
        rows,
        touched,
        idxs,
        maxs,
        mins,
        term_ids,
        lens,
        sizes,
    } = scratch;
    touched.clear();
    term_ids.clear();
    lens.clear();
    sizes.clear();
    let c = storage::codec(CodecId::Columnar);
    let mut r = Reader::new(payload);
    let n_terms = r.get_varint_u32() as usize;
    c.get_ascending_u32s(&mut r, n_terms, term_ids);
    for _ in 0..n_terms {
        lens.push(r.get_varint_u32());
    }
    for _ in 0..n_terms {
        sizes.push(r.get_varint_u32());
    }
    let dir_end = r.position();
    touched.push((0, dir_end));
    let mut offset = dir_end;
    let mut w = 0usize;
    for j in 0..n_terms {
        let t = TermId(term_ids[j]);
        let len = lens[j] as usize;
        let end = offset + sizes[j] as usize;
        while w < wanted.len() && wanted[w] < t {
            w += 1;
        }
        if w < wanted.len() && wanted[w] == t {
            r.seek(offset);
            decode_columnar_list_into(&mut r, t, len, mode, idxs, maxs, mins, rows);
            debug_assert_eq!(r.position(), end);
            touched.push((offset, end));
        }
        offset = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use text::{Document, TextScorer, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// A small corpus: 20 objects on a line, term i%3 plus term 3 in all.
    fn corpus() -> (Vec<IndexedObject>, TextScorer, Vec<Document>) {
        let docs: Vec<Document> = (0..20)
            .map(|i| Document::from_terms([t(i % 3), t(3)]))
            .collect();
        let scorer = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let objects = docs
            .iter()
            .enumerate()
            .map(|(i, d)| IndexedObject {
                id: i as u32,
                point: Point::new(i as f64, (i % 5) as f64),
                doc: scorer.weigh(d),
            })
            .collect();
        (objects, scorer, docs)
    }

    fn collect_objects(tree: &StTree, io: &IoStats) -> Vec<(u32, Point)> {
        let mut out = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, io);
            for e in &node.entries {
                match e.child {
                    ChildRef::Node(c) => stack.push(c),
                    ChildRef::Object(o) => out.push((o, e.rect.min)),
                }
            }
        }
        out.sort_by_key(|&(o, _)| o);
        out
    }

    #[test]
    fn roundtrip_all_objects_present() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let got = collect_objects(&tree, &io);
        assert_eq!(got.len(), 20);
        for (i, &(oid, pt)) in got.iter().enumerate() {
            assert_eq!(oid, i as u32);
            assert_eq!(pt, objects[i].point);
        }
        // Every node visit was charged.
        assert!(io.snapshot().node_visits >= 1);
    }

    #[test]
    fn leaf_postings_equal_object_weights() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let mut stack = vec![tree.root()];
        let all_terms: Vec<TermId> = (0..4).map(t).collect();
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            if node.is_leaf {
                let p = tree.read_postings(&node, &all_terms, &io);
                for (i, e) in node.entries.iter().enumerate() {
                    let ChildRef::Object(oid) = e.child else {
                        panic!()
                    };
                    let doc = &objects[oid as usize].doc;
                    let got: Vec<(TermId, f64)> =
                        p.per_entry[i].iter().map(|&(t, mx, _)| (t, mx)).collect();
                    assert_eq!(got, doc.entries);
                    // Leaf min == max.
                    for &(_, mx, mn) in &p.per_entry[i] {
                        assert_eq!(mx, mn);
                    }
                }
            } else {
                for e in &node.entries {
                    if let ChildRef::Node(c) = e.child {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// The core MIR-tree invariant: for every node entry and term, max is
    /// ≥ every descendant weight, and min is a positive lower bound iff the
    /// term is in the subtree intersection.
    #[test]
    fn posting_bounds_dominate_descendants() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let all_terms: Vec<TermId> = (0..4).map(t).collect();

        // Recursively gather descendant object ids per node record.
        fn descendants(tree: &StTree, id: RecordId, io: &IoStats) -> Vec<u32> {
            let node = tree.read_node(id, io);
            let mut out = Vec::new();
            for e in &node.entries {
                match e.child {
                    ChildRef::Object(o) => out.push(o),
                    ChildRef::Node(c) => out.extend(descendants(tree, c, io)),
                }
            }
            out
        }

        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            if node.is_leaf {
                continue;
            }
            let p = tree.read_postings(&node, &all_terms, &io);
            for (i, e) in node.entries.iter().enumerate() {
                let ChildRef::Node(c) = e.child else { panic!() };
                stack.push(c);
                let descs = descendants(&tree, c, &io);
                for &(term, mx, mn) in &p.per_entry[i] {
                    let weights: Vec<f64> = descs
                        .iter()
                        .map(|&o| objects[o as usize].doc.weight(term))
                        .collect();
                    let best = weights.iter().cloned().fold(0.0, f64::max);
                    assert!((mx - best).abs() < 1e-12, "max must equal subtree max");
                    if mn > 0.0 {
                        let worst = weights.iter().cloned().fold(f64::INFINITY, f64::min);
                        assert!((mn - worst).abs() < 1e-12, "min must equal subtree min");
                    } else {
                        assert!(
                            weights.contains(&0.0),
                            "min=0 requires a missing term below"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn max_only_mode_has_smaller_invfiles() {
        let (objects, _, _) = corpus();
        let ir = StTree::build_with_fanout(&objects, PostingMode::MaxOnly, 4);
        let mir = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        assert!(ir.invfile_bytes() < mir.invfile_bytes());
        assert_eq!(ir.node_bytes(), mir.node_bytes());
    }

    /// A node's decoded view plus its full per-entry postings.
    type NodeFingerprint = (NodeView, Vec<Vec<(TermId, f64, f64)>>);

    /// Walks `tree` depth-first and returns every node's decoded view plus
    /// its full postings, in a stable order — the equivalence fingerprint
    /// for cross-codec comparison.
    fn fingerprint(tree: &StTree, terms: &[TermId]) -> Vec<NodeFingerprint> {
        let io = IoStats::new();
        let mut out = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            let p = tree.read_postings(&node, terms, &io);
            for e in &node.entries {
                if let ChildRef::Node(c) = e.child {
                    stack.push(c);
                }
            }
            out.push((node, p.per_entry));
        }
        out
    }

    /// The tentpole contract: both codecs decode to identical trees — same
    /// structure, same rectangles (bit-exact), same postings — while the
    /// columnar encoding is strictly smaller on disk.
    #[test]
    fn columnar_codec_is_lossless_and_smaller() {
        let (objects, _, _) = corpus();
        let all_terms: Vec<TermId> = (0..4).map(t).collect();
        for mode in [PostingMode::MaxOnly, PostingMode::MaxMin] {
            let v = StTree::build_with_fanout_codec(&objects, mode, 4, CodecId::Verbatim);
            let c = StTree::build_with_fanout_codec(&objects, mode, 4, CodecId::Columnar);
            assert_eq!(v.codec(), CodecId::Verbatim);
            assert_eq!(c.codec(), CodecId::Columnar);

            let (fv, fc) = (fingerprint(&v, &all_terms), fingerprint(&c, &all_terms));
            assert_eq!(fv.len(), fc.len(), "{mode:?}: node count");
            for ((nv, pv), (nc, pc)) in fv.iter().zip(&fc) {
                assert_eq!(nv.id, nc.id);
                assert_eq!(nv.is_leaf, nc.is_leaf);
                assert_eq!(nv.entries, nc.entries, "{mode:?}: node {:?}", nv.id);
                assert_eq!(pv, pc, "{mode:?}: postings of node {:?}", nv.id);
            }

            assert!(
                c.node_bytes() < v.node_bytes(),
                "{mode:?}: columnar nodes {} !< verbatim {}",
                c.node_bytes(),
                v.node_bytes()
            );
            assert!(
                c.invfile_bytes() < v.invfile_bytes(),
                "{mode:?}: columnar invfiles {} !< verbatim {}",
                c.invfile_bytes(),
                v.invfile_bytes()
            );
        }
    }

    /// Mutations re-encode with the tree's own codec and stay equivalent.
    #[test]
    fn columnar_codec_survives_mutations() {
        let (objects, _, _) = corpus();
        let all_terms: Vec<TermId> = (0..4).map(t).collect();
        let mut v = StTree::build_with_fanout_codec(
            &objects[..12],
            PostingMode::MaxMin,
            4,
            CodecId::Verbatim,
        );
        let mut c = StTree::build_with_fanout_codec(
            &objects[..12],
            PostingMode::MaxMin,
            4,
            CodecId::Columnar,
        );
        for obj in &objects[12..] {
            v.insert(obj);
            c.insert(obj);
        }
        for obj in &objects[..4] {
            assert!(v.remove(obj.id, obj.point).is_some());
            assert!(c.remove(obj.id, obj.point).is_some());
        }
        let (fv, fc) = (fingerprint(&v, &all_terms), fingerprint(&c, &all_terms));
        assert_eq!(fv.len(), fc.len());
        for ((nv, pv), (nc, pc)) in fv.iter().zip(&fc) {
            assert_eq!(nv.entries, nc.entries);
            assert_eq!(pv, pc);
        }
        assert_eq!(c.codec(), CodecId::Columnar, "codec survives mutations");
    }

    #[test]
    fn io_accounting_per_access() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let root = tree.read_node(tree.root(), &io);
        assert_eq!(io.snapshot().node_visits, 1);
        let before = io.snapshot();
        tree.read_postings(&root, &[t(0)], &io);
        let delta = io.snapshot() - before;
        assert_eq!(delta.node_visits, 0);
        assert!(delta.invfile_blocks >= 1);
    }

    #[test]
    fn postings_filter_terms() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let root = tree.read_node(tree.root(), &io);
        let p = tree.read_postings(&root, &[t(1)], &io);
        for entry in &p.per_entry {
            for &(term, _, _) in entry {
                assert_eq!(term, t(1));
            }
        }
    }

    #[test]
    fn text_first_roundtrip_and_bounds() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_text_first(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let got = collect_objects(&tree, &io);
        assert_eq!(got.len(), 20);
        for (i, &(oid, pt)) in got.iter().enumerate() {
            assert_eq!(oid, i as u32);
            assert_eq!(pt, objects[i].point);
        }
    }

    #[test]
    fn text_first_groups_by_dominant_term() {
        // Objects with rotating dominant terms: text-first leaves should
        // have fewer distinct terms per node invfile than STR leaves on
        // average (coherent vocabularies).
        let (objects, _, _) = corpus();
        let count_leaf_terms = |tree: &StTree| -> usize {
            let io = IoStats::new();
            let all_terms: Vec<TermId> = (0..4).map(t).collect();
            let mut total = 0;
            let mut stack = vec![tree.root()];
            while let Some(id) = stack.pop() {
                let node = tree.read_node(id, &io);
                if node.is_leaf {
                    let p = tree.read_postings(&node, &all_terms, &io);
                    let mut terms = std::collections::HashSet::new();
                    for row in &p.per_entry {
                        for &(term, _, _) in row {
                            terms.insert(term);
                        }
                    }
                    total += terms.len();
                } else {
                    for e in &node.entries {
                        if let ChildRef::Node(c) = e.child {
                            stack.push(c);
                        }
                    }
                }
            }
            total
        };
        let str_tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let txt_tree = StTree::build_text_first(&objects, PostingMode::MaxMin, 4);
        assert!(
            count_leaf_terms(&txt_tree) <= count_leaf_terms(&str_tree),
            "text-first leaves should not have broader vocabularies"
        );
    }

    /// Insertion into the disk-resident tree preserves every invariant:
    /// all objects findable, posting bounds still dominate, splits legal.
    #[test]
    fn dynamic_insert_matches_bulk_build() {
        let (objects, _, _) = corpus();
        // Build from the first 8, insert the remaining 12 one by one.
        let mut tree = StTree::build_with_fanout(&objects[..8], PostingMode::MaxMin, 4);
        for obj in &objects[8..] {
            tree.insert(obj);
        }
        assert_eq!(tree.num_objects(), 20);

        let io = IoStats::new();
        let got = collect_objects(&tree, &io);
        assert_eq!(got.len(), 20);
        for (i, &(oid, pt)) in got.iter().enumerate() {
            assert_eq!(oid, i as u32);
            assert_eq!(pt, objects[i].point);
        }

        // Bound invariant: every node entry's max posting dominates every
        // descendant weight (same check as the bulk-built tree).
        let all_terms: Vec<TermId> = (0..4).map(t).collect();
        fn descendants(tree: &StTree, id: RecordId, io: &IoStats) -> Vec<u32> {
            let node = tree.read_node(id, io);
            let mut out = Vec::new();
            for e in &node.entries {
                match e.child {
                    ChildRef::Object(o) => out.push(o),
                    ChildRef::Node(c) => out.extend(descendants(tree, c, io)),
                }
            }
            out
        }
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.read_node(id, &io);
            assert!(node.entries.len() <= tree.fanout());
            if node.is_leaf {
                continue;
            }
            let p = tree.read_postings(&node, &all_terms, &io);
            for (i, e) in node.entries.iter().enumerate() {
                let ChildRef::Node(c) = e.child else { panic!() };
                stack.push(c);
                for oid in descendants(&tree, c, &io) {
                    let obj = &objects[oid as usize];
                    assert!(e.rect.contains_point(&obj.point), "MBR containment");
                    for &(term, w) in &obj.doc.entries {
                        let posted = p.per_entry[i]
                            .iter()
                            .find(|&&(pt2, _, _)| pt2 == term)
                            .map(|&(_, mx, _)| mx)
                            .unwrap_or(0.0);
                        assert!(posted >= w - 1e-12, "posting max dominates");
                    }
                }
            }
        }
    }

    #[test]
    fn insert_grows_height_when_root_splits() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects[..4], PostingMode::MaxMin, 4);
        let h0 = tree.height();
        for obj in &objects[4..] {
            tree.insert(obj);
        }
        assert!(
            tree.height() > h0,
            "20 objects at fanout 4 need more levels"
        );
        let io = IoStats::new();
        assert_eq!(collect_objects(&tree, &io).len(), 20);
    }

    #[test]
    fn remove_then_query_is_consistent() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        // Remove every even object.
        for obj in objects.iter().filter(|o| o.id % 2 == 0) {
            assert!(
                tree.remove(obj.id, obj.point).is_some(),
                "object {} present",
                obj.id
            );
        }
        assert_eq!(tree.num_objects(), 10);
        let io = IoStats::new();
        let got = collect_objects(&tree, &io);
        let ids: Vec<u32> = got.iter().map(|&(o, _)| o).collect();
        assert_eq!(ids, (0..20).filter(|i| i % 2 == 1).collect::<Vec<_>>());
        // Removing again reports absence.
        assert!(tree.remove(0, objects[0].point).is_none());
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects[..6], PostingMode::MaxMin, 4);
        for obj in &objects[..6] {
            assert!(tree.remove(obj.id, obj.point).is_some());
        }
        assert_eq!(tree.num_objects(), 0);
        // Byte accounting stays live: the empty tree holds exactly one
        // empty leaf root (9-byte node record, 4-byte empty invfile), not
        // the garbage of every superseded record.
        assert_eq!(tree.node_bytes(), 9);
        assert_eq!(tree.invfile_bytes(), 4);
        // The empty tree accepts fresh inserts.
        for obj in &objects {
            tree.insert(obj);
        }
        assert_eq!(tree.num_objects(), 20);
        let io = IoStats::new();
        assert_eq!(collect_objects(&tree, &io).len(), 20);
    }

    #[test]
    fn remove_missing_object_is_noop() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        assert!(tree.remove(999, Point::new(0.0, 0.0)).is_none());
        assert_eq!(tree.num_objects(), 20);
    }

    /// Satellite regression: build → insert → remove must keep the byte
    /// accounting live. Before records were freed, `invfile_bytes()` /
    /// `node_bytes()` grew monotonically with every mutation (superseded
    /// records were still counted); now an insert+remove churn cycle stays
    /// within a small factor of a fresh bulk load over the survivors.
    #[test]
    fn mutation_byte_accounting_does_not_drift() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects[..10], PostingMode::MaxMin, 4);
        for obj in &objects[10..] {
            tree.insert(obj);
        }
        for obj in &objects[..10] {
            assert!(tree.remove(obj.id, obj.point).is_some());
        }
        let fresh = StTree::build_with_fanout(&objects[10..], PostingMode::MaxMin, 4);
        // Same live object set; incremental tree shape may differ (deeper
        // or sparser nodes), but the accounting must track live records,
        // not the append-only history.
        assert!(
            tree.invfile_bytes() <= fresh.invfile_bytes() * 3,
            "incremental {} vs fresh {}: accounting drifted",
            tree.invfile_bytes(),
            fresh.invfile_bytes()
        );
        assert!(tree.node_bytes() <= fresh.node_bytes() * 3);
        // The edits carried maintenance I/O and stale keys.
        let edit = tree.insert(&objects[0]);
        assert!(edit.io_total() > 0);
        assert!(!edit.stale_keys.is_empty());
        let edit = tree.remove(objects[0].id, objects[0].point).unwrap();
        assert!(edit.io_total() > 0);
        assert!(!edit.stale_keys.is_empty());
    }

    /// The rebuild cost of the live tree (`footprint_io`) tracks live
    /// records only.
    #[test]
    fn footprint_io_counts_live_records() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let before = tree.footprint_io();
        assert!(before > 0);
        for obj in objects.iter().take(10) {
            tree.remove(obj.id, obj.point).unwrap();
        }
        assert!(
            tree.footprint_io() < before,
            "half the objects gone, footprint must shrink"
        );
    }

    /// Compaction preserves every object, the live byte footprint and the
    /// posting payloads, while dropping all freed placeholder slots — so a
    /// compacted save reclaims them on disk.
    #[test]
    fn compacted_drops_placeholders_and_preserves_content() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects[..10], PostingMode::MaxMin, 4);
        for obj in &objects[10..] {
            tree.insert(obj);
        }
        for obj in &objects[..6] {
            tree.remove(obj.id, obj.point).unwrap();
        }
        assert!(tree.freed_records() > 0, "churn leaves placeholders");

        let compact = tree.compacted();
        assert_eq!(compact.freed_records(), 0);
        assert_eq!(compact.num_objects(), tree.num_objects());
        assert_eq!(compact.height(), tree.height());
        assert_eq!(compact.node_bytes(), tree.node_bytes());
        assert_eq!(compact.invfile_bytes(), tree.invfile_bytes());
        assert_eq!(compact.footprint_io(), tree.footprint_io());

        let io = IoStats::new();
        assert_eq!(collect_objects(&compact, &io), collect_objects(&tree, &io));

        // The compacted save writes only live records; the plain save
        // keeps one (empty) slot per freed record.
        let base = std::env::temp_dir().join(format!("mbrstk-compact-{}", std::process::id()));
        let plain_dir = base.join("plain");
        let compact_dir = base.join("compact");
        tree.save(&plain_dir).unwrap();
        tree.save_compacted(&compact_dir).unwrap();
        let plain = StTree::load(&plain_dir).unwrap();
        let reopened = StTree::load(&compact_dir).unwrap();
        assert!(
            reopened.nodes.len() < plain.nodes.len(),
            "compacted save must shed placeholder slots"
        );
        assert_eq!(reopened.nodes.len(), reopened.nodes.live_records());
        assert_eq!(collect_objects(&reopened, &io), collect_objects(&tree, &io));
        std::fs::remove_dir_all(base).ok();
    }

    /// The bulk re-weigh splice: structure preserved, re-weighed entries
    /// carry their new payloads, untouched subtrees are copied verbatim
    /// and charged nothing, and the result is bit-identical to a tree
    /// whose *every* object was re-weighed the same way.
    #[test]
    fn splice_reweighed_matches_full_reweigh() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);

        // Re-weigh objects 0 and 13 (different leaves): double weights.
        let mut reweighed: HashMap<u32, WeightedDoc> = HashMap::new();
        let mut full: Vec<IndexedObject> = objects.clone();
        for &id in &[0u32, 13] {
            let doc = WeightedDoc::from_pairs(
                objects[id as usize]
                    .doc
                    .entries
                    .iter()
                    .map(|&(t, w)| (t, w * 2.0))
                    .collect(),
            );
            full[id as usize].doc = doc.clone();
            reweighed.insert(id, doc);
        }
        let (spliced, report) = tree.splice_reweighed(&reweighed);
        assert_eq!(report.reweighed_entries, 2);
        assert!(report.spliced_records > 0, "untouched subtrees spliced");
        assert!(report.io_total() > 0, "rewritten paths are charged");
        assert_eq!(spliced.num_objects(), tree.num_objects());
        assert_eq!(spliced.height(), tree.height());
        assert_eq!(spliced.freed_records(), 0, "fresh files are dense");

        // Every object is still present at its location.
        let io = IoStats::new();
        assert_eq!(
            collect_objects(&spliced, &io)
                .iter()
                .map(|&(o, _)| o)
                .collect::<Vec<_>>(),
            (0..20).collect::<Vec<_>>()
        );

        // Per-node comparison against a tree with every object re-weighed
        // through the same splice machinery (map covering all objects):
        // aggregates must be exact for the new weights.
        let all: HashMap<u32, WeightedDoc> = full.iter().map(|o| (o.id, o.doc.clone())).collect();
        let (reference, _) = tree.splice_reweighed(&all);
        let all_terms: Vec<TermId> = (0..4).map(t).collect();
        let mut stack = vec![(spliced.root(), reference.root())];
        while let Some((a, b)) = stack.pop() {
            let na = spliced.read_node(a, &io);
            let nb = reference.read_node(b, &io);
            assert_eq!(na.is_leaf, nb.is_leaf);
            assert_eq!(na.entries.len(), nb.entries.len());
            let pa = spliced.read_postings(&na, &all_terms, &io);
            let pb = reference.read_postings(&nb, &all_terms, &io);
            assert_eq!(pa.per_entry, pb.per_entry, "aggregates diverged");
            for (ea, eb) in na.entries.iter().zip(&nb.entries) {
                assert_eq!(ea.rect, eb.rect, "splice never moves MBRs");
                match (ea.child, eb.child) {
                    (ChildRef::Object(x), ChildRef::Object(y)) => assert_eq!(x, y),
                    (ChildRef::Node(x), ChildRef::Node(y)) => stack.push((x, y)),
                    _ => panic!("structure diverged"),
                }
            }
        }
    }

    /// An empty re-weigh map splices everything: zero simulated I/O, and
    /// the copy is payload-identical to the source.
    #[test]
    fn splice_reweighed_empty_map_is_pure_splice() {
        let (objects, _, _) = corpus();
        let mut tree = StTree::build_with_fanout(&objects[..12], PostingMode::MaxMin, 4);
        for obj in &objects[12..] {
            tree.insert(obj);
        }
        for obj in &objects[..3] {
            tree.remove(obj.id, obj.point).unwrap();
        }
        assert!(tree.freed_records() > 0);
        let (spliced, report) = tree.splice_reweighed(&HashMap::new());
        assert_eq!(report.io_total(), 0, "verbatim splice charges nothing");
        assert_eq!(report.reweighed_entries, 0);
        assert_eq!(
            report.spliced_records,
            2 * (tree.nodes.live_records() as u64)
        );
        assert_eq!(spliced.freed_records(), 0, "placeholders reclaimed");
        assert_eq!(spliced.node_bytes(), tree.node_bytes());
        assert_eq!(spliced.invfile_bytes(), tree.invfile_bytes());
        let io = IoStats::new();
        assert_eq!(collect_objects(&spliced, &io), collect_objects(&tree, &io));
    }

    /// The bulk ancestor splice: a re-weigh that does not move the
    /// subtree's merged aggregate (another sibling already holds every
    /// maximum, and the minimum is poisoned by a missing term) leaves the
    /// ancestors' inverted files spliced verbatim.
    #[test]
    fn splice_reweighed_keeps_ancestor_invfiles_when_summary_unchanged() {
        // Two-leaf tree: entries 0..4 in one leaf, 4..8 in the other.
        let docs: Vec<Document> = (0..8)
            .map(|i| Document::from_pairs([(t(i % 2), 1 + (i % 4)), (t(3), 1)]))
            .collect();
        let scorer = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let objects: Vec<IndexedObject> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| IndexedObject {
                id: i as u32,
                point: Point::new(i as f64, 0.0),
                doc: scorer.weigh(d),
            })
            .collect();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        assert_eq!(tree.height(), 2);

        // KO weights are all 1; re-weighing object 0 to the same weights
        // it already has cannot change any aggregate, so only its leaf is
        // rewritten and the root's inverted file splices.
        let mut map = HashMap::new();
        map.insert(0u32, objects[0].doc.clone());
        let (spliced, report) = tree.splice_reweighed(&map);
        assert_eq!(report.reweighed_entries, 1);
        assert_eq!(
            report.edit.node_writes, 1,
            "only the touched leaf is rewritten; the root splices"
        );
        let io = IoStats::new();
        assert_eq!(collect_objects(&spliced, &io), collect_objects(&tree, &io));
    }

    #[test]
    fn save_load_roundtrip() {
        let (objects, _, _) = corpus();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let dir = std::env::temp_dir().join(format!("mbrstk-sttree-{}", std::process::id()));
        tree.save(&dir).unwrap();
        let loaded = StTree::load(&dir).unwrap();
        assert_eq!(loaded.mode(), tree.mode());
        assert_eq!(loaded.root(), tree.root());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.num_objects(), tree.num_objects());
        assert_eq!(loaded.invfile_bytes(), tree.invfile_bytes());
        // Query the reopened tree.
        let io = IoStats::new();
        let got = collect_objects(&loaded, &io);
        assert_eq!(got.len(), 20);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn single_object_tree() {
        let (objects, _, _) = corpus();
        let one = &objects[..1];
        let tree = StTree::build(one, PostingMode::MaxMin);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_objects(), 1);
        let io = IoStats::new();
        let root = tree.read_node(tree.root(), &io);
        assert!(root.is_leaf);
        assert_eq!(root.entries.len(), 1);
    }
}
