//! Bookkeeping for incremental index mutations.
//!
//! The disk-resident trees are updated copy-on-write: a mutation rewrites
//! the affected root-to-leaf path as fresh records and frees the
//! superseded ones ([`storage::BlockFile::free`]). [`TreeEdit`] reports
//! what one such mutation did — which page-cache keys went stale (the
//! engine flushes them from any attached [`storage::ShardedLru`]) and how
//! much maintenance I/O the paper's cost model assigns to it (1 simulated
//! I/O per node record touched, ⌈bytes / 4096⌉ per textual payload). That
//! is the number the `figures -- churn` experiment compares against a full
//! rebuild.

/// What one tree mutation did to the disk-resident structure.
#[derive(Debug, Clone, Default)]
pub struct TreeEdit {
    /// Page-cache keys of every record this mutation rewrote or freed.
    /// Stale by construction: the records they name no longer back the
    /// tree, so any cached copy must be flushed.
    pub stale_keys: Vec<u64>,
    /// Simulated I/Os spent *reading* while locating and repairing the
    /// affected path (node records plus their textual payloads).
    pub read_ios: u64,
    /// Node records written (1 simulated I/O each).
    pub node_writes: u64,
    /// 4 KB blocks of textual payload (inverted files / IntUni vectors)
    /// written.
    pub payload_blocks: u64,
}

impl TreeEdit {
    /// Total simulated maintenance I/O (reads plus writes).
    pub fn io_total(&self) -> u64 {
        self.read_ios + self.node_writes + self.payload_blocks
    }

    /// Folds another edit into this one (orphan reinsertion during node
    /// dissolution, or multi-tree engine mutations).
    pub fn absorb(&mut self, other: TreeEdit) {
        self.stale_keys.extend(other.stale_keys);
        self.read_ios += other.read_ios;
        self.node_writes += other.node_writes;
        self.payload_blocks += other.payload_blocks;
    }
}

/// What a bulk re-weigh splice (`StTree::splice_reweighed` /
/// `MiurTree::splice_reweighed`) did.
///
/// The splice rewrites only the root-to-leaf paths containing re-weighed
/// entries; every untouched subtree's records are carried into the new
/// block files *verbatim*. The cost model mirrors a disk allocator that
/// remaps extents instead of rewriting them: verbatim records are counted
/// in [`SpliceReport::spliced_records`] and charged **zero** simulated
/// I/O (record ids are remapped during the copy the way a hard-link /
/// extent-remap would, without touching payload bytes), while rewritten
/// paths pay their reads and writes through the embedded [`TreeEdit`].
/// This is what makes incremental refresh I/O proportional to the number
/// of affected root-to-leaf paths rather than to the corpus size.
#[derive(Debug, Clone, Default)]
pub struct SpliceReport {
    /// Maintenance I/O of the rewritten paths (reads of superseded
    /// records, writes of their replacements).
    pub edit: TreeEdit,
    /// Records (node + payload) copied verbatim into the new block files.
    pub spliced_records: u64,
    /// Leaf entries whose payload was actually replaced.
    pub reweighed_entries: u64,
}

impl SpliceReport {
    /// Total simulated refresh I/O charged to this splice (verbatim
    /// copies are free by the extent-remap model above).
    pub fn io_total(&self) -> u64 {
        self.edit.io_total()
    }

    /// Folds another splice's outcome into this one (one refresh splices
    /// several trees).
    pub fn absorb(&mut self, other: SpliceReport) {
        self.edit.absorb(other.edit);
        self.spliced_records += other.spliced_records;
        self.reweighed_entries += other.reweighed_entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_report_absorb_and_total() {
        let mut a = SpliceReport {
            edit: TreeEdit {
                stale_keys: vec![],
                read_ios: 2,
                node_writes: 1,
                payload_blocks: 1,
            },
            spliced_records: 10,
            reweighed_entries: 3,
        };
        a.absorb(SpliceReport {
            edit: TreeEdit {
                stale_keys: vec![],
                read_ios: 1,
                node_writes: 1,
                payload_blocks: 2,
            },
            spliced_records: 4,
            reweighed_entries: 1,
        });
        assert_eq!(a.io_total(), 8);
        assert_eq!(a.spliced_records, 14);
        assert_eq!(a.reweighed_entries, 4);
    }

    #[test]
    fn absorb_sums_counters_and_concatenates_keys() {
        let mut a = TreeEdit {
            stale_keys: vec![1, 2],
            read_ios: 3,
            node_writes: 2,
            payload_blocks: 1,
        };
        a.absorb(TreeEdit {
            stale_keys: vec![9],
            read_ios: 1,
            node_writes: 1,
            payload_blocks: 4,
        });
        assert_eq!(a.stale_keys, vec![1, 2, 9]);
        assert_eq!(a.io_total(), 3 + 1 + 2 + 1 + 1 + 4);
    }
}
