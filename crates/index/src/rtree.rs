//! The shared R-tree skeleton: STR bulk loading and quadratic-split insert.
//!
//! This is the in-memory *build* structure. The disk layouts ([`crate::StTree`],
//! [`crate::MiurTree`]) are produced by serializing a finished [`BuildTree`];
//! queries never touch this module.

use geo::Rect;

/// Default maximum entries per node.
///
/// A node record stores ~40 bytes per entry (id + MBR + per-entry metadata),
/// so 64 entries keep node records comfortably inside one 4 KB page, the
/// configuration the paper's simulated I/O model assumes.
pub const DEFAULT_MAX_ENTRIES: usize = 64;

/// One item to index: an application id plus its (possibly degenerate) MBR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildItem {
    /// Application identifier (object id or user id).
    pub id: u32,
    /// Bounding rectangle; a point for the paper's datasets.
    pub rect: Rect,
}

/// A node of the in-memory build tree.
#[derive(Debug, Clone)]
pub struct BuildNode {
    /// MBR of everything below this node.
    pub rect: Rect,
    /// Child node indices (inner nodes) — empty for leaves.
    pub children: Vec<usize>,
    /// Indices into the item slice (leaves) — empty for inner nodes.
    pub items: Vec<usize>,
    /// Distance from the leaf level (leaves are 0).
    pub level: u32,
}

impl BuildNode {
    /// True when this node holds items rather than child nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries (children or items).
    pub fn len(&self) -> usize {
        if self.is_leaf() {
            self.items.len()
        } else {
            self.children.len()
        }
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A finished R-tree over a fixed item slice.
///
/// Node indices refer into [`BuildTree::nodes`]; item indices refer into
/// the caller's item slice (which the tree does not own).
#[derive(Debug, Clone)]
pub struct BuildTree {
    /// All nodes; the root is [`BuildTree::root`].
    pub nodes: Vec<BuildNode>,
    /// Index of the root node.
    pub root: usize,
    /// Tree height: 1 for a single leaf root.
    pub height: u32,
    /// Maximum entries per node used during construction.
    pub max_entries: usize,
}

impl BuildTree {
    /// Bulk loads `items` with the Sort-Tile-Recursive algorithm.
    ///
    /// STR produces well-clustered, fully-packed nodes; it is the standard
    /// choice for static spatial-textual collections like the paper's.
    ///
    /// # Panics
    /// Panics when `items` is empty or `max_entries < 2`.
    pub fn bulk_load(items: &[BuildItem], max_entries: usize) -> Self {
        assert!(!items.is_empty(), "cannot bulk load an empty item set");
        assert!(max_entries >= 2, "max_entries must be at least 2");

        let mut nodes: Vec<BuildNode> = Vec::new();

        // --- Leaf level: tile the items. ---
        let mut order: Vec<usize> = (0..items.len()).collect();
        let leaf_groups = str_tile(&mut order, max_entries, |&i| items[i].rect.center());
        let mut level_nodes: Vec<usize> = Vec::with_capacity(leaf_groups.len());
        for group in leaf_groups {
            let rect = Rect::bounding_rects(group.iter().map(|&i| items[i].rect))
                .expect("non-empty group");
            nodes.push(BuildNode {
                rect,
                children: Vec::new(),
                items: group,
                level: 0,
            });
            level_nodes.push(nodes.len() - 1);
        }

        // --- Upper levels: tile the nodes of the level below. ---
        let mut height = 1;
        while level_nodes.len() > 1 {
            let mut order: Vec<usize> = level_nodes.clone();
            let groups = str_tile(&mut order, max_entries, |&n| nodes[n].rect.center());
            let mut next: Vec<usize> = Vec::with_capacity(groups.len());
            for group in groups {
                let rect = Rect::bounding_rects(group.iter().map(|&n| nodes[n].rect))
                    .expect("non-empty group");
                nodes.push(BuildNode {
                    rect,
                    children: group,
                    items: Vec::new(),
                    level: height,
                });
                next.push(nodes.len() - 1);
            }
            level_nodes = next;
            height += 1;
        }

        BuildTree {
            root: level_nodes[0],
            nodes,
            height,
            max_entries,
        }
    }

    /// Checks structural invariants; used by tests and debug builds.
    ///
    /// Verifies that (a) every node's MBR tightly bounds its entries,
    /// (b) no node exceeds `max_entries`, (c) every item appears exactly
    /// once, and (d) levels decrease by one toward the leaves.
    pub fn check_invariants(&self, items: &[BuildItem]) -> Result<(), String> {
        let mut seen = vec![false; items.len()];
        self.check_node(self.root, items, &mut seen)?;
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("item {missing} missing from tree"));
        }
        Ok(())
    }

    fn check_node(&self, n: usize, items: &[BuildItem], seen: &mut [bool]) -> Result<(), String> {
        let node = &self.nodes[n];
        if node.len() > self.max_entries {
            return Err(format!(
                "node {n} has {} > max {} entries",
                node.len(),
                self.max_entries
            ));
        }
        if node.is_empty() {
            return Err(format!("node {n} is empty"));
        }
        if node.is_leaf() {
            let mbr = Rect::bounding_rects(node.items.iter().map(|&i| items[i].rect)).unwrap();
            if mbr != node.rect {
                return Err(format!("leaf {n} MBR is not tight"));
            }
            for &i in &node.items {
                if seen[i] {
                    return Err(format!("item {i} appears twice"));
                }
                seen[i] = true;
            }
        } else {
            let mbr =
                Rect::bounding_rects(node.children.iter().map(|&c| self.nodes[c].rect)).unwrap();
            if mbr != node.rect {
                return Err(format!("inner {n} MBR is not tight"));
            }
            for &c in &node.children {
                if self.nodes[c].level + 1 != node.level {
                    return Err(format!("child {c} level mismatch under {n}"));
                }
                self.check_node(c, items, seen)?;
            }
        }
        Ok(())
    }

    /// Total number of leaf-level item slots (for sanity checks).
    pub fn num_items(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.items.len())
            .sum()
    }
}

/// Sort-Tile-Recursive grouping of `order` (indices) into runs of at most
/// `cap`, tiling by x strips then y within each strip.
fn str_tile<T: Copy>(
    order: &mut [T],
    cap: usize,
    center: impl Fn(&T) -> geo::Point,
) -> Vec<Vec<T>> {
    let n = order.len();
    let num_groups = n.div_ceil(cap);
    let num_strips = (num_groups as f64).sqrt().ceil() as usize;
    let strip_len = n.div_ceil(num_strips);

    order.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));
    let mut groups = Vec::with_capacity(num_groups);
    for strip in order.chunks_mut(strip_len.max(1)) {
        strip.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        for run in strip.chunks(cap) {
            groups.push(run.to_vec());
        }
    }
    groups
}

/// Quadratic-split partition of entry indices (Guttman): seeds are the
/// pair wasting the most area together; remaining entries go to the group
/// needing less enlargement, with a minimum-fill force-assignment. Shared
/// by the disk-resident trees' insertion paths ([`crate::StTree`],
/// [`crate::MiurTree`]).
pub(crate) fn quadratic_partition(rects: &[Rect], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut r1 = rects[s1];
    let mut r2 = rects[s2];
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();
    while let Some(i) = rest.pop() {
        let remaining = rest.len() + 1;
        if g1.len() + remaining <= min_fill {
            for &x in std::iter::once(&i).chain(rest.iter()) {
                g1.push(x);
            }
            break;
        }
        if g2.len() + remaining <= min_fill {
            for &x in std::iter::once(&i).chain(rest.iter()) {
                g2.push(x);
            }
            break;
        }
        let e1 = r1.enlargement(&rects[i]);
        let e2 = r2.enlargement(&rects[i]);
        if e1 < e2 || (e1 == e2 && r1.area() <= r2.area()) {
            g1.push(i);
            r1 = r1.union(&rects[i]);
        } else {
            g2.push(i);
            r2 = r2.union(&rects[i]);
        }
    }
    (g1, g2)
}

/// An incrementally-built R-tree using the classic Guttman insertion path
/// with quadratic split.
///
/// The paper notes the MIR-tree "splitting and merging of the nodes are
/// executed in the same manner as the IR-tree", i.e. plain R-tree updates;
/// this builder provides that dynamic path. Finish with
/// [`RTreeBuilder::finish`] to obtain the same [`BuildTree`] shape the bulk
/// loader produces.
#[derive(Debug)]
pub struct RTreeBuilder {
    items: Vec<BuildItem>,
    nodes: Vec<DynNode>,
    root: usize,
    max_entries: usize,
}

#[derive(Debug, Clone)]
struct DynNode {
    rect: Rect,
    /// Entry ids: node indices for inner, item indices for leaves.
    entries: Vec<usize>,
    level: u32,
}

impl RTreeBuilder {
    /// An empty builder with the given node capacity.
    ///
    /// # Panics
    /// Panics when `max_entries < 4` (quadratic split needs room to
    /// distribute seeds).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        RTreeBuilder {
            items: Vec::new(),
            nodes: vec![DynNode {
                rect: Rect::from_point(geo::Point::new(0.0, 0.0)),
                entries: Vec::new(),
                level: 0,
            }],
            root: 0,
            max_entries,
        }
    }

    /// Number of items inserted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no item has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: BuildItem) {
        let item_idx = self.items.len();
        self.items.push(item);
        if item_idx == 0 {
            self.nodes[self.root].rect = item.rect;
        }
        let leaf = self.choose_leaf(item.rect);
        self.nodes[leaf].entries.push(item_idx);
        self.nodes[leaf].rect = self.nodes[leaf].rect.union(&item.rect);
        if self.nodes[leaf].entries.len() > self.max_entries {
            self.split(leaf);
        } else {
            self.adjust_path(leaf);
        }
    }

    /// Walks from the root picking the child needing least enlargement.
    fn choose_leaf(&self, rect: Rect) -> usize {
        let mut n = self.root;
        loop {
            let node = &self.nodes[n];
            if node.level == 0 {
                return n;
            }
            let target = Rect::from_point(rect.center()).union(&rect);
            let best = node
                .entries
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ea = self.nodes[a].rect.enlargement(&target);
                    let eb = self.nodes[b].rect.enlargement(&target);
                    ea.total_cmp(&eb).then_with(|| {
                        self.nodes[a]
                            .rect
                            .area()
                            .total_cmp(&self.nodes[b].rect.area())
                    })
                })
                .expect("inner node with no children");
            n = best;
        }
    }

    fn entry_rect(&self, node_level: u32, entry: usize) -> Rect {
        if node_level == 0 {
            self.items[entry].rect
        } else {
            self.nodes[entry].rect
        }
    }

    /// Quadratic split of an overfull node, propagating upward.
    fn split(&mut self, n: usize) {
        let level = self.nodes[n].level;
        let entries = std::mem::take(&mut self.nodes[n].entries);
        let rects: Vec<Rect> = entries.iter().map(|&e| self.entry_rect(level, e)).collect();

        // Quadratic seed pick: the pair wasting the most area together.
        let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let min_fill = self.max_entries / 2;
        let mut g1: Vec<usize> = vec![entries[s1]];
        let mut g2: Vec<usize> = vec![entries[s2]];
        let mut r1 = rects[s1];
        let mut r2 = rects[s2];
        let mut rest: Vec<usize> = (0..entries.len()).filter(|&i| i != s1 && i != s2).collect();

        while let Some(pos) = rest.pop() {
            let remaining = rest.len() + 1;
            // Force assignment when one group must take everything left to
            // reach minimum fill.
            if g1.len() + remaining <= min_fill {
                for &p in std::iter::once(&pos).chain(rest.iter()) {
                    g1.push(entries[p]);
                    r1 = r1.union(&rects[p]);
                }
                break;
            }
            if g2.len() + remaining <= min_fill {
                for &p in std::iter::once(&pos).chain(rest.iter()) {
                    g2.push(entries[p]);
                    r2 = r2.union(&rects[p]);
                }
                break;
            }
            let e1 = r1.enlargement(&rects[pos]);
            let e2 = r2.enlargement(&rects[pos]);
            if e1 < e2 || (e1 == e2 && r1.area() <= r2.area()) {
                g1.push(entries[pos]);
                r1 = r1.union(&rects[pos]);
            } else {
                g2.push(entries[pos]);
                r2 = r2.union(&rects[pos]);
            }
        }

        self.nodes[n].entries = g1;
        self.nodes[n].rect = r1;
        let sibling = self.nodes.len();
        self.nodes.push(DynNode {
            rect: r2,
            entries: g2,
            level,
        });

        if n == self.root {
            // Grow a new root.
            let new_root = self.nodes.len();
            self.nodes.push(DynNode {
                rect: r1.union(&r2),
                entries: vec![n, sibling],
                level: level + 1,
            });
            self.root = new_root;
        } else {
            let parent = self.parent_of(n).expect("non-root node must have a parent");
            self.nodes[parent].entries.push(sibling);
            self.recompute_rect(parent);
            if self.nodes[parent].entries.len() > self.max_entries {
                self.split(parent);
            } else {
                self.adjust_path(parent);
            }
        }
    }

    /// Finds the parent by scanning (build-time only; trees are shallow and
    /// splits rare, so the scan is not a hot path).
    fn parent_of(&self, n: usize) -> Option<usize> {
        let level = self.nodes[n].level;
        self.nodes
            .iter()
            .position(|node| node.level == level + 1 && node.entries.contains(&n))
    }

    fn recompute_rect(&mut self, n: usize) {
        let level = self.nodes[n].level;
        let rect = Rect::bounding_rects(
            self.nodes[n]
                .entries
                .iter()
                .map(|&e| self.entry_rect(level, e)),
        )
        .expect("node with no entries");
        self.nodes[n].rect = rect;
    }

    /// Re-tightens MBRs from `n` up to the root.
    fn adjust_path(&mut self, mut n: usize) {
        loop {
            self.recompute_rect(n);
            match self.parent_of(n) {
                Some(p) => n = p,
                None => break,
            }
        }
    }

    /// Finalizes into the canonical [`BuildTree`] shape (plus the item
    /// vector in insertion order).
    ///
    /// # Panics
    /// Panics when no item was inserted.
    pub fn finish(self) -> (Vec<BuildItem>, BuildTree) {
        assert!(!self.items.is_empty(), "cannot finish an empty builder");
        let height = self.nodes[self.root].level + 1;
        let max_entries = self.max_entries;
        let nodes = self
            .nodes
            .iter()
            .map(|d| BuildNode {
                rect: d.rect,
                children: if d.level > 0 {
                    d.entries.clone()
                } else {
                    Vec::new()
                },
                items: if d.level == 0 {
                    d.entries.clone()
                } else {
                    Vec::new()
                },
                level: d.level,
            })
            .collect();
        (
            self.items,
            BuildTree {
                nodes,
                root: self.root,
                height,
                max_entries,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;

    fn grid_items(n: usize) -> Vec<BuildItem> {
        (0..n)
            .map(|i| BuildItem {
                id: i as u32,
                rect: Rect::from_point(Point::new((i % 37) as f64, (i / 37) as f64)),
            })
            .collect()
    }

    #[test]
    fn bulk_load_single_item() {
        let items = grid_items(1);
        let t = BuildTree::bulk_load(&items, 8);
        assert_eq!(t.height, 1);
        assert_eq!(t.num_items(), 1);
        t.check_invariants(&items).unwrap();
    }

    #[test]
    fn bulk_load_one_leaf() {
        let items = grid_items(8);
        let t = BuildTree::bulk_load(&items, 8);
        assert_eq!(t.height, 1);
        t.check_invariants(&items).unwrap();
    }

    #[test]
    fn bulk_load_two_levels() {
        let items = grid_items(50);
        let t = BuildTree::bulk_load(&items, 8);
        assert!(t.height >= 2);
        assert_eq!(t.num_items(), 50);
        t.check_invariants(&items).unwrap();
    }

    #[test]
    fn bulk_load_large() {
        let items = grid_items(5000);
        let t = BuildTree::bulk_load(&items, 16);
        t.check_invariants(&items).unwrap();
        // Packed tree: node count near n/M + n/M² ...
        assert!(t.nodes.len() <= 5000 / 16 * 2 + 4);
    }

    #[test]
    #[should_panic(expected = "empty item set")]
    fn bulk_load_empty_panics() {
        BuildTree::bulk_load(&[], 8);
    }

    #[test]
    fn insert_builds_valid_tree() {
        let mut b = RTreeBuilder::new(4);
        for item in grid_items(100) {
            b.insert(item);
        }
        let (items, t) = b.finish();
        assert_eq!(t.num_items(), 100);
        t.check_invariants(&items).unwrap();
    }

    #[test]
    fn insert_duplicate_locations() {
        let mut b = RTreeBuilder::new(4);
        for i in 0..30 {
            b.insert(BuildItem {
                id: i,
                rect: Rect::from_point(Point::new(1.0, 1.0)),
            });
        }
        let (items, t) = b.finish();
        t.check_invariants(&items).unwrap();
        assert_eq!(t.num_items(), 30);
    }

    #[test]
    fn root_mbr_covers_everything() {
        let items = grid_items(200);
        let t = BuildTree::bulk_load(&items, 8);
        let root = &t.nodes[t.root];
        for it in &items {
            assert!(root.rect.contains_rect(&it.rect));
        }
    }
}
