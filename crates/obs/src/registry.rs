//! Lock-light metrics registry ([`MetricsRegistry`]) and its export
//! surface ([`MetricsSnapshot`], JSON and Prometheus text).
//!
//! Registration (get-or-create) takes a short write lock and returns an
//! `Arc` handle; callers cache the handle, so the *recording* path is pure
//! relaxed atomics — no lock, no lookup, no allocation. Keys are full
//! metric identities in Prometheus notation, e.g.
//! `engine_query_latency_us{method="joint-greedy"}`; the label block is
//! part of the key, so one family fans out across methods/phases while
//! export groups the series back together.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`. Wait-free, allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value. Non-finite values are dropped so the export
    /// surface never emits NaN/inf.
    #[inline]
    pub fn set(&self, v: f64) {
        if v.is_finite() {
            self.0.store(v.to_bits(), Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// Handle store for counters, gauges, and histograms.
///
/// Cheap to share (`Arc` it); `Default` gives an empty registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, key: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("metrics lock poisoned").get(key) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("metrics lock poisoned");
    Arc::clone(w.entry(key.to_string()).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter named `key`. Cache the returned handle;
    /// recording through it never touches the registry again.
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, key)
    }

    /// Get-or-create the gauge named `key`.
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, key)
    }

    /// Get-or-create the histogram named `key`.
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, key)
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Renders the current state in the Prometheus text exposition format
    /// (histograms as summaries). See [`MetricsSnapshot::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// A point-in-time export of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Splits a key into `(family name, label block)`; the label block keeps
/// its braces (empty string when the key has no labels).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Re-renders a label block with one extra label appended.
fn labels_with(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so the output is valid JSON / Prometheus (never NaN
/// or inf; non-finite values render as 0).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl MetricsSnapshot {
    /// Counter value by exact key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Gauge value by exact key.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Histogram snapshot by exact key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(key)
    }

    /// Iterates all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates all gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the snapshot to a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {key:
    /// {"count", "sum", "min", "max", "mean", "p50", "p90", "p99",
    /// "p999"}}}`. Histograms export their summary statistics, not raw
    /// buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), fmt_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                json_escape(k),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                fmt_f64(h.mean()),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the Prometheus text exposition format.
    ///
    /// Counters and gauges emit one sample each; histograms emit a
    /// summary — `quantile="0.5|0.9|0.99|0.999"` samples plus `_sum` and
    /// `_count`. Every non-comment line is `name{labels} value` with a
    /// finite value (no NaN), so the output is scrapable as-is.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        let type_line = |out: &mut String, family: &str, kind: &str, last: &mut &str| {
            if family != *last {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
            }
        };
        for (key, v) in &self.counters {
            let (family, labels) = split_key(key);
            type_line(&mut out, family, "counter", &mut last_family);
            last_family = family;
            out.push_str(&format!("{family}{labels} {v}\n"));
        }
        last_family = "";
        for (key, v) in &self.gauges {
            let (family, labels) = split_key(key);
            type_line(&mut out, family, "gauge", &mut last_family);
            last_family = family;
            out.push_str(&format!("{family}{labels} {}\n", fmt_f64(*v)));
        }
        last_family = "";
        for (key, h) in &self.histograms {
            let (family, labels) = split_key(key);
            type_line(&mut out, family, "summary", &mut last_family);
            last_family = family;
            for (q, v) in [
                ("0.5", h.p50()),
                ("0.9", h.p90()),
                ("0.99", h.p99()),
                ("0.999", h.p999()),
            ] {
                let ql = labels_with(labels, &format!("quantile=\"{q}\""));
                out.push_str(&format!("{family}{ql} {v}\n"));
            }
            out.push_str(&format!("{family}_sum{labels} {}\n", h.sum()));
            out.push_str(&format!("{family}_count{labels} {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("queries_total{method=\"baseline\"}").add(7);
        reg.counter("queries_total{method=\"joint-exact\"}").add(2);
        reg.counter("plain_total").inc();
        reg.gauge("cache_hit_ratio{cache=\"page\"}").set(0.75);
        reg.gauge("nan_guarded").set(f64::NAN); // dropped, stays 0
        let h = reg.histogram("latency_us{method=\"baseline\"}");
        for v in [10, 20, 30, 40, 1000] {
            h.record(v);
        }
        reg.histogram("empty_hist"); // registered, never recorded
        reg
    }

    #[test]
    fn handles_are_shared_and_live() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x"), Some(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_lookup_and_iteration() {
        let snap = seeded().snapshot();
        assert_eq!(snap.counter("queries_total{method=\"baseline\"}"), Some(7));
        assert_eq!(snap.gauge("cache_hit_ratio{cache=\"page\"}"), Some(0.75));
        assert_eq!(snap.gauge("nan_guarded"), Some(0.0));
        let h = snap.histogram("latency_us{method=\"baseline\"}").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(snap.counters().count(), 3);
        assert_eq!(snap.histograms().count(), 2);
    }

    #[test]
    fn json_is_well_formed() {
        let json = seeded().snapshot().to_json();
        // Structural sanity without a JSON parser: balanced braces and
        // quotes, the three sections present, no NaN anywhere.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('"').count() % 2, 0, "unbalanced quotes");
        for section in ["\"counters\":{", "\"gauges\":{", "\"histograms\":{"] {
            assert!(json.contains(section), "missing {section}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));
        assert!(json.contains("\"p999\":"));
    }

    /// CI gate: the Prometheus rendering parses — every non-comment line
    /// is `name{labels} value` with a finite numeric value, every comment
    /// is a well-formed `# TYPE` line, and no NaN leaks through.
    #[test]
    fn prometheus_output_parses() {
        let text = seeded().render_prometheus();
        assert!(!text.is_empty());
        let mut samples = 0;
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("type line has a name");
                let kind = parts.next().expect("type line has a kind");
                assert!(parts.next().is_none());
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
                assert!(["counter", "gauge", "summary"].contains(&kind));
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has name and value");
            let v: f64 = value.parse().expect("sample value parses as f64");
            assert!(v.is_finite(), "non-finite sample: {line}");
            let name_end = series.find('{').unwrap_or(series.len());
            let name = &series[..name_end];
            assert!(!name.is_empty());
            assert!(name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            let labels = &series[name_end..];
            if !labels.is_empty() {
                assert!(labels.starts_with('{') && labels.ends_with('}'));
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("label is key=value");
                    assert!(!k.is_empty());
                    assert!(v.starts_with('"') && v.ends_with('"') && v.len() >= 2);
                }
            }
            samples += 1;
        }
        // 3 counters + 2 gauges + 2 histograms × (4 quantiles + sum + count).
        assert_eq!(samples, 3 + 2 + 2 * 6);
        // Quantile labels merged into existing label blocks correctly.
        assert!(text.contains("latency_us{method=\"baseline\",quantile=\"0.999\"}"));
        assert!(text.contains("empty_hist{quantile=\"0.5\"} 0\n"));
        assert!(text.contains("latency_us_count{method=\"baseline\"} 5\n"));
    }
}
