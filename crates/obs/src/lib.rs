//! # mbrstk_obs
//!
//! Always-on telemetry primitives for the MaxBRSTkNN engine: a
//! lock-light [`MetricsRegistry`] of [`Counter`]s, [`Gauge`]s and
//! log-bucketed mergeable [`Histogram`]s, with a JSON and Prometheus
//! text export surface. `std`-only, no external dependencies.
//!
//! Design goals, in order:
//!
//! 1. **Free on the hot path.** Callers resolve metric handles once
//!    (get-or-create under a short lock) and record through cached
//!    `Arc`s: every record is a handful of relaxed atomic ops — no
//!    locks, no lookups, no allocation. The engine's warm query path
//!    stays allocation-free with telemetry enabled.
//! 2. **Mergeable.** Histograms share one fixed bucket layout
//!    ([`histogram::NUM_BUCKETS`] log buckets, ≤ `2^-SUB_BITS` relative
//!    error), so per-thread or per-shard histograms combine by plain
//!    bucket-wise addition — commutative and associative.
//! 3. **Exportable.** [`MetricsRegistry::snapshot`] freezes everything
//!    into a [`MetricsSnapshot`] for programmatic inspection,
//!    [`MetricsSnapshot::to_json`] serializes it, and
//!    [`MetricsRegistry::render_prometheus`] emits the Prometheus text
//!    exposition format (histograms as summaries with
//!    `p50/p90/p99/p999` quantile samples).
//!
//! ```
//! use mbrstk_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let latency = reg.histogram("query_latency_us{method=\"joint-greedy\"}");
//! latency.record(120);
//! latency.record(95);
//! let snap = reg.snapshot();
//! let h = snap.histogram("query_latency_us{method=\"joint-greedy\"}").unwrap();
//! assert_eq!(h.count(), 2);
//! assert!(h.p99() >= 95);
//! println!("{}", snap.render_prometheus());
//! ```

#![deny(missing_docs)]
#![deny(clippy::redundant_clone)]

pub mod histogram;
mod registry;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
