//! Log-bucketed mergeable latency/size histogram ([`Histogram`]).
//!
//! The bucket layout is *fixed* (no per-instance configuration), so any two
//! histograms — per-thread, per-shard, per-process — merge by plain
//! bucket-wise addition. Values `< 32` get an exact bucket each; above
//! that, every power of two is split into 32 sub-buckets, bounding the
//! relative quantile error at `1/32` (≈ 3.2 %). The full `u64` range maps
//! into [`NUM_BUCKETS`] buckets, so a histogram is ~15 KiB and cheap enough
//! to keep per method × phase.
//!
//! Recording is wait-free: one relaxed `fetch_add` on the bucket plus
//! count/sum/min/max updates, no locks, no allocation — safe inside the
//! allocation-free warm query path (`tests/alloc_free.rs`).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// buckets, so relative error is bounded by `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32 sub-buckets per octave

/// Total number of buckets covering all of `u64`.
///
/// Buckets `0..32` are exact; above, octaves `5..=63` contribute 32
/// buckets each: `32 + 59 * 32 = 1920`.
pub const NUM_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index for a value (total order preserving).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let offset = (v >> (msb - SUB_BITS)) - SUB; // 0..32
        ((msb - SUB_BITS) as u64 * SUB + SUB + offset) as usize
    }
}

/// Inclusive `[lower, upper]` value range of a bucket.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        (idx, idx)
    } else {
        let shift = (idx - SUB) / SUB; // octave above the exact range
        let offset = (idx - SUB) % SUB;
        let lower = (SUB + offset) << shift;
        let upper = lower + ((1u64 << shift) - 1);
        (lower, upper)
    }
}

/// A fixed-layout, thread-safe, mergeable log-bucketed histogram.
///
/// `count` and `sum` are exact (sum saturates at `u64::MAX`); quantiles
/// come from the bucket counts with relative error ≤ `2^-SUB_BITS`.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Relaxed))
            .field("sum", &self.sum.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram (allocates its bucket array once, here).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // Saturate the sum on overflow (best-effort under concurrency;
        // only reachable with values near u64::MAX).
        let prev = self.sum.fetch_add(v, Relaxed);
        if prev.checked_add(v).is_none() {
            self.sum.store(u64::MAX, Relaxed);
        }
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram into this one by bucket-wise addition.
    pub fn merge_from(&self, other: &HistogramSnapshot) {
        for (b, &n) in self.buckets.iter().zip(other.buckets.iter()) {
            if n != 0 {
                b.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count, Relaxed);
        let prev = self.sum.fetch_add(other.sum, Relaxed);
        if prev.checked_add(other.sum).is_none() {
            self.sum.store(u64::MAX, Relaxed);
        }
        if other.count > 0 {
            self.min.fetch_min(other.min, Relaxed);
            self.max.fetch_max(other.max, Relaxed);
        }
    }

    /// Point-in-time copy of the counters (each counter individually
    /// consistent; concurrent recording may tear across counters).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }
}

/// A plain (non-atomic) copy of a [`Histogram`]: quantile queries, merge
/// algebra, and the unit of export in [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (saturating) sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`0` when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (`0.0` when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`, with relative error bounded by
    /// `2^-SUB_BITS`. Returns `0` for an empty histogram — never NaN.
    ///
    /// The returned value is the upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` value, clamped to the observed `[min, max]` range
    /// (exact for values `< 32`, which get singleton buckets).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                let (_, upper) = bucket_bounds(idx);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges `other` into `self` by bucket-wise (saturating) addition.
    ///
    /// Because the bucket layout is fixed, merging is commutative and
    /// associative — per-thread or per-shard histograms combine into the
    /// same global histogram regardless of order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_tight() {
        // Exhaustive at the low end, sampled elsewhere (including edges).
        let mut probes: Vec<u64> = (0..4096).collect();
        let mut x = splitmix::SplitMix64(0xb0c4);
        for _ in 0..20_000 {
            probes.push(x.next_u64());
        }
        for shift in 0..64 {
            probes.push(1u64 << shift);
            probes.push((1u64 << shift).wrapping_sub(1));
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut prev_idx = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= prev_idx, "index not monotone at {v}");
            prev_idx = idx;
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
            // Relative width bound: (hi - lo) <= lo / 32 for log buckets.
            if idx as u64 >= SUB {
                assert!(hi - lo <= lo >> SUB_BITS, "bucket too wide at {v}");
            } else {
                assert_eq!(lo, hi);
            }
        }
    }

    #[test]
    fn every_bucket_roundtrips_through_its_bounds() {
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if idx + 1 < NUM_BUCKETS {
                let (next_lo, _) = bucket_bounds(idx + 1);
                assert_eq!(hi + 1, next_lo, "gap/overlap after bucket {idx}");
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    /// Property: for a recorded population, the reported quantile is within
    /// the bucket relative-error bound of the true order statistic.
    #[test]
    fn quantiles_are_within_relative_error_bound() {
        let mut x = splitmix::SplitMix64(0x51a7);
        // Mixed scales: small exact values, mid-range, heavy tail.
        let mut values: Vec<u64> = Vec::new();
        for i in 0..5000u64 {
            values.push(match i % 4 {
                0 => x.next_u64() % 32,
                1 => 100 + x.next_u64() % 10_000,
                2 => 1_000_000 + x.next_u64() % 1_000_000_000,
                _ => x.next_u64() >> (x.next_u64() % 40),
            });
        }
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        values.sort_unstable();
        for &q in &[0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let got = snap.quantile(q);
            // Reported value lies in the bucket containing the true order
            // statistic, so relative error <= 2^-SUB_BITS.
            let (lo, hi) = bucket_bounds(bucket_index(truth));
            assert!(
                got >= lo && got <= hi,
                "q={q}: got {got}, truth {truth} in bucket [{lo}, {hi}]"
            );
            let err = got.abs_diff(truth) as f64;
            let bound = (truth >> SUB_BITS).max(1) as f64;
            assert!(err <= bound, "q={q}: |{got} - {truth}| > {bound}");
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut x = splitmix::SplitMix64(0xfeed);
        let make = |x: &mut splitmix::SplitMix64, n: usize| {
            let h = Histogram::new();
            for _ in 0..n {
                h.record(x.next_u64() >> (x.next_u64() % 50));
            }
            h.snapshot()
        };
        let (a, b, c) = (make(&mut x, 400), make(&mut x, 700), make(&mut x, 123));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge not commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge not associative");
        assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn merge_from_matches_snapshot_merge() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        for v in [0, 1, 31, 32, 33, 1000, 123_456_789, u64::MAX] {
            h1.record(v);
            h2.record(v.wrapping_mul(3) | 1);
        }
        let global = Histogram::new();
        global.merge_from(&h1.snapshot());
        global.merge_from(&h2.snapshot());
        let mut expect = h1.snapshot();
        expect.merge(&h2.snapshot());
        assert_eq!(global.snapshot(), expect);
    }

    #[test]
    fn u64_overflow_edges() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), u64::MAX);
        assert_eq!(snap.quantile(1.0), u64::MAX);
        assert_eq!(snap.quantile(0.0), 0);

        // Saturating merge: count/sum pin at u64::MAX, quantiles stay sane.
        let mut a = snap.clone();
        a.merge(&snap);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 6);
        assert_eq!(a.p999(), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zeros_and_nan_free() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.sum(), 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p999(), 0);
        assert!(snap.mean() == 0.0);
    }

    #[test]
    fn exact_sum_reconciles_with_inputs() {
        let mut x = splitmix::SplitMix64(7);
        let h = Histogram::new();
        let mut total = 0u64;
        for _ in 0..10_000 {
            let v = x.next_u64() % 1_000_000;
            total += v;
            h.record(v);
        }
        assert_eq!(h.sum(), total);
        assert_eq!(h.snapshot().sum(), total);
    }
}
