//! The paper's user-generation protocol (§8, "Datasets and user
//! generation").
//!
//! > "First, an area of a fixed size is chosen and a pre-defined number
//! > (`|U|`) of objects `Ou` in that area are taken randomly. The
//! > locations of the objects are used as the locations of the users.
//! > Then, `UW` keywords are randomly selected from `Ou` as the set of the
//! > user keywords. These keywords are distributed among the users such
//! > that each user has `UL` number of keywords following the same
//! > distribution of keywords of `Ou`. [...] The set of keywords `UW` is
//! > used as the set of candidate keywords."

use crate::rng::{Rng, SeedableRng, SliceRandom, StdRng};
use geo::{Point, Rect};
use mbrstk_core::{ObjectData, UserData};
use text::{Document, TermId};

/// Configuration of one generated user set / query workload.
#[derive(Debug, Clone)]
pub struct UserGenConfig {
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Window side length (the paper's `Area`, in dataspace units).
    pub area: f64,
    /// Number of distinct user keywords `UW` (also the candidate set `W`).
    pub uw: usize,
    /// Keywords per user `UL`.
    pub ul: usize,
    /// Number of candidate locations `|L|`.
    pub num_locations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl UserGenConfig {
    /// The paper's default setting (Table 5 bold values; `|L| = 50`).
    pub fn paper_default() -> Self {
        UserGenConfig {
            num_users: 1_000,
            area: 5.0,
            uw: 20,
            ul: 3,
            num_locations: 50,
            seed: 7,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated workload: users plus the candidate sets of Definition 1.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The user set `U`.
    pub users: Vec<UserData>,
    /// Candidate keywords `W` (= the `UW` pool), ascending.
    pub candidate_keywords: Vec<TermId>,
    /// Candidate locations `L`, inside the window.
    pub candidate_locations: Vec<Point>,
    /// The chosen `Area × Area` window.
    pub window: Rect,
}

/// Runs the protocol over a generated object collection.
///
/// # Panics
/// Panics when `objects` is empty or the config asks for zero users.
pub fn generate_workload(objects: &[ObjectData], cfg: &UserGenConfig) -> Workload {
    assert!(!objects.is_empty(), "workload needs objects");
    assert!(cfg.num_users > 0, "workload needs users");
    assert!(cfg.ul > 0, "users need at least one keyword");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Pick the window around a random object so it is never empty; clamp
    // to the dataspace.
    let space = Rect::bounding(objects.iter().map(|o| o.point)).unwrap();
    let anchor = objects[rng.gen_range(0..objects.len())].point;
    let half = cfg.area / 2.0;
    let cx = anchor.x.clamp(
        space.min.x + half,
        (space.max.x - half).max(space.min.x + half),
    );
    let cy = anchor.y.clamp(
        space.min.y + half,
        (space.max.y - half).max(space.min.y + half),
    );
    let window = Rect::new(
        Point::new(cx - half, cy - half),
        Point::new(cx + half, cy + half),
    );

    // Objects inside the window; pad with the nearest outside objects when
    // the window is under-populated (small synthetic collections).
    let mut ou: Vec<&ObjectData> = objects
        .iter()
        .filter(|o| window.contains_point(&o.point))
        .collect();
    if ou.len() < cfg.num_users {
        let mut rest: Vec<&ObjectData> = objects
            .iter()
            .filter(|o| !window.contains_point(&o.point))
            .collect();
        let c = window.center();
        rest.sort_by(|a, b| a.point.dist_sq(&c).total_cmp(&b.point.dist_sq(&c)));
        ou.extend(rest.into_iter().take(cfg.num_users - ou.len()));
    }

    // UW pool: distinct keywords sampled from Ou, weighted by occurrence.
    let mut occurrences: Vec<TermId> = ou.iter().flat_map(|o| o.doc.terms()).collect();
    occurrences.shuffle(&mut rng);
    let mut pool: Vec<TermId> = Vec::with_capacity(cfg.uw);
    for &t in &occurrences {
        if !pool.contains(&t) {
            pool.push(t);
            if pool.len() == cfg.uw {
                break;
            }
        }
    }
    assert!(
        !pool.is_empty(),
        "window objects carry no keywords — enlarge the collection"
    );

    // Occurrence counts of the pool keywords within Ou — "the same
    // distribution of keywords of Ou".
    let weights: Vec<f64> = pool
        .iter()
        .map(|&t| 1.0 + ou.iter().filter(|o| o.doc.contains(t)).count() as f64)
        .collect();
    let total_w: f64 = weights.iter().sum();

    // User locations: |U| random objects of Ou (with replacement when Ou
    // is smaller than |U|).
    let users: Vec<UserData> = (0..cfg.num_users)
        .map(|i| {
            let src = ou[rng.gen_range(0..ou.len())];
            // UL keywords, weighted without replacement within the user.
            let mut chosen: Vec<TermId> = Vec::with_capacity(cfg.ul);
            let mut guard = 0;
            while chosen.len() < cfg.ul.min(pool.len()) && guard < 50 * cfg.ul {
                guard += 1;
                let mut x = rng.gen::<f64>() * total_w;
                let mut pick = pool.len() - 1;
                for (j, &w) in weights.iter().enumerate() {
                    if x < w {
                        pick = j;
                        break;
                    }
                    x -= w;
                }
                if !chosen.contains(&pool[pick]) {
                    chosen.push(pool[pick]);
                }
            }
            UserData {
                id: i as u32,
                point: src.point,
                doc: Document::from_terms(chosen),
            }
        })
        .collect();

    // Candidate locations: uniform in the window.
    let candidate_locations: Vec<Point> = (0..cfg.num_locations)
        .map(|_| {
            Point::new(
                rng.gen_range(window.min.x..=window.max.x),
                rng.gen_range(window.min.y..=window.max.y),
            )
        })
        .collect();

    let mut candidate_keywords = pool;
    candidate_keywords.sort_unstable();

    Workload {
        users,
        candidate_keywords,
        candidate_locations,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_objects, CorpusConfig};

    fn objects() -> Vec<ObjectData> {
        generate_objects(&CorpusConfig::flickr_like(3_000))
    }

    fn cfg() -> UserGenConfig {
        UserGenConfig {
            num_users: 100,
            area: 10.0,
            uw: 15,
            ul: 3,
            num_locations: 10,
            seed: 11,
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let objs = objects();
        let a = generate_workload(&objs, &cfg());
        let b = generate_workload(&objs, &cfg());
        assert_eq!(a.candidate_keywords, b.candidate_keywords);
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.doc, y.doc);
        }
    }

    #[test]
    fn respects_cardinalities() {
        let objs = objects();
        let w = generate_workload(&objs, &cfg());
        assert_eq!(w.users.len(), 100);
        assert!(w.candidate_keywords.len() <= 15);
        assert_eq!(w.candidate_locations.len(), 10);
        for u in &w.users {
            assert!(u.doc.num_terms() <= 3);
            assert!(u.doc.num_terms() >= 1);
        }
    }

    #[test]
    fn user_keywords_come_from_the_pool() {
        let objs = objects();
        let w = generate_workload(&objs, &cfg());
        for u in &w.users {
            for t in u.doc.terms() {
                assert!(w.candidate_keywords.contains(&t));
            }
        }
    }

    #[test]
    fn window_has_requested_size() {
        let objs = objects();
        let w = generate_workload(&objs, &cfg());
        assert!((w.window.width() - 10.0).abs() < 1e-9);
        assert!((w.window.height() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn candidate_locations_inside_window() {
        let objs = objects();
        let w = generate_workload(&objs, &cfg());
        for l in &w.candidate_locations {
            assert!(w.window.contains_point(l));
        }
    }

    #[test]
    fn larger_area_spreads_users() {
        let objs = objects();
        let tight = generate_workload(&objs, &UserGenConfig { area: 2.0, ..cfg() });
        let wide = generate_workload(
            &objs,
            &UserGenConfig {
                area: 30.0,
                ..cfg()
            },
        );
        let spread = |w: &Workload| {
            Rect::bounding(w.users.iter().map(|u| u.point))
                .unwrap()
                .diagonal()
        };
        assert!(spread(&wide) > spread(&tight));
    }

    #[test]
    fn users_sit_on_object_locations() {
        let objs = objects();
        let w = generate_workload(&objs, &cfg());
        for u in &w.users {
            assert!(
                objs.iter().any(|o| o.point == u.point),
                "user location must come from an object"
            );
        }
    }
}
