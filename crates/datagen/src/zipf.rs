//! A Zipf-distributed sampler over ranked items.
//!
//! Term usage in tag collections and review corpora is heavily skewed; a
//! Zipf law with exponent near 1 is the standard model. The sampler
//! precomputes the CDF once and draws by binary search, so sampling is
//! O(log n) with no per-draw allocation.

use crate::rng::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no ranks (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
        // Roughly Zipfian head: rank 0 ≈ 2× rank 1.
        assert!(counts[0] as f64 > 1.5 * counts[1] as f64);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "uniform check failed: {p}");
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
