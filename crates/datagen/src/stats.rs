//! Dataset statistics — the paper's Table 4.

use mbrstk_core::ObjectData;
use std::collections::HashSet;

/// The four rows of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// "Total objects".
    pub total_objects: usize,
    /// "Total unique terms".
    pub total_unique_terms: usize,
    /// "Avg unique terms per object".
    pub avg_unique_terms_per_object: f64,
    /// "Total terms in dataset" (token count).
    pub total_terms: u64,
}

/// Computes the Table-4 statistics of a collection.
pub fn dataset_stats(objects: &[ObjectData]) -> DatasetStats {
    let mut vocab = HashSet::new();
    let mut distinct_sum = 0usize;
    let mut tokens = 0u64;
    for o in objects {
        distinct_sum += o.doc.num_terms();
        tokens += o.doc.len();
        vocab.extend(o.doc.terms());
    }
    DatasetStats {
        total_objects: objects.len(),
        total_unique_terms: vocab.len(),
        avg_unique_terms_per_object: if objects.is_empty() {
            0.0
        } else {
            distinct_sum as f64 / objects.len() as f64
        },
        total_terms: tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_objects, CorpusConfig};
    use geo::Point;
    use text::{Document, TermId};

    #[test]
    fn manual_collection() {
        let objects = vec![
            ObjectData {
                id: 0,
                point: Point::new(0.0, 0.0),
                doc: Document::from_pairs([(TermId(0), 2), (TermId(1), 1)]),
            },
            ObjectData {
                id: 1,
                point: Point::new(1.0, 1.0),
                doc: Document::from_pairs([(TermId(1), 3)]),
            },
        ];
        let s = dataset_stats(&objects);
        assert_eq!(s.total_objects, 2);
        assert_eq!(s.total_unique_terms, 2);
        assert_eq!(s.avg_unique_terms_per_object, 1.5);
        assert_eq!(s.total_terms, 6);
    }

    #[test]
    fn flickr_like_shape() {
        let s = dataset_stats(&generate_objects(&CorpusConfig::flickr_like(2_000)));
        assert_eq!(s.total_objects, 2_000);
        assert!((5.0..9.0).contains(&s.avg_unique_terms_per_object));
        // Tag sets: tokens == distinct occurrences.
        assert_eq!(
            s.total_terms,
            (s.avg_unique_terms_per_object * 2_000.0).round() as u64
        );
    }

    #[test]
    fn empty_collection() {
        let s = dataset_stats(&[]);
        assert_eq!(s.total_objects, 0);
        assert_eq!(s.avg_unique_terms_per_object, 0.0);
    }
}
