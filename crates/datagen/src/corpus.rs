//! Object-collection generators: Flickr-like and Yelp-like.

use crate::rng::{Rng, SeedableRng, StdRng};
use geo::{Point, Rect};
use mbrstk_core::ObjectData;
use text::{Document, TermId};

use crate::Zipf;

/// Configuration of a synthetic object collection.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of objects `|O|`.
    pub num_objects: usize,
    /// Vocabulary size to draw terms from.
    pub vocab_size: usize,
    /// Mean number of *distinct* terms per object (Table 4: Flickr 6.9,
    /// Yelp 398.7).
    pub avg_terms: f64,
    /// Maximum term frequency (1 for tag sets; larger for review text).
    pub max_tf: u32,
    /// Number of spatial clusters ("cities").
    pub num_clusters: usize,
    /// Cluster spread as a fraction of the dataspace side.
    pub cluster_std: f64,
    /// The dataspace.
    pub space: Rect,
    /// Zipf exponent for term popularity.
    pub zipf_s: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl CorpusConfig {
    /// A Flickr-like collection: short tag sets (avg ≈ 6.9 distinct terms,
    /// tf = 1), large vocabulary, strongly clustered geo-tags.
    pub fn flickr_like(num_objects: usize) -> Self {
        CorpusConfig {
            num_objects,
            // Table 4: 166 K unique terms over 1 M objects → scale the
            // vocabulary with the collection, floor for small runs.
            vocab_size: (num_objects / 6).clamp(1_000, 200_000),
            avg_terms: 6.9,
            max_tf: 1,
            num_clusters: 40,
            cluster_std: 0.02,
            space: Rect::new(Point::new(0.0, 0.0), Point::new(60.0, 60.0)),
            zipf_s: 1.0,
            seed: 42,
        }
    }

    /// A Yelp-like collection: few objects with very long documents
    /// (avg ≈ 398.7 distinct terms, repeated terms), businesses clustered
    /// in a handful of metro areas.
    pub fn yelp_like(num_objects: usize) -> Self {
        CorpusConfig {
            num_objects,
            vocab_size: (num_objects * 4).clamp(2_000, 270_000),
            avg_terms: 398.7,
            max_tf: 8,
            num_clusters: 10,
            cluster_std: 0.015,
            space: Rect::new(Point::new(0.0, 0.0), Point::new(60.0, 60.0)),
            zipf_s: 0.9,
            seed: 43,
        }
    }

    /// Overrides the seed (each of the paper's 100 user sets uses a fresh
    /// seed; so can object collections).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates the object collection.
pub fn generate_objects(cfg: &CorpusConfig) -> Vec<ObjectData> {
    assert!(cfg.num_objects > 0, "num_objects must be positive");
    assert!(cfg.vocab_size > 0, "vocab_size must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.vocab_size, cfg.zipf_s);

    // Cluster centers.
    let centers: Vec<Point> = (0..cfg.num_clusters.max(1))
        .map(|_| uniform_point(&mut rng, &cfg.space))
        .collect();
    let spread_x = cfg.space.width() * cfg.cluster_std;
    let spread_y = cfg.space.height() * cfg.cluster_std;

    (0..cfg.num_objects)
        .map(|i| {
            // 85% clustered, 15% background uniform — tag collections have
            // both dense cities and a rural tail.
            let point = if rng.gen_bool(0.85) {
                let c = centers[rng.gen_range(0..centers.len())];
                clamp_point(
                    Point::new(
                        c.x + gaussian(&mut rng) * spread_x,
                        c.y + gaussian(&mut rng) * spread_y,
                    ),
                    &cfg.space,
                )
            } else {
                uniform_point(&mut rng, &cfg.space)
            };

            // Distinct term count: uniform in [avg/2, 3·avg/2], ≥ 1.
            let lo = (cfg.avg_terms / 2.0).max(1.0);
            let hi = (cfg.avg_terms * 1.5).max(lo + 1.0);
            let n_terms = rng.gen_range(lo..hi).round() as usize;

            let mut pairs: Vec<(TermId, u32)> = Vec::with_capacity(n_terms);
            let mut tries = 0;
            while pairs.len() < n_terms && tries < n_terms * 20 {
                tries += 1;
                let t = TermId(zipf.sample(&mut rng) as u32);
                if pairs.iter().any(|&(x, _)| x == t) {
                    continue;
                }
                let tf = if cfg.max_tf <= 1 {
                    1
                } else {
                    // Skew frequencies toward 1.
                    1 + (rng.gen::<f64>().powi(3) * (cfg.max_tf - 1) as f64).round() as u32
                };
                pairs.push((t, tf));
            }

            ObjectData {
                id: i as u32,
                point,
                doc: Document::from_pairs(pairs),
            }
        })
        .collect()
}

fn uniform_point(rng: &mut StdRng, space: &Rect) -> Point {
    Point::new(
        rng.gen_range(space.min.x..=space.max.x),
        rng.gen_range(space.min.y..=space.max.y),
    )
}

fn clamp_point(p: Point, space: &Rect) -> Point {
    Point::new(
        p.x.clamp(space.min.x, space.max.x),
        p.y.clamp(space.min.y, space.max.y),
    )
}

/// Standard normal via Box–Muller (avoids an extra dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = CorpusConfig::flickr_like(500);
        let a = generate_objects(&cfg);
        let b = generate_objects(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.doc, y.doc);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_objects(&CorpusConfig::flickr_like(200));
        let b = generate_objects(&CorpusConfig::flickr_like(200).with_seed(7));
        assert!(a.iter().zip(&b).any(|(x, y)| x.point != y.point));
    }

    #[test]
    fn flickr_statistics_match_table4_shape() {
        let objs = generate_objects(&CorpusConfig::flickr_like(2_000));
        assert_eq!(objs.len(), 2_000);
        let avg: f64 =
            objs.iter().map(|o| o.doc.num_terms() as f64).sum::<f64>() / objs.len() as f64;
        assert!((5.0..9.0).contains(&avg), "avg distinct terms {avg}");
        // Tag sets: every tf is 1.
        for o in &objs {
            for &(_, tf) in o.doc.entries() {
                assert_eq!(tf, 1);
            }
        }
    }

    #[test]
    fn yelp_documents_are_long_with_repeats() {
        let objs = generate_objects(&CorpusConfig::yelp_like(60));
        let avg: f64 =
            objs.iter().map(|o| o.doc.num_terms() as f64).sum::<f64>() / objs.len() as f64;
        assert!(avg > 200.0, "avg distinct terms {avg}");
        assert!(
            objs.iter()
                .any(|o| o.doc.entries().iter().any(|&(_, tf)| tf > 1)),
            "review text should repeat terms"
        );
    }

    #[test]
    fn points_stay_in_dataspace() {
        let cfg = CorpusConfig::flickr_like(1_000);
        for o in generate_objects(&cfg) {
            assert!(cfg.space.contains_point(&o.point));
        }
    }

    #[test]
    fn ids_are_dense() {
        let objs = generate_objects(&CorpusConfig::flickr_like(100));
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(o.id, i as u32);
        }
    }

    #[test]
    fn popular_terms_dominate() {
        let objs = generate_objects(&CorpusConfig::flickr_like(2_000));
        let mut df = std::collections::HashMap::<TermId, usize>::new();
        for o in &objs {
            for t in o.doc.terms() {
                *df.entry(t).or_default() += 1;
            }
        }
        let head = df.get(&TermId(0)).copied().unwrap_or(0);
        let tail = df.get(&TermId(900)).copied().unwrap_or(0);
        assert!(head > tail, "Zipf head {head} should beat tail {tail}");
    }
}
