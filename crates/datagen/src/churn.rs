//! Churn workload generation: mixed insert/delete/query streams.
//!
//! Real advert/POI inventories are never static — placements expire,
//! venues open and close, users appear and churn. This module generates
//! deterministic operation streams against an existing collection for the
//! dynamic-update subsystem ([`mbrstk_core::dynamic`]): a configurable
//! fraction of operations are mutations (split between inserts and
//! removes, objects and users), the rest are queries the driver answers
//! against the live engine. The `figures -- churn` experiment measures
//! query throughput and maintenance cost as the update ratio grows.

use crate::rng::{Rng, SeedableRng, StdRng};
use geo::Rect;
use mbrstk_core::{Mutation, ObjectData, UserData};
use text::{Document, TermId};

/// Configuration of one generated churn stream.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total operations in the stream (queries + mutations).
    pub ops: usize,
    /// Fraction of operations that are mutations, in `[0, 1]`.
    pub update_ratio: f64,
    /// Among mutations, the fraction targeting users (the rest hit
    /// objects).
    pub user_fraction: f64,
    /// Among mutations, the fraction that insert (the rest remove).
    pub insert_fraction: f64,
    /// Distinct keywords per generated document (inserted objects and
    /// users), at least 1.
    pub doc_terms: usize,
    /// Probability that each keyword draw takes the *first* pool term
    /// instead of a uniform one, in `[0, 1]`. 0 (the default) reproduces
    /// the balanced uniform stream; values near 1 flood one term, walking
    /// the live corpus statistics (`cf/|C|`, `df`) away from any frozen
    /// scorer as fast as possible.
    pub term_skew: f64,
    /// Term frequency given to every keyword of an inserted document
    /// (minimum 1). Values above 1 shift the collection frequency harder
    /// per mutation — drift-heavy streams use this.
    pub term_repeats: u32,
    /// RNG seed; equal seeds give equal streams.
    pub seed: u64,
}

impl ChurnConfig {
    /// A balanced default: mutations split evenly between inserts and
    /// removes, a quarter of them on the user side.
    pub fn new(ops: usize, update_ratio: f64) -> Self {
        ChurnConfig {
            ops,
            update_ratio,
            user_fraction: 0.25,
            insert_fraction: 0.5,
            doc_terms: 3,
            term_skew: 0.0,
            term_repeats: 1,
            seed: 77,
        }
    }

    /// A drift-heavy preset: mutation-only, insert-dominant churn whose
    /// inserted documents flood the first pool term with repeated
    /// occurrences. This is the adversarial workload for a frozen scorer
    /// — `cf/|C|` and `df` move with almost every mutation — and the one
    /// the corpus-refresh subsystem (`mbrstk_core::refresh`) exists to
    /// absorb.
    pub fn drift_heavy(ops: usize) -> Self {
        ChurnConfig {
            user_fraction: 0.05,
            insert_fraction: 0.85,
            doc_terms: 2,
            term_skew: 0.85,
            term_repeats: 4,
            ..ChurnConfig::new(ops, 1.0)
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One operation of a churn stream.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Answer one query against the current engine state (the driver
    /// picks the spec).
    Query,
    /// Apply one mutation.
    Mutate(Mutation),
}

/// Generates a churn stream against the given initial collection.
///
/// The stream is *self-consistent*: removals always name an id that is
/// live at that point of the stream (initial ids or earlier inserts), and
/// inserted ids are fresh. The live populations never drop below 2, so
/// applying the stream can never empty an engine. Inserted objects and
/// users draw their locations uniformly from the initial objects' bounding
/// box and their keywords from `pool`.
///
/// # Panics
/// Panics when `objects`, `users` or `pool` is empty.
pub fn generate_churn(
    objects: &[ObjectData],
    users: &[UserData],
    pool: &[TermId],
    cfg: &ChurnConfig,
) -> Vec<ChurnOp> {
    assert!(!objects.is_empty(), "churn needs an initial object set");
    assert!(!users.is_empty(), "churn needs an initial user set");
    assert!(!pool.is_empty(), "churn needs a keyword pool");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let space = Rect::bounding(objects.iter().map(|o| o.point)).unwrap();

    let mut live_objects: Vec<u32> = objects.iter().map(|o| o.id).collect();
    let mut live_users: Vec<u32> = users.iter().map(|u| u.id).collect();
    let mut next_object = live_objects.iter().max().unwrap() + 1;
    let mut next_user = live_users.iter().max().unwrap() + 1;

    let doc = |rng: &mut StdRng| {
        let want = cfg.doc_terms.max(1).min(pool.len());
        let mut terms: Vec<TermId> = Vec::with_capacity(want);
        let mut guard = 0;
        while terms.len() < want && guard < 50 * want {
            guard += 1;
            let t = if cfg.term_skew > 0.0 && rng.gen::<f64>() < cfg.term_skew {
                pool[0]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        let tf = cfg.term_repeats.max(1);
        Document::from_pairs(terms.into_iter().map(|t| (t, tf)).collect::<Vec<_>>())
    };
    let point = |rng: &mut StdRng| {
        geo::Point::new(
            rng.gen_range(space.min.x..=space.max.x),
            rng.gen_range(space.min.y..=space.max.y),
        )
    };

    (0..cfg.ops)
        .map(|_| {
            if rng.gen::<f64>() >= cfg.update_ratio {
                return ChurnOp::Query;
            }
            let on_users = rng.gen::<f64>() < cfg.user_fraction;
            // Population floor: removals flip to inserts near emptiness.
            let live = if on_users {
                live_users.len()
            } else {
                live_objects.len()
            };
            let insert = rng.gen::<f64>() < cfg.insert_fraction || live <= 2;
            let m = match (on_users, insert) {
                (false, true) => {
                    let id = next_object;
                    next_object += 1;
                    live_objects.push(id);
                    Mutation::InsertObject(ObjectData {
                        id,
                        point: point(&mut rng),
                        doc: doc(&mut rng),
                    })
                }
                (false, false) => {
                    let pos = rng.gen_range(0..live_objects.len());
                    Mutation::RemoveObject(live_objects.swap_remove(pos))
                }
                (true, true) => {
                    let id = next_user;
                    next_user += 1;
                    live_users.push(id);
                    Mutation::InsertUser(UserData {
                        id,
                        point: point(&mut rng),
                        doc: doc(&mut rng),
                    })
                }
                (true, false) => {
                    let pos = rng.gen_range(0..live_users.len());
                    Mutation::RemoveUser(live_users.swap_remove(pos))
                }
            };
            ChurnOp::Mutate(m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;
    use std::collections::HashSet;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn seed_collection() -> (Vec<ObjectData>, Vec<UserData>, Vec<TermId>) {
        let objects: Vec<ObjectData> = (0..30)
            .map(|i| ObjectData {
                id: i,
                point: Point::new((i % 6) as f64, (i / 6) as f64),
                doc: Document::from_terms([t(i % 4)]),
            })
            .collect();
        let users: Vec<UserData> = (0..10)
            .map(|i| UserData {
                id: i,
                point: Point::new((i % 5) as f64, 1.0),
                doc: Document::from_terms([t(i % 4)]),
            })
            .collect();
        (objects, users, (0..4).map(t).collect())
    }

    #[test]
    fn stream_is_deterministic() {
        let (o, u, pool) = seed_collection();
        let cfg = ChurnConfig::new(100, 0.4);
        let a = generate_churn(&o, &u, &pool, &cfg);
        let b = generate_churn(&o, &u, &pool, &cfg);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    /// The stream is self-consistent: replaying it against id sets never
    /// removes an absent id, never inserts a duplicate, and respects the
    /// population floor.
    #[test]
    fn stream_replays_cleanly() {
        let (o, u, pool) = seed_collection();
        for ratio in [0.2, 0.8, 1.0] {
            let cfg = ChurnConfig {
                user_fraction: 0.5,
                ..ChurnConfig::new(400, ratio)
            };
            let stream = generate_churn(&o, &u, &pool, &cfg);
            let mut objs: HashSet<u32> = o.iter().map(|x| x.id).collect();
            let mut usrs: HashSet<u32> = u.iter().map(|x| x.id).collect();
            let mut mutations = 0usize;
            for op in &stream {
                let ChurnOp::Mutate(m) = op else { continue };
                mutations += 1;
                match m {
                    Mutation::InsertObject(x) => assert!(objs.insert(x.id), "dup object"),
                    Mutation::RemoveObject(id) => assert!(objs.remove(id), "ghost object"),
                    Mutation::InsertUser(x) => assert!(usrs.insert(x.id), "dup user"),
                    Mutation::RemoveUser(id) => assert!(usrs.remove(id), "ghost user"),
                }
                assert!(objs.len() >= 2 && usrs.len() >= 2, "population floor");
            }
            let got = mutations as f64 / stream.len() as f64;
            assert!(
                (got - ratio).abs() < 0.12,
                "update ratio {got} far from requested {ratio}"
            );
        }
    }

    #[test]
    fn zero_ratio_is_pure_queries() {
        let (o, u, pool) = seed_collection();
        let stream = generate_churn(&o, &u, &pool, &ChurnConfig::new(50, 0.0));
        assert!(stream.iter().all(|op| matches!(op, ChurnOp::Query)));
    }

    /// The drift-heavy preset floods the first pool term: most inserted
    /// objects carry it at the configured repeated term frequency, and
    /// the stream is insert-dominant — the adversarial shape for a
    /// frozen scorer.
    #[test]
    fn drift_heavy_stream_floods_the_first_term() {
        let (o, u, pool) = seed_collection();
        let cfg = ChurnConfig::drift_heavy(400).with_seed(9);
        let stream = generate_churn(&o, &u, &pool, &cfg);
        let (mut inserts, mut removes, mut flooded) = (0usize, 0usize, 0usize);
        for op in &stream {
            match op {
                ChurnOp::Mutate(Mutation::InsertObject(x)) => {
                    inserts += 1;
                    if let Some(tf) = x.doc.entries().iter().find(|&&(t, _)| t == pool[0]) {
                        flooded += 1;
                        assert_eq!(tf.1, cfg.term_repeats, "flooded term carries the heavy tf");
                    }
                }
                ChurnOp::Mutate(Mutation::RemoveObject(_)) => removes += 1,
                _ => {}
            }
        }
        assert!(
            inserts > removes * 2,
            "insert-dominant: {inserts} vs {removes}"
        );
        assert!(
            flooded * 10 >= inserts * 8,
            "skew 0.85 must put the flooded term in most inserts ({flooded}/{inserts})"
        );
        // Still deterministic and self-consistent.
        let again = generate_churn(&o, &u, &pool, &cfg);
        assert_eq!(format!("{stream:?}"), format!("{again:?}"));
    }

    #[test]
    fn inserted_docs_draw_from_the_pool() {
        let (o, u, pool) = seed_collection();
        let stream = generate_churn(&o, &u, &pool, &ChurnConfig::new(300, 1.0));
        for op in &stream {
            if let ChurnOp::Mutate(Mutation::InsertObject(x)) = op {
                assert!(x.doc.num_terms() >= 1);
                for term in x.doc.terms() {
                    assert!(pool.contains(&term));
                }
            }
        }
    }
}
