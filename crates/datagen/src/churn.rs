//! Churn workload generation: mixed insert/delete/query streams.
//!
//! Real advert/POI inventories are never static — placements expire,
//! venues open and close, users appear and churn. This module generates
//! deterministic operation streams against an existing collection for the
//! dynamic-update subsystem ([`mbrstk_core::dynamic`]): a configurable
//! fraction of operations are mutations (split between inserts and
//! removes, objects and users), the rest are queries the driver answers
//! against the live engine. The `figures -- churn` experiment measures
//! query throughput and maintenance cost as the update ratio grows.

use crate::rng::{Rng, SeedableRng, StdRng};
use geo::Rect;
use mbrstk_core::{Mutation, ObjectData, UserData};
use text::{Document, TermId};

/// Configuration of one generated churn stream.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total operations in the stream (queries + mutations).
    pub ops: usize,
    /// Fraction of operations that are mutations, in `[0, 1]`.
    pub update_ratio: f64,
    /// Among mutations, the fraction targeting users (the rest hit
    /// objects).
    pub user_fraction: f64,
    /// Among mutations, the fraction that insert (the rest remove).
    pub insert_fraction: f64,
    /// Distinct keywords per generated document (inserted objects and
    /// users), at least 1.
    pub doc_terms: usize,
    /// Probability that each keyword draw takes the *first* pool term
    /// instead of a uniform one, in `[0, 1]`. 0 (the default) reproduces
    /// the balanced uniform stream; values near 1 flood one term, walking
    /// the live corpus statistics (`cf/|C|`, `df`) away from any frozen
    /// scorer as fast as possible.
    pub term_skew: f64,
    /// Term frequency given to every keyword of an inserted document
    /// (minimum 1). Values above 1 shift the collection frequency harder
    /// per mutation — drift-heavy streams use this.
    pub term_repeats: u32,
    /// When true, object mutations are emitted as *replacement pairs*: a
    /// removal of a live object whose keywords all lie inside the pool,
    /// immediately followed by an insertion of a fresh object with the
    /// same total token count, drawn from the pool. Replacement keeps
    /// `|O|` and `|C|` exactly invariant, so under TF-IDF and LM only
    /// the pool terms' statistics (`df`, `cf`) move — the *term-local*
    /// drift regime the incremental refresh tier is built for. When no
    /// pool-confined object is live (possible with a pool disjoint from
    /// the seed corpus), the pair degrades to a random removal plus a
    /// default-length insert: populations stay constant but drift leaks
    /// into the removed document's terms.
    pub replace: bool,
    /// RNG seed; equal seeds give equal streams.
    pub seed: u64,
}

impl ChurnConfig {
    /// A balanced default: mutations split evenly between inserts and
    /// removes, a quarter of them on the user side.
    pub fn new(ops: usize, update_ratio: f64) -> Self {
        ChurnConfig {
            ops,
            update_ratio,
            user_fraction: 0.25,
            insert_fraction: 0.5,
            doc_terms: 3,
            term_skew: 0.0,
            term_repeats: 1,
            replace: false,
            seed: 77,
        }
    }

    /// A drift-heavy preset: mutation-only, insert-dominant churn whose
    /// inserted documents flood the first pool term with repeated
    /// occurrences. This is the adversarial workload for a frozen scorer
    /// — `cf/|C|` and `df` move with almost every mutation — and the one
    /// the corpus-refresh subsystem (`mbrstk_core::refresh`) exists to
    /// absorb.
    pub fn drift_heavy(ops: usize) -> Self {
        ChurnConfig {
            user_fraction: 0.05,
            insert_fraction: 0.85,
            doc_terms: 2,
            term_skew: 0.85,
            term_repeats: 4,
            ..ChurnConfig::new(ops, 1.0)
        }
    }

    /// A term-local preset: mutation-only replacement churn over the
    /// keyword pool. Every operation removes a pool-confined live object
    /// and inserts a same-length pool-confined replacement, so `|O|` and
    /// `|C|` never move and only the pool terms drift — the workload
    /// under which incremental refresh I/O is sublinear in the corpus
    /// size (pass a pool that is a small slice of the vocabulary).
    pub fn term_local(ops: usize) -> Self {
        ChurnConfig {
            user_fraction: 0.0,
            doc_terms: 2,
            replace: true,
            ..ChurnConfig::new(ops, 1.0)
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One operation of a churn stream.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Answer one query against the current engine state (the driver
    /// picks the spec).
    Query,
    /// Apply one mutation.
    Mutate(Mutation),
}

/// Generates a churn stream against the given initial collection.
///
/// The stream is *self-consistent*: removals always name an id that is
/// live at that point of the stream (initial ids or earlier inserts), and
/// inserted ids are fresh. The live populations never drop below 2, so
/// applying the stream can never empty an engine. Inserted objects and
/// users draw their locations uniformly from the initial objects' bounding
/// box and their keywords from `pool`.
///
/// With [`ChurnConfig::replace`] set, each object mutation becomes a
/// removal + insertion pair (one *operation*, two [`ChurnOp`]s) that
/// preserves `|O|` and the total token count `|C|` exactly — see the
/// field docs for the term-local drift rationale.
///
/// # Panics
/// Panics when `objects`, `users` or `pool` is empty.
pub fn generate_churn(
    objects: &[ObjectData],
    users: &[UserData],
    pool: &[TermId],
    cfg: &ChurnConfig,
) -> Vec<ChurnOp> {
    assert!(!objects.is_empty(), "churn needs an initial object set");
    assert!(!users.is_empty(), "churn needs an initial user set");
    assert!(!pool.is_empty(), "churn needs a keyword pool");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let space = Rect::bounding(objects.iter().map(|o| o.point)).unwrap();

    let mut live_objects: Vec<u32> = objects.iter().map(|o| o.id).collect();
    let mut live_users: Vec<u32> = users.iter().map(|u| u.id).collect();
    let mut next_object = live_objects.iter().max().unwrap() + 1;
    let mut next_user = live_users.iter().max().unwrap() + 1;
    // Replacement mode: live objects whose keywords all lie inside the
    // pool (with their token counts, so replacements can preserve |C|).
    let mut eligible: Vec<(u32, u64)> = if cfg.replace {
        objects
            .iter()
            .filter(|o| o.doc.terms().all(|t| pool.contains(&t)))
            .map(|o| (o.id, o.doc.len()))
            .collect()
    } else {
        Vec::new()
    };

    let doc = |rng: &mut StdRng| {
        let want = cfg.doc_terms.max(1).min(pool.len());
        let mut terms: Vec<TermId> = Vec::with_capacity(want);
        let mut guard = 0;
        while terms.len() < want && guard < 50 * want {
            guard += 1;
            let t = if cfg.term_skew > 0.0 && rng.gen::<f64>() < cfg.term_skew {
                pool[0]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        let tf = cfg.term_repeats.max(1);
        Document::from_pairs(terms.into_iter().map(|t| (t, tf)).collect::<Vec<_>>())
    };
    /// A pool-confined document with exactly `len` tokens over at most
    /// `doc_terms` distinct terms (length preservation for replacement).
    fn doc_with_len(
        rng: &mut StdRng,
        pool: &[TermId],
        doc_terms: usize,
        skew: f64,
        len: u64,
    ) -> Document {
        let want = doc_terms.max(1).min(pool.len()).min(len.max(1) as usize);
        let mut terms: Vec<TermId> = Vec::with_capacity(want);
        let mut guard = 0;
        while terms.len() < want && guard < 50 * want {
            guard += 1;
            let t = if skew > 0.0 && rng.gen::<f64>() < skew {
                pool[0]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        let n = terms.len().max(1) as u64;
        let (base, extra) = (len / n, len % n);
        Document::from_pairs(
            terms
                .into_iter()
                .enumerate()
                .map(|(i, t)| (t, (base + u64::from((i as u64) < extra)) as u32))
                .collect::<Vec<_>>(),
        )
    }
    let point = |rng: &mut StdRng| {
        geo::Point::new(
            rng.gen_range(space.min.x..=space.max.x),
            rng.gen_range(space.min.y..=space.max.y),
        )
    };

    let mut out = Vec::with_capacity(cfg.ops);
    for _ in 0..cfg.ops {
        if rng.gen::<f64>() >= cfg.update_ratio {
            out.push(ChurnOp::Query);
            continue;
        }
        let on_users = rng.gen::<f64>() < cfg.user_fraction;

        // Replacement pairs keep the object population and token count
        // invariant; user mutations keep their regular shape.
        if cfg.replace && !on_users {
            let (victim, len) = if eligible.is_empty() {
                // Degraded pair: no pool-confined object is live.
                let pos = rng.gen_range(0..live_objects.len());
                let id = live_objects[pos];
                (
                    id,
                    (cfg.doc_terms.max(1) as u64) * u64::from(cfg.term_repeats.max(1)),
                )
            } else {
                eligible[rng.gen_range(0..eligible.len())]
            };
            let obj_pos = live_objects
                .iter()
                .position(|&id| id == victim)
                .expect("victim is live");
            live_objects.swap_remove(obj_pos);
            if let Some(pos) = eligible.iter().position(|&(id, _)| id == victim) {
                eligible.swap_remove(pos);
            }
            out.push(ChurnOp::Mutate(Mutation::RemoveObject(victim)));

            let id = next_object;
            next_object += 1;
            live_objects.push(id);
            let fresh = doc_with_len(&mut rng, pool, cfg.doc_terms, cfg.term_skew, len);
            eligible.push((id, fresh.len()));
            out.push(ChurnOp::Mutate(Mutation::InsertObject(ObjectData {
                id,
                point: point(&mut rng),
                doc: fresh,
            })));
            continue;
        }

        // Population floor: removals flip to inserts near emptiness.
        let live = if on_users {
            live_users.len()
        } else {
            live_objects.len()
        };
        let insert = rng.gen::<f64>() < cfg.insert_fraction || live <= 2;
        let m = match (on_users, insert) {
            (false, true) => {
                let id = next_object;
                next_object += 1;
                live_objects.push(id);
                Mutation::InsertObject(ObjectData {
                    id,
                    point: point(&mut rng),
                    doc: doc(&mut rng),
                })
            }
            // Unreachable in replace mode (the pair branch above handles
            // every object mutation), so `eligible` needs no upkeep here.
            (false, false) => {
                let pos = rng.gen_range(0..live_objects.len());
                Mutation::RemoveObject(live_objects.swap_remove(pos))
            }
            (true, true) => {
                let id = next_user;
                next_user += 1;
                live_users.push(id);
                Mutation::InsertUser(UserData {
                    id,
                    point: point(&mut rng),
                    doc: doc(&mut rng),
                })
            }
            (true, false) => {
                let pos = rng.gen_range(0..live_users.len());
                Mutation::RemoveUser(live_users.swap_remove(pos))
            }
        };
        out.push(ChurnOp::Mutate(m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;
    use std::collections::HashSet;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn seed_collection() -> (Vec<ObjectData>, Vec<UserData>, Vec<TermId>) {
        let objects: Vec<ObjectData> = (0..30)
            .map(|i| ObjectData {
                id: i,
                point: Point::new((i % 6) as f64, (i / 6) as f64),
                doc: Document::from_terms([t(i % 4)]),
            })
            .collect();
        let users: Vec<UserData> = (0..10)
            .map(|i| UserData {
                id: i,
                point: Point::new((i % 5) as f64, 1.0),
                doc: Document::from_terms([t(i % 4)]),
            })
            .collect();
        (objects, users, (0..4).map(t).collect())
    }

    #[test]
    fn stream_is_deterministic() {
        let (o, u, pool) = seed_collection();
        let cfg = ChurnConfig::new(100, 0.4);
        let a = generate_churn(&o, &u, &pool, &cfg);
        let b = generate_churn(&o, &u, &pool, &cfg);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    /// The stream is self-consistent: replaying it against id sets never
    /// removes an absent id, never inserts a duplicate, and respects the
    /// population floor.
    #[test]
    fn stream_replays_cleanly() {
        let (o, u, pool) = seed_collection();
        for ratio in [0.2, 0.8, 1.0] {
            let cfg = ChurnConfig {
                user_fraction: 0.5,
                ..ChurnConfig::new(400, ratio)
            };
            let stream = generate_churn(&o, &u, &pool, &cfg);
            let mut objs: HashSet<u32> = o.iter().map(|x| x.id).collect();
            let mut usrs: HashSet<u32> = u.iter().map(|x| x.id).collect();
            let mut mutations = 0usize;
            for op in &stream {
                let ChurnOp::Mutate(m) = op else { continue };
                mutations += 1;
                match m {
                    Mutation::InsertObject(x) => assert!(objs.insert(x.id), "dup object"),
                    Mutation::RemoveObject(id) => assert!(objs.remove(id), "ghost object"),
                    Mutation::InsertUser(x) => assert!(usrs.insert(x.id), "dup user"),
                    Mutation::RemoveUser(id) => assert!(usrs.remove(id), "ghost user"),
                }
                assert!(objs.len() >= 2 && usrs.len() >= 2, "population floor");
            }
            let got = mutations as f64 / stream.len() as f64;
            assert!(
                (got - ratio).abs() < 0.12,
                "update ratio {got} far from requested {ratio}"
            );
        }
    }

    #[test]
    fn zero_ratio_is_pure_queries() {
        let (o, u, pool) = seed_collection();
        let stream = generate_churn(&o, &u, &pool, &ChurnConfig::new(50, 0.0));
        assert!(stream.iter().all(|op| matches!(op, ChurnOp::Query)));
    }

    /// The drift-heavy preset floods the first pool term: most inserted
    /// objects carry it at the configured repeated term frequency, and
    /// the stream is insert-dominant — the adversarial shape for a
    /// frozen scorer.
    #[test]
    fn drift_heavy_stream_floods_the_first_term() {
        let (o, u, pool) = seed_collection();
        let cfg = ChurnConfig::drift_heavy(400).with_seed(9);
        let stream = generate_churn(&o, &u, &pool, &cfg);
        let (mut inserts, mut removes, mut flooded) = (0usize, 0usize, 0usize);
        for op in &stream {
            match op {
                ChurnOp::Mutate(Mutation::InsertObject(x)) => {
                    inserts += 1;
                    if let Some(tf) = x.doc.entries().iter().find(|&&(t, _)| t == pool[0]) {
                        flooded += 1;
                        assert_eq!(tf.1, cfg.term_repeats, "flooded term carries the heavy tf");
                    }
                }
                ChurnOp::Mutate(Mutation::RemoveObject(_)) => removes += 1,
                _ => {}
            }
        }
        assert!(
            inserts > removes * 2,
            "insert-dominant: {inserts} vs {removes}"
        );
        assert!(
            flooded * 10 >= inserts * 8,
            "skew 0.85 must put the flooded term in most inserts ({flooded}/{inserts})"
        );
        // Still deterministic and self-consistent.
        let again = generate_churn(&o, &u, &pool, &cfg);
        assert_eq!(format!("{stream:?}"), format!("{again:?}"));
    }

    /// Replacement churn: `|O|` and `|C|` are exactly invariant at every
    /// prefix of the stream, and every inserted document is confined to
    /// the pool — the term-local drift regime.
    #[test]
    fn term_local_stream_preserves_population_and_token_count() {
        let (o, u, _) = seed_collection();
        // Confine churn to half the vocabulary.
        let pool: Vec<TermId> = (0..2).map(t).collect();
        let cfg = ChurnConfig::term_local(120).with_seed(5);
        let stream = generate_churn(&o, &u, &pool, &cfg);
        assert_eq!(stream.len(), 240, "each op is a remove+insert pair");

        let mut docs: std::collections::HashMap<u32, Document> =
            o.iter().map(|x| (x.id, x.doc.clone())).collect();
        let total_len = |docs: &std::collections::HashMap<u32, Document>| -> u64 {
            docs.values().map(|d| d.len()).sum()
        };
        let (n0, c0) = (docs.len(), total_len(&docs));
        for pair in stream.chunks(2) {
            let [ChurnOp::Mutate(Mutation::RemoveObject(id)), ChurnOp::Mutate(Mutation::InsertObject(x))] =
                pair
            else {
                panic!("replacement stream must alternate remove/insert");
            };
            let removed = docs.remove(id).expect("removal names a live id");
            assert_eq!(x.doc.len(), removed.len(), "token count preserved");
            assert!(
                removed.terms().all(|term| pool.contains(&term)),
                "victims are pool-confined"
            );
            assert!(
                x.doc.terms().all(|term| pool.contains(&term)),
                "replacements are pool-confined"
            );
            assert!(docs.insert(x.id, x.doc.clone()).is_none(), "fresh id");
            assert_eq!(docs.len(), n0, "|O| invariant");
            assert_eq!(total_len(&docs), c0, "|C| invariant");
        }
        // Deterministic like every other stream.
        let again = generate_churn(&o, &u, &pool, &cfg);
        assert_eq!(format!("{stream:?}"), format!("{again:?}"));
    }

    /// With a pool disjoint from every live document, replacement
    /// degrades to random-victim pairs: populations stay constant, but
    /// token counts may move (documented leak).
    #[test]
    fn term_local_degrades_gracefully_without_eligible_victims() {
        let (o, u, _) = seed_collection();
        let pool = vec![t(40), t(41)]; // unseen terms
        let stream = generate_churn(&o, &u, &pool, &ChurnConfig::term_local(20));
        let mut live: std::collections::HashSet<u32> = o.iter().map(|x| x.id).collect();
        let n0 = live.len();
        for pair in stream.chunks(2) {
            let [ChurnOp::Mutate(Mutation::RemoveObject(id)), ChurnOp::Mutate(Mutation::InsertObject(x))] =
                pair
            else {
                panic!("still pairs");
            };
            assert!(live.remove(id));
            assert!(live.insert(x.id));
            assert_eq!(live.len(), n0);
            assert!(x.doc.terms().all(|term| pool.contains(&term)));
        }
    }

    #[test]
    fn inserted_docs_draw_from_the_pool() {
        let (o, u, pool) = seed_collection();
        let stream = generate_churn(&o, &u, &pool, &ChurnConfig::new(300, 1.0));
        for op in &stream {
            if let ChurnOp::Mutate(Mutation::InsertObject(x)) = op {
                assert!(x.doc.num_terms() >= 1);
                for term in x.doc.terms() {
                    assert!(pool.contains(&term));
                }
            }
        }
    }
}
