//! Deterministic PRNG with a `rand`-shaped surface.
//!
//! The generators only need seedable uniform draws: [`StdRng`] wraps the
//! workspace's canonical [`splitmix::SplitMix64`] stream, and the [`Rng`] /
//! [`SeedableRng`] / [`SliceRandom`] traits mirror the subset of the
//! `rand` API the generators use (`gen`, `gen_range`, `gen_bool`,
//! `shuffle`). Sequences are stable across platforms and releases, which
//! the workload-reproducibility tests rely on.

use std::ops::{Range, RangeInclusive};

use splitmix::SplitMix64;

/// Raw 64-bit generator; everything else is derived from [`next_u64`].
///
/// [`next_u64`]: RngCore::next_u64
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        splitmix::unit_from(self.next_u64())
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from `[0, 1)` via [`Rng::gen`].
pub trait UnitSample {
    /// One uniform draw.
    fn unit_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UnitSample for f64 {
    #[inline]
    fn unit_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for Range<usize> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let len = self.end.checked_sub(self.start).expect("empty range");
        assert!(len > 0, "cannot sample from an empty range");
        self.start + splitmix::bounded(rng.next_u64(), len as u64) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on the excluded end point.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        start + rng.next_f64() * (end - start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw of a [`UnitSample`] type (only `f64` today).
    #[inline]
    fn gen<T: UnitSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::unit_sample(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place Fisher–Yates shuffling for slices.
pub trait SliceRandom {
    /// Uniformly permutes the slice.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..i + 1).sample_from(rng);
            self.swap(i, j);
        }
    }
}

/// The default generator: the workspace's canonical SplitMix64 stream.
///
/// Small, fast, passes BigCrush on its 64-bit output, and — unlike the
/// `rand` crate's `StdRng` — guaranteed stable forever, so generated
/// datasets are reproducible byte-for-byte across toolchains.
#[derive(Debug, Clone)]
pub struct StdRng(SplitMix64);

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        StdRng(SplitMix64(seed))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_draws_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
