//! Synthetic workload generation matching §8 of the paper.
//!
//! The paper evaluates on two real collections we cannot redistribute:
//! the Yahoo I3 Flickr photos (1M–8M geo-tagged, short tag sets) and the
//! Yelp academic dataset (61K businesses, very long review documents).
//! This crate builds *statistical stand-ins*: clustered spatial points
//! with Zipf-distributed vocabularies whose headline statistics (objects,
//! vocabulary size, average distinct terms per object, total term count —
//! the paper's Table 4) match the shapes that drive the algorithms.
//!
//! It also reproduces the paper's **user-generation protocol** verbatim:
//! pick an `Area × Area` window, take `|U|` objects inside it as user
//! locations, sample a pool of `UW` distinct keywords from those objects,
//! and give each user `UL` keywords following the pool's occurrence
//! distribution. The pool doubles as the candidate keyword set `W`, and
//! candidate locations are drawn uniformly from the window.

mod churn;
mod corpus;
pub mod rng;
mod stats;
mod users;
mod zipf;

pub use churn::{generate_churn, ChurnConfig, ChurnOp};
pub use corpus::{generate_objects, CorpusConfig};
pub use stats::{dataset_stats, DatasetStats};
pub use users::{generate_workload, UserGenConfig, Workload};
pub use zipf::Zipf;
