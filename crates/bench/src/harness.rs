//! Minimal micro-benchmark harness with a criterion-shaped API.
//!
//! The container this reproduction builds in has no network access to
//! crates.io, so the `criterion` dependency is replaced by this module: it
//! keeps the familiar `Criterion` / `benchmark_group` / `bench_function` /
//! `iter` surface (the subset our benches use) and reports min / p50 /
//! p95 / p99 / max wall-clock per iteration on stdout. Samples feed the
//! shared [`mbrstk_obs::Histogram`] (the same log-bucketed layout the
//! engine's telemetry uses), so percentiles carry its ≤1/32 relative
//! error. Benches still run with `cargo bench`, each as a
//! `harness = false` binary.

use std::hint::black_box;
use std::time::{Duration, Instant};

use mbrstk_obs::Histogram;

/// Harness entry point; mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warmup_iters: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup_iters: 2,
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_one(id, self.sample_size, self.warmup_iters, f);
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.warmup_iters,
            f,
        );
    }

    /// Runs a parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.warmup_iters,
            |b| f(b, input),
        );
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the label from a function name and a parameter value.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine`, keeping its result alive via
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, warmup: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..warmup {
        f(&mut b);
    }
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    // A closure that never calls iter() still gets a line, with no stats.
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let hist = Histogram::new();
    for s in &b.samples {
        hist.record(s.as_nanos().min(u64::MAX as u128) as u64);
    }
    let snap = hist.snapshot();
    let d = Duration::from_nanos;
    println!(
        "  {id:<40} min {:>10?}  p50 {:>10?}  p95 {:>10?}  p99 {:>10?}  max {:>10?}  ({} samples)",
        d(snap.min()),
        d(snap.p50()),
        d(snap.p95()),
        d(snap.p99()),
        d(snap.max()),
        snap.count()
    );
}

/// Mirrors `criterion::criterion_group!`: bundles target functions into one
/// runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::harness::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        // 2 warmup + 3 measured.
        assert_eq!(runs, 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("joint", 10).to_string(), "joint/10");
    }
}
