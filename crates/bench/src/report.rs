//! Plain-text table rendering for the figure harness.

/// A column-aligned table printed to stdout, one per figure panel.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a panel title (e.g. "Fig 5a — MRPU (ms)").
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row (first cell is the swept parameter value).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with sensible precision for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["k", "B", "J"]);
        t.row(vec!["1".into(), "100.5".into(), "3.2".into()]);
        t.row(vec!["50".into(), "9".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(0.5), "0.500");
        assert_eq!(fmt(0.0001234), "0.00012");
    }
}
