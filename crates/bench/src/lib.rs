//! Benchmark harness for the MaxBRSTkNN reproduction.
//!
//! The `figures` binary regenerates every experiment of §8: each
//! subcommand sweeps one parameter (Table 5) and prints the same series
//! the corresponding figure plots. Scales are reduced relative to the
//! paper's testbed (see DESIGN.md §3) — the claims under test are the
//! *shapes*: joint ≪ baseline, approx ≈ 2–3 orders faster than exact,
//! approximation ratio ≥ 0.632, flat joint cost in α/UL/Area/|U|, etc.
//!
//! Metrics, matching §8.1:
//! * **MRPU** — mean runtime per user of the top-k stage (ms),
//! * **MIOCPU** — mean simulated I/O per user of the top-k stage,
//! * candidate-selection **runtime** (ms, total),
//! * **approximation ratio** — approx cardinality / exact cardinality.

pub mod cluster;
pub mod figs;
pub mod harness;
pub mod loadgen;
mod measure;
mod params;
mod report;
mod scenario;

pub use measure::{
    measure_query_batch, measure_select, measure_topk_baseline, measure_topk_joint,
    measure_user_index, BatchMeasure, SelectMeasure, SelectMethod, TopkMeasure, UserIndexMeasure,
};
pub use params::{DatasetKind, Params};
pub use report::Table;
pub use scenario::Scenario;
