//! Materializing an experiment: data, workload, indexes, query.

use datagen::{generate_objects, generate_workload, CorpusConfig, UserGenConfig};
use geo::Point;
use mbrstk_core::{Engine, QuerySpec};
use text::Document;

use crate::{DatasetKind, Params};

/// A fully-built experiment instance: engine (indexes + scorer) plus the
/// generated query workload.
#[derive(Debug)]
pub struct Scenario {
    /// Engine over the generated objects and users.
    pub engine: Engine,
    /// The query under benchmark.
    pub spec: QuerySpec,
    /// Window the users were drawn from (for reporting).
    pub window: geo::Rect,
}

impl Scenario {
    /// Builds objects, workload and indexes for one trial.
    ///
    /// `trial` shifts the workload seed, reproducing the paper's averaging
    /// over independently generated user sets (object collection fixed).
    pub fn build(p: &Params, trial: usize) -> Scenario {
        Scenario::build_with_codec(p, trial, storage::CodecId::from_env())
    }

    /// [`Scenario::build`] under an explicit block-file codec (the codec
    /// experiment builds Verbatim/Columnar twins of the same trial).
    pub fn build_with_codec(p: &Params, trial: usize, codec: storage::CodecId) -> Scenario {
        let corpus_cfg = match p.dataset {
            DatasetKind::FlickrLike => CorpusConfig::flickr_like(p.num_objects),
            DatasetKind::YelpLike => CorpusConfig::yelp_like(p.num_objects),
        };
        let objects = generate_objects(&corpus_cfg);

        let wl = generate_workload(
            &objects,
            &UserGenConfig {
                num_users: p.num_users,
                area: p.area,
                uw: p.uw,
                ul: p.ul,
                num_locations: p.num_locations,
                seed: p.seed + trial as u64 * 1000,
            },
        );

        let engine =
            Engine::build_with_fanout_codec(objects, wl.users, p.model, p.alpha, p.fanout, codec)
                .with_user_index();

        let spec = QuerySpec {
            ox_doc: Document::new(),
            locations: wl.candidate_locations,
            keywords: wl.candidate_keywords,
            ws: p.ws,
            k: p.k,
        };

        Scenario {
            engine,
            spec,
            window: wl.window,
        }
    }

    /// Convenience: candidate locations of the query.
    pub fn locations(&self) -> &[Point] {
        &self.spec.locations
    }

    /// Derives a deterministic batch of `n` query variants for the
    /// batch-execution experiments ([`Engine::query_batch`]): variant `i`
    /// rotates the candidate-location pool by `i` and keeps a half-pool
    /// window, modelling concurrent tenants siting against the same engine
    /// with different shortlists.
    ///
    /// [`Engine::query_batch`]: mbrstk_core::Engine::query_batch
    pub fn batch_specs(&self, n: usize) -> Vec<QuerySpec> {
        let pool = &self.spec.locations;
        let take = (pool.len() / 2).max(1);
        (0..n)
            .map(|i| {
                let mut locs = pool.clone();
                if !locs.is_empty() {
                    let shift = i % locs.len();
                    locs.rotate_left(shift);
                }
                locs.truncate(take);
                QuerySpec {
                    locations: locs,
                    ..self.spec.clone()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_builds() {
        let p = Params {
            num_objects: 1_000,
            num_users: 50,
            ..Params::quick()
        };
        let sc = Scenario::build(&p, 0);
        assert_eq!(sc.engine.users.len(), 50);
        assert_eq!(sc.engine.objects.len(), 1_000);
        assert!(!sc.spec.keywords.is_empty());
        assert_eq!(sc.spec.k, p.k);
        assert!(sc.engine.miur.is_some());
    }

    #[test]
    fn batch_specs_are_distinct_and_bounded() {
        let p = Params {
            num_objects: 1_000,
            num_users: 30,
            ..Params::quick()
        };
        let sc = Scenario::build(&p, 0);
        let specs = sc.batch_specs(8);
        assert_eq!(specs.len(), 8);
        for s in &specs {
            assert!(!s.locations.is_empty());
            assert!(s.locations.len() <= sc.spec.locations.len());
            assert_eq!(s.k, sc.spec.k);
        }
        // Rotation makes consecutive variants start at different anchors.
        assert_ne!(
            specs[0].locations[0].x.to_bits(),
            specs[1].locations[0].x.to_bits()
        );
    }

    #[test]
    fn trials_vary_the_workload() {
        let p = Params {
            num_objects: 1_000,
            num_users: 30,
            ..Params::quick()
        };
        let a = Scenario::build(&p, 0);
        let b = Scenario::build(&p, 1);
        let pts = |s: &Scenario| -> Vec<(u64, u64)> {
            s.engine
                .users
                .iter()
                .map(|u| (u.point.x.to_bits(), u.point.y.to_bits()))
                .collect()
        };
        assert_ne!(pts(&a), pts(&b));
    }
}
