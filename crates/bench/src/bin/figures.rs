//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [table4 table5 fig5 fig6 ... fig15 ablation batch cache churn refresh refresh-incremental codec obs serve cluster | all]
//! ```
//!
//! `--quick` shrinks the collection for smoke runs; default scales are the
//! DESIGN.md §3 reductions of the paper's setup.

use bench::{cluster, figs, loadgen, Params};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .map(String::as_str)
        .collect();
    if which.is_empty() || which.contains(&"all") {
        which = vec![
            "table4",
            "table5",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "ablation",
            "batch",
            "cache",
            "churn",
            "refresh",
            "refresh-incremental",
            "codec",
            "obs",
            "serve",
            "cluster",
        ];
    }

    let mut p = if quick {
        Params::quick()
    } else {
        Params::default()
    };
    // Optional overrides: --objects N, --users N, --trials N, --seed N.
    let flag = |name: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    if let Some(v) = flag("--objects") {
        p.num_objects = v as usize;
    }
    if let Some(v) = flag("--users") {
        p.num_users = v as usize;
    }
    if let Some(v) = flag("--trials") {
        p.trials = (v as usize).max(1);
    }
    if let Some(v) = flag("--seed") {
        p.seed = v;
    }
    println!(
        "# MaxBRSTkNN experiment harness — |O|={}, |U|={}, trials={}{}",
        p.num_objects,
        p.num_users,
        p.trials,
        if quick { " (quick mode)" } else { "" }
    );

    for w in which {
        let start = std::time::Instant::now();
        match w {
            "table4" => figs::table4(&p),
            "table5" => figs::table5(&p),
            "fig5" => figs::fig5(&p),
            "fig6" => figs::fig6(&p),
            "fig7" => figs::fig7(&p),
            "fig8" => figs::fig8(&p),
            "fig9" => figs::fig9(&p),
            "fig10" => figs::fig10(&p),
            "fig11" => figs::fig11(&p),
            "fig12" => figs::fig12(&p),
            "fig13" => figs::fig13(&p),
            "fig14" => figs::fig14(&p),
            "fig15" => figs::fig15(&p),
            "ablation" => figs::ablation(&p),
            "batch" => figs::batch(&p),
            "cache" => figs::cache(&p),
            "churn" => figs::churn(&p),
            "refresh" => figs::refresh(&p),
            "refresh-incremental" => figs::refresh_incremental(&p),
            "codec" => figs::codec(&p),
            "obs" => figs::obs(&p),
            "serve" => loadgen::serve(&p),
            "cluster" => cluster::scaling(&p),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{w} done in {:.1}s]", start.elapsed().as_secs_f64());
    }
}
