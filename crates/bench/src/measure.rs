//! Timed measurements of each pipeline stage.

use std::time::Instant;

use mbrstk_core::select::baseline::baseline_select;
use mbrstk_core::select::location::{select_candidate, KeywordSelector};
use mbrstk_core::select::CandidateContext;
use mbrstk_core::topk::individual::individual_topk;
use mbrstk_core::topk::joint::joint_topk;
use mbrstk_core::user_index::select_with_user_index;

use crate::Scenario;

/// Top-k stage result: the paper's MRPU / MIOCPU metrics plus the
/// thresholds needed by the selection stage.
#[derive(Debug, Clone)]
pub struct TopkMeasure {
    /// Mean runtime per user, milliseconds.
    pub mrpu_ms: f64,
    /// Mean simulated I/O per user.
    pub miocpu: f64,
    /// Total runtime (ms) — Fig. 12a reports totals.
    pub total_ms: f64,
    /// Total simulated I/O.
    pub total_io: u64,
    /// `RSk(u)` per user.
    pub rsk: Vec<f64>,
    /// `RSk(us)` (−∞ for the baseline, which has no super-user).
    pub rsk_us: f64,
}

/// Runs the §4 per-user baseline top-k and measures it.
pub fn measure_topk_baseline(sc: &Scenario, k: usize) -> TopkMeasure {
    let eng = &sc.engine;
    eng.io.reset();
    let start = Instant::now();
    let tks = eng.baseline_user_topk(k);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_io = eng.io.total();
    let n = eng.users.len() as f64;
    TopkMeasure {
        mrpu_ms: total_ms / n,
        miocpu: total_io as f64 / n,
        total_ms,
        total_io,
        rsk: tks.iter().map(|t| t.rsk).collect(),
        rsk_us: f64::NEG_INFINITY,
    }
}

/// Runs the §5 joint top-k (Algorithms 1+2) and measures it.
pub fn measure_topk_joint(sc: &Scenario, k: usize) -> TopkMeasure {
    let eng = &sc.engine;
    eng.io.reset();
    let start = Instant::now();
    let su = eng.super_user();
    let out = joint_topk(&eng.mir, &su, k, &eng.ctx, &eng.io);
    let tks = individual_topk(&eng.users, &out, k, &eng.ctx);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_io = eng.io.total();
    let n = eng.users.len() as f64;
    TopkMeasure {
        mrpu_ms: total_ms / n,
        miocpu: total_io as f64 / n,
        total_ms,
        total_io,
        rsk: tks.iter().map(|t| t.rsk).collect(),
        rsk_us: out.rsk_us,
    }
}

/// Candidate-selection strategies under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMethod {
    /// §4 exhaustive enumeration.
    Baseline,
    /// Algorithm 3 + Algorithm 4.
    Exact,
    /// Algorithm 3 + greedy.
    Approx,
    /// Algorithm 3 + realized-gain greedy (extension; ablation only).
    ApproxPlus,
}

/// Selection stage result.
#[derive(Debug, Clone)]
pub struct SelectMeasure {
    /// Total runtime, ms.
    pub runtime_ms: f64,
    /// `|BRSTkNN|` of the returned tuple.
    pub cardinality: usize,
}

/// Runs one candidate-selection strategy on precomputed thresholds.
pub fn measure_select(
    sc: &Scenario,
    spec: &mbrstk_core::QuerySpec,
    topk: &TopkMeasure,
    method: SelectMethod,
) -> SelectMeasure {
    let eng = &sc.engine;
    let start = Instant::now();
    let cc = CandidateContext::new(&eng.ctx, spec, &eng.users, &topk.rsk);
    let result = match method {
        SelectMethod::Baseline => baseline_select(&cc),
        SelectMethod::Exact => {
            let su = eng.super_user();
            select_candidate(&cc, &su, topk.rsk_us, KeywordSelector::Exact)
        }
        SelectMethod::Approx => {
            let su = eng.super_user();
            select_candidate(&cc, &su, topk.rsk_us, KeywordSelector::Greedy)
        }
        SelectMethod::ApproxPlus => {
            let su = eng.super_user();
            select_candidate(&cc, &su, topk.rsk_us, KeywordSelector::GreedyPlus)
        }
    };
    SelectMeasure {
        runtime_ms: start.elapsed().as_secs_f64() * 1e3,
        cardinality: result.cardinality(),
    }
}

/// §7 pipeline result (Fig. 15).
#[derive(Debug, Clone)]
pub struct UserIndexMeasure {
    /// Combined MIR + MIUR simulated I/O.
    pub total_io: u64,
    /// Runtime, ms.
    pub runtime_ms: f64,
    /// Percentage of users whose top-k was never computed.
    pub users_pruned_pct: f64,
    /// `|BRSTkNN|` of the returned tuple.
    pub cardinality: usize,
}

/// Runs the MIUR-tree pipeline end to end and measures it.
pub fn measure_user_index(sc: &Scenario, spec: &mbrstk_core::QuerySpec) -> UserIndexMeasure {
    let eng = &sc.engine;
    let miur = eng.miur.as_ref().expect("scenario builds the user index");
    eng.io.reset();
    let start = Instant::now();
    let out = select_with_user_index(
        miur,
        &eng.mir,
        spec,
        &eng.ctx,
        KeywordSelector::Greedy,
        &eng.io,
    );
    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
    let total = out.users_scored + out.users_pruned;
    UserIndexMeasure {
        total_io: eng.io.total(),
        runtime_ms,
        users_pruned_pct: if total > 0 {
            100.0 * out.users_pruned as f64 / total as f64
        } else {
            0.0
        },
        cardinality: out.result.cardinality(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn quick_scenario() -> Scenario {
        Scenario::build(
            &Params {
                num_objects: 1_500,
                num_users: 60,
                num_locations: 10,
                uw: 10,
                ws: 2,
                k: 5,
                ..Params::quick()
            },
            0,
        )
    }

    #[test]
    fn joint_beats_baseline_io() {
        let sc = quick_scenario();
        let b = measure_topk_baseline(&sc, sc.spec.k);
        let j = measure_topk_joint(&sc, sc.spec.k);
        assert!(j.total_io < b.total_io, "joint {} vs baseline {}", j.total_io, b.total_io);
        // Thresholds must agree between the two methods.
        for (x, y) in b.rsk.iter().zip(&j.rsk) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn select_methods_agree_on_optimum() {
        let sc = quick_scenario();
        let t = measure_topk_joint(&sc, sc.spec.k);
        let b = measure_select(&sc, &sc.spec, &t, SelectMethod::Baseline);
        let e = measure_select(&sc, &sc.spec, &t, SelectMethod::Exact);
        let a = measure_select(&sc, &sc.spec, &t, SelectMethod::Approx);
        assert_eq!(b.cardinality, e.cardinality);
        assert!(a.cardinality <= e.cardinality);
        if e.cardinality > 0 {
            let ratio = a.cardinality as f64 / e.cardinality as f64;
            assert!(ratio >= 0.632 - 1e-9, "approximation ratio {ratio}");
        }
    }

    #[test]
    fn user_index_pipeline_runs() {
        let sc = quick_scenario();
        let m = measure_user_index(&sc, &sc.spec);
        assert!(m.total_io > 0);
        assert!((0.0..=100.0).contains(&m.users_pruned_pct));
    }
}
