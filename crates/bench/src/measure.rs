//! Timed measurements of each pipeline stage, plus whole-query batch
//! throughput on top of [`Engine::query_batch`].
//!
//! [`Engine::query_batch`]: mbrstk_core::Engine::query_batch

use std::time::Instant;

use mbrstk_core::select::baseline::baseline_select;
use mbrstk_core::select::location::{select_candidate, KeywordSelector};
use mbrstk_core::select::CandidateContext;
use mbrstk_core::topk::individual::individual_topk;
use mbrstk_core::topk::joint::joint_topk;
use mbrstk_core::user_index::select_with_user_index;
use mbrstk_core::{Method, QuerySpec};

use crate::Scenario;

/// Top-k stage result: the paper's MRPU / MIOCPU metrics plus the
/// thresholds needed by the selection stage.
#[derive(Debug, Clone)]
pub struct TopkMeasure {
    /// Mean runtime per user, milliseconds.
    pub mrpu_ms: f64,
    /// Mean simulated I/O per user.
    pub miocpu: f64,
    /// Total runtime (ms) — Fig. 12a reports totals.
    pub total_ms: f64,
    /// Total simulated I/O.
    pub total_io: u64,
    /// `RSk(u)` per user.
    pub rsk: Vec<f64>,
    /// `RSk(us)` (−∞ for the baseline, which has no super-user).
    pub rsk_us: f64,
}

/// Runs the §4 per-user baseline top-k and measures it.
pub fn measure_topk_baseline(sc: &Scenario, k: usize) -> TopkMeasure {
    let eng = &sc.engine;
    eng.io.reset();
    let start = Instant::now();
    let tks = eng.baseline_user_topk(k);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_io = eng.io.total();
    let n = eng.users.len() as f64;
    TopkMeasure {
        mrpu_ms: total_ms / n,
        miocpu: total_io as f64 / n,
        total_ms,
        total_io,
        rsk: tks.iter().map(|t| t.rsk).collect(),
        rsk_us: f64::NEG_INFINITY,
    }
}

/// Runs the §5 joint top-k (Algorithms 1+2) and measures it.
pub fn measure_topk_joint(sc: &Scenario, k: usize) -> TopkMeasure {
    let eng = &sc.engine;
    eng.io.reset();
    let start = Instant::now();
    let su = eng.super_user();
    let out = joint_topk(&eng.mir, &su, k, &eng.ctx, &eng.io);
    let tks = individual_topk(&eng.users, &out, k, &eng.ctx);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_io = eng.io.total();
    let n = eng.users.len() as f64;
    TopkMeasure {
        mrpu_ms: total_ms / n,
        miocpu: total_io as f64 / n,
        total_ms,
        total_io,
        rsk: tks.iter().map(|t| t.rsk).collect(),
        rsk_us: out.rsk_us,
    }
}

/// Candidate-selection strategies under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMethod {
    /// §4 exhaustive enumeration.
    Baseline,
    /// Algorithm 3 + Algorithm 4.
    Exact,
    /// Algorithm 3 + greedy.
    Approx,
    /// Algorithm 3 + realized-gain greedy (extension; ablation only).
    ApproxPlus,
}

/// Selection stage result.
#[derive(Debug, Clone)]
pub struct SelectMeasure {
    /// Total runtime, ms.
    pub runtime_ms: f64,
    /// `|BRSTkNN|` of the returned tuple.
    pub cardinality: usize,
}

/// Runs one candidate-selection strategy on precomputed thresholds.
pub fn measure_select(
    sc: &Scenario,
    spec: &mbrstk_core::QuerySpec,
    topk: &TopkMeasure,
    method: SelectMethod,
) -> SelectMeasure {
    let eng = &sc.engine;
    let start = Instant::now();
    let cc = CandidateContext::new(&eng.ctx, spec, &eng.users, &topk.rsk);
    let result = match method {
        SelectMethod::Baseline => baseline_select(&cc),
        SelectMethod::Exact => {
            let su = eng.super_user();
            select_candidate(&cc, &su, topk.rsk_us, KeywordSelector::Exact)
        }
        SelectMethod::Approx => {
            let su = eng.super_user();
            select_candidate(&cc, &su, topk.rsk_us, KeywordSelector::Greedy)
        }
        SelectMethod::ApproxPlus => {
            let su = eng.super_user();
            select_candidate(&cc, &su, topk.rsk_us, KeywordSelector::GreedyPlus)
        }
    };
    SelectMeasure {
        runtime_ms: start.elapsed().as_secs_f64() * 1e3,
        cardinality: result.cardinality(),
    }
}

/// §7 pipeline result (Fig. 15).
#[derive(Debug, Clone)]
pub struct UserIndexMeasure {
    /// Combined MIR + MIUR simulated I/O.
    pub total_io: u64,
    /// Runtime, ms.
    pub runtime_ms: f64,
    /// Percentage of users whose top-k was never computed.
    pub users_pruned_pct: f64,
    /// `|BRSTkNN|` of the returned tuple.
    pub cardinality: usize,
}

/// Runs the MIUR-tree pipeline end to end and measures it.
pub fn measure_user_index(sc: &Scenario, spec: &mbrstk_core::QuerySpec) -> UserIndexMeasure {
    let eng = &sc.engine;
    let miur = eng.miur.as_ref().expect("scenario builds the user index");
    eng.io.reset();
    let start = Instant::now();
    let out = select_with_user_index(
        miur,
        &eng.mir,
        spec,
        &eng.ctx,
        KeywordSelector::Greedy,
        &eng.io,
    );
    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
    let total = out.users_scored + out.users_pruned;
    UserIndexMeasure {
        total_io: eng.io.total(),
        runtime_ms,
        users_pruned_pct: if total > 0 {
            100.0 * out.users_pruned as f64 / total as f64
        } else {
            0.0
        },
        cardinality: out.result.cardinality(),
    }
}

/// Whole-batch execution result (the serving-oriented metric set).
#[derive(Debug, Clone)]
pub struct BatchMeasure {
    /// Wall-clock time for the whole batch, ms.
    pub wall_ms: f64,
    /// Mean per-query latency as measured on the worker threads, ms.
    pub mean_query_ms: f64,
    /// 99th-percentile per-query latency, ms (log-bucketed
    /// [`mbrstk_obs::Histogram`], ≤1/32 relative error).
    pub p99_query_ms: f64,
    /// Mean simulated I/O per query (from the per-thread deltas).
    pub mean_query_io: f64,
    /// Total simulated I/O of the batch (sum of per-query deltas).
    pub total_io: u64,
    /// Queries per second over the wall-clock time.
    pub qps: f64,
    /// Per-query result cardinalities, in spec order (for cross-checking
    /// against sequential execution).
    pub cardinalities: Vec<usize>,
}

/// Runs a whole batch of queries through [`Engine::query_batch_threads`]
/// and aggregates the per-query [`QueryStats`] the engine reports.
///
/// [`Engine::query_batch_threads`]: mbrstk_core::Engine::query_batch_threads
/// [`QueryStats`]: mbrstk_core::QueryStats
pub fn measure_query_batch(
    sc: &Scenario,
    specs: &[QuerySpec],
    method: Method,
    threads: usize,
) -> BatchMeasure {
    let eng = &sc.engine;
    let start = Instant::now();
    let outcomes = eng.query_batch_threads(specs, method, threads);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let n = outcomes.len().max(1) as f64;
    let total_io: u64 = outcomes.iter().map(|o| o.stats.io.total()).sum();
    let total_query_ms: f64 = outcomes
        .iter()
        .map(|o| o.stats.elapsed.as_secs_f64() * 1e3)
        .sum();
    let latency = mbrstk_obs::Histogram::new();
    for o in &outcomes {
        latency.record_duration_us(o.stats.elapsed);
    }
    BatchMeasure {
        wall_ms,
        mean_query_ms: total_query_ms / n,
        p99_query_ms: latency.snapshot().p99() as f64 / 1e3,
        mean_query_io: total_io as f64 / n,
        total_io,
        qps: if wall_ms > 0.0 {
            outcomes.len() as f64 / (wall_ms / 1e3)
        } else {
            f64::INFINITY
        },
        cardinalities: outcomes.iter().map(|o| o.result.cardinality()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn quick_scenario() -> Scenario {
        Scenario::build(
            &Params {
                num_objects: 1_500,
                num_users: 60,
                num_locations: 10,
                uw: 10,
                ws: 2,
                k: 5,
                ..Params::quick()
            },
            0,
        )
    }

    #[test]
    fn joint_beats_baseline_io() {
        let sc = quick_scenario();
        let b = measure_topk_baseline(&sc, sc.spec.k);
        let j = measure_topk_joint(&sc, sc.spec.k);
        assert!(
            j.total_io < b.total_io,
            "joint {} vs baseline {}",
            j.total_io,
            b.total_io
        );
        // Thresholds must agree between the two methods.
        for (x, y) in b.rsk.iter().zip(&j.rsk) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn select_methods_agree_on_optimum() {
        let sc = quick_scenario();
        let t = measure_topk_joint(&sc, sc.spec.k);
        let b = measure_select(&sc, &sc.spec, &t, SelectMethod::Baseline);
        let e = measure_select(&sc, &sc.spec, &t, SelectMethod::Exact);
        let a = measure_select(&sc, &sc.spec, &t, SelectMethod::Approx);
        assert_eq!(b.cardinality, e.cardinality);
        assert!(a.cardinality <= e.cardinality);
        if e.cardinality > 0 {
            let ratio = a.cardinality as f64 / e.cardinality as f64;
            assert!(ratio >= 0.632 - 1e-9, "approximation ratio {ratio}");
        }
    }

    #[test]
    fn user_index_pipeline_runs() {
        let sc = quick_scenario();
        let m = measure_user_index(&sc, &sc.spec);
        assert!(m.total_io > 0);
        assert!((0.0..=100.0).contains(&m.users_pruned_pct));
    }

    /// The serving metric set: parallel batches return the same answers as
    /// single-threaded ones, with identical per-query I/O.
    #[test]
    fn batch_measure_is_thread_invariant() {
        let sc = quick_scenario();
        let specs = sc.batch_specs(8);
        let seq = measure_query_batch(&sc, &specs, Method::JointGreedy, 1);
        let par = measure_query_batch(&sc, &specs, Method::JointGreedy, 4);
        assert_eq!(seq.cardinalities, par.cardinalities);
        assert_eq!(seq.total_io, par.total_io);
        assert!(par.qps > 0.0);
        assert!(par.mean_query_io > 0.0);
        // p99 comes off the obs histogram; it must bracket the observed mean.
        assert!(par.p99_query_ms > 0.0);
        assert!(par.p99_query_ms * 1.1 >= par.mean_query_ms.min(seq.mean_query_ms));
    }
}
