//! One function per table/figure of §8.
//!
//! Every function sweeps the figure's parameter, averages over
//! `Params::trials` independently generated user sets, and prints the same
//! series the paper plots. Paper-expected shapes are noted in each doc
//! comment so EXPERIMENTS.md can record paper-vs-measured side by side.

use mbrstk_core::{Method, QuerySpec};
use text::WeightModel;

use crate::measure::{
    measure_query_batch, measure_select, measure_topk_baseline, measure_topk_joint,
    measure_user_index, SelectMethod,
};
use crate::report::{fmt, Table};
use crate::{Params, Scenario};

const KS: [usize; 5] = [1, 5, 10, 20, 50];
const ALPHAS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
const ULS: [usize; 6] = [1, 2, 3, 4, 5, 6];
const UWS: [usize; 5] = [5, 10, 20, 30, 40];
const AREAS: [f64; 5] = [1.0, 2.0, 5.0, 10.0, 20.0];
const LS: [usize; 5] = [1, 20, 50, 100, 300];
const WSS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const US: [usize; 5] = [100, 250, 500, 1_000, 2_000];
const OS_SCALE: [usize; 4] = [10_000, 20_000, 40_000, 80_000];
const U15: [usize; 5] = [250, 500, 1_000, 2_000, 4_000];

/// Baseline-selection guardrail: `C(|W|, ws) × |L| × |U|` beyond this is
/// skipped and reported as `-` (the paper ran those points for hours; the
/// shape is already clear from the in-budget points).
const BASELINE_OP_BUDGET: f64 = 3e9;

fn choose(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

fn baseline_feasible(p: &Params, spec: &QuerySpec) -> bool {
    choose(spec.keywords.len(), spec.ws) * spec.locations.len() as f64 * p.num_users as f64
        <= BASELINE_OP_BUDGET
}

/// Averages rows of floats produced per trial.
fn avg_over_trials(p: &Params, f: impl Fn(&Scenario) -> Vec<f64>) -> Vec<f64> {
    let mut acc: Vec<f64> = Vec::new();
    for trial in 0..p.trials {
        let sc = Scenario::build(p, trial);
        let row = f(&sc);
        if acc.is_empty() {
            acc = row;
        } else {
            for (a, b) in acc.iter_mut().zip(row) {
                *a += b;
            }
        }
    }
    for a in &mut acc {
        *a /= p.trials as f64;
    }
    acc
}

fn ratio(approx: usize, exact: usize) -> f64 {
    if exact == 0 {
        1.0
    } else {
        approx as f64 / exact as f64
    }
}

/// Table 4: dataset statistics of the generated stand-ins.
pub fn table4(p: &Params) {
    let mut t = Table::new(
        "Table 4 — Description of datasets (synthetic stand-ins)",
        &["Property", "Flickr-like", "Yelp-like"],
    );
    let fl = datagen::dataset_stats(&datagen::generate_objects(
        &datagen::CorpusConfig::flickr_like(p.num_objects),
    ));
    let yp = datagen::dataset_stats(&datagen::generate_objects(
        &datagen::CorpusConfig::yelp_like((p.num_objects / 16).max(500)),
    ));
    t.row(vec![
        "Total objects".into(),
        fl.total_objects.to_string(),
        yp.total_objects.to_string(),
    ]);
    t.row(vec![
        "Total unique terms".into(),
        fl.total_unique_terms.to_string(),
        yp.total_unique_terms.to_string(),
    ]);
    t.row(vec![
        "Avg unique terms per object".into(),
        fmt(fl.avg_unique_terms_per_object),
        fmt(yp.avg_unique_terms_per_object),
    ]);
    t.row(vec![
        "Total terms in dataset".into(),
        fl.total_terms.to_string(),
        yp.total_terms.to_string(),
    ]);
    t.print();
}

/// Table 5: parameter ranges (defaults in brackets).
pub fn table5(_p: &Params) {
    let mut t = Table::new(
        "Table 5 — Parameters (defaults bracketed)",
        &["Parameter", "Range"],
    );
    t.row(vec!["k".into(), "1, 5, [10], 20, 50".into()]);
    t.row(vec!["alpha".into(), "0.1, 0.3, [0.5], 0.7, 0.9".into()]);
    t.row(vec!["UL".into(), "1, 2, [3], 4, 5, 6".into()]);
    t.row(vec!["UW".into(), "5, 10, [20], 30, 40".into()]);
    t.row(vec!["Area".into(), "1, 2, [5], 10, 20".into()]);
    t.row(vec!["|L|".into(), "1, 20, [50], 100, 300".into()]);
    t.row(vec!["ws".into(), "1, 2, [3], 4, 5, 6, 7, 8".into()]);
    t.row(vec![
        "|U| (scaled)".into(),
        "100, 250, [500], 1000, 2000".into(),
    ]);
    t.row(vec!["|O| (scaled)".into(), "10K, [20K], 40K, 80K".into()]);
    t.print();
}

/// Fig. 5: effect of k. Paper shape: joint ≪ baseline for every measure;
/// KO costs the most; approx 2–3 orders faster than exact; ratio rises
/// with k.
pub fn fig5(p: &Params) {
    let models = [
        WeightModel::lm(),
        WeightModel::TfIdf,
        WeightModel::KeywordOverlap,
    ];
    // per model → per k → [B.mrpu, J.mrpu, B.io, J.io, selB, selE, selA, ratio]
    let mut data = vec![vec![vec![0.0f64; 8]; KS.len()]; models.len()];
    for (mi, model) in models.iter().enumerate() {
        let pm = Params {
            model: *model,
            ..p.clone()
        };
        let rows = avg_over_trials(&pm, |sc| {
            let mut out = Vec::new();
            for &k in &KS {
                let b = measure_topk_baseline(sc, k);
                let j = measure_topk_joint(sc, k);
                let spec = QuerySpec {
                    k,
                    ..sc.spec.clone()
                };
                let run_baseline = model.short_name() == "LM" && baseline_feasible(&pm, &spec);
                let sb = if run_baseline {
                    measure_select(sc, &spec, &j, SelectMethod::Baseline).runtime_ms
                } else {
                    f64::NAN
                };
                let e = measure_select(sc, &spec, &j, SelectMethod::Exact);
                let a = measure_select(sc, &spec, &j, SelectMethod::Approx);
                out.extend([
                    b.mrpu_ms,
                    j.mrpu_ms,
                    b.miocpu,
                    j.miocpu,
                    sb,
                    e.runtime_ms,
                    a.runtime_ms,
                    ratio(a.cardinality, e.cardinality),
                ]);
            }
            out
        });
        for (ki, chunk) in rows.chunks(8).enumerate() {
            data[mi][ki].copy_from_slice(chunk);
        }
    }

    let mut a = Table::new(
        "Fig 5a — top-k MRPU (ms) vs k",
        &["k", "B(LM)", "J(LM)", "B(TF)", "J(TF)", "B(KO)", "J(KO)"],
    );
    let mut b = Table::new(
        "Fig 5b — top-k MIOCPU vs k",
        &["k", "B(LM)", "J(LM)", "B(TF)", "J(TF)", "B(KO)", "J(KO)"],
    );
    let mut c = Table::new(
        "Fig 5c — candidate-selection runtime (ms) vs k",
        &[
            "k", "B(LM)", "E(LM)", "A(LM)", "E(TF)", "A(TF)", "E(KO)", "A(KO)",
        ],
    );
    let mut d = Table::new(
        "Fig 5d — approximation ratio vs k",
        &["k", "LM", "TF", "KO"],
    );
    for (ki, &k) in KS.iter().enumerate() {
        a.row(vec![
            k.to_string(),
            fmt(data[0][ki][0]),
            fmt(data[0][ki][1]),
            fmt(data[1][ki][0]),
            fmt(data[1][ki][1]),
            fmt(data[2][ki][0]),
            fmt(data[2][ki][1]),
        ]);
        b.row(vec![
            k.to_string(),
            fmt(data[0][ki][2]),
            fmt(data[0][ki][3]),
            fmt(data[1][ki][2]),
            fmt(data[1][ki][3]),
            fmt(data[2][ki][2]),
            fmt(data[2][ki][3]),
        ]);
        c.row(vec![
            k.to_string(),
            fmt(data[0][ki][4]),
            fmt(data[0][ki][5]),
            fmt(data[0][ki][6]),
            fmt(data[1][ki][5]),
            fmt(data[1][ki][6]),
            fmt(data[2][ki][5]),
            fmt(data[2][ki][6]),
        ]);
        d.row(vec![
            k.to_string(),
            fmt(data[0][ki][7]),
            fmt(data[1][ki][7]),
            fmt(data[2][ki][7]),
        ]);
    }
    a.print();
    b.print();
    c.print();
    d.print();
}

/// Shared shape for the single-model four-panel sweeps (Figs 6, 7, 8).
fn four_panel_sweep<T: std::fmt::Display + Copy>(
    name: &str,
    param_label: &str,
    values: &[T],
    p: &Params,
    build: impl Fn(&Params, T) -> Params,
) {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &v in values {
        let pv = build(p, v);
        let row = avg_over_trials(&pv, |sc| {
            let b = measure_topk_baseline(sc, pv.k);
            let j = measure_topk_joint(sc, pv.k);
            let sb = if baseline_feasible(&pv, &sc.spec) {
                measure_select(sc, &sc.spec, &j, SelectMethod::Baseline).runtime_ms
            } else {
                f64::NAN
            };
            let e = measure_select(sc, &sc.spec, &j, SelectMethod::Exact);
            let a = measure_select(sc, &sc.spec, &j, SelectMethod::Approx);
            vec![
                b.mrpu_ms,
                j.mrpu_ms,
                b.miocpu,
                j.miocpu,
                sb,
                e.runtime_ms,
                a.runtime_ms,
                ratio(a.cardinality, e.cardinality),
            ]
        });
        rows.push(row);
    }

    let mut a = Table::new(
        &format!("{name}a — top-k MRPU (ms) vs {param_label}"),
        &[param_label, "Baseline", "Joint top-k"],
    );
    let mut b = Table::new(
        &format!("{name}b — top-k MIOCPU vs {param_label}"),
        &[param_label, "Baseline", "Joint top-k"],
    );
    let mut c = Table::new(
        &format!("{name}c — candidate-selection runtime (ms) vs {param_label}"),
        &[param_label, "Baseline", "Exact", "Approx"],
    );
    let mut d = Table::new(
        &format!("{name}d — approximation ratio vs {param_label}"),
        &[param_label, "ratio"],
    );
    for (&v, row) in values.iter().zip(&rows) {
        a.row(vec![v.to_string(), fmt(row[0]), fmt(row[1])]);
        b.row(vec![v.to_string(), fmt(row[2]), fmt(row[3])]);
        c.row(vec![v.to_string(), fmt(row[4]), fmt(row[5]), fmt(row[6])]);
        d.row(vec![v.to_string(), fmt(row[7])]);
    }
    a.print();
    b.print();
    c.print();
    d.print();
}

/// Fig. 6: effect of α. Paper shape: baseline drops as α grows (IR-tree is
/// spatially clustered); joint stays flat; ratio rises with α.
pub fn fig6(p: &Params) {
    four_panel_sweep("Fig 6", "alpha", &ALPHAS, p, |p, v| Params {
        alpha: v,
        ..p.clone()
    });
}

/// Fig. 7: effect of UL (keywords per user). Paper shape: baseline grows
/// with UL, joint I/O ~flat; approximation dips mid-range.
pub fn fig7(p: &Params) {
    four_panel_sweep("Fig 7", "UL", &ULS, p, |p, v| Params { ul: v, ..p.clone() });
}

/// Fig. 8: effect of UW (unique user keywords = |W|). Paper shape: joint
/// benefits most at high keyword overlap (low UW); selection runtimes grow
/// with UW; ratio decreases then recovers.
pub fn fig8(p: &Params) {
    four_panel_sweep("Fig 8", "UW", &UWS, p, |p, v| Params { uw: v, ..p.clone() });
}

/// Fig. 9: effect of Area (user sparsity). Paper shape: joint keeps its
/// advantage even for sparse users (shared keywords still share I/O).
pub fn fig9(p: &Params) {
    let mut a = Table::new(
        "Fig 9a — top-k MRPU (ms) vs Area",
        &["Area", "Baseline", "Joint top-k"],
    );
    let mut b = Table::new(
        "Fig 9b — top-k MIOCPU vs Area",
        &["Area", "Baseline", "Joint top-k"],
    );
    for &area in &AREAS {
        let pv = Params { area, ..p.clone() };
        let row = avg_over_trials(&pv, |sc| {
            let bm = measure_topk_baseline(sc, pv.k);
            let jm = measure_topk_joint(sc, pv.k);
            vec![bm.mrpu_ms, jm.mrpu_ms, bm.miocpu, jm.miocpu]
        });
        a.row(vec![area.to_string(), fmt(row[0]), fmt(row[1])]);
        b.row(vec![area.to_string(), fmt(row[2]), fmt(row[3])]);
    }
    a.print();
    b.print();
}

/// Fig. 10: effect of |L|. Paper shape: selection runtimes grow roughly
/// linearly with |L|; ratio improves slightly.
pub fn fig10(p: &Params) {
    let mut a = Table::new(
        "Fig 10a — candidate-selection runtime (ms) vs |L|",
        &["|L|", "Baseline", "Exact", "Approx"],
    );
    let mut d = Table::new("Fig 10b — approximation ratio vs |L|", &["|L|", "ratio"]);
    for &l in &LS {
        let pv = Params {
            num_locations: l,
            ..p.clone()
        };
        let row = avg_over_trials(&pv, |sc| {
            let j = measure_topk_joint(sc, pv.k);
            let sb = if baseline_feasible(&pv, &sc.spec) {
                measure_select(sc, &sc.spec, &j, SelectMethod::Baseline).runtime_ms
            } else {
                f64::NAN
            };
            let e = measure_select(sc, &sc.spec, &j, SelectMethod::Exact);
            let ap = measure_select(sc, &sc.spec, &j, SelectMethod::Approx);
            vec![
                sb,
                e.runtime_ms,
                ap.runtime_ms,
                ratio(ap.cardinality, e.cardinality),
            ]
        });
        a.row(vec![l.to_string(), fmt(row[0]), fmt(row[1]), fmt(row[2])]);
        d.row(vec![l.to_string(), fmt(row[3])]);
    }
    a.print();
    d.print();
}

/// Fig. 11: effect of ws. Paper shape: baseline and exact blow up
/// combinatorially; approx stays low; ratio dips then recovers past the
/// coverage knee.
pub fn fig11(p: &Params) {
    let mut a = Table::new(
        "Fig 11a — candidate-selection runtime (ms) vs ws",
        &["ws", "Baseline", "Exact", "Approx"],
    );
    let mut d = Table::new("Fig 11b — approximation ratio vs ws", &["ws", "ratio"]);
    for &ws in &WSS {
        let pv = Params { ws, ..p.clone() };
        let row = avg_over_trials(&pv, |sc| {
            let j = measure_topk_joint(sc, pv.k);
            let sb = if baseline_feasible(&pv, &sc.spec) {
                measure_select(sc, &sc.spec, &j, SelectMethod::Baseline).runtime_ms
            } else {
                f64::NAN
            };
            let e = measure_select(sc, &sc.spec, &j, SelectMethod::Exact);
            let ap = measure_select(sc, &sc.spec, &j, SelectMethod::Approx);
            vec![
                sb,
                e.runtime_ms,
                ap.runtime_ms,
                ratio(ap.cardinality, e.cardinality),
            ]
        });
        a.row(vec![ws.to_string(), fmt(row[0]), fmt(row[1]), fmt(row[2])]);
        d.row(vec![ws.to_string(), fmt(row[3])]);
    }
    a.print();
    d.print();
}

/// Fig. 12: effect of |U|. Paper shape: baseline totals grow rapidly with
/// |U|; joint totals barely move (shared traversal).
pub fn fig12(p: &Params) {
    let mut a = Table::new(
        "Fig 12a — total top-k runtime (ms) vs |U|",
        &["|U|", "Baseline", "Joint top-k"],
    );
    let mut b = Table::new(
        "Fig 12b — total top-k I/O vs |U|",
        &["|U|", "Baseline", "Joint top-k"],
    );
    let mut c = Table::new(
        "Fig 12c — candidate-selection runtime (ms) vs |U|",
        &["|U|", "Baseline", "Exact", "Approx"],
    );
    let mut d = Table::new("Fig 12d — approximation ratio vs |U|", &["|U|", "ratio"]);
    for &u in &US {
        let pv = Params {
            num_users: u,
            ..p.clone()
        };
        let row = avg_over_trials(&pv, |sc| {
            let bm = measure_topk_baseline(sc, pv.k);
            let jm = measure_topk_joint(sc, pv.k);
            let sb = if baseline_feasible(&pv, &sc.spec) {
                measure_select(sc, &sc.spec, &jm, SelectMethod::Baseline).runtime_ms
            } else {
                f64::NAN
            };
            let e = measure_select(sc, &sc.spec, &jm, SelectMethod::Exact);
            let ap = measure_select(sc, &sc.spec, &jm, SelectMethod::Approx);
            vec![
                bm.total_ms,
                jm.total_ms,
                bm.total_io as f64,
                jm.total_io as f64,
                sb,
                e.runtime_ms,
                ap.runtime_ms,
                ratio(ap.cardinality, e.cardinality),
            ]
        });
        a.row(vec![u.to_string(), fmt(row[0]), fmt(row[1])]);
        b.row(vec![u.to_string(), fmt(row[2]), fmt(row[3])]);
        c.row(vec![u.to_string(), fmt(row[4]), fmt(row[5]), fmt(row[6])]);
        d.row(vec![u.to_string(), fmt(row[7])]);
    }
    a.print();
    b.print();
    c.print();
    d.print();
}

/// Fig. 13: effect of |O| (scaled sweep). Paper shape: both top-k methods
/// grow with |O|; joint keeps a large constant factor advantage; selection
/// gets *cheaper* as |O| grows (higher RSk prunes more candidates).
pub fn fig13(p: &Params) {
    let mut a = Table::new(
        "Fig 13a — top-k MRPU (ms) vs |O|",
        &["|O|", "Baseline", "Joint top-k"],
    );
    let mut b = Table::new(
        "Fig 13b — top-k MIOCPU vs |O|",
        &["|O|", "Baseline", "Joint top-k"],
    );
    let mut c = Table::new(
        "Fig 13c — candidate-selection runtime (ms) vs |O|",
        &["|O|", "Exact", "Approx"],
    );
    let mut d = Table::new("Fig 13d — approximation ratio vs |O|", &["|O|", "ratio"]);
    for &o in &OS_SCALE {
        let pv = Params {
            num_objects: o,
            ..p.clone()
        };
        let row = avg_over_trials(&pv, |sc| {
            let bm = measure_topk_baseline(sc, pv.k);
            let jm = measure_topk_joint(sc, pv.k);
            let e = measure_select(sc, &sc.spec, &jm, SelectMethod::Exact);
            let ap = measure_select(sc, &sc.spec, &jm, SelectMethod::Approx);
            vec![
                bm.mrpu_ms,
                jm.mrpu_ms,
                bm.miocpu,
                jm.miocpu,
                e.runtime_ms,
                ap.runtime_ms,
                ratio(ap.cardinality, e.cardinality),
            ]
        });
        a.row(vec![o.to_string(), fmt(row[0]), fmt(row[1])]);
        b.row(vec![o.to_string(), fmt(row[2]), fmt(row[3])]);
        c.row(vec![o.to_string(), fmt(row[4]), fmt(row[5])]);
        d.row(vec![o.to_string(), fmt(row[6])]);
    }
    a.print();
    b.print();
    c.print();
    d.print();
}

/// Fig. 14: effect of k on the Yelp-like collection. Paper: "all results
/// were consistent across both datasets".
pub fn fig14(p: &Params) {
    let py = p.clone().yelp();
    let mut a = Table::new(
        "Fig 14a — top-k MRPU (ms) vs k (Yelp-like)",
        &["k", "Baseline", "Joint top-k"],
    );
    let mut b = Table::new(
        "Fig 14b — top-k MIOCPU vs k (Yelp-like)",
        &["k", "Baseline", "Joint top-k"],
    );
    let mut c = Table::new(
        "Fig 14c — candidate-selection runtime (ms) vs k (Yelp-like)",
        &["k", "Exact", "Approx"],
    );
    let mut d = Table::new(
        "Fig 14d — approximation ratio vs k (Yelp-like)",
        &["k", "ratio"],
    );
    // One scenario per trial serves every k.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let all = avg_over_trials(&py, |sc| {
        let mut out = Vec::new();
        for &k in &KS {
            let bm = measure_topk_baseline(sc, k);
            let jm = measure_topk_joint(sc, k);
            let spec = QuerySpec {
                k,
                ..sc.spec.clone()
            };
            let e = measure_select(sc, &spec, &jm, SelectMethod::Exact);
            let ap = measure_select(sc, &spec, &jm, SelectMethod::Approx);
            out.extend([
                bm.mrpu_ms,
                jm.mrpu_ms,
                bm.miocpu,
                jm.miocpu,
                e.runtime_ms,
                ap.runtime_ms,
                ratio(ap.cardinality, e.cardinality),
            ]);
        }
        out
    });
    for chunk in all.chunks(7) {
        rows.push(chunk.to_vec());
    }
    for (&k, row) in KS.iter().zip(&rows) {
        a.row(vec![k.to_string(), fmt(row[0]), fmt(row[1])]);
        b.row(vec![k.to_string(), fmt(row[2]), fmt(row[3])]);
        c.row(vec![k.to_string(), fmt(row[4]), fmt(row[5])]);
        d.row(vec![k.to_string(), fmt(row[6])]);
    }
    a.print();
    b.print();
    c.print();
    d.print();
}

/// Fig. 15: the user index (§7). Paper shape: indexed users cost less
/// total I/O; 5–12.5% of users pruned, share growing with |U|.
///
/// §7 targets *disk-resident, sparse* users, so this experiment widens the
/// user window (Area = 30) and limits the siting options (|L| = 8) — with
/// the default dense window every user genuinely is a BRSTkNN somewhere
/// and nothing is prunable at our object density (we verified exactly
/// that; see EXPERIMENTS.md). The un-indexed competitor must still read
/// the user table from disk: its I/O is the joint traversal plus a
/// sequential scan of the serialized user records; the indexed pipeline
/// reads MIUR nodes instead, skipping unexpanded subtrees.
pub fn fig15(p: &Params) {
    let mut a = Table::new(
        "Fig 15a — total I/O and runtime vs |U| (user index, Area=30, |L|=8)",
        &["|U|", "Un-idx I/O", "Idx I/O", "Un-idx ms", "Idx ms"],
    );
    let mut b = Table::new(
        "Fig 15b — users pruned (%) vs |U| (Area=30, |L|=8)",
        &["|U|", "pruned %"],
    );
    for &u in &U15 {
        let pv = Params {
            num_users: u,
            area: 30.0,
            num_locations: 8,
            ..p.clone()
        };
        let row = avg_over_trials(&pv, |sc| {
            // Constrained siting: candidate locations confined to one
            // corner quarter of the window, so distant user subtrees are
            // genuinely unreachable (the situation §7's subtree pruning
            // exists for).
            let w = sc.window;
            let n = pv.num_locations;
            let spec = QuerySpec {
                locations: (0..n)
                    .map(|i| {
                        let f = i as f64 / n.max(1) as f64;
                        geo::Point::new(
                            w.min.x + 0.25 * w.width() * f,
                            w.min.y + 0.25 * w.height() * (1.0 - f),
                        )
                    })
                    .collect(),
                ..sc.spec.clone()
            };
            // Un-indexed: joint top-k + sequential scan of the on-disk
            // user table (id + point + keyword list per record).
            let jm = measure_topk_joint(sc, pv.k);
            let user_table_bytes: usize = sc
                .engine
                .users
                .iter()
                .map(|u| 4 + 16 + 4 + 4 * u.doc.num_terms())
                .sum();
            let unindexed_io = jm.total_io as f64 + storage::blocks_for(user_table_bytes) as f64;
            let ui = measure_user_index(sc, &spec);
            // Un-indexed runtime: the full §5–§6 pipeline on in-memory
            // users (joint top-k + Algorithm 3 greedy).
            let sel = measure_select(sc, &spec, &jm, SelectMethod::Approx);
            vec![
                unindexed_io,
                ui.total_io as f64,
                jm.total_ms + sel.runtime_ms,
                ui.runtime_ms,
                ui.users_pruned_pct,
            ]
        });
        a.row(vec![
            u.to_string(),
            fmt(row[0]),
            fmt(row[1]),
            fmt(row[2]),
            fmt(row[3]),
        ]);
        b.row(vec![u.to_string(), fmt(row[4])]);
    }
    a.print();
    b.print();
}

/// Batch-serving experiment (beyond the paper): throughput of
/// `Engine::query_batch` as worker threads grow, per method.
///
/// Expected shape: wall-clock drops and QPS climbs until thread count
/// reaches the hardware's parallelism, while per-query simulated I/O stays
/// *exactly* constant — batching parallelizes the work without changing
/// the algorithms' access paths (the paper's cost model is preserved).
pub fn batch(p: &Params) {
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    const BATCH: usize = 24;

    let sc = Scenario::build(p, 0);
    let specs = sc.batch_specs(BATCH);
    for method in [
        Method::JointGreedy,
        Method::JointExact,
        Method::UserIndexGreedy,
    ] {
        let mut t = Table::new(
            &format!(
                "Batch — {} × {BATCH} queries vs worker threads",
                method.name()
            ),
            &[
                "threads",
                "wall ms",
                "QPS",
                "mean q ms",
                "p99 q ms",
                "mean q I/O",
            ],
        );
        // The serial run doubles as the THREADS[0] == 1 row, so the most
        // expensive configuration is measured exactly once.
        let baseline = measure_query_batch(&sc, &specs, method, 1);
        for &threads in &THREADS {
            let m = if threads == 1 {
                baseline.clone()
            } else {
                measure_query_batch(&sc, &specs, method, threads)
            };
            assert_eq!(
                m.cardinalities, baseline.cardinalities,
                "batch answers must not depend on thread count"
            );
            assert_eq!(
                m.total_io, baseline.total_io,
                "per-query I/O must not depend on thread count"
            );
            t.row(vec![
                threads.to_string(),
                fmt(m.wall_ms),
                fmt(m.qps),
                fmt(m.mean_query_ms),
                fmt(m.p99_query_ms),
                fmt(m.mean_query_io),
            ]);
        }
        t.print();
    }
}

/// Serving-cache experiment (beyond the paper): batch throughput of
/// same-`k` queries under the four cache configurations —
///
/// * **cold** — the paper's model, every access charged;
/// * **warm-sharded** — an OS-page-cache stand-in: the lock-striped
///   [`ShardedLru`](storage::ShardedLru) attached to the engine's
///   [`IoStats`](storage::IoStats);
/// * **threshold** — the cross-query top-k
///   [`ThresholdCache`](mbrstk_core::ThresholdCache): the batch pays the
///   `(engine, k)`-dependent top-k phase once;
/// * **both** — the two combined.
///
/// Expected shape: answers are identical in all four rows; warm-sharded
/// cuts batch I/O (reported hit rate grows with capacity); the threshold
/// cache collapses joint-strategy batch I/O to a single query's worth and
/// wins the most wall-clock, since it skips the top-k *computation*, not
/// just its charges.
pub fn cache(p: &Params) {
    use mbrstk_core::ThresholdCache;
    use storage::IoStats;

    const BATCH: usize = 24;
    const THREADS: usize = 4;
    const WARM_BLOCKS: u64 = 1 << 15;

    let mut sc = Scenario::build(p, 0);
    let specs = sc.batch_specs(BATCH);
    for method in [
        Method::JointGreedy,
        Method::JointExact,
        Method::UserIndexGreedy,
    ] {
        let mut t = Table::new(
            &format!(
                "Cache — {} × {BATCH} same-k queries, {THREADS} threads",
                method.name()
            ),
            &[
                "config",
                "wall ms",
                "QPS",
                "batch I/O",
                "page hit %",
                "tc hit %",
            ],
        );
        let mut reference: Option<Vec<usize>> = None;
        for config in ["cold", "warm-sharded", "threshold", "both"] {
            let warm = config == "warm-sharded" || config == "both";
            let thresh = config == "threshold" || config == "both";
            sc.engine.io = if warm {
                IoStats::with_cache(WARM_BLOCKS)
            } else {
                IoStats::new()
            };
            sc.engine.thresholds = thresh.then(ThresholdCache::new);
            let m = measure_query_batch(&sc, &specs, method, THREADS);
            let cards = m.cardinalities.clone();
            match &reference {
                None => reference = Some(cards),
                Some(want) => assert_eq!(
                    &cards, want,
                    "cache configuration must not change any answer"
                ),
            }
            // Hit *ratios* come off the engine's telemetry gauges (the
            // query path refreshes them after every query), not from the
            // raw counters — the surface a scraper would read.
            let ms = sc.engine.metrics().snapshot();
            let pct = |g: Option<f64>| fmt(g.map_or(f64::NAN, |v| 100.0 * v));
            t.row(vec![
                config.into(),
                fmt(m.wall_ms),
                fmt(m.qps),
                m.total_io.to_string(),
                pct(warm.then(|| ms.gauge("page_cache_hit_ratio")).flatten()),
                pct(thresh
                    .then(|| ms.gauge("threshold_cache_hit_ratio"))
                    .flatten()),
            ]);
        }
        t.print();
    }
}

/// Churn experiment (beyond the paper): serving under dynamic updates.
///
/// Two questions, two tables per method:
///
/// 1. **Throughput vs update rate.** A mixed stream of queries and
///    mutations ([`datagen::generate_churn`]) runs against one live
///    engine with both caches attached. Expected shape: every mutation
///    invalidates the `(engine, k)` threshold slots, so query I/O climbs
///    with the update ratio (each mutated window re-pays the top-k
///    phase) while answers stay exact — the cost of correctness under
///    churn, quantified.
/// 2. **Incremental maintenance vs rebuild.** Mean maintenance I/O per
///    mutation against [`Engine::rebuild_io_cost`]. Expected shape: a
///    root-to-leaf repair touches `O(height)` nodes, so the incremental
///    path wins by orders of magnitude — the reason the subsystem exists.
///
/// [`Engine::rebuild_io_cost`]: mbrstk_core::Engine::rebuild_io_cost
pub fn churn(p: &Params) {
    use datagen::{generate_churn, ChurnConfig, ChurnOp};
    use mbrstk_core::ThresholdCache;
    use storage::IoStats;

    const RATIOS: [f64; 4] = [0.0, 0.05, 0.2, 0.5];
    const OPS: usize = 160;
    const WARM_BLOCKS: u64 = 1 << 15;

    for method in [Method::JointGreedy, Method::UserIndexGreedy] {
        let mut t = Table::new(
            &format!(
                "Churn A — {} × {OPS} mixed ops vs update ratio",
                method.name()
            ),
            &[
                "upd %",
                "queries",
                "muts",
                "wall ms",
                "ops/s",
                "query I/O",
                "maint I/O",
                "tc hit %",
            ],
        );
        for ratio in RATIOS {
            let mut sc = Scenario::build(p, 0);
            sc.engine.io = IoStats::with_cache(WARM_BLOCKS);
            sc.engine.thresholds = Some(ThresholdCache::new());
            let stream = generate_churn(
                &sc.engine.objects,
                &sc.engine.users,
                &sc.spec.keywords,
                &ChurnConfig::new(OPS, ratio).with_seed(p.seed),
            );
            let specs = sc.batch_specs(8);
            let guard = sc.engine.epoch_guard();
            let (mut queries, mut mutations) = (0usize, 0usize);
            let mut query_io = 0u64;
            let mut maint = mbrstk_core::MaintenanceIo::default();
            let start = std::time::Instant::now();
            for op in stream {
                match op {
                    ChurnOp::Query => {
                        let spec = &specs[queries % specs.len()];
                        let ((), io) = sc.engine.io.scoped(|| {
                            let _ = sc.engine.query(spec, method);
                        });
                        query_io += io.total();
                        queries += 1;
                    }
                    ChurnOp::Mutate(m) => {
                        let report = sc.engine.apply_batch([m]);
                        maint += report.io;
                        mutations += report.applied;
                    }
                }
            }
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                sc.engine.epoch(),
                guard.epoch() + mutations as u64,
                "every applied mutation bumps the epoch exactly once"
            );
            let tc = sc.engine.thresholds.as_ref().unwrap();
            let probes = tc.hits() + tc.misses();
            let hit_pct = if probes > 0 {
                100.0 * tc.hits() as f64 / probes as f64
            } else {
                f64::NAN
            };
            t.row(vec![
                fmt(ratio * 100.0),
                queries.to_string(),
                mutations.to_string(),
                fmt(wall_ms),
                fmt((queries + mutations) as f64 / (wall_ms / 1e3).max(1e-9)),
                query_io.to_string(),
                maint.total().to_string(),
                fmt(hit_pct),
            ]);
        }
        t.print();
    }

    // --- B: incremental maintenance vs full rebuild. ---
    let mut t = Table::new(
        "Churn B — incremental maintenance I/O vs full rebuild",
        &[
            "|O|",
            "rebuild I/O",
            "mean maint I/O per op",
            "rebuild / maint",
        ],
    );
    let sc = Scenario::build(p, 0);
    let mut eng = sc.engine;
    let stream = generate_churn(
        &eng.objects,
        &eng.users,
        &sc.spec.keywords,
        &ChurnConfig::new(60, 1.0).with_seed(p.seed + 1),
    );
    let report = eng.apply_batch(stream.into_iter().filter_map(|op| match op {
        ChurnOp::Mutate(m) => Some(m),
        ChurnOp::Query => None,
    }));
    let mean_maint = report.io.total() as f64 / report.applied.max(1) as f64;
    let rebuild = eng.rebuild_io_cost() as f64;
    t.row(vec![
        eng.objects.len().to_string(),
        fmt(rebuild),
        fmt(mean_maint),
        fmt(rebuild / mean_maint.max(1e-9)),
    ]);
    t.print();
}

/// Refresh experiment (beyond the paper): scorer drift and answer quality
/// vs re-weigh cadence.
///
/// A drift-heavy churn stream ([`datagen::ChurnConfig::drift_heavy`]:
/// insert-dominant, one term flooded with repeated occurrences) runs
/// against one engine; every `cadence` mutations the engine re-weighs
/// ([`Engine::refresh`]). At the end we measure [`Engine::drift`] and
/// replay a probe batch, counting how many answers are bit-identical to a
/// cold rebuild of the churned corpus. Expected shape: with no refresh
/// (cadence 0) the frozen scorer drifts and probe answers diverge from
/// the cold twin; any finite cadence ends drift-free right after a
/// re-weigh, and tighter cadences bound the drift *between* re-weighs —
/// the cost being one full rebuild (plus reclaimed placeholder records)
/// per refresh.
///
/// [`Engine::refresh`]: mbrstk_core::Engine::refresh
/// [`Engine::drift`]: mbrstk_core::Engine::drift
pub fn refresh(p: &Params) {
    use datagen::{generate_churn, ChurnConfig, ChurnOp};
    use mbrstk_core::Engine;

    const OPS: usize = 200;
    /// Mutations between re-weighs; 0 = never refresh.
    const CADENCES: [u64; 4] = [0, 200, 100, 50];

    let mut t = Table::new(
        "Refresh — drift & answer quality vs re-weigh cadence (drift-heavy churn)",
        &[
            "cadence",
            "muts",
            "refreshes",
            "reclaimed",
            "max drift",
            "mean drift",
            "probe match %",
            "wall ms",
        ],
    );
    for cadence in CADENCES {
        let sc = Scenario::build(p, 0);
        let probes = sc.batch_specs(6);
        let mut eng = sc.engine;
        let stream = generate_churn(
            &eng.objects,
            &eng.users,
            &sc.spec.keywords,
            &ChurnConfig::drift_heavy(OPS).with_seed(p.seed),
        );
        let start = std::time::Instant::now();
        let (mut muts, mut refreshes, mut reclaimed) = (0u64, 0u64, 0u64);
        for op in stream {
            let ChurnOp::Mutate(m) = op else { continue };
            muts += eng.apply_batch([m]).applied as u64;
            if cadence > 0 && muts % cadence == 0 {
                let r = eng.refresh();
                refreshes += 1;
                reclaimed += r.reclaimed_records;
            }
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        let drift = eng.drift();
        // Answer quality: bit-identity against a cold rebuild over the
        // churned corpus (the ground truth a drift-free engine matches).
        let cold = Engine::build_with_fanout(
            eng.objects.clone(),
            eng.users.clone(),
            p.model,
            p.alpha,
            p.fanout,
        );
        let matched = probes
            .iter()
            .filter(|ps| eng.query(ps, Method::JointExact) == cold.query(ps, Method::JointExact))
            .count();
        t.row(vec![
            if cadence == 0 {
                "never".into()
            } else {
                cadence.to_string()
            },
            muts.to_string(),
            refreshes.to_string(),
            reclaimed.to_string(),
            fmt(drift.max_rel_error),
            fmt(drift.mean_rel_error),
            fmt(100.0 * matched as f64 / probes.len() as f64),
            fmt(wall_ms),
        ]);
    }
    t.print();
}

/// Incremental-refresh experiment (beyond the paper): refresh I/O vs the
/// fraction of drifted terms.
///
/// Term-local replacement churn ([`datagen::ChurnConfig::term_local`])
/// confined to a growing slice of the vocabulary runs against a
/// controlled corpus (one rotating term per document, so the pool slice
/// directly controls how many documents the churn can touch — the
/// paper-style zipf corpus puts its head terms in nearly every document,
/// which is exactly the *broad*-drift regime the full tier exists for).
/// At the end the drift ledger measures which fraction of the vocabulary
/// actually drifted, and both refresh tiers are costed: the full tier's
/// I/O is the rebuilt index footprint, the incremental tier's
/// ([`Engine::refreshed_incremental`]) is the rewritten paths' reads +
/// writes (spliced records are free — the extent-remap model).
///
/// Expected shape: incremental I/O and the incremental/full ratio grow
/// with the drifted fraction, not with |O| — far below 1 for term-local
/// drift, climbing toward (and past) 1 as churn touches most of the
/// vocabulary, which is exactly why the serving engine falls back to the
/// full tier above `RefreshConfig.full_refresh_drift`.
///
/// [`Engine::refreshed_incremental`]: mbrstk_core::Engine::refreshed_incremental
pub fn refresh_incremental(p: &Params) {
    use datagen::{generate_churn, ChurnConfig, ChurnOp};
    use geo::Point;
    use mbrstk_core::{Engine, ObjectData, UserData};
    use text::{Document, TermId};

    const OPS: usize = 40;
    const VOCAB: u32 = 200;
    /// Fixed modest fanout: the experiment needs enough leaves for
    /// "fraction of leaves touched" to be meaningful at |O| ≈ thousands.
    const FANOUT: usize = 16;
    const POOL_FRACTIONS: [f64; 5] = [0.02, 0.05, 0.1, 0.25, 0.5];

    let n = p.num_objects.min(20_000) as u32;
    // Same-term documents are contiguous in id and therefore spatially
    // clustered (a hot category is a hot region): term-local churn then
    // touches few leaves, the regime the incremental tier targets.
    let objects: Vec<ObjectData> = (0..n)
        .map(|i| ObjectData {
            id: i,
            point: Point::new(
                (i % 64) as f64 + 0.31 * (i % 5) as f64,
                (i / 64) as f64 + 0.27 * (i % 7) as f64,
            ),
            doc: Document::from_pairs([(TermId(i / (n / VOCAB).max(1)), 1 + i % 3)]),
        })
        .collect();
    let users: Vec<UserData> = (0..64u32)
        .map(|i| UserData {
            id: i,
            point: Point::new((i % 32) as f64 + 0.4, (i % 16) as f64 + 0.6),
            doc: Document::from_terms([TermId(i % VOCAB), TermId((i * 7) % VOCAB)]),
        })
        .collect();

    let mut t = Table::new(
        &format!("Refresh-incremental — refresh I/O vs fraction of drifted terms (|O|={n})"),
        &[
            "pool %",
            "drifted %",
            "reweighed docs",
            "spliced recs",
            "incr I/O",
            "full I/O",
            "incr/full",
        ],
    );
    for frac in POOL_FRACTIONS {
        let mut eng =
            Engine::build_with_fanout(objects.clone(), users.clone(), p.model, p.alpha, FANOUT)
                .with_user_index();
        let pool_len = ((f64::from(VOCAB) * frac) as u32).clamp(1, VOCAB);
        let pool: Vec<TermId> = (0..pool_len).map(TermId).collect();
        let stream = generate_churn(
            &eng.objects,
            &eng.users,
            &pool,
            &ChurnConfig::term_local(OPS).with_seed(p.seed),
        );
        eng.apply_batch(stream.into_iter().filter_map(|op| match op {
            ChurnOp::Mutate(m) => Some(m),
            ChurnOp::Query => None,
        }));

        let ledger = eng.drift_ledger(0.0);
        let full_io = eng.refreshed().rebuild_io_cost();
        let (_, report) = eng.refreshed_incremental();
        t.row(vec![
            fmt(100.0 * f64::from(pool_len) / f64::from(VOCAB)),
            fmt(100.0 * ledger.drifted_fraction()),
            report.reweighed_docs.to_string(),
            report.spliced_records.to_string(),
            report.refresh_io.to_string(),
            full_io.to_string(),
            fmt(report.refresh_io as f64 / full_io.max(1) as f64),
        ]);
    }
    t.print();
}

/// Ablations beyond the paper's figures: design-choice experiments listed
/// in DESIGN.md.
///
/// * **Cache** — the paper measures *cold* simulated I/O because real
///   deployments sit behind OS caches; this sweep shows how an LRU page
///   cache of growing capacity erodes the baseline's I/O penalty while the
///   joint method (which never re-reads a page) is unaffected.
/// * **Fanout** — node capacity vs I/O and runtime.
/// * **Selector** — the paper's coverage greedy vs the realized-gain
///   greedy extension vs exact: quality and cost.
/// * **Index sizes** — §5.1 cost analysis: the MIR-tree's extra minimum
///   weight per posting.
pub fn ablation(p: &Params) {
    use storage::IoStats;

    // --- (a) Warm-cache sweep. ---
    let mut t = Table::new(
        "Ablation A — MIOCPU vs LRU cache capacity (4 KB blocks)",
        &["cache", "Baseline", "Joint top-k"],
    );
    let sc = Scenario::build(p, 0);
    for blocks in [0u64, 1024, 8192, 65536] {
        sc.engine.io.reset();
        // Single shard: this ablation is single-threaded and sweeps the
        // behavior of *one* global LRU of the stated capacity; striping
        // would change what the row measures (per-shard eviction,
        // per-shard oversize bypass).
        let io = if blocks == 0 {
            IoStats::new()
        } else {
            IoStats::with_cache_sharded(blocks, 1)
        };
        // Baseline with the cache: replay every user's traversal.
        let b_io = {
            io.reset();
            for u in &sc.engine.users {
                mbrstk_core::topk::baseline::user_topk_baseline(
                    &sc.engine.ir,
                    u,
                    p.k,
                    &sc.engine.ctx,
                    &io,
                );
            }
            io.total() as f64 / sc.engine.users.len() as f64
        };
        let j_io = {
            io.reset();
            let su = sc.engine.super_user();
            let out =
                mbrstk_core::topk::joint::joint_topk(&sc.engine.mir, &su, p.k, &sc.engine.ctx, &io);
            mbrstk_core::topk::individual::individual_topk(
                &sc.engine.users,
                &out,
                p.k,
                &sc.engine.ctx,
            );
            io.total() as f64 / sc.engine.users.len() as f64
        };
        t.row(vec![blocks.to_string(), fmt(b_io), fmt(j_io)]);
    }
    t.print();

    // --- (b) Fanout sweep. ---
    let mut t = Table::new(
        "Ablation B — fanout vs top-k cost",
        &["fanout", "B MIOCPU", "J MIOCPU", "B MRPU(ms)", "J MRPU(ms)"],
    );
    for fanout in [16usize, 32, 64, 128] {
        let pf = Params {
            fanout,
            ..p.clone()
        };
        let sc = Scenario::build(&pf, 0);
        let b = measure_topk_baseline(&sc, pf.k);
        let j = measure_topk_joint(&sc, pf.k);
        t.row(vec![
            fanout.to_string(),
            fmt(b.miocpu),
            fmt(j.miocpu),
            fmt(b.mrpu_ms),
            fmt(j.mrpu_ms),
        ]);
    }
    t.print();

    // --- (c) Keyword selector quality. ---
    let mut t = Table::new(
        "Ablation C — keyword selector: runtime (ms) and ratio to exact",
        &[
            "trial",
            "Greedy ms",
            "Greedy+ ms",
            "Exact ms",
            "Greedy ratio",
            "Greedy+ ratio",
        ],
    );
    for trial in 0..p.trials {
        let sc = Scenario::build(p, trial);
        let topk = measure_topk_joint(&sc, p.k);
        let g = measure_select(&sc, &sc.spec, &topk, SelectMethod::Approx);
        let gp = measure_select(&sc, &sc.spec, &topk, SelectMethod::ApproxPlus);
        let e = measure_select(&sc, &sc.spec, &topk, SelectMethod::Exact);
        t.row(vec![
            trial.to_string(),
            fmt(g.runtime_ms),
            fmt(gp.runtime_ms),
            fmt(e.runtime_ms),
            fmt(ratio(g.cardinality, e.cardinality)),
            fmt(ratio(gp.cardinality, e.cardinality)),
        ]);
    }
    t.print();

    // --- (e) Leaf clustering: STR (spatial) vs text-first (CIR-like). ---
    let mut t = Table::new(
        "Ablation E — leaf clustering: STR vs text-first (joint top-k)",
        &["clustering", "MIOCPU", "MRPU(ms)", "invfile bytes"],
    );
    {
        use index::{IndexedObject, PostingMode, StTree};
        use mbrstk_core::topk::individual::individual_topk;
        use mbrstk_core::topk::joint::joint_topk;
        let sc = Scenario::build(p, 0);
        let objs: Vec<IndexedObject> = sc
            .engine
            .objects
            .iter()
            .map(|o| IndexedObject {
                id: o.id,
                point: o.point,
                doc: sc.engine.ctx.text.weigh(&o.doc),
            })
            .collect();
        let trees = [
            (
                "STR",
                StTree::build_with_fanout(&objs, PostingMode::MaxMin, p.fanout),
            ),
            (
                "text-first",
                StTree::build_text_first(&objs, PostingMode::MaxMin, p.fanout),
            ),
        ];
        for (name, tree) in &trees {
            let io = storage::IoStats::new();
            let su = sc.engine.super_user();
            let start = std::time::Instant::now();
            let out = joint_topk(tree, &su, p.k, &sc.engine.ctx, &io);
            individual_topk(&sc.engine.users, &out, p.k, &sc.engine.ctx);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let n = sc.engine.users.len() as f64;
            t.row(vec![
                (*name).to_string(),
                fmt(io.total() as f64 / n),
                fmt(ms / n),
                tree.invfile_bytes().to_string(),
            ]);
        }
    }
    t.print();

    // --- (d) Index footprint (§5.1 cost analysis). ---
    let sc = Scenario::build(p, 0);
    let mut t = Table::new(
        "Ablation D — index footprint (bytes)",
        &["index", "node records", "inverted files"],
    );
    t.row(vec![
        "IR-tree".into(),
        sc.engine.ir.node_bytes().to_string(),
        sc.engine.ir.invfile_bytes().to_string(),
    ]);
    t.row(vec![
        "MIR-tree".into(),
        sc.engine.mir.node_bytes().to_string(),
        sc.engine.mir.invfile_bytes().to_string(),
    ]);
    if let Some(miur) = &sc.engine.miur {
        t.row(vec![
            "MIUR-tree".into(),
            miur.node_bytes().to_string(),
            miur.intuni_bytes().to_string(),
        ]);
    }
    t.print();
}

/// Percentage saved by the columnar figure relative to the verbatim one.
fn saved(verbatim: u64, columnar: u64) -> String {
    if verbatim == 0 {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * (1.0 - columnar as f64 / verbatim as f64))
}

/// The pluggable block-file codec: Verbatim vs Columnar twins of the same
/// scenario, compared on (A) simulated I/O per method, (B) index bytes on
/// disk (physical vs logical), and (C) the joint-pipeline I/O reduction
/// across corpus sizes under LM — the inverted-file-heavy configuration
/// the columnar layout targets. Every row asserts the two codecs answer
/// identically before reporting the saving.
pub fn codec(p: &Params) {
    use storage::CodecId;

    let pl = Params {
        model: WeightModel::lm(),
        ..p.clone()
    };
    let verb = Scenario::build_with_codec(&pl, 0, CodecId::Verbatim);
    let col = Scenario::build_with_codec(&pl, 0, CodecId::Columnar);

    let mut t = Table::new(
        "Codec A — simulated I/O per method (LM)",
        &["method", "Verbatim", "Columnar", "saved"],
    );
    for m in Method::ALL {
        verb.engine.io.reset();
        let rv = verb.engine.query(&verb.spec, m);
        let v_io = verb.engine.io.total();
        col.engine.io.reset();
        let rc = col.engine.query(&col.spec, m);
        let c_io = col.engine.io.total();
        assert_eq!(
            (rv.location, &rv.keywords, rv.cardinality()),
            (rc.location, &rc.keywords, rc.cardinality()),
            "{m:?}: codecs must answer identically"
        );
        t.row(vec![
            format!("{m:?}"),
            v_io.to_string(),
            c_io.to_string(),
            saved(v_io, c_io),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Codec B — index bytes on disk",
        &["codec", "physical", "logical", "saved"],
    );
    for (name, sc) in [("Verbatim", &verb), ("Columnar", &col)] {
        let phys = sc.engine.physical_index_bytes();
        let logical = sc.engine.logical_index_bytes();
        t.row(vec![
            name.into(),
            phys.to_string(),
            logical.to_string(),
            saved(logical, phys),
        ]);
    }
    t.print();

    let sizes: &[usize] = if p.num_objects <= 5_000 {
        &[2_000, 4_000]
    } else {
        &[5_000, 10_000, 20_000]
    };
    let mut t = Table::new(
        "Codec C — joint top-k I/O vs |O| (LM)",
        &["|O|", "Verbatim", "Columnar", "saved"],
    );
    for &n in sizes {
        let pn = Params {
            num_objects: n,
            model: WeightModel::lm(),
            ..p.clone()
        };
        let v = Scenario::build_with_codec(&pn, 0, CodecId::Verbatim);
        let c = Scenario::build_with_codec(&pn, 0, CodecId::Columnar);
        v.engine.io.reset();
        let (tv, thv) = v.engine.joint_user_topk(pn.k);
        let v_io = v.engine.io.total();
        c.engine.io.reset();
        let (tc, thc) = c.engine.joint_user_topk(pn.k);
        let c_io = c.engine.io.total();
        assert_eq!((tv.len(), thv), (tc.len(), thc), "|O|={n}: codecs diverged");
        t.row(vec![
            n.to_string(),
            v_io.to_string(),
            c_io.to_string(),
            saved(v_io, c_io),
        ]);
    }
    t.print();
}

/// Observability experiment (beyond the paper): the always-on telemetry
/// surface, read back the way a scraper would.
///
/// One batch per built-in method runs through the instrumented engine;
/// then everything printed below comes from
/// [`Engine::metrics`](mbrstk_core::Engine::metrics)`().snapshot()` — no
/// side-channel timers. Three views:
///
/// * **A** — end-to-end query latency percentiles per method (p50 / p90 /
///   p99 / p999 off the log-bucketed histograms, ≤1/32 relative error);
/// * **B** — the same latency split by [`Phase`](mbrstk_core::Phase)
///   (top-k vs selection), the paper's two-stage cost decomposition
///   recovered from live telemetry rather than a bespoke stopwatch;
/// * **C** — per-phase simulated I/O means, which reconcile exactly with
///   the batch's summed `QueryStats` (pinned by `tests/obs_telemetry.rs`).
///
/// A trailing excerpt of the Prometheus exposition shows the same numbers
/// on the wire format.
pub fn obs(p: &Params) {
    const BATCH: usize = 12;
    const THREADS: usize = 2;

    // No caches: each method pays its own top-k, so the phase split is the
    // genuine algorithmic cost (the `cache` experiment shows the cached
    // shape and its hit-ratio gauges).
    let sc = Scenario::build(p, 0);
    let specs = sc.batch_specs(BATCH);
    for method in Method::ALL {
        measure_query_batch(&sc, &specs, method, THREADS);
    }
    let snap = sc.engine.metrics().snapshot();

    let us = |v: u64| fmt(v as f64);
    let mut a = Table::new(
        &format!("Obs A — query latency (µs) per method, {BATCH} queries each"),
        &["method", "count", "p50", "p90", "p99", "p999", "max"],
    );
    let mut b = Table::new(
        "Obs B — phase latency (µs): top-k vs selection",
        &["method", "topk p50", "topk p99", "select p50", "select p99"],
    );
    let mut c = Table::new(
        "Obs C — phase I/O (simulated ops, mean per query)",
        &["method", "topk", "select", "total"],
    );
    for method in Method::ALL {
        let name = method.name();
        let lat = snap
            .histogram(&format!("engine_query_latency_us{{method=\"{name}\"}}"))
            .expect("per-method latency histogram exists");
        a.row(vec![
            name.to_string(),
            lat.count().to_string(),
            us(lat.p50()),
            us(lat.p90()),
            us(lat.p99()),
            us(lat.p999()),
            us(lat.max()),
        ]);
        let phase_lat = |phase: &str| {
            snap.histogram(&format!(
                "engine_query_phase_latency_us{{method=\"{name}\",phase=\"{phase}\"}}"
            ))
            .expect("per-phase latency histogram exists")
        };
        let (tk, sel) = (phase_lat("topk"), phase_lat("select"));
        b.row(vec![
            name.to_string(),
            us(tk.p50()),
            us(tk.p99()),
            us(sel.p50()),
            us(sel.p99()),
        ]);
        let phase_io = |phase: &str| {
            snap.histogram(&format!(
                "engine_query_phase_io_ops{{method=\"{name}\",phase=\"{phase}\"}}"
            ))
            .expect("per-phase I/O histogram exists")
        };
        let (tki, seli) = (phase_io("topk"), phase_io("select"));
        c.row(vec![
            name.to_string(),
            fmt(tki.mean()),
            fmt(seli.mean()),
            fmt(tki.mean() + seli.mean()),
        ]);
    }
    a.print();
    b.print();
    c.print();

    println!("\nPrometheus exposition (engine_query_latency_us family):");
    for line in snap.render_prometheus().lines() {
        if line.contains("engine_query_latency_us") {
            println!("  {line}");
        }
    }
}
