//! `figures -- cluster`: scatter-gather scaling vs shard count.
//!
//! Builds one corpus at 4× the configured scale (sharding only pays off
//! past the single-engine comfort zone), then answers the same query
//! stream through a fused `Engine` and through [`EngineCluster`]s of
//! 1, 2, 4 and 8 shards. Answers are bit-identical across configurations
//! (the differential suite pins that); this experiment measures what the
//! user-table partitioning buys.
//!
//! Two methods, two regimes:
//!
//! * **Baseline** (§4): the top-k phase is one IR-tree traversal *per
//!   user* — wholly per-user work, the embarrassingly parallel case the
//!   partition targets. The scatter critical path (the slowest shard's
//!   slice) shrinks ≈ 1/N.
//! * **JointGreedy** (§5/§6): the shared MIR traversal and the candidate
//!   selection stay on the head, so Amdahl bounds the win to the
//!   individual-top-k fraction.
//!
//! Besides measured wall-clock throughput, the table reports the **top-k
//! critical path** — the slowest shard's accumulated scatter time, read
//! from the `cluster_scatter_latency_us{shard=...}` histograms — and its
//! speedup over the 1-shard configuration. Wall-clock throughput tracks
//! the critical path when one core per shard is available; on fewer
//! cores the scoped workers serialize and wall time stays flat while the
//! critical path still contracts.
//!
//! The query stream cycles `k` through more distinct values than the
//! head's 16-slot threshold-cache LRU holds, so every query pays the
//! scattered top-k phase rather than a cache hit.

use std::time::Instant;

use mbrstk_core::{EngineCluster, Method, QuerySpec};

use crate::report::{fmt, Table};
use crate::{Params, Scenario};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Measure {
    qps: f64,
    mean_ms: f64,
    p99_ms: f64,
}

/// Runs the shard-count sweep for both methods and prints one table per
/// method.
pub fn scaling(p: &Params) {
    let mut sp = p.clone();
    sp.num_objects *= 4;
    sp.num_users *= 4;
    println!(
        "## cluster — |O|={}, |U|={} (4x the configured scale)",
        sp.num_objects, sp.num_users
    );
    let sc = Scenario::build(&sp, 0);

    // 17 distinct k values exceed the 16-slot LRU; Baseline's per-user
    // traversals are expensive enough that one pass over the cycle is
    // the whole panel. JointGreedy is cheap per query — run more.
    sweep(&sc, Method::Baseline, 17, 17);
    sweep(&sc, Method::JointGreedy, (sp.trials * 32).max(32), 32);
}

fn sweep(sc: &Scenario, method: Method, n_queries: usize, k_cycle: usize) {
    let specs: Vec<QuerySpec> = (0..n_queries)
        .map(|i| QuerySpec {
            k: 2 + (i % k_cycle),
            ..sc.spec.clone()
        })
        .collect();

    let mut table = Table::new(
        &format!(
            "{} — {} queries, k cycling over {} values",
            method.name(),
            n_queries,
            k_cycle
        ),
        &[
            "config",
            "qps",
            "mean ms",
            "p99 ms",
            "topk crit ms",
            "crit speedup",
        ],
    );

    let fused = run(&specs, |spec| {
        sc.engine.query(spec, method);
    });
    table.row(vec![
        "fused".into(),
        fmt(fused.qps),
        fmt(fused.mean_ms),
        fmt(fused.p99_ms),
        "-".into(),
        "-".into(),
    ]);

    let mut one_shard_crit = None;
    for n in SHARD_COUNTS {
        let cluster = EngineCluster::from_engine(sc.engine.clone(), n);
        // The cloned head shares the fused engine's metrics registry, so
        // the per-shard histograms accumulate across configurations —
        // diff around the run to isolate this one's samples.
        let before = shard_scatter_us(&cluster, n);
        let m = run(&specs, |spec| {
            cluster.query(spec, method);
        });
        let after = shard_scatter_us(&cluster, n);
        let crit_ms = after
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b) as f64 / 1e3)
            .fold(0.0, f64::max);
        let base = *one_shard_crit.get_or_insert(crit_ms);
        table.row(vec![
            format!("{n}-shard"),
            fmt(m.qps),
            fmt(m.mean_ms),
            fmt(m.p99_ms),
            fmt(crit_ms),
            format!("{:.2}x", base / crit_ms.max(f64::MIN_POSITIVE)),
        ]);
    }
    table.print();
}

/// Per-shard accumulated scatter time (µs) from the head registry's
/// `cluster_scatter_latency_us{shard=...}` histograms. The slowest
/// shard's delta over a panel is the **critical path**: the wall time
/// the scattered top-k phase needs when every shard has a core of its
/// own.
fn shard_scatter_us(cluster: &EngineCluster, nshards: usize) -> Vec<u64> {
    let snap = cluster.head().metrics().snapshot();
    (0..nshards)
        .map(|i| {
            snap.histogram(&format!("cluster_scatter_latency_us{{shard=\"{i}\"}}"))
                .map_or(0, |h| h.sum())
        })
        .collect()
}

fn run(specs: &[QuerySpec], mut f: impl FnMut(&QuerySpec)) -> Measure {
    let mut lat_ms = Vec::with_capacity(specs.len());
    let start = Instant::now();
    for spec in specs {
        let t0 = Instant::now();
        f(spec);
        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let total = start.elapsed().as_secs_f64();
    lat_ms.sort_by(f64::total_cmp);
    let p99_rank = ((lat_ms.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    Measure {
        qps: specs.len() as f64 / total.max(f64::MIN_POSITIVE),
        mean_ms: lat_ms.iter().sum::<f64>() / lat_ms.len() as f64,
        p99_ms: lat_ms[p99_rank.min(lat_ms.len() - 1)],
    }
}
