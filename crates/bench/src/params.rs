//! Experiment parameters (the paper's Table 5, with scaled defaults).

use text::WeightModel;

/// Which synthetic collection backs the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Flickr-like: short tag sets, large vocabulary (default).
    FlickrLike,
    /// Yelp-like: few objects, very long documents.
    YelpLike,
}

/// One experiment configuration.
///
/// Defaults are Table 5's bold values; `num_objects` is scaled from the
/// paper's 1M to 20K so a full sweep runs on one machine in minutes —
/// relative costs, not absolute ones, are the reproduction target.
#[derive(Debug, Clone)]
pub struct Params {
    /// Collection flavour.
    pub dataset: DatasetKind,
    /// Text relevance measure.
    pub model: WeightModel,
    /// `|O|`.
    pub num_objects: usize,
    /// `|U|`.
    pub num_users: usize,
    /// Top-k depth.
    pub k: usize,
    /// Spatial/textual preference `α`.
    pub alpha: f64,
    /// Keywords per user `UL`.
    pub ul: usize,
    /// Unique user keywords `UW` (= `|W|`).
    pub uw: usize,
    /// User window side `Area`.
    pub area: f64,
    /// Candidate locations `|L|`.
    pub num_locations: usize,
    /// Keyword budget `ws`.
    pub ws: usize,
    /// Workload seed (each trial shifts it).
    pub seed: u64,
    /// Trials to average over (the paper averages 100 user sets).
    pub trials: usize,
    /// Index fanout.
    pub fanout: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            dataset: DatasetKind::FlickrLike,
            model: WeightModel::lm(),
            num_objects: 20_000,
            num_users: 500,
            k: 10,
            alpha: 0.5,
            ul: 3,
            uw: 20,
            area: 5.0,
            num_locations: 50,
            ws: 3,
            seed: 100,
            trials: 3,
            fanout: 32,
        }
    }
}

impl Params {
    /// A fast configuration for smoke tests (`figures --quick`).
    pub fn quick() -> Self {
        Params {
            num_objects: 4_000,
            num_users: 120,
            num_locations: 20,
            trials: 1,
            ..Params::default()
        }
    }

    /// Switches to the Yelp-like collection with a proportionate size.
    pub fn yelp(mut self) -> Self {
        self.dataset = DatasetKind::YelpLike;
        // Yelp is ~60× smaller than Flickr in the paper.
        self.num_objects = (self.num_objects / 16).max(500);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table5_bold() {
        let p = Params::default();
        assert_eq!(p.k, 10);
        assert_eq!(p.alpha, 0.5);
        assert_eq!(p.ul, 3);
        assert_eq!(p.uw, 20);
        assert_eq!(p.area, 5.0);
        assert_eq!(p.num_locations, 50);
        assert_eq!(p.ws, 3);
    }

    #[test]
    fn yelp_shrinks_collection() {
        let p = Params::default().yelp();
        assert_eq!(p.dataset, DatasetKind::YelpLike);
        assert!(p.num_objects < Params::default().num_objects);
    }
}
