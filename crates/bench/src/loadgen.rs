//! Open-loop load generator driving the network front door.
//!
//! `figures -- serve` binds a real [`serve::Server`] on a loopback
//! ephemeral port and fires one-shot TCP requests at it on a *precomputed
//! Poisson schedule*: arrival times are drawn up front from exponential
//! inter-arrivals and every request's latency is measured from its
//! **scheduled** arrival, not from when a sender thread got around to
//! writing it. A saturated server therefore shows up as growing tail
//! latency and explicit [`Reply::Overloaded`] sheds — the
//! coordinated-omission trap (closed-loop generators silently slowing
//! down with the server) cannot hide it.
//!
//! Three panels:
//!
//! * **A — arrival-rate sweep** (pure reads): p50/p99/p999 end-to-end
//!   latency per offered rate, next to the engine's *simulated* I/O per
//!   query (delta of the `engine_query_phase_io_ops` histograms), so the
//!   paper's cost model and the wall-clock serving cost sit in one table.
//! * **B — read/write mix** at a fixed rate: mutation sheds
//!   (journal backpressure) and maintenance I/O per applied mutation.
//! * **C — hot-key skew**: uniform vs Zipf(1.2) draws over a pool of
//!   query variants.
//!
//! End-to-end latencies land in `mbrstk_obs` histograms
//! (`loadgen_e2e_latency_us{...}`) in a generator-local registry — the
//! same mergeable-histogram machinery the engine uses server-side, keyed
//! per sweep point so percentiles never mix across points.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datagen::rng::{Rng, SeedableRng, StdRng};
use datagen::Zipf;
use mbrstk_core::{Method, Mutation, ObjectData, QuerySpec, ServingEngine};
use mbrstk_obs::{MetricsRegistry, MetricsSnapshot};
use serve::{one_shot, Reply, Request, ServeConfig, Server};

use crate::report::{fmt, Table};
use crate::{Params, Scenario};

/// Sender threads; arrivals are dealt round-robin so one slow request
/// only delays every SENDERS-th arrival (and that delay is *charged* —
/// latency runs from the scheduled instant).
const SENDERS: usize = 16;

/// Offered arrival rates for panel A (requests/second).
const RATES: [f64; 3] = [100.0, 300.0, 1_000.0];

/// Fixed offered rate for panels B and C.
const MIX_RATE: f64 = 300.0;

/// Write fractions for panel B.
const WRITE_FRACS: [f64; 3] = [0.0, 0.1, 0.3];

/// Seconds of offered load per sweep point.
const POINT_SECS: f64 = 1.0;

/// Hard cap on requests per point (keeps `--quick` CI smoke bounded).
const POINT_CAP: usize = 1_500;

/// The query method under load: the paper's fast approximate pipeline,
/// i.e. what a serving deployment would actually run per request.
const METHOD: Method = Method::JointGreedy;

#[derive(Default, Clone, Copy)]
struct Counts {
    sent: u64,
    ok: u64,
    shed: u64,
    err: u64,
}

impl Counts {
    fn add(&mut self, other: Counts) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.shed += other.shed;
        self.err += other.err;
    }
}

/// Simulated-I/O mass of the serve method's query phases at one instant:
/// `(sum of per-query I/O, number of queries)` — two snapshots subtract
/// to a per-point mean even though the engine registry is cumulative.
fn io_mass(snap: &MetricsSnapshot) -> (f64, u64) {
    let name = METHOD.name();
    let mut sum = 0.0;
    let mut count = 0u64;
    for phase in ["topk", "select"] {
        if let Some(h) = snap.histogram(&format!(
            "engine_query_phase_io_ops{{method=\"{name}\",phase=\"{phase}\"}}"
        )) {
            sum += h.mean() * h.count() as f64;
            if phase == "topk" {
                count = h.count();
            }
        }
    }
    (sum, count)
}

/// Fires `n` requests at `rate` req/s on a Poisson schedule and records
/// end-to-end latency (from scheduled arrival) into `registry` under
/// `loadgen_e2e_latency_us{point="<label>"}`.
fn open_loop_point(
    addr: SocketAddr,
    registry: &MetricsRegistry,
    label: &str,
    rate: f64,
    n: usize,
    seed: u64,
    make: &(dyn Fn(usize, &mut StdRng) -> Request + Sync),
) -> Counts {
    // Precomputed Poisson arrivals: exponential inter-arrival gaps with
    // mean 1/rate, accumulated into absolute offsets.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / rate;
        offsets.push(Duration::from_secs_f64(t));
    }

    let hist = registry.histogram(&format!("loadgen_e2e_latency_us{{point=\"{label}\"}}"));
    let base = Instant::now() + Duration::from_millis(5);
    let mut total = Counts::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(SENDERS);
        for sender in 0..SENDERS {
            let hist = Arc::clone(&hist);
            let offsets = &offsets;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (0xD1B5_4A32 + sender as u64));
                let mut counts = Counts::default();
                let mut i = sender;
                while i < offsets.len() {
                    let scheduled = base + offsets[i];
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let req = make(i, &mut rng);
                    counts.sent += 1;
                    match one_shot(addr, &req) {
                        Ok(Reply::Overloaded(_)) => counts.shed += 1,
                        Ok(Reply::Error(_)) | Err(_) => counts.err += 1,
                        Ok(_) => counts.ok += 1,
                    }
                    // Charged from the *scheduled* arrival: queueing
                    // delay inside the generator and the server both
                    // count, as they would for a real arriving client.
                    hist.record_duration_us(scheduled.elapsed());
                    i += SENDERS;
                }
                counts
            }));
        }
        for h in handles {
            total.add(h.join().expect("sender thread"));
        }
    });
    total
}

fn latency_cells(registry: &MetricsRegistry, label: &str) -> Vec<String> {
    let snap = registry.snapshot();
    let h = snap
        .histogram(&format!("loadgen_e2e_latency_us{{point=\"{label}\"}}"))
        .expect("point histogram recorded");
    vec![
        fmt(h.p50() as f64),
        fmt(h.p99() as f64),
        fmt(h.p999() as f64),
    ]
}

/// `figures -- serve`: open-loop load sweeps against a live TCP server.
pub fn serve(p: &Params) {
    let sc = Scenario::build(p, 0);
    let specs = sc.batch_specs(16);
    let objects = sc.engine.objects.clone();
    let engine_metrics = sc.engine.metrics();
    let serving = ServingEngine::new(sc.engine);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&serving), ServeConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("\nserving {METHOD:?} on {addr} ({SENDERS} senders, open loop)");

    let registry = MetricsRegistry::new();
    let query_of = |spec: &QuerySpec| Request::Query {
        method: METHOD,
        spec: spec.clone(),
    };

    // Panel A — Poisson arrival-rate sweep, pure reads.
    let mut a = Table::new(
        "Serve A — open-loop arrival-rate sweep (reads, e2e µs)",
        &[
            "rate/s", "sent", "ok", "shed", "err", "p50", "p99", "p999", "sim io/q",
        ],
    );
    for rate in RATES {
        let label = format!("rate={rate}");
        let n = ((rate * POINT_SECS) as usize).clamp(1, POINT_CAP);
        let before = engine_metrics.snapshot();
        let specs_ref = &specs;
        let counts = open_loop_point(
            addr,
            &registry,
            &label,
            rate,
            n,
            p.seed ^ 0xA11CE,
            &move |_, rng| query_of(&specs_ref[rng.gen_range(0..specs_ref.len())]),
        );
        let after = engine_metrics.snapshot();
        let (sum_b, q_b) = io_mass(&before);
        let (sum_a, q_a) = io_mass(&after);
        let io_cell = if q_a > q_b {
            fmt((sum_a - sum_b) / (q_a - q_b) as f64)
        } else {
            "-".into()
        };
        let mut row = vec![
            fmt(rate),
            counts.sent.to_string(),
            counts.ok.to_string(),
            counts.shed.to_string(),
            counts.err.to_string(),
        ];
        row.extend(latency_cells(&registry, &label));
        row.push(io_cell);
        a.row(row);
    }
    a.print();

    // Panel B — mixed read/write ratios at a fixed rate. Fresh inserted
    // ids; writes that hit the journal high-water mark shed explicitly.
    let next_id = AtomicU32::new(5_000_000);
    let mut b = Table::new(
        &format!("Serve B — read/write mix at {MIX_RATE}/s (e2e µs)"),
        &[
            "write%", "sent", "ok", "shed", "err", "p50", "p99", "p999", "io/mut",
        ],
    );
    for frac in WRITE_FRACS {
        let label = format!("mix={frac}");
        let n = ((MIX_RATE * POINT_SECS) as usize).clamp(1, POINT_CAP);
        let (objects_ref, next_ref, specs_ref) = (&objects, &next_id, &specs);
        let counts = open_loop_point(
            addr,
            &registry,
            &label,
            MIX_RATE,
            n,
            p.seed ^ 0xB0B,
            &move |_, rng| {
                if rng.gen_range(0.0..1.0) < frac {
                    let donor = &objects_ref[rng.gen_range(0..objects_ref.len())];
                    Request::Mutate(Mutation::InsertObject(ObjectData {
                        id: next_ref.fetch_add(1, Ordering::Relaxed),
                        point: donor.point,
                        doc: donor.doc.clone(),
                    }))
                } else {
                    query_of(&specs_ref[rng.gen_range(0..specs_ref.len())])
                }
            },
        );
        // Maintenance I/O comes back on the wire in each MutateOk; the
        // journal depth tells how much replay debt this point left.
        let mut row = vec![
            fmt(frac * 100.0),
            counts.sent.to_string(),
            counts.ok.to_string(),
            counts.shed.to_string(),
            counts.err.to_string(),
        ];
        row.extend(latency_cells(&registry, &label));
        row.push(mutate_io_cell(addr, &serving, &next_id));
        b.row(row);
    }
    b.print();
    println!(
        "journal depth after mix points: {} (hwm {})",
        serving.journal_depth(),
        ServeConfig::default().journal_high_water
    );

    // Panel C — hot-key skew: uniform vs Zipf(1.2) over the spec pool.
    let zipf = Zipf::new(specs.len(), 1.2);
    let mut c = Table::new(
        &format!("Serve C — hot-key skew at {MIX_RATE}/s (reads, e2e µs)"),
        &["skew", "sent", "ok", "shed", "err", "p50", "p99", "p999"],
    );
    for (name, skewed) in [("uniform", false), ("zipf1.2", true)] {
        let label = format!("skew={name}");
        let n = ((MIX_RATE * POINT_SECS) as usize).clamp(1, POINT_CAP);
        let (specs_ref, zipf_ref) = (&specs, &zipf);
        let counts = open_loop_point(
            addr,
            &registry,
            &label,
            MIX_RATE,
            n,
            p.seed ^ 0xC0FFEE,
            &move |_, rng| {
                let idx = if skewed {
                    zipf_ref.sample(rng)
                } else {
                    rng.gen_range(0..specs_ref.len())
                };
                query_of(&specs_ref[idx])
            },
        );
        let mut row = vec![
            name.to_string(),
            counts.sent.to_string(),
            counts.ok.to_string(),
            counts.shed.to_string(),
            counts.err.to_string(),
        ];
        row.extend(latency_cells(&registry, &label));
        c.row(row);
    }
    c.print();

    // Server-side view of the same run, from the shared engine registry
    // over the wire — the serve_* families the README documents.
    let mut probe = serve::Client::connect(addr).expect("probe connect");
    let page = probe.metrics_prometheus().expect("metrics over the wire");
    println!("\nserver-side serve_* metrics (over the wire):");
    for line in page.lines() {
        if line.starts_with("serve_") && !line.contains("latency") {
            println!("  {line}");
        }
    }
}

/// Mean maintenance I/O per applied mutation, measured over the wire with
/// a couple of probe inserts (the sweep's own MutateOk replies are spread
/// across sender threads; this keeps the table cell deterministic). Draws
/// fresh ids from the sweep's own allocator so probes never collide.
fn mutate_io_cell(addr: SocketAddr, serving: &ServingEngine, next_id: &AtomicU32) -> String {
    let mut client = match serve::Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return "-".into(),
    };
    let donor = serving.snapshot().objects.first().cloned();
    let Some(donor) = donor else {
        return "-".into();
    };
    let mut total = 0u64;
    let mut applied = 0u64;
    for _ in 0..2 {
        let reply = client.mutate(Mutation::InsertObject(ObjectData {
            id: next_id.fetch_add(1, Ordering::Relaxed),
            point: donor.point,
            doc: donor.doc.clone(),
        }));
        if let Ok(Some(io)) = reply {
            total += io.reads + io.node_writes + io.payload_blocks;
            applied += 1;
        }
    }
    if applied == 0 {
        "-".into()
    } else {
        fmt(total as f64 / applied as f64)
    }
}
