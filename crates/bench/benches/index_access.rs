//! Micro-benchmark: index construction and node access paths (internal
//! min/mean/max harness; one timed invocation per sample).
//!
//! Covers the cost analysis of §5.1: MIR-tree construction should track
//! IR-tree construction (the min weights are computed in the same pass),
//! at slightly larger inverted files.

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main, Params, Scenario};
use index::{IndexedObject, NodeScratch, PostingMode, PostingsScratch, StTree};
use storage::IoStats;
use text::TermId;

fn indexed_objects(sc: &Scenario) -> Vec<IndexedObject> {
    sc.engine
        .objects
        .iter()
        .map(|o| IndexedObject {
            id: o.id,
            point: o.point,
            doc: sc.engine.ctx.text.weigh(&o.doc),
        })
        .collect()
}

fn bench_index(c: &mut Criterion) {
    let p = Params {
        num_objects: 5_000,
        num_users: 100,
        trials: 1,
        ..Params::default()
    };
    let sc = Scenario::build(&p, 0);
    let objs = indexed_objects(&sc);

    let mut g = c.benchmark_group("index_build");
    g.bench_function("ir_tree", |b| {
        b.iter(|| StTree::build_with_fanout(&objs, PostingMode::MaxOnly, 32))
    });
    g.bench_function("mir_tree", |b| {
        b.iter(|| StTree::build_with_fanout(&objs, PostingMode::MaxMin, 32))
    });
    g.finish();

    let tree = StTree::build_with_fanout(&objs, PostingMode::MaxMin, 32);
    let io = IoStats::new();
    let terms: Vec<TermId> = sc.spec.keywords.clone();
    let mut g = c.benchmark_group("index_access");
    g.bench_function("read_root_node", |b| {
        b.iter(|| tree.read_node(tree.root(), &io))
    });
    let root = tree.read_node(tree.root(), &io);
    g.bench_function("read_root_postings", |b| {
        b.iter(|| tree.read_postings(&root, &terms, &io))
    });
    // Zero-copy counterparts: decode into reused scratch, no per-entry
    // allocation. The gap between these and the owned reads above is the
    // per-access win of the ref-based read path.
    let mut node_scratch = NodeScratch::default();
    g.bench_function("read_root_node_ref", |b| {
        b.iter(|| {
            let view = tree.read_node_ref(tree.root(), &io, &mut node_scratch);
            view.len()
        })
    });
    let mut node_scratch = NodeScratch::default();
    let mut postings_scratch = PostingsScratch::default();
    g.bench_function("read_root_postings_ref", |b| {
        b.iter(|| {
            let view = tree.read_node_ref(tree.root(), &io, &mut node_scratch);
            let postings = tree.read_postings_ref(&view, &terms, &io, &mut postings_scratch);
            postings.len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index
}
criterion_main!(benches);
