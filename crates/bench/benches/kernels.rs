//! Kernel micro-bench gate: warm single-thread query throughput for all
//! six methods on the LM scenario.
//!
//! Unlike the other benches (which use the internal criterion-shaped
//! harness and only print), this binary doubles as a CI regression gate:
//!
//! ```text
//! cargo bench -p bench --bench kernels                      # print table
//! cargo bench -p bench --bench kernels -- --emit base.json  # write baseline
//! cargo bench -p bench --bench kernels -- --quick \
//!     --gate crates/bench/benches/kernels_baseline.json     # CI: fail >15%
//! ```
//!
//! The measured quantity is wall-clock nanoseconds per *warm* query: the
//! threshold cache and page cache are primed first, so what remains is the
//! in-memory kernel work (decode, bounds, selection) that the zero-copy /
//! arena refactor targets. Per method the reported figure is the minimum
//! over several batches — the minimum is far more stable than the mean on
//! shared CI runners.

use std::hint::black_box;
use std::time::Instant;

use bench::{Params, Scenario};
use mbrstk_core::{Method, QueryArena, QueryResult};

/// One measured method: name plus warm nanoseconds per query.
struct Line {
    name: &'static str,
    ns: f64,
}

fn measure(quick: bool) -> Vec<Line> {
    let p = if quick {
        Params::quick()
    } else {
        Params::default()
    };
    let sc = Scenario::build(&p, 0);
    let spec = sc.spec;
    // Warm serving configuration: cross-query thresholds + page cache.
    let engine = sc.engine.with_threshold_cache().with_page_cache(1 << 16);

    let (batches, per_batch) = if quick { (4, 4) } else { (6, 12) };
    let mut out = Vec::new();
    for m in Method::ALL {
        // Steady-state serving shape: one long-lived arena and output
        // buffer, reused across queries (allocation-free once warm).
        let mut arena = QueryArena::new();
        let mut result = QueryResult::default();
        // Prime the caches (threshold compute + page-cache fill) and the
        // arena pools.
        for _ in 0..2 {
            engine.query_reusing(&spec, m, &mut arena, &mut result);
            black_box(&result);
        }
        let mut best = f64::INFINITY;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                engine.query_reusing(&spec, m, &mut arena, &mut result);
                black_box(&result);
            }
            let ns = start.elapsed().as_nanos() as f64 / per_batch as f64;
            best = best.min(ns);
        }
        out.push(Line {
            name: m.strategy().name(),
            ns: best,
        });
    }
    out
}

fn emit_json(lines: &[Line], scenario: &str) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
    s.push_str("  \"ns_per_query\": {\n");
    for (i, l) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        s.push_str(&format!("    \"{}\": {:.0}{}\n", l.name, l.ns, comma));
    }
    s.push_str("  }\n}\n");
    s
}

/// Extracts `"name": number` pairs from the baseline JSON. The file is
/// written by `--emit` above, so a full JSON parser is unnecessary; any
/// quoted key followed by a bare number is taken as a measurement (the
/// `"scenario"` string value does not match).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(q0) = rest.find('"') {
        let after = &rest[q0 + 1..];
        let Some(q1) = after.find('"') else { break };
        let key = &after[..q1];
        let tail = &after[q1 + 1..];
        let tail_trim = tail.trim_start();
        if let Some(v) = tail_trim.strip_prefix(':') {
            let v = v.trim_start();
            let end = v
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                .unwrap_or(v.len());
            if let Ok(num) = v[..end].parse::<f64>() {
                out.push((key.to_string(), num));
            }
        }
        rest = tail;
    }
    out
}

/// `cargo bench` runs the binary with the *package* directory as its cwd,
/// while CI (and the doc comment above) pass gate/emit paths relative to
/// the workspace root — resolve relative paths against the root.
fn resolve(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut gate: Option<String> = None;
    let mut emit: Option<String> = None;
    let mut tolerance = 0.15f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--gate" => {
                i += 1;
                gate = Some(args[i].clone());
            }
            "--emit" => {
                i += 1;
                emit = Some(args[i].clone());
            }
            "--tolerance" => {
                i += 1;
                tolerance = args[i].parse().expect("--tolerance takes a fraction");
            }
            // `cargo bench` forwards its own flags (e.g. `--bench`).
            _ => {}
        }
        i += 1;
    }

    let scenario = if quick { "lm-quick" } else { "lm-default" };
    let lines = measure(quick);

    println!("\nkernels ({scenario}, warm, single thread)");
    for l in &lines {
        println!(
            "  {:<24} {:>12.0} ns/query  ({:>10.0} q/s)",
            l.name,
            l.ns,
            1e9 / l.ns
        );
    }

    if let Some(path) = emit {
        std::fs::write(resolve(&path), emit_json(&lines, scenario)).expect("write baseline");
        println!("baseline written to {path}");
    }

    if let Some(path) = gate {
        let text = std::fs::read_to_string(resolve(&path)).expect("read baseline");
        let base = parse_baseline(&text);
        let mut failed = false;
        println!("\ngate vs {path} (tolerance {:.0}%)", tolerance * 100.0);
        for l in &lines {
            match base.iter().find(|(k, _)| k == l.name) {
                Some(&(_, b)) => {
                    let ratio = l.ns / b;
                    let verdict = if ratio > 1.0 + tolerance {
                        failed = true;
                        "FAIL"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:<24} {:>8.0} vs {:>8.0} ns  ({:+6.1}%)  {}",
                        l.name,
                        l.ns,
                        b,
                        (ratio - 1.0) * 100.0,
                        verdict
                    );
                }
                None => println!("  {:<24} (no baseline entry — skipped)", l.name),
            }
        }
        if failed {
            eprintln!("kernel bench gate failed: regression beyond tolerance");
            std::process::exit(1);
        }
    }
}
