//! Micro-benchmark: batch query throughput vs worker threads.
//!
//! Complements the `figures batch` experiment with fixed-scale timings of
//! `Engine::query_batch_threads` for the joint-greedy pipeline.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main, measure_query_batch, Params, Scenario};
use mbrstk_core::Method;

fn bench_batch(c: &mut Criterion) {
    let p = Params {
        num_objects: 5_000,
        num_users: 150,
        trials: 1,
        ..Params::default()
    };
    let sc = Scenario::build(&p, 0);
    let specs = sc.batch_specs(16);

    let mut g = c.benchmark_group("query_batch");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("joint-greedy", threads),
            &threads,
            |b, &threads| b.iter(|| measure_query_batch(&sc, &specs, Method::JointGreedy, threads)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch
}
criterion_main!(benches);
