//! Micro-benchmark: joint top-k (§5) vs per-user baseline (§4).
//!
//! Complements the `figures` harness with repeated min/mean/max timings
//! at a fixed small scale (internal harness; one timed invocation per
//! sample, no statistical outlier rejection).

use bench::harness::{BenchmarkId, Criterion};
use bench::{
    criterion_group, criterion_main, measure_topk_baseline, measure_topk_joint, Params, Scenario,
};

fn bench_topk(c: &mut Criterion) {
    let p = Params {
        num_objects: 5_000,
        num_users: 200,
        trials: 1,
        ..Params::default()
    };
    let sc = Scenario::build(&p, 0);

    let mut g = c.benchmark_group("topk");
    for k in [1usize, 10, 50] {
        g.bench_with_input(BenchmarkId::new("baseline", k), &k, |b, &k| {
            b.iter(|| measure_topk_baseline(&sc, k))
        });
        g.bench_with_input(BenchmarkId::new("joint", k), &k, |b, &k| {
            b.iter(|| measure_topk_joint(&sc, k))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_topk
}
criterion_main!(benches);
