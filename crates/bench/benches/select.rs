//! Micro-benchmark: candidate selection — baseline vs exact vs greedy
//! (§4 / §6.2.2 / §6.2.1). Internal min/mean/max harness; one timed
//! invocation per sample.

use bench::harness::Criterion;
use bench::{
    criterion_group, criterion_main, measure_select, measure_topk_joint, Params, Scenario,
    SelectMethod,
};

fn bench_select(c: &mut Criterion) {
    let p = Params {
        num_objects: 5_000,
        num_users: 200,
        num_locations: 20,
        uw: 15,
        ws: 3,
        trials: 1,
        ..Params::default()
    };
    let sc = Scenario::build(&p, 0);
    let topk = measure_topk_joint(&sc, p.k);

    let mut g = c.benchmark_group("select");
    g.bench_function("baseline", |b| {
        b.iter(|| measure_select(&sc, &sc.spec, &topk, SelectMethod::Baseline))
    });
    g.bench_function("exact", |b| {
        b.iter(|| measure_select(&sc, &sc.spec, &topk, SelectMethod::Exact))
    });
    g.bench_function("greedy", |b| {
        b.iter(|| measure_select(&sc, &sc.spec, &topk, SelectMethod::Approx))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_select
}
criterion_main!(benches);
