//! Randomized-property tests of the text substrate: the invariants every
//! index bound in the paper leans on.
//!
//! Cases come from a seeded SplitMix64 stream (no `proptest` dependency —
//! the registry is unavailable in the build environment), so runs are
//! deterministic and failures reproduce exactly.

use text::{CorpusStats, Document, TermId, TextScorer, WeightModel};

const CASES: usize = 64;

use splitmix::SplitMix64 as Gen;

/// Domain-specific case generators on the shared SplitMix64 core.
trait GenExt {
    /// 1–7 term/tf pairs over a 12-term vocabulary, tf in 1..5.
    fn doc(&mut self) -> Document;
    /// 1–29 random documents.
    fn corpus(&mut self) -> Vec<Document>;
}

impl GenExt for Gen {
    fn doc(&mut self) -> Document {
        let n = 1 + self.below(7) as usize;
        Document::from_pairs(
            (0..n).map(|_| (TermId(self.below(12) as u32), 1 + self.below(4) as u32)),
        )
    }

    fn corpus(&mut self) -> Vec<Document> {
        let n = 1 + self.below(29) as usize;
        (0..n).map(|_| self.doc()).collect()
    }
}

fn models() -> [WeightModel; 3] {
    [
        WeightModel::TfIdf,
        WeightModel::lm(),
        WeightModel::KeywordOverlap,
    ]
}

/// TS is always normalized, for every model.
#[test]
fn ts_in_unit_interval() {
    let mut g = Gen(11);
    for _ in 0..CASES {
        let docs = g.corpus();
        let user = g.doc();
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                let ts = s.ts(d, &user);
                assert!((0.0..=1.0 + 1e-9).contains(&ts), "{model:?}: {ts}");
            }
        }
    }
}

/// wmax really is the maximum: no document weight exceeds it.
#[test]
fn wmax_dominates() {
    let mut g = Gen(12);
    for _ in 0..CASES {
        let docs = g.corpus();
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                for &(t, w) in &s.weigh(d).entries {
                    assert!(w <= s.max_weight(t) + 1e-12);
                }
            }
        }
    }
}

/// Candidate weights never exceed wmax either (Lemma 3's premise).
#[test]
fn candidate_weight_dominated() {
    let mut g = Gen(13);
    for _ in 0..CASES {
        let docs = g.corpus();
        let ref_len = 1 + g.below(9);
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            for t in 0..12u32 {
                assert!(
                    s.candidate_weight(TermId(t), ref_len) <= s.max_weight(TermId(t)) + 1e-12,
                    "{model:?} term {t} ref_len {ref_len}"
                );
            }
        }
    }
}

/// Candidate TS is monotone in added keywords — the property the greedy
/// (1−1/e) argument requires.
#[test]
fn candidate_ts_monotone() {
    let mut g = Gen(14);
    for _ in 0..CASES {
        let docs = g.corpus();
        let user = g.doc();
        let extra = g.below(12) as u32;
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            let base = Document::from_terms([TermId(0)]);
            let bigger = base.with_terms([TermId(extra)]);
            let ref_len = 4;
            assert!(
                s.candidate_ts(&bigger, &user, ref_len)
                    >= s.candidate_ts(&base, &user, ref_len) - 1e-12
            );
        }
    }
}

/// TS only grows when an object gains terms the user also has.
#[test]
fn ts_monotone_in_overlap() {
    let mut g = Gen(15);
    for _ in 0..CASES {
        let docs = g.corpus();
        let user = g.doc();
        let s = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        for d in &docs {
            let richer = d.union(&user);
            assert!(s.ts(&richer, &user) >= s.ts(d, &user) - 1e-12);
        }
    }
}

/// Corpus statistics are consistent: df ≤ |O|, Σ background ≈ 1.
#[test]
fn stats_consistency() {
    let mut g = Gen(16);
    for _ in 0..CASES {
        let docs = g.corpus();
        let stats = CorpusStats::build(docs.iter());
        let mut bg = 0.0;
        for t in 0..stats.vocab_len() as u32 {
            assert!(u64::from(stats.df(TermId(t))) <= stats.num_docs());
            bg += stats.background(TermId(t));
        }
        assert!((bg - 1.0).abs() < 1e-9);
    }
}

/// Document identities: union is commutative; overlap symmetric.
#[test]
fn document_algebra() {
    let mut g = Gen(17);
    for _ in 0..CASES {
        let (a, b) = (g.doc(), g.doc());
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        assert_eq!(a.overlap_count(&b), b.overlap_count(&a));
        // Union length = sum of lengths (tf semantics).
        assert_eq!(a.union(&b).len(), a.len() + b.len());
    }
}
