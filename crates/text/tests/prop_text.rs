//! Property-based tests of the text substrate: the invariants every index
//! bound in the paper leans on.

use proptest::prelude::*;
use text::{CorpusStats, Document, TermId, TextScorer, WeightModel};

prop_compose! {
    fn doc()(pairs in prop::collection::vec((0u32..12, 1u32..5), 1..8)) -> Document {
        Document::from_pairs(pairs.into_iter().map(|(t, f)| (TermId(t), f)))
    }
}

prop_compose! {
    fn corpus()(docs in prop::collection::vec(doc(), 1..30)) -> Vec<Document> {
        docs
    }
}

fn models() -> [WeightModel; 3] {
    [
        WeightModel::TfIdf,
        WeightModel::lm(),
        WeightModel::KeywordOverlap,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TS is always normalized, for every model.
    #[test]
    fn ts_in_unit_interval(docs in corpus(), user in doc()) {
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                let ts = s.ts(d, &user);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&ts), "{model:?}: {ts}");
            }
        }
    }

    /// wmax really is the maximum: no document weight exceeds it.
    #[test]
    fn wmax_dominates(docs in corpus()) {
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                for &(t, w) in &s.weigh(d).entries {
                    prop_assert!(w <= s.max_weight(t) + 1e-12);
                }
            }
        }
    }

    /// Candidate weights never exceed wmax either (Lemma 3's premise).
    #[test]
    fn candidate_weight_dominated(docs in corpus(), ref_len in 1u64..10) {
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            for t in 0..12u32 {
                prop_assert!(
                    s.candidate_weight(TermId(t), ref_len) <= s.max_weight(TermId(t)) + 1e-12,
                    "{model:?} term {t} ref_len {ref_len}"
                );
            }
        }
    }

    /// Candidate TS is monotone in added keywords — the property the
    /// greedy (1−1/e) argument requires.
    #[test]
    fn candidate_ts_monotone(docs in corpus(), user in doc(), extra in 0u32..12) {
        for model in models() {
            let s = TextScorer::from_docs(model, &docs);
            let base = Document::from_terms([TermId(0)]);
            let bigger = base.with_terms([TermId(extra)]);
            let ref_len = 4;
            prop_assert!(
                s.candidate_ts(&bigger, &user, ref_len)
                    >= s.candidate_ts(&base, &user, ref_len) - 1e-12
            );
        }
    }

    /// TS only grows when an object gains terms the user also has.
    #[test]
    fn ts_monotone_in_overlap(docs in corpus(), user in doc()) {
        let s = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        for d in &docs {
            let richer = d.union(&user);
            prop_assert!(s.ts(&richer, &user) >= s.ts(d, &user) - 1e-12);
        }
    }

    /// Corpus statistics are consistent: df ≤ |O|, Σ background ≈ 1.
    #[test]
    fn stats_consistency(docs in corpus()) {
        let stats = CorpusStats::build(docs.iter());
        let mut bg = 0.0;
        for t in 0..stats.vocab_len() as u32 {
            prop_assert!(u64::from(stats.df(TermId(t))) <= stats.num_docs());
            bg += stats.background(TermId(t));
        }
        prop_assert!((bg - 1.0).abs() < 1e-9);
    }

    /// Document identities: union is commutative; overlap symmetric.
    #[test]
    fn document_algebra(a in doc(), b in doc()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlap_count(&b), b.overlap_count(&a));
        // Union length = sum of lengths (tf semantics).
        prop_assert_eq!(a.union(&b).len(), a.len() + b.len());
    }
}
