//! Term-frequency documents and precomputed weight vectors.

use crate::TermId;

/// A text description: distinct terms with term frequencies, sorted by
/// [`TermId`] so that intersections are linear merges.
///
/// Both objects (`o.d`) and users (`u.d`) carry a `Document`. User keyword
/// sets are documents whose frequencies are all 1.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct Document {
    /// `(term, tf)` pairs, strictly ascending by term.
    entries: Vec<(TermId, u32)>,
    /// Total token count `|d| = Σ tf` (the LM document length).
    len: u64,
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Document {
            entries: self.entries.clone(),
            len: self.len,
        }
    }

    /// Reuses the destination's entry buffer — `a.clone_from(&b)` on a
    /// warm buffer is allocation-free, which the query arenas rely on.
    fn clone_from(&mut self, src: &Self) {
        self.entries.clone_from(&src.entries);
        self.len = src.len;
    }
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a document from arbitrary `(term, tf)` pairs; duplicates are
    /// merged by summing frequencies and zero frequencies are dropped.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TermId, u32)>) -> Self {
        let mut entries: Vec<(TermId, u32)> = pairs.into_iter().filter(|&(_, tf)| tf > 0).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        entries.dedup_by(|next, acc| {
            if next.0 == acc.0 {
                acc.1 += next.1;
                true
            } else {
                false
            }
        });
        let len = entries.iter().map(|&(_, tf)| u64::from(tf)).sum();
        Document { entries, len }
    }

    /// Builds a keyword-set document: every distinct term with frequency 1.
    pub fn from_terms(terms: impl IntoIterator<Item = TermId>) -> Self {
        Self::from_pairs(terms.into_iter().map(|t| (t, 1)))
    }

    /// The `(term, tf)` entries, ascending by term.
    #[inline]
    pub fn entries(&self) -> &[(TermId, u32)] {
        &self.entries
    }

    /// Iterator over the distinct terms, ascending.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.entries.iter().map(|&(t, _)| t)
    }

    /// Term frequency of `t` in this document (0 when absent).
    pub fn tf(&self, t: TermId) -> u32 {
        match self.entries.binary_search_by_key(&t, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// True when `t` occurs in this document.
    #[inline]
    pub fn contains(&self, t: TermId) -> bool {
        self.tf(t) > 0
    }

    /// Number of distinct terms.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.entries.len()
    }

    /// Total token count `|d|` (sum of term frequencies).
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the document has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when this document shares at least one term with `other` —
    /// the paper's relevance precondition ("`o` is relevant to `u` iff
    /// `o.d` contains at least one term of `u.d`").
    pub fn overlaps(&self, other: &Document) -> bool {
        merge_any(self.terms(), other.terms())
    }

    /// Number of distinct shared terms `|self ∩ other|`.
    pub fn overlap_count(&self, other: &Document) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// The union document: distinct terms of both, frequencies summed.
    pub fn union(&self, other: &Document) -> Document {
        Document::from_pairs(
            self.entries
                .iter()
                .copied()
                .chain(other.entries.iter().copied()),
        )
    }

    /// A new document equal to `self` plus the given extra terms (each with
    /// tf 1, merged into existing frequencies). Models `ox.d ∪ W'` of
    /// Definition 1.
    pub fn with_terms(&self, extra: impl IntoIterator<Item = TermId>) -> Document {
        Document::from_pairs(
            self.entries
                .iter()
                .copied()
                .chain(extra.into_iter().map(|t| (t, 1))),
        )
    }

    /// In-place twin of [`Document::with_terms`]: overwrites `self` with
    /// `base` plus the extra unit-frequency terms, reusing the entry
    /// buffer. Produces exactly `base.with_terms(extra)`.
    pub fn assign_with_terms(&mut self, base: &Document, extra: &[TermId]) {
        self.entries.clear();
        self.entries.extend(base.entries.iter().copied());
        self.entries.extend(extra.iter().map(|&t| (t, 1)));
        self.normalize();
    }

    /// In-place twin of [`Document::from_terms`]: overwrites `self` with a
    /// unit-frequency keyword-set document, reusing the entry buffer.
    pub fn assign_unit_terms(&mut self, terms: &[TermId]) {
        self.entries.clear();
        self.entries.extend(terms.iter().map(|&t| (t, 1)));
        self.normalize();
    }

    /// Sorts, merges duplicates, drops zero frequencies, and recomputes
    /// the token count — the [`Document::from_pairs`] invariant.
    fn normalize(&mut self) {
        self.entries.retain(|&(_, tf)| tf > 0);
        self.entries.sort_unstable_by_key(|&(t, _)| t);
        self.entries.dedup_by(|next, acc| {
            if next.0 == acc.0 {
                acc.1 += next.1;
                true
            } else {
                false
            }
        });
        self.len = self.entries.iter().map(|&(_, tf)| u64::from(tf)).sum();
    }
}

/// True if the two ascending iterators share an element.
fn merge_any(a: impl Iterator<Item = TermId>, b: impl Iterator<Item = TermId>) -> bool {
    let mut a = a.peekable();
    let mut b = b.peekable();
    while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// A document with a precomputed model weight per term, ascending by term.
///
/// Index leaves store these (the IR-tree leaf posting weight `w_{d,t}`), and
/// the scorer consumes them to evaluate `TS` with a linear merge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedDoc {
    /// `(term, weight)` pairs, strictly ascending by term, weights > 0.
    pub entries: Vec<(TermId, f64)>,
}

impl WeightedDoc {
    /// Builds from pairs; must be free of duplicate terms.
    pub fn from_pairs(mut entries: Vec<(TermId, f64)>) -> Self {
        entries.retain(|&(_, w)| w > 0.0);
        entries.sort_unstable_by_key(|&(t, _)| t);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate terms in WeightedDoc"
        );
        WeightedDoc { entries }
    }

    /// Weight of `t` (0 when absent).
    pub fn weight(&self, t: TermId) -> f64 {
        match self.entries.binary_search_by_key(&t, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Number of weighted terms.
    pub fn num_terms(&self) -> usize {
        self.entries.len()
    }

    /// True when no term has positive weight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum over the terms of `user` of this document's weights —
    /// the numerator `Σ_{t∈u.d} w(t, o.d)` of the uniform `TS` form.
    pub fn dot_terms(&self, user: &Document) -> f64 {
        let (mut i, mut j, mut acc) = (0, 0, 0.0);
        let u = user.entries();
        while i < self.entries.len() && j < u.len() {
            match self.entries[i].0.cmp(&u[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn from_pairs_merges_duplicates_and_sorts() {
        let d = Document::from_pairs([(t(3), 2), (t(1), 1), (t(3), 1), (t(2), 0)]);
        assert_eq!(d.entries(), &[(t(1), 1), (t(3), 3)]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_terms(), 2);
    }

    #[test]
    fn from_terms_gives_unit_frequencies() {
        let d = Document::from_terms([t(5), t(2), t(5)]);
        assert_eq!(d.entries(), &[(t(2), 1), (t(5), 2)]);
    }

    #[test]
    fn tf_and_contains() {
        let d = Document::from_pairs([(t(1), 4), (t(7), 2)]);
        assert_eq!(d.tf(t(1)), 4);
        assert_eq!(d.tf(t(7)), 2);
        assert_eq!(d.tf(t(3)), 0);
        assert!(d.contains(t(7)));
        assert!(!d.contains(t(3)));
    }

    #[test]
    fn overlaps_detects_shared_terms() {
        let a = Document::from_terms([t(1), t(4), t(9)]);
        let b = Document::from_terms([t(2), t(4)]);
        let c = Document::from_terms([t(0), t(5)]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.overlap_count(&b), 1);
        assert_eq!(a.overlap_count(&c), 0);
    }

    #[test]
    fn union_sums_frequencies() {
        let a = Document::from_pairs([(t(1), 2), (t(2), 1)]);
        let b = Document::from_pairs([(t(2), 3), (t(4), 1)]);
        let u = a.union(&b);
        assert_eq!(u.entries(), &[(t(1), 2), (t(2), 4), (t(4), 1)]);
        assert_eq!(u.len(), 7);
    }

    #[test]
    fn with_terms_models_candidate_keywords() {
        let base = Document::from_terms([t(1)]);
        let extended = base.with_terms([t(3), t(1)]);
        assert_eq!(extended.entries(), &[(t(1), 2), (t(3), 1)]);
        // The original is untouched.
        assert_eq!(base.entries(), &[(t(1), 1)]);
    }

    #[test]
    fn assign_with_terms_matches_with_terms() {
        let base = Document::from_pairs([(t(1), 2), (t(4), 1)]);
        let mut d = Document::from_terms([t(9)]);
        d.assign_with_terms(&base, &[t(4), t(2), t(2)]);
        assert_eq!(d, base.with_terms([t(4), t(2), t(2)]));
        d.assign_with_terms(&base, &[]);
        assert_eq!(d, base);
    }

    #[test]
    fn assign_unit_terms_matches_from_terms() {
        let mut d = Document::from_pairs([(t(1), 7)]);
        d.assign_unit_terms(&[t(5), t(2), t(5)]);
        assert_eq!(d, Document::from_terms([t(5), t(2), t(5)]));
        d.assign_unit_terms(&[]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn clone_from_reuses_buffer() {
        let src = Document::from_terms([t(1), t(2), t(3)]);
        let mut dst = Document::from_terms([t(9), t(8), t(7), t(6)]);
        dst.clone_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn weighted_doc_dot_terms() {
        let w = WeightedDoc::from_pairs(vec![(t(1), 0.5), (t(3), 0.25), (t(6), 0.1)]);
        let u = Document::from_terms([t(0), t(3), t(6), t(9)]);
        assert!((w.dot_terms(&u) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn weighted_doc_drops_zero_weights() {
        let w = WeightedDoc::from_pairs(vec![(t(1), 0.0), (t(2), 0.4)]);
        assert_eq!(w.num_terms(), 1);
        assert_eq!(w.weight(t(1)), 0.0);
        assert_eq!(w.weight(t(2)), 0.4);
    }

    #[test]
    fn empty_document_edge_cases() {
        let e = Document::new();
        let d = Document::from_terms([t(1)]);
        assert!(e.is_empty());
        assert!(!e.overlaps(&d));
        assert!(!d.overlaps(&e));
        assert_eq!(e.union(&d), d);
    }
}
