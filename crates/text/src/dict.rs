//! Term identifiers and string interning.

use std::collections::HashMap;

/// A compact identifier for a vocabulary term.
///
/// Terms are interned once in a [`Dictionary`]; every document, posting list
/// and keyword set then works with 4-byte ids instead of strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index (for table lookups).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between term strings and [`TermId`]s.
///
/// Insertion order defines ids: the first distinct term gets id 0. Lookups
/// by id are O(1); lookups by string are hash-map lookups.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<String>,
    by_name: HashMap<String, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_name.get(term) {
            return id;
        }
        let id =
            TermId(u32::try_from(self.terms.len()).expect("dictionary exceeds u32::MAX terms"));
        self.terms.push(term.to_owned());
        self.by_name.insert(term.to_owned(), id);
        id
    }

    /// Interns every whitespace-separated token of `textual` description.
    pub fn intern_all<'a>(&mut self, terms: impl IntoIterator<Item = &'a str>) -> Vec<TermId> {
        terms.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_name.get(term).copied()
    }

    /// The string for `id`, if assigned.
    pub fn name(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.idx()).map(String::as_str)
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("sushi");
        let b = d.intern("noodles");
        assert_ne!(a, b);
        assert_eq!(d.intern("sushi"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("b"), TermId(1));
        assert_eq!(d.intern("c"), TermId(2));
    }

    #[test]
    fn roundtrip_name() {
        let mut d = Dictionary::new();
        let id = d.intern("seafood");
        assert_eq!(d.name(id), Some("seafood"));
        assert_eq!(d.get("seafood"), Some(id));
        assert_eq!(d.get("absent"), None);
        assert_eq!(d.name(TermId(99)), None);
    }

    #[test]
    fn intern_all_preserves_order() {
        let mut d = Dictionary::new();
        let ids = d.intern_all(["x", "y", "x"]);
        assert_eq!(ids, vec![TermId(0), TermId(1), TermId(0)]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
