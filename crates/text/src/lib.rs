//! Text substrate for the MaxBRSTkNN reproduction.
//!
//! The paper (§3) ranks an object `o` for a user `u` with a combined score
//! `STS(o,u) = α·SS + (1−α)·TS`, where the textual relevance `TS` may be any
//! of three measures:
//!
//! * **TF-IDF** — `Σ_{t∈u.d} tf(t, o.d) · idf(t, O)`,
//! * **Language Model (LM)** — Jelinek–Mercer smoothed unigram likelihood
//!   (Eq. 3), normalized by `Pmax` (Eq. 4),
//! * **Keyword Overlap (KO)** — `|u.d ∩ o.d| / |u.d|`.
//!
//! We express all three in one normalized form, which is exactly the paper's
//! LM/KO form and an analogous normalization for TF-IDF:
//!
//! ```text
//! TS(o.d, u.d) = Σ_{t ∈ u.d} w(t, o.d)  /  N(u),
//! N(u)         = Σ_{t ∈ u.d} wmax(t),       wmax(t) = max_{o'∈O} w(t, o'.d)
//! ```
//!
//! With `w` a presence indicator this is precisely KO; with `w = p̂(t|θ_d)`
//! it is the paper's Eq. 4 (`N(u)` is `Pmax`); with `w = tf·idf` it is the
//! natural max-normalized TF-IDF. This uniform shape is what lets the index
//! bounds (`MaxTS`/`MinTS`, §5.3) be derived once for every measure.
//!
//! This crate provides string interning ([`Dictionary`]), term-frequency
//! documents ([`Document`]), corpus statistics ([`CorpusStats`]), the weight
//! models ([`WeightModel`]), and the [`TextScorer`] that precomputes per-term
//! maxima and evaluates `TS`.

mod corpus;
mod dict;
mod doc;
mod relevance;

pub use corpus::CorpusStats;
pub use dict::{Dictionary, TermId};
pub use doc::{Document, WeightedDoc};
pub use relevance::{TextScorer, WeightModel, DEFAULT_LM_LAMBDA};
