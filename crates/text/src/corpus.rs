//! Corpus-level statistics over the object collection `O`.

use crate::{Document, TermId};

/// Collection statistics needed by the relevance models.
///
/// * `df(t)` — document frequency, for IDF;
/// * `cf(t)` — collection frequency `tf(t, C)`, for Jelinek–Mercer smoothing;
/// * `collection_len` — `|C|`, the total token count of the concatenated
///   collection;
/// * `num_docs` — `|O|`.
///
/// Statistics are computed once over the object set and shared by every
/// scorer, index and algorithm.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    num_docs: u64,
    collection_len: u64,
    df: Vec<u32>,
    cf: Vec<u64>,
}

impl CorpusStats {
    /// Computes statistics over the given object documents.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a Document>) -> Self {
        let mut stats = CorpusStats::default();
        for d in docs {
            stats.add_doc(d);
        }
        stats
    }

    /// Adds one document's counts (used by builders that stream objects).
    pub fn add_doc(&mut self, d: &Document) {
        self.num_docs += 1;
        self.collection_len += d.len();
        for &(t, tf) in d.entries() {
            let i = t.idx();
            if i >= self.df.len() {
                self.df.resize(i + 1, 0);
                self.cf.resize(i + 1, 0);
            }
            self.df[i] += 1;
            self.cf[i] += u64::from(tf);
        }
    }

    /// Number of documents `|O|`.
    #[inline]
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Total collection token count `|C|`.
    #[inline]
    pub fn collection_len(&self) -> u64 {
        self.collection_len
    }

    /// Document frequency of `t` (0 for unseen terms).
    #[inline]
    pub fn df(&self, t: TermId) -> u32 {
        self.df.get(t.idx()).copied().unwrap_or(0)
    }

    /// Collection frequency of `t` (0 for unseen terms).
    #[inline]
    pub fn cf(&self, t: TermId) -> u64 {
        self.cf.get(t.idx()).copied().unwrap_or(0)
    }

    /// Number of terms with statistics (vocabulary extent).
    #[inline]
    pub fn vocab_len(&self) -> usize {
        self.df.len()
    }

    /// `idf(t, O) = log(|O| / df(t))`, natural log, 0 for unseen terms.
    ///
    /// Matches §3: `idf(t, O) = log(|O| / |{d ∈ O : tf(t,d) > 0}|)`.
    pub fn idf(&self, t: TermId) -> f64 {
        let df = self.df(t);
        if df == 0 || self.num_docs == 0 {
            return 0.0;
        }
        (self.num_docs as f64 / df as f64).ln()
    }

    /// Maximum-likelihood estimate of `t` in the collection,
    /// `tf(t, C) / |C|` (Eq. 3's background model).
    pub fn background(&self, t: TermId) -> f64 {
        if self.collection_len == 0 {
            return 0.0;
        }
        self.cf(t) as f64 / self.collection_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn sample() -> CorpusStats {
        let docs = [
            Document::from_pairs([(t(0), 2), (t(1), 1)]),
            Document::from_pairs([(t(1), 3)]),
            Document::from_pairs([(t(0), 1), (t(2), 1)]),
        ];
        CorpusStats::build(docs.iter())
    }

    #[test]
    fn counts() {
        let s = sample();
        assert_eq!(s.num_docs(), 3);
        assert_eq!(s.collection_len(), 8);
        assert_eq!(s.df(t(0)), 2);
        assert_eq!(s.df(t(1)), 2);
        assert_eq!(s.df(t(2)), 1);
        assert_eq!(s.cf(t(0)), 3);
        assert_eq!(s.cf(t(1)), 4);
        assert_eq!(s.cf(t(2)), 1);
    }

    #[test]
    fn unseen_terms_are_zero() {
        let s = sample();
        assert_eq!(s.df(t(42)), 0);
        assert_eq!(s.cf(t(42)), 0);
        assert_eq!(s.idf(t(42)), 0.0);
        assert_eq!(s.background(t(42)), 0.0);
    }

    #[test]
    fn idf_is_log_ratio() {
        let s = sample();
        assert!((s.idf(t(2)) - (3.0f64).ln()).abs() < 1e-12);
        assert!((s.idf(t(0)) - (1.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn rarer_terms_have_higher_idf() {
        let s = sample();
        assert!(s.idf(t(2)) > s.idf(t(0)));
    }

    #[test]
    fn background_sums_to_one_over_vocab() {
        let s = sample();
        let total: f64 = (0..3).map(|i| s.background(t(i))).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus() {
        let s = CorpusStats::default();
        assert_eq!(s.num_docs(), 0);
        assert_eq!(s.idf(t(0)), 0.0);
        assert_eq!(s.background(t(0)), 0.0);
    }
}
