//! The three text relevance measures of §3 behind one uniform scorer.

use crate::{CorpusStats, Document, TermId, WeightedDoc};

/// Default Jelinek–Mercer smoothing parameter.
///
/// Zhai & Lafferty (the paper's ref. 23) recommend values near 0.1–0.7 for
/// keyword-style queries; 0.3 is a common middle ground for short queries.
pub const DEFAULT_LM_LAMBDA: f64 = 0.3;

/// A per-term weight model, `w(t, d)` in the uniform `TS` form
/// (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// `w = tf(t,d) · idf(t,O)` (§3, TF-IDF).
    TfIdf,
    /// `w = (1−λ)·tf/|d| + λ·cf(t)/|C|` for present terms (Eq. 3).
    ///
    /// Absent terms weigh 0, matching the paper's relevance precondition
    /// that an object is relevant only when it *contains* a user term.
    LanguageModel {
        /// Jelinek–Mercer smoothing weight `λ ∈ [0,1)`.
        lambda: f64,
    },
    /// `w = 1` for present terms (Keyword Overlap; `TS = |u.d∩o.d|/|u.d|`).
    KeywordOverlap,
}

impl WeightModel {
    /// The paper's language model with [`DEFAULT_LM_LAMBDA`].
    pub fn lm() -> Self {
        WeightModel::LanguageModel {
            lambda: DEFAULT_LM_LAMBDA,
        }
    }

    /// Weight of a term occurring `tf` times in a document of token length
    /// `doc_len`. Zero when `tf == 0`.
    pub fn weight(&self, t: TermId, tf: u32, doc_len: u64, stats: &CorpusStats) -> f64 {
        if tf == 0 {
            return 0.0;
        }
        match *self {
            WeightModel::TfIdf => f64::from(tf) * stats.idf(t),
            WeightModel::LanguageModel { lambda } => {
                debug_assert!(doc_len > 0);
                (1.0 - lambda) * f64::from(tf) / doc_len as f64 + lambda * stats.background(t)
            }
            WeightModel::KeywordOverlap => 1.0,
        }
    }

    /// The largest weight `t` can attain in any *keyword-set* document:
    /// a document containing `t` once with total length 1.
    ///
    /// Candidate objects (`ox.d ∪ W'`) are keyword sets, so their term
    /// weights never exceed this; folding it into the per-term maximum keeps
    /// every `TS` — including candidate scores — inside `[0, 1]`.
    pub fn keyword_unit_weight(&self, t: TermId, stats: &CorpusStats) -> f64 {
        self.weight(t, 1, 1, stats)
    }

    /// The corpus-statistics *basis* of this model's per-term weight: the
    /// one number through which [`CorpusStats`] enters
    /// [`WeightModel::weight`] for term `t`.
    ///
    /// * TF-IDF — `idf(t, O)`: the weight is `tf · idf`, so two stats with
    ///   equal `idf(t)` give bitwise-equal weights for every `(tf, |d|)`.
    /// * LM — the background estimate `cf(t) / |C|`: the document part
    ///   `(1−λ)·tf/|d|` is stats-free.
    /// * KO — `0.0`: weights never depend on the corpus.
    ///
    /// The incremental corpus refresh compares this basis (frozen vs.
    /// live) per term: a term whose basis did not move cannot change the
    /// stored weight of *any* document, so documents touching only such
    /// terms can be spliced verbatim instead of re-weighed.
    pub fn corpus_basis(&self, t: TermId, stats: &CorpusStats) -> f64 {
        match *self {
            WeightModel::TfIdf => stats.idf(t),
            WeightModel::LanguageModel { .. } => stats.background(t),
            WeightModel::KeywordOverlap => 0.0,
        }
    }

    /// Short display name used by the benchmark harness ("LM", "TF", "KO").
    pub fn short_name(&self) -> &'static str {
        match self {
            WeightModel::TfIdf => "TF",
            WeightModel::LanguageModel { .. } => "LM",
            WeightModel::KeywordOverlap => "KO",
        }
    }
}

/// Evaluates the normalized text relevance `TS` for one corpus and model.
///
/// ```text
/// TS(o.d, u.d) = Σ_{t∈u.d} w(t, o.d) / N(u),   N(u) = Σ_{t∈u.d} wmax(t)
/// ```
///
/// `wmax(t)` is the per-term maximum weight over all object documents *and*
/// over any keyword-set candidate document (see
/// [`WeightModel::keyword_unit_weight`]), which makes the normalizer the
/// paper's `Pmax` (Eq. 4) extended to also cover the query object.
#[derive(Debug, Clone)]
pub struct TextScorer {
    model: WeightModel,
    stats: CorpusStats,
    wmax: Vec<f64>,
}

impl TextScorer {
    /// Builds a scorer: computes corpus statistics (if not already built)
    /// and the per-term maxima by one scan over the object documents.
    pub fn build<'a>(
        model: WeightModel,
        stats: CorpusStats,
        docs: impl IntoIterator<Item = &'a Document>,
    ) -> Self {
        let mut wmax = vec![0.0f64; stats.vocab_len()];
        for d in docs {
            for &(t, tf) in d.entries() {
                let w = model.weight(t, tf, d.len(), &stats);
                let slot = &mut wmax[t.idx()];
                if w > *slot {
                    *slot = w;
                }
            }
        }
        // Fold in the keyword-set ceiling so candidate docs stay bounded.
        for (i, slot) in wmax.iter_mut().enumerate() {
            let unit = model.keyword_unit_weight(TermId(i as u32), &stats);
            if unit > *slot {
                *slot = unit;
            }
        }
        TextScorer { model, stats, wmax }
    }

    /// Convenience constructor that also computes [`CorpusStats`].
    pub fn from_docs(model: WeightModel, docs: &[Document]) -> Self {
        let stats = CorpusStats::build(docs.iter());
        Self::build(model, stats, docs.iter())
    }

    /// The weight model in use.
    #[inline]
    pub fn model(&self) -> WeightModel {
        self.model
    }

    /// The corpus statistics backing this scorer.
    #[inline]
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Per-term maximum weight `wmax(t)`.
    ///
    /// For terms outside the corpus vocabulary the maximum is the
    /// keyword-set ceiling: no object carries the term, but a candidate
    /// document still can, so the term is not weightless.
    #[inline]
    pub fn max_weight(&self, t: TermId) -> f64 {
        match self.wmax.get(t.idx()) {
            Some(&w) => w,
            None => self.model.keyword_unit_weight(t, &self.stats),
        }
    }

    /// Raises the per-term maximum for `t` to at least `floor`.
    ///
    /// The approximate tier of the incremental corpus refresh keeps
    /// within-bound stale document weights in the index; those weights
    /// were clamped against the *previous* scorer's `wmax`, so the new
    /// scorer's maxima must be floored at the old values for every pruning
    /// bound to keep dominating every indexed weight. Slots between the
    /// current vocabulary extent and `t` are materialized with their
    /// keyword-unit ceiling (the value [`TextScorer::max_weight`] would
    /// have reported for them), so the growth never *lowers* any maximum.
    pub fn raise_max_weight(&mut self, t: TermId, floor: f64) {
        if t.idx() >= self.wmax.len() {
            let old_len = self.wmax.len();
            self.wmax.resize(t.idx() + 1, 0.0);
            for i in old_len..self.wmax.len() {
                self.wmax[i] = self
                    .model
                    .keyword_unit_weight(TermId(i as u32), &self.stats);
            }
        }
        let slot = &mut self.wmax[t.idx()];
        if floor > *slot {
            *slot = floor;
        }
    }

    /// Precomputes the model weights of an object document.
    pub fn weigh(&self, doc: &Document) -> WeightedDoc {
        WeightedDoc::from_pairs(
            doc.entries()
                .iter()
                .map(|&(t, tf)| (t, self.model.weight(t, tf, doc.len(), &self.stats)))
                .collect(),
        )
    }

    /// The user normalizer `N(u) = Σ_{t∈u.d} wmax(t)`.
    ///
    /// Zero when no user term appears anywhere in the corpus (such a user
    /// scores 0 against every document).
    pub fn normalizer(&self, user: &Document) -> f64 {
        user.terms().map(|t| self.max_weight(t)).sum()
    }

    /// `TS` between a pre-weighted object document and a user keyword set.
    pub fn ts_weighted(&self, obj: &WeightedDoc, user: &Document) -> f64 {
        let n = self.normalizer(user);
        if n == 0.0 {
            return 0.0;
        }
        let score = obj.dot_terms(user) / n;
        debug_assert!((-1e-9..=1.0 + 1e-9).contains(&score));
        score
    }

    /// `TS` between raw documents (weighs the object on the fly).
    pub fn ts(&self, obj: &Document, user: &Document) -> f64 {
        self.ts_weighted(&self.weigh(obj), user)
    }

    /// Weight a term takes in a *candidate* (keyword-set) document of
    /// `ref_len` distinct keywords.
    ///
    /// Candidate documents are evaluated with a fixed reference length — the
    /// keyword budget `|ox.d| + ws` — so that adding a candidate keyword
    /// never lowers the weight of the keywords already present. That
    /// monotonicity is what Lemma 3 and the greedy (1−1/e) guarantee of
    /// §6.2.1 require; see DESIGN.md §3 for discussion.
    pub fn candidate_weight(&self, t: TermId, ref_len: u64) -> f64 {
        debug_assert!(ref_len > 0);
        self.model.weight(t, 1, ref_len, &self.stats)
    }

    /// `TS` between a candidate keyword set (evaluated at `ref_len`) and a
    /// user keyword set.
    pub fn candidate_ts(&self, cand: &Document, user: &Document, ref_len: u64) -> f64 {
        let n = self.normalizer(user);
        if n == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for t in user.terms() {
            if cand.contains(t) {
                acc += self.candidate_weight(t, ref_len);
            }
        }
        let score = acc / n;
        debug_assert!((-1e-9..=1.0 + 1e-9).contains(&score));
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn corpus() -> Vec<Document> {
        vec![
            Document::from_pairs([(t(0), 2), (t(1), 1)]), // len 3
            Document::from_pairs([(t(1), 3)]),            // len 3
            Document::from_pairs([(t(0), 1), (t(2), 1)]), // len 2
        ]
    }

    #[test]
    fn ko_matches_paper_formula() {
        let docs = corpus();
        let s = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let user = Document::from_terms([t(0), t(1), t(3)]);
        // wmax of t3 is 1 (keyword unit), so N(u) = 3 even though t3 is
        // unseen; overlap with doc0 = {t0, t1} → 2/3.
        assert!((s.ts(&docs[0], &user) - 2.0 / 3.0).abs() < 1e-12);
        // doc1 = {t1} → 1/3.
        assert!((s.ts(&docs[1], &user) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lm_weight_matches_eq3() {
        let docs = corpus();
        let stats = CorpusStats::build(docs.iter());
        let m = WeightModel::LanguageModel { lambda: 0.4 };
        // t0 in doc0: tf=2, |d|=3, cf=3, |C|=8.
        let w = m.weight(t(0), 2, 3, &stats);
        let expect = 0.6 * (2.0 / 3.0) + 0.4 * (3.0 / 8.0);
        assert!((w - expect).abs() < 1e-12);
        // Absent term weighs zero.
        assert_eq!(m.weight(t(0), 0, 3, &stats), 0.0);
    }

    #[test]
    fn tfidf_weight() {
        let docs = corpus();
        let stats = CorpusStats::build(docs.iter());
        let m = WeightModel::TfIdf;
        let w = m.weight(t(0), 2, 3, &stats);
        assert!((w - 2.0 * (1.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn scores_are_normalized_for_all_models() {
        let docs = corpus();
        let user = Document::from_terms([t(0), t(1), t(2)]);
        for model in [
            WeightModel::TfIdf,
            WeightModel::lm(),
            WeightModel::KeywordOverlap,
        ] {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                let ts = s.ts(d, &user);
                assert!(
                    (0.0..=1.0).contains(&ts),
                    "{model:?} score {ts} out of range"
                );
            }
        }
    }

    #[test]
    fn max_weight_dominates_every_doc_weight() {
        let docs = corpus();
        for model in [
            WeightModel::TfIdf,
            WeightModel::lm(),
            WeightModel::KeywordOverlap,
        ] {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                let wd = s.weigh(d);
                for &(term, w) in &wd.entries {
                    assert!(w <= s.max_weight(term) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn candidate_weight_bounded_by_max_weight() {
        let docs = corpus();
        for model in [
            WeightModel::TfIdf,
            WeightModel::lm(),
            WeightModel::KeywordOverlap,
        ] {
            let s = TextScorer::from_docs(model, &docs);
            for i in 0..3 {
                for ref_len in 1..=5 {
                    assert!(
                        s.candidate_weight(t(i), ref_len) <= s.max_weight(t(i)) + 1e-12,
                        "{model:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_ts_monotone_in_added_keywords() {
        let docs = corpus();
        let s = TextScorer::from_docs(WeightModel::lm(), &docs);
        let user = Document::from_terms([t(0), t(1), t(2)]);
        let ref_len = 3;
        let c1 = Document::from_terms([t(0)]);
        let c2 = Document::from_terms([t(0), t(1)]);
        let c3 = Document::from_terms([t(0), t(1), t(2)]);
        let s1 = s.candidate_ts(&c1, &user, ref_len);
        let s2 = s.candidate_ts(&c2, &user, ref_len);
        let s3 = s.candidate_ts(&c3, &user, ref_len);
        assert!(s1 <= s2 && s2 <= s3);
        assert!(s1 > 0.0);
    }

    #[test]
    fn user_with_no_known_terms_scores_zero() {
        // Corpus without t9; user only has t9. KO gives N(u)=1 (unit) but
        // no doc contains it → 0. For LM/TF the same.
        let docs = corpus();
        let user = Document::from_terms([t(9)]);
        for model in [
            WeightModel::TfIdf,
            WeightModel::lm(),
            WeightModel::KeywordOverlap,
        ] {
            let s = TextScorer::from_docs(model, &docs);
            for d in &docs {
                assert_eq!(s.ts(d, &user), 0.0);
            }
        }
    }

    #[test]
    fn empty_user_scores_zero() {
        let docs = corpus();
        let s = TextScorer::from_docs(WeightModel::lm(), &docs);
        let user = Document::new();
        assert_eq!(s.ts(&docs[0], &user), 0.0);
        assert_eq!(s.normalizer(&user), 0.0);
    }

    #[test]
    fn ts_weighted_equals_ts() {
        let docs = corpus();
        let s = TextScorer::from_docs(WeightModel::lm(), &docs);
        let user = Document::from_terms([t(0), t(2)]);
        for d in &docs {
            let wd = s.weigh(d);
            assert!((s.ts_weighted(&wd, &user) - s.ts(d, &user)).abs() < 1e-12);
        }
    }

    /// `corpus_basis` is exactly the channel through which statistics
    /// reach weights: equal basis ⇒ bitwise-equal weight for every
    /// `(tf, |d|)`, and a moved basis moves some weight.
    #[test]
    fn corpus_basis_determines_weights() {
        let frozen = CorpusStats::build(corpus().iter());
        // A different corpus that disturbs t0/t1 (df and cf both move)
        // but leaves t2 untouched: same |C| (8 tokens), same df/cf for t2.
        let live_docs = [
            Document::from_pairs([(t(0), 2), (t(1), 1)]),
            Document::from_pairs([(t(0), 1), (t(1), 2)]),
            Document::from_pairs([(t(0), 1), (t(2), 1)]),
        ];
        let live = CorpusStats::build(live_docs.iter());
        for model in [WeightModel::TfIdf, WeightModel::lm()] {
            // t2's basis is unchanged, so every (tf, len) weight matches.
            assert_eq!(
                model.corpus_basis(t(2), &frozen),
                model.corpus_basis(t(2), &live)
            );
            for (tf, len) in [(1u32, 2u64), (3, 5)] {
                assert_eq!(
                    model.weight(t(2), tf, len, &frozen),
                    model.weight(t(2), tf, len, &live)
                );
            }
            // t0's basis moved, and so does the weight.
            assert_ne!(
                model.corpus_basis(t(0), &frozen),
                model.corpus_basis(t(0), &live)
            );
            assert_ne!(
                model.weight(t(0), 1, 2, &frozen),
                model.weight(t(0), 1, 2, &live)
            );
        }
        // KO never depends on the corpus.
        let ko = WeightModel::KeywordOverlap;
        assert_eq!(ko.corpus_basis(t(0), &frozen), 0.0);
        assert_eq!(ko.corpus_basis(t(0), &live), 0.0);
    }

    #[test]
    fn raise_max_weight_floors_and_materializes_gaps() {
        let docs = corpus();
        let mut s = TextScorer::from_docs(WeightModel::lm(), &docs);
        let before = s.max_weight(t(0));
        // Raising below the current maximum is a no-op.
        s.raise_max_weight(t(0), before / 2.0);
        assert_eq!(s.max_weight(t(0)), before);
        // Raising above sticks.
        s.raise_max_weight(t(0), before * 2.0);
        assert_eq!(s.max_weight(t(0)), before * 2.0);
        // Raising a term beyond the vocabulary extent materializes the
        // gap slots at their unit ceiling, not at zero.
        let unit_t5 = WeightModel::lm().keyword_unit_weight(t(5), s.stats());
        s.raise_max_weight(t(7), 9.0);
        assert_eq!(s.max_weight(t(7)), 9.0);
        assert_eq!(s.max_weight(t(5)), unit_t5);
    }

    #[test]
    fn short_names() {
        assert_eq!(WeightModel::TfIdf.short_name(), "TF");
        assert_eq!(WeightModel::lm().short_name(), "LM");
        assert_eq!(WeightModel::KeywordOverlap.short_name(), "KO");
    }
}
