//! §6.2.2, Algorithm 4: exact keyword selection with pruning.
//!
//! Enumerates keyword combinations but applies the paper's four pruning
//! rules first:
//!
//! 1. only users in `LU_maxℓ` can qualify (the caller passes that list);
//! 2. only candidate keywords held by at least one of those users matter
//!    (`W ∩ Wu`);
//! 3. when `|W ∩ Wu| ≤ ws` there is just one sensible choice — return it;
//! 4. users whose `LBL(ℓ, u)` already reaches `RSk(u)` are BRSTkNNs for
//!    *every* combination and are counted once, outside the loop.

use text::TermId;

use crate::arena::ExactScratch;
use crate::select::CandidateContext;

/// Iterator over `k`-combinations of `0..n` (lexicographic index tuples).
///
/// Also usable as a resettable borrowing enumerator
/// ([`Combinations::reset`] / [`Combinations::next_ref`]) so the query
/// arenas can re-enumerate without reallocating the index tuple.
#[derive(Debug)]
pub(crate) struct Combinations {
    n: usize,
    k: usize,
    idx: Vec<usize>,
    done: bool,
    started: bool,
}

impl Default for Combinations {
    fn default() -> Self {
        Combinations {
            n: 0,
            k: 0,
            idx: Vec::new(),
            done: true,
            started: false,
        }
    }
}

impl Combinations {
    #[cfg(test)]
    pub(crate) fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            idx: (0..k).collect(),
            done: k > n || k == 0,
            started: false,
        }
    }

    /// Rewinds to the first `k`-combination of `0..n`, reusing the buffer.
    pub(crate) fn reset(&mut self, n: usize, k: usize) {
        self.n = n;
        self.k = k;
        self.idx.clear();
        self.idx.extend(0..k);
        self.done = k > n || k == 0;
        self.started = false;
    }

    /// Advances self's index tuple in place (lexicographic order).
    fn advance(&mut self) {
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] < self.n - (self.k - i) {
                self.idx[i] += 1;
                for j in (i + 1)..self.k {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
    }

    /// Borrowing twin of [`Iterator::next`]: yields the same sequence of
    /// combinations without allocating per step.
    pub(crate) fn next_ref(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if self.started {
            self.advance();
            if self.done {
                return None;
            }
        }
        self.started = true;
        Some(&self.idx)
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.idx.clone();
        self.advance();
        Some(current)
    }
}

/// Algorithm 4: the best keyword set for location `loc_idx` over the
/// candidate users `lu`, found exactly.
///
/// Returns the chosen keywords (ascending). When several combinations tie,
/// the lexicographically first is returned.
pub fn exact_keywords(cc: &CandidateContext<'_>, loc_idx: usize, lu: &[usize]) -> Vec<TermId> {
    let mut ss = Vec::new();
    cc.fill_ss(&cc.spec.locations[loc_idx], lu, &mut ss);
    let mut ex = ExactScratch::default();
    let mut out = Vec::new();
    exact_keywords_into(cc, lu, &ss, &mut ex, &mut out);
    out
}

/// [`exact_keywords`] into arena scratch: `ss_lu` carries the location's
/// spatial scores aligned with `lu`, and the chosen keywords land in
/// `out`. Allocation-free once the scratch is warm.
pub(crate) fn exact_keywords_into(
    cc: &CandidateContext<'_>,
    lu: &[usize],
    ss_lu: &[f64],
    ex: &mut ExactScratch,
    out: &mut Vec<TermId>,
) {
    let ExactScratch {
        wc,
        certain,
        uncertain,
        combos,
        chosen,
        cand,
        delta,
    } = ex;
    out.clear();

    // Pruning 2: candidate keywords present in at least one LU user.
    wc.clear();
    wc.extend(
        cc.spec
            .keywords
            .iter()
            .copied()
            .filter(|&w| lu.iter().any(|&u| cc.users[u].doc.contains(w))),
    );
    wc.sort_unstable();
    wc.dedup();

    // Early termination (pruning 3): only one sensible choice.
    if wc.len() <= cc.spec.ws {
        out.extend_from_slice(wc);
        return;
    }

    // Pruning 4: users certain regardless of the keyword choice. They need
    // textual overlap with ox.d for the no-keyword score to mean
    // qualification.
    certain.clear();
    uncertain.clear();
    for (pos, &u) in lu.iter().enumerate() {
        let sure = cc.users[u].doc.overlaps(&cc.spec.ox_doc)
            && cc.sts_with_ss(ss_lu[pos], &cc.spec.ox_doc, u) >= cc.rsk[u];
        if sure {
            certain.push(pos);
        } else {
            uncertain.push(pos);
        }
    }

    // Uncertain users fail with `ox.d` alone by construction, and an
    // uncertain user holding none of a combination's keywords computes the
    // bit-identical score — so each combination only has to re-evaluate
    // the holders of its keywords (gathered from the inverted rows).
    delta.build(cc, wc, lu, uncertain.iter().copied());

    let mut best_count = 0usize;
    let mut best_set = false;
    combos.reset(wc.len(), cc.spec.ws);
    while let Some(combo) = combos.next_ref() {
        // A combination qualifies at most `certain + holders` users.
        if best_set && certain.len() + delta.potential(combo.iter().copied()) <= best_count {
            continue;
        }
        let touched = delta.gather(combo.iter().copied());
        if best_set && certain.len() + touched <= best_count {
            continue;
        }
        chosen.clear();
        chosen.extend(combo.iter().map(|&i| wc[i]));
        cand.assign_with_terms(&cc.spec.ox_doc, chosen);
        let mut count = certain.len();
        for &pos in delta.touched() {
            let pos = pos as usize;
            if cc.qualifies_with_ss(ss_lu[pos], cand, lu[pos]) {
                count += 1;
            }
        }
        if count > best_count || !best_set {
            best_count = count;
            best_set = true;
            out.clear();
            out.extend_from_slice(chosen);
        }
    }
}

/// Exact BRSTkNN cardinality for a fixed tuple (used by tests and the
/// approximation-ratio metric): counts qualifying users among `lu`.
pub fn count_for(
    cc: &CandidateContext<'_>,
    loc_idx: usize,
    keywords: &[TermId],
    lu: &[usize],
) -> usize {
    let cand = cc.with_keywords(keywords);
    cc.brstknn(&cc.spec.locations[loc_idx], &cand, lu).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::greedy::greedy_keywords;
    use crate::select::test_fixture::{fixture, t};

    #[test]
    fn combinations_enumerate_all() {
        let got: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            got,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 0).count(), 0);
        assert_eq!(Combinations::new(2, 3).count(), 0);
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(30, 2).count(), 435);
    }

    /// The borrowing enumerator must yield exactly the iterator's sequence,
    /// including across a reset.
    #[test]
    fn next_ref_matches_iterator() {
        for (n, k) in [(4, 2), (3, 0), (2, 3), (3, 3), (5, 1), (6, 4)] {
            let want: Vec<Vec<usize>> = Combinations::new(n, k).collect();
            let mut c = Combinations::default();
            for _ in 0..2 {
                c.reset(n, k);
                let mut got: Vec<Vec<usize>> = Vec::new();
                while let Some(ix) = c.next_ref() {
                    got.push(ix.to_vec());
                }
                assert_eq!(got, want, "n={n} k={k}");
                assert!(c.next_ref().is_none(), "exhausted enumerator stays done");
            }
        }
    }

    #[test]
    fn exact_matches_exhaustive_enumeration() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let got = exact_keywords(&cc, loc_idx, &lu);
            let got_count = count_for(&cc, loc_idx, &got, &lu);

            // Reference: enumerate every subset of size ≤ ws.
            let kws = &f.spec.keywords;
            let mut best = 0;
            for i in 0..kws.len() {
                best = best.max(count_for(&cc, loc_idx, &[kws[i]], &lu));
                for j in (i + 1)..kws.len() {
                    best = best.max(count_for(&cc, loc_idx, &[kws[i], kws[j]], &lu));
                }
            }
            assert_eq!(got_count, best, "loc {loc_idx}");
        }
    }

    /// The holder-row shortcut must reproduce the full per-combination
    /// rescan — chosen keyword set included, ties and all — on messy
    /// random instances.
    #[test]
    fn exact_matches_naive_rescan_on_random_instances() {
        use crate::select::test_fixture::random_fixture;
        use text::TermId;
        for seed in 0..4 {
            let f = random_fixture(seed + 10, 48, 9);
            let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
            let lu: Vec<usize> = (0..f.users.len()).collect();
            for li in 0..f.spec.locations.len() {
                let got = exact_keywords(&cc, li, &lu);

                // Reference: Algorithm 4 without the holder rows — every
                // combination of the pruned pool scores every user.
                let loc = &f.spec.locations[li];
                let mut wc: Vec<TermId> = f
                    .spec
                    .keywords
                    .iter()
                    .copied()
                    .filter(|&w| lu.iter().any(|&u| cc.users[u].doc.contains(w)))
                    .collect();
                wc.sort_unstable();
                wc.dedup();
                let expect = if wc.len() <= f.spec.ws {
                    wc
                } else {
                    let mut best: Option<(usize, Vec<TermId>)> = None;
                    for ix in Combinations::new(wc.len(), f.spec.ws) {
                        let kw: Vec<TermId> = ix.iter().map(|&i| wc[i]).collect();
                        let cand = cc.with_keywords(&kw);
                        let count = cc.brstknn(loc, &cand, &lu).len();
                        match &best {
                            Some((c, _)) if count <= *c => {}
                            _ => best = Some((count, kw)),
                        }
                    }
                    best.unwrap().1
                };
                assert_eq!(got, expect, "seed {seed}, loc {li}");
            }
        }
    }

    #[test]
    fn greedy_never_beats_exact() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let e = count_for(&cc, loc_idx, &exact_keywords(&cc, loc_idx, &lu), &lu);
            let g = count_for(&cc, loc_idx, &greedy_keywords(&cc, loc_idx, &lu), &lu);
            assert!(g <= e);
        }
    }

    #[test]
    fn early_termination_returns_all_when_few_keywords() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.keywords = vec![t(0), t(1)];
        spec.ws = 3;
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let got = exact_keywords(&cc, 0, &lu);
        assert_eq!(got, vec![t(0), t(1)]);
    }

    #[test]
    fn keywords_absent_from_all_users_are_pruned() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.keywords = vec![t(0), t(1), t(50), t(51), t(52)];
        spec.ws = 2;
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        // Only t0, t1 survive pruning → early termination path.
        assert_eq!(exact_keywords(&cc, 0, &lu), vec![t(0), t(1)]);
    }

    #[test]
    fn empty_lu_returns_empty() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let got = exact_keywords(&cc, 0, &[]);
        assert!(got.is_empty());
        assert_eq!(count_for(&cc, 0, &got, &[]), 0);
    }
}
