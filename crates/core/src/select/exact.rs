//! §6.2.2, Algorithm 4: exact keyword selection with pruning.
//!
//! Enumerates keyword combinations but applies the paper's four pruning
//! rules first:
//!
//! 1. only users in `LU_maxℓ` can qualify (the caller passes that list);
//! 2. only candidate keywords held by at least one of those users matter
//!    (`W ∩ Wu`);
//! 3. when `|W ∩ Wu| ≤ ws` there is just one sensible choice — return it;
//! 4. users whose `LBL(ℓ, u)` already reaches `RSk(u)` are BRSTkNNs for
//!    *every* combination and are counted once, outside the loop.

use text::TermId;

use crate::select::CandidateContext;

/// Iterator over `k`-combinations of `0..n` (lexicographic index tuples).
pub(crate) struct Combinations {
    n: usize,
    k: usize,
    idx: Vec<usize>,
    done: bool,
}

impl Combinations {
    pub(crate) fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            idx: (0..k).collect(),
            done: k > n || k == 0,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.idx.clone();
        // Advance to the next combination.
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] < self.n - (self.k - i) {
                self.idx[i] += 1;
                for j in (i + 1)..self.k {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

/// Algorithm 4: the best keyword set for location `loc_idx` over the
/// candidate users `lu`, found exactly.
///
/// Returns the chosen keywords (ascending). When several combinations tie,
/// the lexicographically first is returned.
pub fn exact_keywords(cc: &CandidateContext<'_>, loc_idx: usize, lu: &[usize]) -> Vec<TermId> {
    let loc = &cc.spec.locations[loc_idx];

    // Pruning 2: candidate keywords present in at least one LU user.
    let mut wc: Vec<TermId> = cc
        .spec
        .keywords
        .iter()
        .copied()
        .filter(|&w| lu.iter().any(|&u| cc.users[u].doc.contains(w)))
        .collect();
    wc.sort_unstable();
    wc.dedup();

    // Early termination (pruning 3): only one sensible choice.
    if wc.len() <= cc.spec.ws {
        return wc;
    }

    // Pruning 4: users certain regardless of the keyword choice. They need
    // textual overlap with ox.d for the no-keyword score to mean
    // qualification.
    let certain: Vec<usize> = lu
        .iter()
        .copied()
        .filter(|&u| cc.users[u].doc.overlaps(&cc.spec.ox_doc) && cc.lbl_user(loc, u) >= cc.rsk[u])
        .collect();
    let uncertain: Vec<usize> = lu
        .iter()
        .copied()
        .filter(|u| !certain.contains(u))
        .collect();

    let mut best_count = 0usize;
    let mut best: Vec<TermId> = Vec::new();
    for combo in Combinations::new(wc.len(), cc.spec.ws) {
        let chosen: Vec<TermId> = combo.iter().map(|&i| wc[i]).collect();
        let cand = cc.with_keywords(&chosen);
        let mut count = certain.len();
        for &u in &uncertain {
            // Only users sharing a term with the combination (or with
            // ox.d) can have gained anything.
            if cc.qualifies(loc, &cand, u) {
                count += 1;
            }
        }
        if count > best_count || best.is_empty() {
            best_count = count;
            best = chosen;
        }
    }
    best
}

/// Exact BRSTkNN cardinality for a fixed tuple (used by tests and the
/// approximation-ratio metric): counts qualifying users among `lu`.
pub fn count_for(
    cc: &CandidateContext<'_>,
    loc_idx: usize,
    keywords: &[TermId],
    lu: &[usize],
) -> usize {
    let cand = cc.with_keywords(keywords);
    cc.brstknn(&cc.spec.locations[loc_idx], &cand, lu).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::greedy::greedy_keywords;
    use crate::select::test_fixture::{fixture, t};

    #[test]
    fn combinations_enumerate_all() {
        let got: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            got,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 0).count(), 0);
        assert_eq!(Combinations::new(2, 3).count(), 0);
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(30, 2).count(), 435);
    }

    #[test]
    fn exact_matches_exhaustive_enumeration() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let got = exact_keywords(&cc, loc_idx, &lu);
            let got_count = count_for(&cc, loc_idx, &got, &lu);

            // Reference: enumerate every subset of size ≤ ws.
            let kws = &f.spec.keywords;
            let mut best = 0;
            for i in 0..kws.len() {
                best = best.max(count_for(&cc, loc_idx, &[kws[i]], &lu));
                for j in (i + 1)..kws.len() {
                    best = best.max(count_for(&cc, loc_idx, &[kws[i], kws[j]], &lu));
                }
            }
            assert_eq!(got_count, best, "loc {loc_idx}");
        }
    }

    #[test]
    fn greedy_never_beats_exact() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let e = count_for(&cc, loc_idx, &exact_keywords(&cc, loc_idx, &lu), &lu);
            let g = count_for(&cc, loc_idx, &greedy_keywords(&cc, loc_idx, &lu), &lu);
            assert!(g <= e);
        }
    }

    #[test]
    fn early_termination_returns_all_when_few_keywords() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.keywords = vec![t(0), t(1)];
        spec.ws = 3;
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let got = exact_keywords(&cc, 0, &lu);
        assert_eq!(got, vec![t(0), t(1)]);
    }

    #[test]
    fn keywords_absent_from_all_users_are_pruned() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.keywords = vec![t(0), t(1), t(50), t(51), t(52)];
        spec.ws = 2;
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        // Only t0, t1 survive pruning → early termination path.
        assert_eq!(exact_keywords(&cc, 0, &lu), vec![t(0), t(1)]);
    }

    #[test]
    fn empty_lu_returns_empty() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let got = exact_keywords(&cc, 0, &[]);
        assert!(got.is_empty());
        assert_eq!(count_for(&cc, 0, &got, &[]), 0);
    }
}
