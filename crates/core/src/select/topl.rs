//! ℓ-MaxBRSTkNN: the top-ℓ best ⟨location, keyword-set⟩ tuples.
//!
//! The MaxBRkNN literature the paper builds on (Wong et al.'s MAXOVERLAP)
//! supports an `ℓ-MaxBRkNN` variant returning the ℓ best regions instead
//! of one. This module lifts the same extension to the spatial-textual
//! setting: the ℓ candidate locations with the largest BRSTkNN
//! cardinalities, each paired with its best keyword set.
//!
//! The best-first structure of Algorithm 3 carries over directly — the
//! early-termination test just compares against the ℓ-th best confirmed
//! tuple instead of the single best.

use std::collections::BinaryHeap;

use crate::select::location::KeywordSelector;
use crate::select::{exact, greedy, CandidateContext};
use crate::topk::ByKey;
use crate::{QueryResult, UserGroup};

/// Runs ℓ-MaxBRSTkNN: the `l` best location/keyword tuples, descending by
/// BRSTkNN cardinality (ties broken by location index).
///
/// Each returned tuple is for a *distinct* candidate location — returning
/// the same location with ℓ different keyword sets is rarely useful, and
/// this matches the region semantics of ℓ-MaxBRkNN.
///
/// # Panics
/// Panics when `l == 0` or the query has no candidate locations.
pub fn select_top_l(
    cc: &CandidateContext<'_>,
    su: &UserGroup,
    rsk_us: f64,
    selector: KeywordSelector,
    l: usize,
) -> Vec<QueryResult> {
    assert!(l > 0, "l must be positive");
    assert!(
        !cc.spec.locations.is_empty(),
        "MaxBRSTkNN requires at least one candidate location"
    );

    // Candidate user lists exactly as in Algorithm 3.
    let mut ql: BinaryHeap<ByKey<(usize, Vec<usize>)>> = BinaryHeap::new();
    for (li, loc) in cc.spec.locations.iter().enumerate() {
        if cc.ubl_group(loc, su) < rsk_us {
            continue;
        }
        let lu: Vec<usize> = (0..cc.users.len())
            .filter(|&u| cc.user_reachable(u) && cc.ubl_user(loc, u) >= cc.rsk[u])
            .collect();
        if !lu.is_empty() {
            ql.push(ByKey {
                key: lu.len() as f64,
                item: (li, lu),
            });
        }
    }

    let mut confirmed: Vec<QueryResult> = Vec::new();
    // The ℓ-th best confirmed cardinality so far (0 until ℓ confirmed).
    let threshold = |confirmed: &[QueryResult]| -> usize {
        if confirmed.len() < l {
            0
        } else {
            confirmed[l - 1].cardinality()
        }
    };

    while let Some(ByKey { item: (li, lu), .. }) = ql.pop() {
        if confirmed.len() >= l && lu.len() <= threshold(&confirmed) {
            break; // nothing left can displace the current top-ℓ
        }
        let loc = &cc.spec.locations[li];
        let keywords = match selector {
            KeywordSelector::Greedy => greedy::greedy_keywords(cc, li, &lu),
            KeywordSelector::GreedyPlus => greedy::greedy_plus_keywords(cc, li, &lu),
            KeywordSelector::Exact => exact::exact_keywords(cc, li, &lu),
        };
        let cand = cc.with_keywords(&keywords);
        let users = cc.brstknn(loc, &cand, &lu);
        confirmed.push(QueryResult {
            location: li,
            keywords,
            brstknn: users,
        });
        confirmed.sort_by(|a, b| {
            b.cardinality()
                .cmp(&a.cardinality())
                .then(a.location.cmp(&b.location))
        });
        confirmed.truncate(l);
    }

    confirmed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::location::select_candidate;
    use crate::select::test_fixture::fixture;
    use crate::select::CandidateContext;

    #[test]
    fn top_one_matches_algorithm_3() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let single = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        let top = select_top_l(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].cardinality(), single.cardinality());
    }

    #[test]
    fn results_descend_and_are_distinct_locations() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let top = select_top_l(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact, 2);
        assert!(top.len() <= 2);
        assert!(top
            .windows(2)
            .all(|w| w[0].cardinality() >= w[1].cardinality()));
        let mut locs: Vec<usize> = top.iter().map(|r| r.location).collect();
        locs.dedup();
        assert_eq!(locs.len(), top.len());
    }

    /// The returned cardinalities must equal the best-ℓ obtainable by
    /// evaluating every location exhaustively.
    #[test]
    fn matches_per_location_brute_force() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let all: Vec<usize> = (0..f.users.len()).collect();

        // Exhaustive per-location best counts.
        let kws = &f.spec.keywords;
        let mut per_loc: Vec<usize> = Vec::new();
        for li in 0..f.spec.locations.len() {
            let mut best = 0;
            for i in 0..kws.len() {
                for j in (i + 1)..kws.len() {
                    let cand = cc.with_keywords(&[kws[i], kws[j]]);
                    best = best.max(cc.brstknn(&f.spec.locations[li], &cand, &all).len());
                }
            }
            per_loc.push(best);
        }
        per_loc.sort_by(|a, b| b.cmp(a));

        let top = select_top_l(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact, 2);
        for (got, want) in top.iter().zip(&per_loc) {
            assert_eq!(got.cardinality(), *want);
        }
    }

    #[test]
    fn l_larger_than_locations_returns_all_useful() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let top = select_top_l(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Greedy, 10);
        assert!(top.len() <= f.spec.locations.len());
    }
}
