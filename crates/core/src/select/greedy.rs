//! §6.2.1: the greedy (1−1/e) approximate keyword selection.
//!
//! Keyword selection is Maximum Coverage in disguise (Lemma 1): each
//! candidate keyword `w` covers the set `LUW_w` of users who would become
//! BRSTkNNs if `w` made it into the advertisement. The classic greedy
//! algorithm — repeatedly take the keyword covering the most uncovered
//! users — is the best possible polynomial-time approximation (Feige '98),
//! guaranteeing at least a `1 − 1/e ≈ 0.632` fraction of the optimum.
//!
//! Preprocessing (the paper's `LUW_w` construction): user `u` enters
//! `LUW_w` when `w ∈ u.d` and the *optimistic* advertisement containing
//! `w` plus the `ws−1` heaviest other candidates from `W ∩ u.d` reaches
//! `RSk(u)` — an upper-bound membership test, which is why the final count
//! is re-evaluated exactly afterwards (in Algorithm 3).

use text::TermId;

use crate::select::CandidateContext;

/// Builds `LUW_w` for every candidate keyword, restricted to the users of
/// `lu` (indices into `cc.users`).
pub fn build_luw(
    cc: &CandidateContext<'_>,
    loc_idx: usize,
    lu: &[usize],
) -> Vec<(TermId, Vec<usize>)> {
    let loc = &cc.spec.locations[loc_idx];
    let mut out: Vec<(TermId, Vec<usize>)> = Vec::with_capacity(cc.spec.keywords.len());
    for &w in &cc.spec.keywords {
        let mut members = Vec::new();
        for &u in lu {
            if !cc.users[u].doc.contains(w) {
                continue;
            }
            // HW_{w,u}: w plus the heaviest remaining candidates from
            // W ∩ u.d, at most ws total.
            let mut others: Vec<TermId> = cc
                .spec
                .keywords
                .iter()
                .copied()
                .filter(|&t| t != w && cc.users[u].doc.contains(t))
                .collect();
            others.sort_by(|&a, &b| cc.cw(b).total_cmp(&cc.cw(a)));
            others.truncate(cc.spec.ws.saturating_sub(1));
            let mut hw = others;
            hw.push(w);
            let cand = cc.with_keywords(&hw);
            if cc.sts_candidate(loc, &cand, u) >= cc.rsk[u] {
                members.push(u);
            }
        }
        out.push((w, members));
    }
    out
}

/// Greedy maximum coverage over the `LUW_w` sets.
///
/// Matches the paper's MC greedy, which "chooses a set in each step which
/// contains the largest number of uncovered elements **until exactly p
/// sets are selected**": once every `LUW` member is covered, remaining
/// picks take the largest sets outright. That matters because `LUW`
/// membership is optimistic — users covered on paper may not qualify with
/// the realized selection, so spending the whole `ws` budget recovers
/// realized count the early-stopping variant leaves behind (clearly
/// visible at large `ws`, Fig. 11b).
pub fn greedy_cover(luw: &[(TermId, Vec<usize>)], ws: usize, num_users: usize) -> Vec<TermId> {
    let mut covered = vec![false; num_users];
    let mut chosen: Vec<TermId> = Vec::with_capacity(ws);
    let mut used = vec![false; luw.len()];

    for _ in 0..ws {
        // (luw idx, uncovered gain, total size) — gain first, size as the
        // tiebreak that also drives the zero-gain picks.
        let mut best: Option<(usize, usize, usize)> = None;
        for (i, (_, members)) in luw.iter().enumerate() {
            if used[i] || members.is_empty() {
                continue;
            }
            let gain = members.iter().filter(|&&u| !covered[u]).count();
            let better = match best {
                None => true,
                Some((_, g, s)) => gain > g || (gain == g && members.len() > s),
            };
            if better {
                best = Some((i, gain, members.len()));
            }
        }
        let Some((i, _, _)) = best else { break };
        used[i] = true;
        chosen.push(luw[i].0);
        for &u in &luw[i].1 {
            covered[u] = true;
        }
    }
    chosen.sort_unstable();
    chosen
}

/// The full §6.2.1 approximate keyword selection for one location.
pub fn greedy_keywords(cc: &CandidateContext<'_>, loc_idx: usize, lu: &[usize]) -> Vec<TermId> {
    // Coverage works on positions within `lu`.
    let luw_raw = build_luw(cc, loc_idx, lu);
    let pos_of = |u: usize| lu.iter().position(|&x| x == u).unwrap();
    let luw: Vec<(TermId, Vec<usize>)> = luw_raw
        .into_iter()
        .map(|(w, members)| (w, members.into_iter().map(pos_of).collect()))
        .collect();
    greedy_cover(&luw, cc.spec.ws, lu.len())
}

/// Greedy on the *realized* objective (extension beyond the paper).
///
/// Instead of maximizing optimistic `LUW_w` coverage, each round adds the
/// keyword that maximizes the **actual** BRSTkNN count of
/// `⟨ℓ, chosen ∪ {w}⟩`. The realized objective is a threshold function and
/// not submodular, so the `(1−1/e)` guarantee does not formally transfer;
/// empirically it tracks the exact optimum more closely than the paper's
/// coverage greedy at the cost of `|W| · ws` exact evaluations (see the
/// `figures -- ablation` experiment). Picks stop early once no keyword
/// improves the count.
pub fn greedy_plus_keywords(
    cc: &CandidateContext<'_>,
    loc_idx: usize,
    lu: &[usize],
) -> Vec<TermId> {
    let loc = &cc.spec.locations[loc_idx];
    let mut chosen: Vec<TermId> = Vec::new();
    let mut best_count = {
        let cand = cc.with_keywords(&chosen);
        cc.brstknn(loc, &cand, lu).len()
    };
    for _ in 0..cc.spec.ws {
        let mut round_best: Option<(TermId, usize)> = None;
        for &w in &cc.spec.keywords {
            if chosen.contains(&w) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(w);
            let cand = cc.with_keywords(&trial);
            let count = cc.brstknn(loc, &cand, lu).len();
            if count > best_count && round_best.is_none_or(|(_, c)| count > c) {
                round_best = Some((w, count));
            }
        }
        let Some((w, count)) = round_best else { break };
        chosen.push(w);
        best_count = count;
    }
    if chosen.is_empty() {
        // Thresholds needing several keywords at once defeat single-step
        // gains; fall back to the coverage greedy rather than give up.
        return greedy_keywords(cc, loc_idx, lu);
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::test_fixture::{fixture, t};

    #[test]
    fn luw_only_contains_keyword_holders() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for (w, members) in build_luw(&cc, 0, &lu) {
            for &u in &members {
                assert!(f.users[u].doc.contains(w));
            }
        }
    }

    #[test]
    fn luw_membership_is_an_upper_bound_test() {
        // Anyone who actually qualifies with some set containing w must be
        // in LUW_w (no false negatives — required for greedy soundness).
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let luw = build_luw(&cc, 0, &lu);
        let loc = &f.spec.locations[0];
        let kws = &f.spec.keywords;
        for i in 0..kws.len() {
            for j in 0..kws.len() {
                if i == j {
                    continue;
                }
                let cand = cc.with_keywords(&[kws[i], kws[j]]);
                for &u in &lu {
                    if cc.users[u].doc.contains(kws[i])
                        && cc.sts_candidate(loc, &cand, u) >= cc.rsk[u]
                    {
                        let (_, members) = luw.iter().find(|(w, _)| *w == kws[i]).unwrap();
                        assert!(
                            members.contains(&u),
                            "user {u} qualifies via {:?} but missing from LUW",
                            kws[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_cover_picks_largest_first() {
        let luw = vec![
            (t(0), vec![0, 1]),
            (t(1), vec![2, 3, 4]),
            (t(2), vec![0, 5]),
        ];
        let chosen = greedy_cover(&luw, 2, 6);
        assert!(chosen.contains(&t(1)));
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn greedy_cover_prefers_marginal_gain() {
        // t0 covers {0,1,2}; t1 covers {0,1,2} too; t2 covers {3}.
        // After t0, t2's gain (1) beats t1's (0).
        let luw = vec![
            (t(0), vec![0, 1, 2]),
            (t(1), vec![0, 1, 2]),
            (t(2), vec![3]),
        ];
        let chosen = greedy_cover(&luw, 2, 4);
        assert_eq!(chosen, vec![t(0), t(2)]);
    }

    #[test]
    fn greedy_cover_spends_full_budget_on_nonempty_sets() {
        // Zero-gain sets are still picked (the paper selects exactly p
        // sets), but empty LUWs never are.
        let luw = vec![(t(0), vec![0]), (t(1), vec![0]), (t(2), vec![])];
        let chosen = greedy_cover(&luw, 3, 1);
        assert_eq!(chosen, vec![t(0), t(1)]);
    }

    #[test]
    fn greedy_plus_never_worse_than_empty_and_bounded_by_exact() {
        use crate::select::exact::{count_for, exact_keywords};
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let gp = greedy_plus_keywords(&cc, loc_idx, &lu);
            let gp_count = count_for(&cc, loc_idx, &gp, &lu);
            let e = count_for(&cc, loc_idx, &exact_keywords(&cc, loc_idx, &lu), &lu);
            assert!(gp_count <= e);
            assert!(gp.len() <= f.spec.ws);
        }
    }

    #[test]
    fn greedy_plus_beats_or_matches_coverage_greedy_on_fixture() {
        use crate::select::exact::count_for;
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let g = count_for(&cc, loc_idx, &greedy_keywords(&cc, loc_idx, &lu), &lu);
            let gp = count_for(&cc, loc_idx, &greedy_plus_keywords(&cc, loc_idx, &lu), &lu);
            assert!(gp >= g, "loc {loc_idx}: realized-gain {gp} < coverage {g}");
        }
    }

    #[test]
    fn greedy_respects_ws_budget() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let chosen = greedy_keywords(&cc, 0, &lu);
        assert!(chosen.len() <= f.spec.ws);
        for w in &chosen {
            assert!(f.spec.keywords.contains(w));
        }
    }

    /// The (1−1/e) guarantee on the coverage objective itself, checked by
    /// exhaustive enumeration on the fixture.
    #[test]
    fn greedy_coverage_within_632_of_best_cover() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let luw = build_luw(&cc, 0, &lu);
        let chosen = greedy_keywords(&cc, 0, &lu);
        let cover = |set: &[TermId]| {
            let mut covered: std::collections::HashSet<usize> = Default::default();
            for (w, m) in &luw {
                if set.contains(w) {
                    covered.extend(m.iter().copied());
                }
            }
            covered.len()
        };
        let got = cover(&chosen);
        let kws = &f.spec.keywords;
        let mut best = 0;
        for i in 0..kws.len() {
            for j in (i + 1)..kws.len() {
                best = best.max(cover(&[kws[i], kws[j]]));
            }
        }
        assert!(got as f64 >= 0.632 * best as f64 - 1e-9);
    }
}
