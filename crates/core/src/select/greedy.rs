//! §6.2.1: the greedy (1−1/e) approximate keyword selection.
//!
//! Keyword selection is Maximum Coverage in disguise (Lemma 1): each
//! candidate keyword `w` covers the set `LUW_w` of users who would become
//! BRSTkNNs if `w` made it into the advertisement. The classic greedy
//! algorithm — repeatedly take the keyword covering the most uncovered
//! users — is the best possible polynomial-time approximation (Feige '98),
//! guaranteeing at least a `1 − 1/e ≈ 0.632` fraction of the optimum.
//!
//! Preprocessing (the paper's `LUW_w` construction): user `u` enters
//! `LUW_w` when `w ∈ u.d` and the *optimistic* advertisement containing
//! `w` plus the `ws−1` heaviest other candidates from `W ∩ u.d` reaches
//! `RSk(u)` — an upper-bound membership test, which is why the final count
//! is re-evaluated exactly afterwards (in Algorithm 3).

use text::TermId;

use crate::arena::GreedyScratch;
use crate::select::CandidateContext;

/// Builds `LUW_w` for every candidate keyword, restricted to the users of
/// `lu` (indices into `cc.users`).
pub fn build_luw(
    cc: &CandidateContext<'_>,
    loc_idx: usize,
    lu: &[usize],
) -> Vec<(TermId, Vec<usize>)> {
    let mut ss = Vec::new();
    cc.fill_ss(&cc.spec.locations[loc_idx], lu, &mut ss);
    let mut gr = GreedyScratch::default();
    build_luw_into(cc, lu, &ss, &mut gr);
    gr.luw_terms
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, gr.luw_members[i].iter().map(|&pos| lu[pos]).collect()))
        .collect()
}

/// [`build_luw`] into arena scratch. Members are recorded as *positions*
/// within `lu` (what the coverage step needs); `ss_lu` carries the
/// location's spatial scores aligned with `lu`.
pub(crate) fn build_luw_into(
    cc: &CandidateContext<'_>,
    lu: &[usize],
    ss_lu: &[f64],
    gr: &mut GreedyScratch,
) {
    let GreedyScratch {
        luw_terms,
        luw_members,
        others,
        hw,
        hcand,
        ..
    } = gr;
    luw_terms.clear();
    luw_terms.extend_from_slice(&cc.spec.keywords);
    while luw_members.len() < luw_terms.len() {
        luw_members.push(Vec::new());
    }
    for members in &mut luw_members[..luw_terms.len()] {
        members.clear();
    }
    // One pass per user: sort the held candidate keywords once, then every
    // held keyword's HW set is a prefix of that order. (The reference
    // construction loops keywords-outer and re-sorts per holder; same
    // (weight desc, keyword position asc) key, same members.)
    for (pos, &u) in lu.iter().enumerate() {
        others.clear();
        for &(t, cw) in cc.ucand(u) {
            for (j, &w) in cc.spec.keywords.iter().enumerate() {
                if w == t {
                    others.push((cw, j as u32, t));
                }
            }
        }
        if others.is_empty() {
            continue;
        }
        others.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, j, w) in others.iter() {
            // HW_{w,u}: w plus the heaviest remaining candidates from
            // W ∩ u.d, at most ws total.
            let cap = cc.spec.ws.saturating_sub(1);
            hw.clear();
            for &(_, _, t) in others.iter() {
                if hw.len() == cap {
                    break;
                }
                if t != w {
                    hw.push(t);
                }
            }
            hw.push(w);
            hcand.assign_with_terms(&cc.spec.ox_doc, hw);
            if cc.sts_with_ss(ss_lu[pos], hcand, u) >= cc.rsk[u] {
                luw_members[j as usize].push(pos);
            }
        }
    }
}

/// Greedy maximum coverage over the `LUW_w` sets.
///
/// Matches the paper's MC greedy, which "chooses a set in each step which
/// contains the largest number of uncovered elements **until exactly p
/// sets are selected**": once every `LUW` member is covered, remaining
/// picks take the largest sets outright. That matters because `LUW`
/// membership is optimistic — users covered on paper may not qualify with
/// the realized selection, so spending the whole `ws` budget recovers
/// realized count the early-stopping variant leaves behind (clearly
/// visible at large `ws`, Fig. 11b).
pub fn greedy_cover(luw: &[(TermId, Vec<usize>)], ws: usize, num_users: usize) -> Vec<TermId> {
    let terms: Vec<TermId> = luw.iter().map(|(w, _)| *w).collect();
    let members: Vec<&[usize]> = luw.iter().map(|(_, m)| m.as_slice()).collect();
    let mut covered = Vec::new();
    let mut used = Vec::new();
    let mut chosen = Vec::new();
    greedy_cover_core(
        &terms,
        &members,
        ws,
        num_users,
        &mut covered,
        &mut used,
        &mut chosen,
    );
    chosen
}

/// [`greedy_cover`] over split term/member columns and caller scratch.
fn greedy_cover_core<M: AsRef<[usize]>>(
    terms: &[TermId],
    members: &[M],
    ws: usize,
    num_users: usize,
    covered: &mut Vec<bool>,
    used: &mut Vec<bool>,
    chosen: &mut Vec<TermId>,
) {
    covered.clear();
    covered.resize(num_users, false);
    used.clear();
    used.resize(terms.len(), false);
    chosen.clear();

    for _ in 0..ws {
        // (idx, uncovered gain, total size) — gain first, size as the
        // tiebreak that also drives the zero-gain picks.
        let mut best: Option<(usize, usize, usize)> = None;
        for (i, m) in members.iter().enumerate() {
            let m = m.as_ref();
            if used[i] || m.is_empty() {
                continue;
            }
            let gain = m.iter().filter(|&&u| !covered[u]).count();
            let better = match best {
                None => true,
                Some((_, g, s)) => gain > g || (gain == g && m.len() > s),
            };
            if better {
                best = Some((i, gain, m.len()));
            }
        }
        let Some((i, _, _)) = best else { break };
        used[i] = true;
        chosen.push(terms[i]);
        for &u in members[i].as_ref() {
            covered[u] = true;
        }
    }
    chosen.sort_unstable();
}

/// The full §6.2.1 approximate keyword selection for one location.
pub fn greedy_keywords(cc: &CandidateContext<'_>, loc_idx: usize, lu: &[usize]) -> Vec<TermId> {
    let mut ss = Vec::new();
    cc.fill_ss(&cc.spec.locations[loc_idx], lu, &mut ss);
    let mut gr = GreedyScratch::default();
    let mut out = Vec::new();
    greedy_keywords_into(cc, lu, &ss, &mut gr, &mut out);
    out
}

/// [`greedy_keywords`] into arena scratch (coverage works on positions
/// within `lu`, which is exactly how `build_luw_into` records members).
pub(crate) fn greedy_keywords_into(
    cc: &CandidateContext<'_>,
    lu: &[usize],
    ss_lu: &[f64],
    gr: &mut GreedyScratch,
    out: &mut Vec<TermId>,
) {
    build_luw_into(cc, lu, ss_lu, gr);
    let GreedyScratch {
        luw_terms,
        luw_members,
        covered,
        used,
        ..
    } = gr;
    greedy_cover_core(
        luw_terms,
        &luw_members[..luw_terms.len()],
        cc.spec.ws,
        lu.len(),
        covered,
        used,
        out,
    );
}

/// Greedy on the *realized* objective (extension beyond the paper).
///
/// Instead of maximizing optimistic `LUW_w` coverage, each round adds the
/// keyword that maximizes the **actual** BRSTkNN count of
/// `⟨ℓ, chosen ∪ {w}⟩`. The realized objective is a threshold function and
/// not submodular, so the `(1−1/e)` guarantee does not formally transfer;
/// empirically it tracks the exact optimum more closely than the paper's
/// coverage greedy at the cost of `|W| · ws` exact evaluations (see the
/// `figures -- ablation` experiment). Picks stop early once no keyword
/// improves the count.
pub fn greedy_plus_keywords(
    cc: &CandidateContext<'_>,
    loc_idx: usize,
    lu: &[usize],
) -> Vec<TermId> {
    let mut ss = Vec::new();
    cc.fill_ss(&cc.spec.locations[loc_idx], lu, &mut ss);
    let mut gr = GreedyScratch::default();
    let mut out = Vec::new();
    greedy_plus_keywords_into(cc, lu, &ss, &mut gr, &mut out);
    out
}

/// [`greedy_plus_keywords`] into arena scratch.
///
/// Each round's trials add exactly one keyword to the current selection,
/// so a trial's count is the selection's count plus a delta over the
/// keyword's holders (everyone else scores bit-identically) — the same
/// incremental argument the baseline scan uses.
pub(crate) fn greedy_plus_keywords_into(
    cc: &CandidateContext<'_>,
    lu: &[usize],
    ss_lu: &[f64],
    gr: &mut GreedyScratch,
    out: &mut Vec<TermId>,
) {
    out.clear();
    gr.delta.build(cc, &cc.spec.keywords, lu, 0..lu.len());
    for _ in 0..cc.spec.ws {
        // Realized verdict per user under the current selection. On the
        // first round this is the `ox.d`-only count; afterwards it equals
        // the picked trial's count (same evaluations).
        gr.hcand.assign_with_terms(&cc.spec.ox_doc, out);
        gr.delta.q0.clear();
        let mut count0 = 0usize;
        for (pos, &u) in lu.iter().enumerate() {
            let q = cc.qualifies_with_ss(ss_lu[pos], &gr.hcand, u);
            gr.delta.q0.push(q);
            count0 += q as usize;
        }
        let best_count = count0;
        let mut round_best: Option<(TermId, usize)> = None;
        for (j, &w) in cc.spec.keywords.iter().enumerate() {
            if out.contains(&w) {
                continue;
            }
            let row = gr.delta.row(j);
            // The trial can at most flip its holders to qualifying.
            let bar = round_best.map_or(best_count, |(_, c)| best_count.max(c));
            if count0 + row.len() <= bar {
                continue;
            }
            gr.trial.clear();
            gr.trial.extend_from_slice(out);
            gr.trial.push(w);
            gr.hcand.assign_with_terms(&cc.spec.ox_doc, &gr.trial);
            let mut count = count0;
            for &p in gr.delta.row(j) {
                let p = p as usize;
                let q1 = cc.qualifies_with_ss(ss_lu[p], &gr.hcand, lu[p]);
                if q1 && !gr.delta.q0[p] {
                    count += 1;
                } else if !q1 && gr.delta.q0[p] {
                    count -= 1;
                }
            }
            if count > best_count && round_best.is_none_or(|(_, c)| count > c) {
                round_best = Some((w, count));
            }
        }
        let Some((w, _)) = round_best else { break };
        out.push(w);
    }
    if out.is_empty() {
        // Thresholds needing several keywords at once defeat single-step
        // gains; fall back to the coverage greedy rather than give up.
        greedy_keywords_into(cc, lu, ss_lu, gr, out);
        return;
    }
    out.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::test_fixture::{fixture, t};

    #[test]
    fn luw_only_contains_keyword_holders() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for (w, members) in build_luw(&cc, 0, &lu) {
            for &u in &members {
                assert!(f.users[u].doc.contains(w));
            }
        }
    }

    #[test]
    fn luw_membership_is_an_upper_bound_test() {
        // Anyone who actually qualifies with some set containing w must be
        // in LUW_w (no false negatives — required for greedy soundness).
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let luw = build_luw(&cc, 0, &lu);
        let loc = &f.spec.locations[0];
        let kws = &f.spec.keywords;
        for i in 0..kws.len() {
            for j in 0..kws.len() {
                if i == j {
                    continue;
                }
                let cand = cc.with_keywords(&[kws[i], kws[j]]);
                for &u in &lu {
                    if cc.users[u].doc.contains(kws[i])
                        && cc.sts_candidate(loc, &cand, u) >= cc.rsk[u]
                    {
                        let (_, members) = luw.iter().find(|(w, _)| *w == kws[i]).unwrap();
                        assert!(
                            members.contains(&u),
                            "user {u} qualifies via {:?} but missing from LUW",
                            kws[i]
                        );
                    }
                }
            }
        }
    }

    /// The one-sort-per-user construction must reproduce the keyword-outer
    /// reference (re-sorting `W ∩ u.d` per holder) exactly — members, order,
    /// duplicate keywords and all.
    #[test]
    fn build_luw_matches_per_holder_reference() {
        use crate::select::test_fixture::random_fixture;
        for seed in 0..4 {
            let f = random_fixture(seed + 20, 48, 9);
            let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
            let lu: Vec<usize> = (0..f.users.len()).collect();
            for li in 0..f.spec.locations.len() {
                let got = build_luw(&cc, li, &lu);
                assert_eq!(got.len(), f.spec.keywords.len());
                let loc = &f.spec.locations[li];
                for (j, &w) in f.spec.keywords.iter().enumerate() {
                    assert_eq!(got[j].0, w, "seed {seed}");
                    let mut expect = Vec::new();
                    for &u in &lu {
                        let held = cc.ucand(u);
                        if !held.iter().any(|&(t, _)| t == w) {
                            continue;
                        }
                        let mut others: Vec<(f64, u32, TermId)> = Vec::new();
                        for (i, &t) in f.spec.keywords.iter().enumerate() {
                            if let Some(&(_, cw)) = held.iter().find(|&&(h, _)| h == t) {
                                others.push((cw, i as u32, t));
                            }
                        }
                        others.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                        let mut hw: Vec<TermId> = others
                            .iter()
                            .filter(|&&(_, _, t)| t != w)
                            .take(f.spec.ws.saturating_sub(1))
                            .map(|&(_, _, t)| t)
                            .collect();
                        hw.push(w);
                        let cand = cc.with_keywords(&hw);
                        if cc.sts_candidate(loc, &cand, u) >= cc.rsk[u] {
                            expect.push(u);
                        }
                    }
                    assert_eq!(got[j].1, expect, "seed {seed}, loc {li}, kw {j}");
                }
            }
        }
    }

    /// The holder-row trial scan must pick the same keyword sequence as a
    /// reference that rescans every user for every trial.
    #[test]
    fn greedy_plus_matches_full_rescan_reference() {
        use crate::select::test_fixture::random_fixture;
        for seed in 0..4 {
            let f = random_fixture(seed + 30, 48, 9);
            let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
            let lu: Vec<usize> = (0..f.users.len()).collect();
            for li in 0..f.spec.locations.len() {
                let got = greedy_plus_keywords(&cc, li, &lu);

                let loc = &f.spec.locations[li];
                let mut sel: Vec<TermId> = Vec::new();
                for _ in 0..f.spec.ws {
                    let best_count = cc.brstknn(loc, &cc.with_keywords(&sel), &lu).len();
                    let mut round_best: Option<(TermId, usize)> = None;
                    for &w in &f.spec.keywords {
                        if sel.contains(&w) {
                            continue;
                        }
                        let mut trial = sel.clone();
                        trial.push(w);
                        let count = cc.brstknn(loc, &cc.with_keywords(&trial), &lu).len();
                        if count > best_count && round_best.is_none_or(|(_, c)| count > c) {
                            round_best = Some((w, count));
                        }
                    }
                    let Some((w, _)) = round_best else { break };
                    sel.push(w);
                }
                let expect = if sel.is_empty() {
                    greedy_keywords(&cc, li, &lu)
                } else {
                    sel.sort_unstable();
                    sel
                };
                assert_eq!(got, expect, "seed {seed}, loc {li}");
            }
        }
    }

    #[test]
    fn greedy_cover_picks_largest_first() {
        let luw = vec![
            (t(0), vec![0, 1]),
            (t(1), vec![2, 3, 4]),
            (t(2), vec![0, 5]),
        ];
        let chosen = greedy_cover(&luw, 2, 6);
        assert!(chosen.contains(&t(1)));
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn greedy_cover_prefers_marginal_gain() {
        // t0 covers {0,1,2}; t1 covers {0,1,2} too; t2 covers {3}.
        // After t0, t2's gain (1) beats t1's (0).
        let luw = vec![
            (t(0), vec![0, 1, 2]),
            (t(1), vec![0, 1, 2]),
            (t(2), vec![3]),
        ];
        let chosen = greedy_cover(&luw, 2, 4);
        assert_eq!(chosen, vec![t(0), t(2)]);
    }

    #[test]
    fn greedy_cover_spends_full_budget_on_nonempty_sets() {
        // Zero-gain sets are still picked (the paper selects exactly p
        // sets), but empty LUWs never are.
        let luw = vec![(t(0), vec![0]), (t(1), vec![0]), (t(2), vec![])];
        let chosen = greedy_cover(&luw, 3, 1);
        assert_eq!(chosen, vec![t(0), t(1)]);
    }

    #[test]
    fn greedy_plus_never_worse_than_empty_and_bounded_by_exact() {
        use crate::select::exact::{count_for, exact_keywords};
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let gp = greedy_plus_keywords(&cc, loc_idx, &lu);
            let gp_count = count_for(&cc, loc_idx, &gp, &lu);
            let e = count_for(&cc, loc_idx, &exact_keywords(&cc, loc_idx, &lu), &lu);
            assert!(gp_count <= e);
            assert!(gp.len() <= f.spec.ws);
        }
    }

    #[test]
    fn greedy_plus_beats_or_matches_coverage_greedy_on_fixture() {
        use crate::select::exact::count_for;
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        for loc_idx in 0..f.spec.locations.len() {
            let g = count_for(&cc, loc_idx, &greedy_keywords(&cc, loc_idx, &lu), &lu);
            let gp = count_for(&cc, loc_idx, &greedy_plus_keywords(&cc, loc_idx, &lu), &lu);
            assert!(gp >= g, "loc {loc_idx}: realized-gain {gp} < coverage {g}");
        }
    }

    #[test]
    fn greedy_respects_ws_budget() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let chosen = greedy_keywords(&cc, 0, &lu);
        assert!(chosen.len() <= f.spec.ws);
        for w in &chosen {
            assert!(f.spec.keywords.contains(w));
        }
    }

    /// The (1−1/e) guarantee on the coverage objective itself, checked by
    /// exhaustive enumeration on the fixture.
    #[test]
    fn greedy_coverage_within_632_of_best_cover() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let lu: Vec<usize> = (0..f.users.len()).collect();
        let luw = build_luw(&cc, 0, &lu);
        let chosen = greedy_keywords(&cc, 0, &lu);
        let cover = |set: &[TermId]| {
            let mut covered: std::collections::HashSet<usize> = Default::default();
            for (w, m) in &luw {
                if set.contains(w) {
                    covered.extend(m.iter().copied());
                }
            }
            covered.len()
        };
        let got = cover(&chosen);
        let kws = &f.spec.keywords;
        let mut best = 0;
        for i in 0..kws.len() {
            for j in (i + 1)..kws.len() {
                best = best.max(cover(&[kws[i], kws[j]]));
            }
        }
        assert!(got as f64 >= 0.632 * best as f64 - 1e-9);
    }
}
