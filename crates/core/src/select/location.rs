//! Algorithm 3: SELECT-CANDIDATE — best-first processing of the candidate
//! locations with spatial-first pruning (§6.1).
//!
//! Every location first gets an optimistic user list `LU_ℓ` (who *could*
//! become a BRSTkNN there, by the `UBL` bounds). Locations are then
//! processed in decreasing `|LU_ℓ|`; because `|LU_ℓ|` upper-bounds the
//! achievable cardinality, the search terminates as soon as the best
//! confirmed tuple matches the next location's potential. The `LBL`
//! shortcut skips keyword selection entirely when the location already
//! guarantees every listed user.

use crate::arena::SelectScratch;
use crate::select::{exact, greedy, CandidateContext};
use crate::topk::ByKey;
use crate::{QueryResult, UserGroup};

/// Which keyword-selection strategy Algorithm 3 should call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeywordSelector {
    /// §6.2.1 greedy maximum-coverage approximation.
    Greedy,
    /// Greedy on realized gains (extension; see
    /// [`crate::select::greedy::greedy_plus_keywords`]).
    GreedyPlus,
    /// §6.2.2 exact enumeration (Algorithm 4).
    Exact,
}

/// Runs Algorithm 3 and returns the best ⟨location, keyword-set⟩ tuple.
///
/// `su` is the super-user over all of `cc.users` and `rsk_us` the global
/// threshold `RSk(us)` from the joint traversal (pass
/// `f64::NEG_INFINITY` to disable the group-level prune, e.g. when
/// thresholds were computed by the per-user baseline).
///
/// # Panics
/// Panics when the query has no candidate locations.
pub fn select_candidate(
    cc: &CandidateContext<'_>,
    su: &UserGroup,
    rsk_us: f64,
    selector: KeywordSelector,
) -> QueryResult {
    let mut sel = SelectScratch::default();
    let mut out = QueryResult::default();
    select_candidate_into(cc, su, rsk_us, selector, &mut sel, &mut out);
    out
}

/// [`select_candidate`] into arena scratch: the winning tuple lands in
/// `out`; queue, per-location `LU` lists, spatial-score columns, and the
/// keyword-selection buffers all come from `sel`.
///
/// # Panics
/// Panics when the query has no candidate locations.
pub(crate) fn select_candidate_into(
    cc: &CandidateContext<'_>,
    su: &UserGroup,
    rsk_us: f64,
    selector: KeywordSelector,
    sel: &mut SelectScratch,
    out: &mut QueryResult,
) {
    assert!(
        !cc.spec.locations.is_empty(),
        "MaxBRSTkNN requires at least one candidate location"
    );
    out.clear();

    let SelectScratch {
        ql,
        lu_bufs,
        ss,
        cand,
        users_out,
        kw,
        gr,
        ex,
        ..
    } = sel;

    // The textual halves of the group bounds don't depend on the location;
    // hoist them so the per-location checks are two float ops each.
    let su_ubl_ts = cc.ubl_group_ts(su);
    let su_lbl_ts = cc.lbl_group_ts(su);

    // Step 1: per-location candidate user lists from the UBL bounds. The
    // lists live in pooled slots; the queue carries (location, slot).
    ql.clear();
    let mut slots = 0usize;
    for (li, loc) in cc.spec.locations.iter().enumerate() {
        if cc.ubl_group_with_ts(loc, su, su_ubl_ts) < rsk_us {
            continue; // no user can be a BRSTkNN here (Lemma 2/3)
        }
        if slots == lu_bufs.len() {
            lu_bufs.push(Vec::new());
        }
        let lu = &mut lu_bufs[slots];
        lu.clear();
        for u in 0..cc.users.len() {
            if cc.user_reachable(u) && cc.ubl_user_with_ss(cc.ss_at(loc, u), u) >= cc.rsk[u] {
                lu.push(u);
            }
        }
        if !lu.is_empty() {
            ql.push(ByKey {
                key: lu.len() as f64,
                item: (li, slots),
            });
            slots += 1;
        }
    }

    // Step 2: best-first over locations with early termination.
    while let Some(ByKey {
        item: (li, slot), ..
    }) = ql.pop()
    {
        let lu = &lu_bufs[slot];
        if lu.len() <= out.brstknn.len() && !out.brstknn.is_empty() {
            break; // |LU| bounds the achievable count — nothing better left
        }
        let loc = &cc.spec.locations[li];
        cc.fill_ss(loc, lu, ss);

        // LBL shortcut: every LU user qualifies with ox.d alone.
        if cc.lbl_group_with_ts(loc, su, su_lbl_ts) >= rsk_us && !cc.spec.ox_doc.is_empty() {
            cc.brstknn_into(&cc.spec.ox_doc, lu, ss, users_out);
            // The shortcut is only complete when it captures the whole
            // list; otherwise keyword selection could still add users.
            if users_out.len() == lu.len() {
                if users_out.len() > out.brstknn.len() {
                    out.location = li;
                    out.keywords.clear();
                    std::mem::swap(users_out, &mut out.brstknn);
                }
                continue;
            }
        }

        // Full keyword selection for this location.
        match selector {
            KeywordSelector::Greedy => greedy::greedy_keywords_into(cc, lu, ss, gr, kw),
            KeywordSelector::GreedyPlus => greedy::greedy_plus_keywords_into(cc, lu, ss, gr, kw),
            KeywordSelector::Exact => exact::exact_keywords_into(cc, lu, ss, ex, kw),
        }
        cand.assign_with_terms(&cc.spec.ox_doc, kw);
        cc.brstknn_into(cand, lu, ss, users_out);
        if users_out.len() > out.brstknn.len() {
            out.location = li;
            out.keywords.clear();
            out.keywords.extend_from_slice(kw);
            std::mem::swap(users_out, &mut out.brstknn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::test_fixture::{fixture, t};
    use crate::select::CandidateContext;
    use text::Document;

    fn brute_force_best(cc: &CandidateContext<'_>) -> usize {
        // All locations × all keyword subsets of size ≤ ws, all users.
        let all: Vec<usize> = (0..cc.users.len()).collect();
        let kws = &cc.spec.keywords;
        let mut best = 0;
        for li in 0..cc.spec.locations.len() {
            let loc = &cc.spec.locations[li];
            let score = |cand: &Document| cc.brstknn(loc, cand, &all).len();
            best = best.max(score(&cc.spec.ox_doc.clone()));
            for i in 0..kws.len() {
                best = best.max(score(&cc.with_keywords(&[kws[i]])));
                for j in (i + 1)..kws.len() {
                    best = best.max(score(&cc.with_keywords(&[kws[i], kws[j]])));
                }
            }
        }
        best
    }

    #[test]
    fn exact_select_matches_brute_force() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let got = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert_eq!(got.cardinality(), brute_force_best(&cc));
        // Verify the returned set is genuine.
        let cand = cc.with_keywords(&got.keywords);
        let all: Vec<usize> = (0..f.users.len()).collect();
        assert_eq!(
            got.brstknn,
            cc.brstknn(&f.spec.locations[got.location], &cand, &all)
        );
    }

    #[test]
    fn greedy_select_is_bounded_by_exact() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let e = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        let g = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Greedy);
        assert!(g.cardinality() <= e.cardinality());
        // And it satisfies the (1−1/e) guarantee on this instance.
        assert!(g.cardinality() as f64 >= 0.632 * e.cardinality() as f64 - 1e-9);
    }

    #[test]
    fn group_prune_never_changes_the_result() {
        // Running with the real RSk(us) (group pruning active) must match
        // running with pruning disabled.
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let rsk_us = 0.6; // = every user's RSk in the fixture
        let with = select_candidate(&cc, &su, rsk_us, KeywordSelector::Exact);
        let without = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert_eq!(with.cardinality(), without.cardinality());
    }

    #[test]
    fn impossible_thresholds_give_empty_result() {
        let f = fixture();
        let rsk = vec![10.0; f.users.len()]; // unreachable (scores ≤ 1)
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let got = select_candidate(&cc, &su, 10.0, KeywordSelector::Exact);
        assert_eq!(got.cardinality(), 0);
    }

    #[test]
    fn single_location_still_selects_keywords() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.locations = vec![spec.locations[0]];
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let got = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert_eq!(got.location, 0);
        assert!(!got.keywords.is_empty() || !got.brstknn.is_empty());
    }

    #[test]
    fn near_location_beats_far_location() {
        let f = fixture();
        // Location 0 sits among the users; location 1 is far away. With
        // α = 0.5 the near location must win.
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let got = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert_eq!(got.location, 0);
    }

    #[test]
    fn returned_keywords_respect_ws() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        for sel in [KeywordSelector::Greedy, KeywordSelector::Exact] {
            let got = select_candidate(&cc, &su, f64::NEG_INFINITY, sel);
            assert!(got.keywords.len() <= f.spec.ws);
            for w in &got.keywords {
                assert!(f.spec.keywords.contains(w) || f.spec.ox_doc.contains(*w));
            }
        }
    }

    #[test]
    fn unreachable_users_are_ignored() {
        let mut f = fixture();
        // Add a user sharing nothing with ox.d ∪ W.
        f.users.push(crate::UserData {
            id: 6,
            point: f.spec.locations[0],
            doc: Document::from_terms([t(77)]),
        });
        let mut rsk = f.rsk.clone();
        rsk.push(f64::NEG_INFINITY); // would qualify on score alone
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let got = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert!(!got.brstknn.contains(&6));
    }
}
