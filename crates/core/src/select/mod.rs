//! Candidate selection (§6): choosing the best ⟨location, keyword-set⟩.
//!
//! Once `RSk(u)` is known for every (relevant) user, the query reduces to
//! picking `ℓ ∈ L` and `W' ⊆ W, |W'| ≤ ws` maximizing the number of users
//! `u` with `STS(ox@ℓ, u) ≥ RSk(u)`. This module provides:
//!
//! * [`CandidateContext`] — shared query state: candidate term weights at
//!   the reference length, per-user normalizers and thresholds,
//! * the candidate bounds `UBL`/`LBL` of §6.1 (with Lemma 3's top-`ws`
//!   keyword upper bound),
//! * [`location`] — Algorithm 3 (best-first location processing),
//! * [`greedy`] — the (1−1/e) maximum-coverage approximation of §6.2.1,
//! * [`exact`] — Algorithm 4 with its pruning rules,
//! * [`baseline`] — the §4 exhaustive scan over every ⟨ℓ, combination⟩.

pub mod baseline;
pub mod exact;
pub mod greedy;
pub mod location;
pub mod topl;

use std::cell::RefCell;
use std::collections::HashMap;

use geo::Point;
use text::{Document, TermId};

use crate::arena::CcScratch;
use crate::{QuerySpec, ScoreContext, UserData, UserGroup};

/// Shared state for one candidate-selection run.
#[derive(Debug)]
pub struct CandidateContext<'a> {
    /// Scoring context.
    pub ctx: &'a ScoreContext,
    /// The query.
    pub spec: &'a QuerySpec,
    /// All users.
    pub users: &'a [UserData],
    /// `RSk(u)` per user (aligned with `users`; −∞ for users with fewer
    /// than `k` relevant objects).
    pub rsk: &'a [f64],
    /// Per-user text normalizer `N(u)`.
    pub n_u: Vec<f64>,
    /// Candidate reference length (`|ox.d| + ws`).
    pub ref_len: u64,
    /// Candidate term weight `cw(t)` for every term of `W ∪ ox.d`.
    cand_w: HashMap<TermId, f64>,
    /// Location-independent textual part of `UBL(·, u)` per user.
    ubl_ts: Vec<f64>,
    /// Per-user candidate terms `u.d ∩ (W ∪ ox.d)` with their weights,
    /// flattened; user `u` owns `ucand_flat[ucand_off[u]..ucand_off[u+1]]`.
    /// The query kernels sum these tiny ascending runs instead of merging
    /// full documents against the weight map.
    ucand_flat: Vec<(TermId, f64)>,
    ucand_off: Vec<u32>,
    /// Scratch for [`CandidateContext::top_ws_weight_sum`].
    ws_buf: RefCell<Vec<f64>>,
}

impl<'a> CandidateContext<'a> {
    /// Precomputes candidate weights and user normalizers.
    pub fn new(
        ctx: &'a ScoreContext,
        spec: &'a QuerySpec,
        users: &'a [UserData],
        rsk: &'a [f64],
    ) -> Self {
        Self::new_reusing(ctx, spec, users, rsk, CcScratch::default())
    }

    /// [`CandidateContext::new`] backed by pooled buffers from a
    /// [`crate::QueryArena`]; hand them back with
    /// [`CandidateContext::into_scratch`] when done.
    pub(crate) fn new_reusing(
        ctx: &'a ScoreContext,
        spec: &'a QuerySpec,
        users: &'a [UserData],
        rsk: &'a [f64],
        scratch: CcScratch,
    ) -> Self {
        assert_eq!(users.len(), rsk.len(), "users and thresholds must align");
        let CcScratch {
            mut cand_w,
            mut n_u,
            ubl_ts,
            mut ucand_flat,
            mut ucand_off,
            ws_buf,
        } = scratch;
        let ref_len = spec.ref_len();
        cand_w.clear();
        for &t in spec.keywords.iter() {
            cand_w.insert(t, ctx.text.candidate_weight(t, ref_len));
        }
        for t in spec.ox_doc.terms() {
            cand_w.insert(t, ctx.text.candidate_weight(t, ref_len));
        }
        n_u.clear();
        n_u.extend(users.iter().map(|u| ctx.text.normalizer(&u.doc)));
        ucand_flat.clear();
        ucand_off.clear();
        ucand_off.push(0);
        for u in users {
            for t in u.doc.terms() {
                if let Some(&w) = cand_w.get(&t) {
                    ucand_flat.push((t, w));
                }
            }
            ucand_off.push(ucand_flat.len() as u32);
        }
        let mut cc = CandidateContext {
            ctx,
            spec,
            users,
            rsk,
            n_u,
            ref_len,
            cand_w,
            ubl_ts,
            ucand_flat,
            ucand_off,
            ws_buf,
        };
        let mut ubl = std::mem::take(&mut cc.ubl_ts);
        ubl.clear();
        for (u, user) in users.iter().enumerate() {
            ubl.push(cc.ubl_ts_doc(&user.doc, cc.n_u[u]));
        }
        cc.ubl_ts = ubl;
        cc
    }

    /// Returns the pooled buffers to the arena.
    pub(crate) fn into_scratch(self) -> CcScratch {
        CcScratch {
            cand_w: self.cand_w,
            n_u: self.n_u,
            ubl_ts: self.ubl_ts,
            ucand_flat: self.ucand_flat,
            ucand_off: self.ucand_off,
            ws_buf: self.ws_buf,
        }
    }

    /// Candidate weight of `t` (0 for terms outside `W ∪ ox.d`).
    #[inline]
    pub fn cw(&self, t: TermId) -> f64 {
        self.cand_w.get(&t).copied().unwrap_or(0.0)
    }

    /// True when user `u` could ever find `ox` relevant: `u.d` shares a
    /// term with `ox.d ∪ W` (the paper's relevance precondition) — i.e.
    /// the user's precomputed candidate-term list is non-empty.
    #[inline]
    pub fn user_reachable(&self, u: usize) -> bool {
        self.ucand_off[u] != self.ucand_off[u + 1]
    }

    /// Sum of the `ws` largest candidate weights among `terms` (Lemma 3's
    /// `Wh` / `Wu` construction).
    pub fn top_ws_weight_sum(&self, terms: impl Iterator<Item = TermId>) -> f64 {
        let mut buf = self.ws_buf.borrow_mut();
        buf.clear();
        buf.extend(terms.map(|t| self.cw(t)).filter(|&w| w > 0.0));
        buf.sort_unstable_by(|a, b| b.total_cmp(a));
        buf.truncate(self.spec.ws);
        buf.iter().sum()
    }

    /// The location-independent textual part of `UBL(·, g)`.
    pub(crate) fn ubl_group_ts(&self, group: &UserGroup) -> f64 {
        // Existing text: terms of ox.d visible to some user in the group.
        let fixed: f64 = self
            .spec
            .ox_doc
            .terms()
            .filter(|&t| group.d_uni.contains(t))
            .map(|t| self.cw(t))
            .sum();
        // Lemma 3: at best the ws highest-weight candidates from W∩dUni.
        let added = self.top_ws_weight_sum(
            self.spec
                .keywords
                .iter()
                .copied()
                .filter(|&t| group.d_uni.contains(t) && !self.spec.ox_doc.contains(t)),
        );
        group.ts_upper(fixed + added)
    }

    /// `UBL(ℓ, g)` (§6.1): upper bound on `STS(ox@ℓ, u)` over every user in
    /// `g` and every admissible keyword choice.
    pub fn ubl_group(&self, loc: &Point, group: &UserGroup) -> f64 {
        let ss = self.ctx.spatial.min_ss_point(loc, &group.mbr);
        self.ctx.combine(ss, self.ubl_group_ts(group))
    }

    /// The location-independent textual part of `UBL(·, u)` for an
    /// arbitrary user document.
    pub(crate) fn ubl_ts_doc(&self, doc: &Document, n_u: f64) -> f64 {
        let fixed: f64 = self
            .spec
            .ox_doc
            .terms()
            .filter(|&t| doc.contains(t))
            .map(|t| self.cw(t))
            .sum();
        let added = self.top_ws_weight_sum(
            self.spec
                .keywords
                .iter()
                .copied()
                .filter(|&t| doc.contains(t) && !self.spec.ox_doc.contains(t)),
        );
        if n_u > 0.0 {
            ((fixed + added) / n_u).min(1.0)
        } else {
            0.0
        }
    }

    /// `UBL(ℓ, u)` (§6.1): per-user upper bound (textual part cached).
    pub fn ubl_user(&self, loc: &Point, u: usize) -> f64 {
        let ss = self.ctx.spatial.ss_points(loc, &self.users[u].point);
        self.ctx.combine(ss, self.ubl_ts[u])
    }

    /// [`CandidateContext::ubl_user`] for a user outside the context's
    /// slice (the §7 pipeline discovers users dynamically from the
    /// MIUR-tree).
    pub fn ubl_user_data(&self, loc: &Point, user: &UserData, n_u: f64) -> f64 {
        let ss = self.ctx.spatial.ss_points(loc, &user.point);
        self.ctx.combine(ss, self.ubl_ts_doc(&user.doc, n_u))
    }

    /// The location-independent textual part of `LBL(·, g)`.
    pub(crate) fn lbl_group_ts(&self, group: &UserGroup) -> f64 {
        let fixed: f64 = self
            .spec
            .ox_doc
            .terms()
            .filter(|&t| group.d_int.contains(t))
            .map(|t| self.cw(t))
            .sum();
        group.ts_lower(fixed)
    }

    /// `LBL(ℓ, g)` (§6.1): guaranteed score for every user in `g` with the
    /// *original* text `ox.d` only.
    pub fn lbl_group(&self, loc: &Point, group: &UserGroup) -> f64 {
        let ss = self.ctx.spatial.max_ss_point(loc, &group.mbr);
        self.ctx.combine(ss, self.lbl_group_ts(group))
    }

    /// `LBL(ℓ, u)`: the user's exact score with the original `ox.d` —
    /// a lower bound for any keyword addition (monotone candidate weights).
    pub fn lbl_user(&self, loc: &Point, u: usize) -> f64 {
        self.sts_candidate(loc, &self.spec.ox_doc, u)
    }

    /// Exact `STS` of `ox` placed at `loc` with text `cand`, for user `u`,
    /// at the candidate reference length.
    pub fn sts_candidate(&self, loc: &Point, cand: &Document, u: usize) -> f64 {
        self.sts_candidate_data(loc, cand, &self.users[u], self.n_u[u])
    }

    /// [`CandidateContext::sts_candidate`] for a user outside the slice.
    pub fn sts_candidate_data(
        &self,
        loc: &Point,
        cand: &Document,
        user: &UserData,
        n_u: f64,
    ) -> f64 {
        let ss = self.ctx.spatial.ss_points(loc, &user.point);
        let ts = if n_u > 0.0 {
            let sum: f64 = user
                .doc
                .terms()
                .filter(|&t| cand.contains(t))
                .map(|t| self.cw(t))
                .sum();
            (sum / n_u).min(1.0)
        } else {
            0.0
        };
        self.ctx.combine(ss, ts)
    }

    /// True when user `u` is a BRSTkNN of `⟨loc, cand⟩`: textual overlap
    /// plus `STS ≥ RSk(u)`.
    pub fn qualifies(&self, loc: &Point, cand: &Document, u: usize) -> bool {
        self.users[u].doc.overlaps(cand) && self.sts_candidate(loc, cand, u) >= self.rsk[u]
    }

    /// The BRSTkNN user set of `⟨loc, cand⟩` restricted to `candidates`
    /// (user indices).
    pub fn brstknn(&self, loc: &Point, cand: &Document, candidates: &[usize]) -> Vec<u32> {
        candidates
            .iter()
            .copied()
            .filter(|&u| self.qualifies(loc, cand, u))
            .map(|u| self.users[u].id)
            .collect()
    }

    /// The query text with extra keywords: `ox.d ∪ extra`.
    pub fn with_keywords(&self, extra: &[TermId]) -> Document {
        self.spec.ox_doc.with_terms(extra.iter().copied())
    }

    // ---- allocation-free fast paths -------------------------------------
    //
    // The kernels below are the steady-state inner loops. They are exact
    // twins of the public methods above, restricted to candidate documents
    // `cand ⊆ ox.d ∪ W` (every internal selection kernel builds them that
    // way), with the spatial score hoisted out by the caller and the
    // per-user term merge replaced by the precomputed `ucand` runs. The
    // public slow paths stay as the reference implementations the
    // brute-force tests compare against.

    /// User `u`'s candidate terms `u.d ∩ (W ∪ ox.d)` with weights,
    /// ascending by term.
    #[inline]
    pub(crate) fn ucand(&self, u: usize) -> &[(TermId, f64)] {
        &self.ucand_flat[self.ucand_off[u] as usize..self.ucand_off[u + 1] as usize]
    }

    /// Spatial score of `loc` for user `u`.
    #[inline]
    pub(crate) fn ss_at(&self, loc: &Point, u: usize) -> f64 {
        self.ctx.spatial.ss_points(loc, &self.users[u].point)
    }

    /// `UBL(ℓ, u)` with the spatial part precomputed.
    #[inline]
    pub(crate) fn ubl_user_with_ss(&self, ss: f64, u: usize) -> f64 {
        self.ctx.combine(ss, self.ubl_ts[u])
    }

    /// `UBL(ℓ, g)` with the textual part precomputed (hoisted across the
    /// location loop by the selection kernels).
    #[inline]
    pub(crate) fn ubl_group_with_ts(&self, loc: &Point, group: &UserGroup, ts: f64) -> f64 {
        let ss = self.ctx.spatial.min_ss_point(loc, &group.mbr);
        self.ctx.combine(ss, ts)
    }

    /// `LBL(ℓ, g)` with the textual part precomputed.
    #[inline]
    pub(crate) fn lbl_group_with_ts(&self, loc: &Point, group: &UserGroup, ts: f64) -> f64 {
        let ss = self.ctx.spatial.max_ss_point(loc, &group.mbr);
        self.ctx.combine(ss, ts)
    }

    /// [`CandidateContext::sts_candidate`] with the spatial part
    /// precomputed, for `cand ⊆ ox.d ∪ W`.
    #[inline]
    pub(crate) fn sts_with_ss(&self, ss: f64, cand: &Document, u: usize) -> f64 {
        let n_u = self.n_u[u];
        let ts = if n_u > 0.0 {
            let sum: f64 = self
                .ucand(u)
                .iter()
                .filter(|&&(t, _)| cand.contains(t))
                .map(|&(_, w)| w)
                .sum();
            (sum / n_u).min(1.0)
        } else {
            0.0
        };
        self.ctx.combine(ss, ts)
    }

    /// [`CandidateContext::qualifies`] with the spatial part precomputed,
    /// for `cand ⊆ ox.d ∪ W`. Overlap and weight sum come from one pass
    /// over the user's candidate-term run.
    #[inline]
    pub(crate) fn qualifies_with_ss(&self, ss: f64, cand: &Document, u: usize) -> bool {
        let mut any = false;
        let mut sum = 0.0;
        for &(t, w) in self.ucand(u) {
            if cand.contains(t) {
                any = true;
                sum += w;
            }
        }
        if !any {
            return false;
        }
        let n_u = self.n_u[u];
        let ts = if n_u > 0.0 { (sum / n_u).min(1.0) } else { 0.0 };
        self.ctx.combine(ss, ts) >= self.rsk[u]
    }

    /// Fills `out` with the spatial scores of `loc` for `candidates`.
    pub(crate) fn fill_ss(&self, loc: &Point, candidates: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.extend(candidates.iter().map(|&u| self.ss_at(loc, u)));
    }

    /// [`CandidateContext::brstknn`] into a reusable buffer; `ss` holds the
    /// spatial scores aligned with `candidates`.
    pub(crate) fn brstknn_into(
        &self,
        cand: &Document,
        candidates: &[usize],
        ss: &[f64],
        out: &mut Vec<u32>,
    ) {
        out.clear();
        for (i, &u) in candidates.iter().enumerate() {
            if self.qualifies_with_ss(ss[i], cand, u) {
                out.push(self.users[u].id);
            }
        }
    }

    /// BRSTkNN cardinality without materializing the user ids.
    #[cfg(test)]
    pub(crate) fn brstknn_count(&self, cand: &Document, candidates: &[usize], ss: &[f64]) -> usize {
        candidates
            .iter()
            .enumerate()
            .filter(|&(i, &u)| self.qualifies_with_ss(ss[i], cand, u))
            .count()
    }
}

/// Inverted ⟨keyword → holder positions⟩ index for the combination scans
/// (the §4 baseline, Algorithm 4, and the realized-gain greedy).
///
/// Scoring a candidate `ox.d ∪ C` differs from scoring `ox.d` alone only
/// for the users holding a term of `C \ ox.d` — everyone else filters the
/// exact same terms out of their candidate run and therefore computes the
/// *bit-identical* score. The scans exploit that: precompute the `ox.d`
/// verdict per user once per location, then per combination re-evaluate
/// just the holders of its keywords (gathered from these rows), instead of
/// every user. With `|W| = 20`, `ws = 3` and a handful of terms per user
/// that turns `C(20,3) · |U|` scoring calls into `C(20,3) · ~|touched|`.
#[derive(Debug, Default)]
pub(crate) struct DeltaScan {
    /// Holder-position rows, parallel to the `terms` column of the last
    /// [`DeltaScan::build`] (pooled; rows past `terms.len()` are stale).
    inv: Vec<Vec<u32>>,
    /// Positions gathered for the current combination.
    touched: Vec<u32>,
    /// Epoch stamps deduplicating positions across a combination's rows.
    stamp: Vec<u32>,
    epoch: u32,
    /// Per-position verdict with `ox.d` alone (filled by callers that
    /// count by delta against it).
    pub(crate) q0: Vec<bool>,
}

impl DeltaScan {
    /// Rebuilds the holder rows: `inv[j]` lists the positions `p` (into
    /// `lu` and its aligned `ss` column) whose user holds `terms[j]`,
    /// restricted to `positions`. Terms of `ox.d` get empty rows — adding
    /// them to a candidate never changes a score, because they already
    /// count through `ox.d` itself.
    pub(crate) fn build(
        &mut self,
        cc: &CandidateContext<'_>,
        terms: &[TermId],
        lu: &[usize],
        positions: impl IntoIterator<Item = usize>,
    ) {
        while self.inv.len() < terms.len() {
            self.inv.push(Vec::new());
        }
        for row in &mut self.inv[..terms.len()] {
            row.clear();
        }
        self.stamp.clear();
        self.stamp.resize(lu.len(), 0);
        self.epoch = 0;
        for pos in positions {
            for &(t, _) in cc.ucand(lu[pos]) {
                if cc.spec.ox_doc.contains(t) {
                    continue;
                }
                // Duplicate terms each get the holder — combinations
                // address terms by position, not value.
                for (j, &w) in terms.iter().enumerate() {
                    if w == t {
                        self.inv[j].push(pos as u32);
                    }
                }
            }
        }
    }

    /// Upper bound on how many positions a combination can touch (summed
    /// row lengths, before deduplication) — the pre-gather skip test.
    pub(crate) fn potential(&self, combo: impl IntoIterator<Item = usize>) -> usize {
        combo.into_iter().map(|j| self.inv[j].len()).sum()
    }

    /// Holder row of a single term position.
    pub(crate) fn row(&self, j: usize) -> &[u32] {
        &self.inv[j]
    }

    /// Collects the deduplicated positions holding any of the
    /// combination's terms; returns the count, positions via
    /// [`DeltaScan::touched`].
    pub(crate) fn gather(&mut self, combo: impl IntoIterator<Item = usize>) -> usize {
        self.epoch += 1;
        let e = self.epoch;
        self.touched.clear();
        for j in combo {
            for &p in &self.inv[j] {
                if self.stamp[p as usize] != e {
                    self.stamp[p as usize] = e;
                    self.touched.push(p);
                }
            }
        }
        self.touched.len()
    }

    pub(crate) fn touched(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
pub(crate) mod test_fixture {
    use super::*;
    use geo::{Rect, SpatialContext};
    use text::{TextScorer, WeightModel};

    pub(crate) fn t(i: u32) -> TermId {
        TermId(i)
    }

    pub(crate) struct Fix {
        pub ctx: ScoreContext,
        pub users: Vec<UserData>,
        pub spec: QuerySpec,
        pub rsk: Vec<f64>,
    }

    /// Deterministic pseudo-random instances for the differential tests
    /// of the combination scans — bigger and messier than [`fixture`]:
    /// LM weights, duplicate-prone keyword pools, users holding 1–4
    /// terms, some users unreachable.
    pub(crate) fn random_fixture(seed: u64, n_users: usize, n_kws: usize) -> Fix {
        let mut state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0x2545F4914F6CDD1D);
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        const VOCAB: u64 = 25;
        let docs: Vec<Document> = (0..40)
            .map(|_| {
                let n = 1 + next(4);
                Document::from_terms((0..n).map(|_| t(next(VOCAB) as u32)))
            })
            .collect();
        let text = TextScorer::from_docs(WeightModel::lm(), &docs);
        let users: Vec<UserData> = (0..n_users)
            .map(|i| {
                let n = 1 + next(4);
                UserData {
                    id: i as u32,
                    point: Point::new(next(1000) as f64 / 100.0, next(1000) as f64 / 100.0),
                    doc: Document::from_terms((0..n).map(|_| t(next(VOCAB) as u32))),
                }
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let ctx = ScoreContext::new(0.5, SpatialContext::from_dataspace(&space), text);
        let spec = QuerySpec {
            ox_doc: Document::from_terms([t(next(VOCAB) as u32), t(next(VOCAB) as u32)]),
            locations: (0..4)
                .map(|_| Point::new(next(1000) as f64 / 100.0, next(1000) as f64 / 100.0))
                .collect(),
            keywords: (0..n_kws).map(|_| t(next(VOCAB) as u32)).collect(),
            ws: 3,
            k: 2,
        };
        let rsk = (0..n_users)
            .map(|_| 0.3 + next(60) as f64 / 100.0)
            .collect();
        Fix {
            ctx,
            users,
            spec,
            rsk,
        }
    }

    /// A small, fully-deterministic selection scenario used across the
    /// select tests: 6 users on a line, KO relevance, candidate keywords
    /// t0..t3, ox.d = {t4} shared by everyone.
    pub(crate) fn fixture() -> Fix {
        let docs: Vec<Document> = (0..10)
            .map(|i| Document::from_terms([t(i % 4), t(4)]))
            .collect();
        let text = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let users: Vec<UserData> = (0..6)
            .map(|i| UserData {
                id: i,
                point: Point::new(i as f64, 1.0),
                doc: Document::from_terms([t(i % 4), t(4)]),
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let ctx = ScoreContext::new(0.5, SpatialContext::from_dataspace(&space), text);
        let spec = QuerySpec {
            ox_doc: Document::from_terms([t(4)]),
            locations: vec![Point::new(2.0, 1.0), Point::new(8.0, 8.0)],
            keywords: vec![t(0), t(1), t(2), t(3)],
            ws: 2,
            k: 2,
        };
        let rsk = vec![0.6; 6];
        Fix {
            ctx,
            users,
            spec,
            rsk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixture::{fixture, t};
    use super::*;

    #[test]
    fn ubl_user_dominates_every_keyword_choice() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let loc = f.spec.locations[0];
        let kws = &f.spec.keywords;
        for u in 0..f.users.len() {
            let ub = cc.ubl_user(&loc, u);
            for i in 0..kws.len() {
                for j in (i + 1)..kws.len() {
                    let cand = cc.with_keywords(&[kws[i], kws[j]]);
                    let s = cc.sts_candidate(&loc, &cand, u);
                    assert!(s <= ub + 1e-9, "user {u}: {s} > UBL {ub}");
                }
            }
        }
    }

    #[test]
    fn ubl_group_dominates_ubl_user() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let group = UserGroup::from_users(&f.users, &f.ctx.text);
        for loc in &f.spec.locations {
            let g = cc.ubl_group(loc, &group);
            for u in 0..f.users.len() {
                assert!(cc.ubl_user(loc, u) <= g + 1e-9);
            }
        }
    }

    #[test]
    fn lbl_user_is_a_lower_bound() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let loc = f.spec.locations[0];
        for u in 0..f.users.len() {
            let lb = cc.lbl_user(&loc, u);
            for &kw in &f.spec.keywords {
                let cand = cc.with_keywords(&[kw]);
                assert!(cc.sts_candidate(&loc, &cand, u) >= lb - 1e-9);
            }
        }
    }

    #[test]
    fn lbl_group_lower_bounds_every_user() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let group = UserGroup::from_users(&f.users, &f.ctx.text);
        for loc in &f.spec.locations {
            let g = cc.lbl_group(loc, &group);
            for u in 0..f.users.len() {
                assert!(cc.lbl_user(loc, u) >= g - 1e-9);
            }
        }
    }

    #[test]
    fn qualifies_requires_overlap() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let cand = Document::from_terms([t(99)]);
        let loc = f.users[0].point;
        assert!(!cc.qualifies(&loc, &cand, 0));
    }

    #[test]
    fn reachability() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        for u in 0..f.users.len() {
            assert!(cc.user_reachable(u)); // everyone shares t4 with ox.d
        }
    }

    /// The allocation-free kernels must be bit-identical to the public
    /// reference paths for every candidate document `⊆ ox.d ∪ W`.
    #[test]
    fn fast_kernels_match_reference_paths() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let kws = &f.spec.keywords;
        let mut cands = vec![cc.with_keywords(&[])];
        for i in 0..kws.len() {
            cands.push(cc.with_keywords(&[kws[i]]));
            for j in (i + 1)..kws.len() {
                cands.push(cc.with_keywords(&[kws[i], kws[j]]));
            }
        }
        for loc in &f.spec.locations {
            for u in 0..f.users.len() {
                let ss = cc.ss_at(loc, u);
                assert_eq!(
                    cc.ubl_user_with_ss(ss, u).to_bits(),
                    cc.ubl_user(loc, u).to_bits()
                );
                for cand in &cands {
                    assert_eq!(
                        cc.sts_with_ss(ss, cand, u).to_bits(),
                        cc.sts_candidate(loc, cand, u).to_bits()
                    );
                    assert_eq!(
                        cc.qualifies_with_ss(ss, cand, u),
                        cc.qualifies(loc, cand, u)
                    );
                }
            }
            let all: Vec<usize> = (0..f.users.len()).collect();
            let mut ss = Vec::new();
            cc.fill_ss(loc, &all, &mut ss);
            for cand in &cands {
                let mut got = Vec::new();
                cc.brstknn_into(cand, &all, &ss, &mut got);
                assert_eq!(got, cc.brstknn(loc, cand, &all));
                assert_eq!(cc.brstknn_count(cand, &all, &ss), got.len());
            }
        }
    }

    #[test]
    fn top_ws_sum_takes_largest() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        // KO: every candidate weight is 1, ws=2 → sum 2.
        let sum = cc.top_ws_weight_sum(f.spec.keywords.iter().copied());
        assert!((sum - 2.0).abs() < 1e-12);
    }
}
