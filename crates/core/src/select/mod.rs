//! Candidate selection (§6): choosing the best ⟨location, keyword-set⟩.
//!
//! Once `RSk(u)` is known for every (relevant) user, the query reduces to
//! picking `ℓ ∈ L` and `W' ⊆ W, |W'| ≤ ws` maximizing the number of users
//! `u` with `STS(ox@ℓ, u) ≥ RSk(u)`. This module provides:
//!
//! * [`CandidateContext`] — shared query state: candidate term weights at
//!   the reference length, per-user normalizers and thresholds,
//! * the candidate bounds `UBL`/`LBL` of §6.1 (with Lemma 3's top-`ws`
//!   keyword upper bound),
//! * [`location`] — Algorithm 3 (best-first location processing),
//! * [`greedy`] — the (1−1/e) maximum-coverage approximation of §6.2.1,
//! * [`exact`] — Algorithm 4 with its pruning rules,
//! * [`baseline`] — the §4 exhaustive scan over every ⟨ℓ, combination⟩.

pub mod baseline;
pub mod exact;
pub mod greedy;
pub mod location;
pub mod topl;

use std::collections::HashMap;

use geo::Point;
use text::{Document, TermId};

use crate::{QuerySpec, ScoreContext, UserData, UserGroup};

/// Shared state for one candidate-selection run.
#[derive(Debug)]
pub struct CandidateContext<'a> {
    /// Scoring context.
    pub ctx: &'a ScoreContext,
    /// The query.
    pub spec: &'a QuerySpec,
    /// All users.
    pub users: &'a [UserData],
    /// `RSk(u)` per user (aligned with `users`; −∞ for users with fewer
    /// than `k` relevant objects).
    pub rsk: &'a [f64],
    /// Per-user text normalizer `N(u)`.
    pub n_u: Vec<f64>,
    /// Candidate reference length (`|ox.d| + ws`).
    pub ref_len: u64,
    /// Candidate term weight `cw(t)` for every term of `W ∪ ox.d`.
    cand_w: HashMap<TermId, f64>,
}

impl<'a> CandidateContext<'a> {
    /// Precomputes candidate weights and user normalizers.
    pub fn new(
        ctx: &'a ScoreContext,
        spec: &'a QuerySpec,
        users: &'a [UserData],
        rsk: &'a [f64],
    ) -> Self {
        assert_eq!(users.len(), rsk.len(), "users and thresholds must align");
        let ref_len = spec.ref_len();
        let mut cand_w = HashMap::new();
        for &t in spec.keywords.iter() {
            cand_w.insert(t, ctx.text.candidate_weight(t, ref_len));
        }
        for t in spec.ox_doc.terms() {
            cand_w.insert(t, ctx.text.candidate_weight(t, ref_len));
        }
        let n_u = users.iter().map(|u| ctx.text.normalizer(&u.doc)).collect();
        CandidateContext {
            ctx,
            spec,
            users,
            rsk,
            n_u,
            ref_len,
            cand_w,
        }
    }

    /// Candidate weight of `t` (0 for terms outside `W ∪ ox.d`).
    #[inline]
    pub fn cw(&self, t: TermId) -> f64 {
        self.cand_w.get(&t).copied().unwrap_or(0.0)
    }

    /// True when user `u` could ever find `ox` relevant: `u.d` shares a
    /// term with `ox.d ∪ W` (the paper's relevance precondition).
    pub fn user_reachable(&self, u: usize) -> bool {
        let doc = &self.users[u].doc;
        doc.overlaps(&self.spec.ox_doc) || self.spec.keywords.iter().any(|&t| doc.contains(t))
    }

    /// Sum of the `ws` largest candidate weights among `terms` (Lemma 3's
    /// `Wh` / `Wu` construction).
    pub fn top_ws_weight_sum(&self, terms: impl Iterator<Item = TermId>) -> f64 {
        let mut ws: Vec<f64> = terms.map(|t| self.cw(t)).filter(|&w| w > 0.0).collect();
        ws.sort_by(|a, b| b.total_cmp(a));
        ws.truncate(self.spec.ws);
        ws.iter().sum()
    }

    /// `UBL(ℓ, g)` (§6.1): upper bound on `STS(ox@ℓ, u)` over every user in
    /// `g` and every admissible keyword choice.
    pub fn ubl_group(&self, loc: &Point, group: &UserGroup) -> f64 {
        let ss = self.ctx.spatial.min_ss_point(loc, &group.mbr);
        // Existing text: terms of ox.d visible to some user in the group.
        let fixed: f64 = self
            .spec
            .ox_doc
            .terms()
            .filter(|&t| group.d_uni.contains(t))
            .map(|t| self.cw(t))
            .sum();
        // Lemma 3: at best the ws highest-weight candidates from W∩dUni.
        let added = self.top_ws_weight_sum(
            self.spec
                .keywords
                .iter()
                .copied()
                .filter(|&t| group.d_uni.contains(t) && !self.spec.ox_doc.contains(t)),
        );
        self.ctx.combine(ss, group.ts_upper(fixed + added))
    }

    /// `UBL(ℓ, u)` (§6.1): per-user upper bound.
    pub fn ubl_user(&self, loc: &Point, u: usize) -> f64 {
        self.ubl_user_data(loc, &self.users[u], self.n_u[u])
    }

    /// [`CandidateContext::ubl_user`] for a user outside the context's
    /// slice (the §7 pipeline discovers users dynamically from the
    /// MIUR-tree).
    pub fn ubl_user_data(&self, loc: &Point, user: &UserData, n_u: f64) -> f64 {
        let ss = self.ctx.spatial.ss_points(loc, &user.point);
        let fixed: f64 = self
            .spec
            .ox_doc
            .terms()
            .filter(|&t| user.doc.contains(t))
            .map(|t| self.cw(t))
            .sum();
        let added = self.top_ws_weight_sum(
            self.spec
                .keywords
                .iter()
                .copied()
                .filter(|&t| user.doc.contains(t) && !self.spec.ox_doc.contains(t)),
        );
        let ts = if n_u > 0.0 {
            ((fixed + added) / n_u).min(1.0)
        } else {
            0.0
        };
        self.ctx.combine(ss, ts)
    }

    /// `LBL(ℓ, g)` (§6.1): guaranteed score for every user in `g` with the
    /// *original* text `ox.d` only.
    pub fn lbl_group(&self, loc: &Point, group: &UserGroup) -> f64 {
        let ss = self.ctx.spatial.max_ss_point(loc, &group.mbr);
        let fixed: f64 = self
            .spec
            .ox_doc
            .terms()
            .filter(|&t| group.d_int.contains(t))
            .map(|t| self.cw(t))
            .sum();
        self.ctx.combine(ss, group.ts_lower(fixed))
    }

    /// `LBL(ℓ, u)`: the user's exact score with the original `ox.d` —
    /// a lower bound for any keyword addition (monotone candidate weights).
    pub fn lbl_user(&self, loc: &Point, u: usize) -> f64 {
        self.sts_candidate(loc, &self.spec.ox_doc, u)
    }

    /// Exact `STS` of `ox` placed at `loc` with text `cand`, for user `u`,
    /// at the candidate reference length.
    pub fn sts_candidate(&self, loc: &Point, cand: &Document, u: usize) -> f64 {
        self.sts_candidate_data(loc, cand, &self.users[u], self.n_u[u])
    }

    /// [`CandidateContext::sts_candidate`] for a user outside the slice.
    pub fn sts_candidate_data(
        &self,
        loc: &Point,
        cand: &Document,
        user: &UserData,
        n_u: f64,
    ) -> f64 {
        let ss = self.ctx.spatial.ss_points(loc, &user.point);
        let ts = if n_u > 0.0 {
            let sum: f64 = user
                .doc
                .terms()
                .filter(|&t| cand.contains(t))
                .map(|t| self.cw(t))
                .sum();
            (sum / n_u).min(1.0)
        } else {
            0.0
        };
        self.ctx.combine(ss, ts)
    }

    /// True when user `u` is a BRSTkNN of `⟨loc, cand⟩`: textual overlap
    /// plus `STS ≥ RSk(u)`.
    pub fn qualifies(&self, loc: &Point, cand: &Document, u: usize) -> bool {
        self.users[u].doc.overlaps(cand) && self.sts_candidate(loc, cand, u) >= self.rsk[u]
    }

    /// The BRSTkNN user set of `⟨loc, cand⟩` restricted to `candidates`
    /// (user indices).
    pub fn brstknn(&self, loc: &Point, cand: &Document, candidates: &[usize]) -> Vec<u32> {
        candidates
            .iter()
            .copied()
            .filter(|&u| self.qualifies(loc, cand, u))
            .map(|u| self.users[u].id)
            .collect()
    }

    /// The query text with extra keywords: `ox.d ∪ extra`.
    pub fn with_keywords(&self, extra: &[TermId]) -> Document {
        self.spec.ox_doc.with_terms(extra.iter().copied())
    }
}

#[cfg(test)]
pub(crate) mod test_fixture {
    use super::*;
    use geo::{Rect, SpatialContext};
    use text::{TextScorer, WeightModel};

    pub(crate) fn t(i: u32) -> TermId {
        TermId(i)
    }

    pub(crate) struct Fix {
        pub ctx: ScoreContext,
        pub users: Vec<UserData>,
        pub spec: QuerySpec,
        pub rsk: Vec<f64>,
    }

    /// A small, fully-deterministic selection scenario used across the
    /// select tests: 6 users on a line, KO relevance, candidate keywords
    /// t0..t3, ox.d = {t4} shared by everyone.
    pub(crate) fn fixture() -> Fix {
        let docs: Vec<Document> = (0..10)
            .map(|i| Document::from_terms([t(i % 4), t(4)]))
            .collect();
        let text = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let users: Vec<UserData> = (0..6)
            .map(|i| UserData {
                id: i,
                point: Point::new(i as f64, 1.0),
                doc: Document::from_terms([t(i % 4), t(4)]),
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let ctx = ScoreContext::new(0.5, SpatialContext::from_dataspace(&space), text);
        let spec = QuerySpec {
            ox_doc: Document::from_terms([t(4)]),
            locations: vec![Point::new(2.0, 1.0), Point::new(8.0, 8.0)],
            keywords: vec![t(0), t(1), t(2), t(3)],
            ws: 2,
            k: 2,
        };
        let rsk = vec![0.6; 6];
        Fix {
            ctx,
            users,
            spec,
            rsk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixture::{fixture, t};
    use super::*;

    #[test]
    fn ubl_user_dominates_every_keyword_choice() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let loc = f.spec.locations[0];
        let kws = &f.spec.keywords;
        for u in 0..f.users.len() {
            let ub = cc.ubl_user(&loc, u);
            for i in 0..kws.len() {
                for j in (i + 1)..kws.len() {
                    let cand = cc.with_keywords(&[kws[i], kws[j]]);
                    let s = cc.sts_candidate(&loc, &cand, u);
                    assert!(s <= ub + 1e-9, "user {u}: {s} > UBL {ub}");
                }
            }
        }
    }

    #[test]
    fn ubl_group_dominates_ubl_user() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let group = UserGroup::from_users(&f.users, &f.ctx.text);
        for loc in &f.spec.locations {
            let g = cc.ubl_group(loc, &group);
            for u in 0..f.users.len() {
                assert!(cc.ubl_user(loc, u) <= g + 1e-9);
            }
        }
    }

    #[test]
    fn lbl_user_is_a_lower_bound() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let loc = f.spec.locations[0];
        for u in 0..f.users.len() {
            let lb = cc.lbl_user(&loc, u);
            for &kw in &f.spec.keywords {
                let cand = cc.with_keywords(&[kw]);
                assert!(cc.sts_candidate(&loc, &cand, u) >= lb - 1e-9);
            }
        }
    }

    #[test]
    fn lbl_group_lower_bounds_every_user() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let group = UserGroup::from_users(&f.users, &f.ctx.text);
        for loc in &f.spec.locations {
            let g = cc.lbl_group(loc, &group);
            for u in 0..f.users.len() {
                assert!(cc.lbl_user(loc, u) >= g - 1e-9);
            }
        }
    }

    #[test]
    fn qualifies_requires_overlap() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let cand = Document::from_terms([t(99)]);
        let loc = f.users[0].point;
        assert!(!cc.qualifies(&loc, &cand, 0));
    }

    #[test]
    fn reachability() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        for u in 0..f.users.len() {
            assert!(cc.user_reachable(u)); // everyone shares t4 with ox.d
        }
    }

    #[test]
    fn top_ws_sum_takes_largest() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        // KO: every candidate weight is 1, ws=2 → sum 2.
        let sum = cc.top_ws_weight_sum(f.spec.keywords.iter().copied());
        assert!((sum - 2.0).abs() < 1e-12);
    }
}
