//! §4 baseline candidate selection: exhaustive enumeration.
//!
//! Generates every combination of exactly `ws` keywords from `W` and
//! considers every ⟨location, combination⟩ tuple against all users — no
//! bounds, no pruning, no best-first ordering. This is the comparison
//! point for the candidate-selection runtimes in Figs. 5c–14c.
//!
//! The enumeration is semantically exhaustive but *scored incrementally*:
//! per location the `ox.d`-only verdict is computed once per user, and
//! each combination then re-evaluates only the users holding one of its
//! keywords (via the crate-private `DeltaScan`) — every untouched user's
//! score is bit-identical to the `ox.d`-only one, so the counts (and the
//! winning tuple) are exactly those of the naive full rescan.

use crate::arena::SelectScratch;
use crate::select::CandidateContext;
use crate::QueryResult;

/// Exhaustive ⟨ℓ, c⟩ scan. Returns the best tuple (exact result, like
/// Algorithm 4, but at full enumeration cost).
///
/// # Panics
/// Panics when the query has no candidate locations.
pub fn baseline_select(cc: &CandidateContext<'_>) -> QueryResult {
    let mut sel = SelectScratch::default();
    let mut out = QueryResult::default();
    baseline_select_into(cc, &mut sel, &mut out);
    out
}

/// [`baseline_select`] into arena scratch: the winning tuple lands in
/// `out`, and every buffer the scan touches comes from `sel`.
///
/// # Panics
/// Panics when the query has no candidate locations.
pub(crate) fn baseline_select_into(
    cc: &CandidateContext<'_>,
    sel: &mut SelectScratch,
    out: &mut QueryResult,
) {
    assert!(
        !cc.spec.locations.is_empty(),
        "MaxBRSTkNN requires at least one candidate location"
    );
    out.clear();

    let SelectScratch {
        lu_bufs,
        ss,
        cand,
        users_out,
        kw,
        combos,
        combo_kw,
        delta,
        ..
    } = sel;
    if lu_bufs.is_empty() {
        lu_bufs.push(Vec::new());
    }
    let all_users = &mut lu_bufs[0];
    all_users.clear();
    all_users.extend(0..cc.users.len());

    // All combinations of exactly ws keywords (or all of W when smaller —
    // the baseline returns exactly ws keywords per the paper).
    let k = cc.spec.ws.min(cc.spec.keywords.len());

    if k == 0 {
        // The single (empty) combination per location.
        for (li, loc) in cc.spec.locations.iter().enumerate() {
            cc.fill_ss(loc, all_users, ss);
            cand.assign_with_terms(&cc.spec.ox_doc, &[]);
            cc.brstknn_into(cand, all_users, ss, users_out);
            if users_out.len() > out.brstknn.len() {
                out.location = li;
                out.keywords.clear();
                std::mem::swap(users_out, &mut out.brstknn);
            }
        }
        return;
    }

    // The holder rows are location-independent; build them once.
    delta.build(cc, &cc.spec.keywords, all_users, 0..all_users.len());
    kw.clear();
    let mut best_count = 0usize;
    let mut best_li = 0usize;
    for (li, loc) in cc.spec.locations.iter().enumerate() {
        cc.fill_ss(loc, all_users, ss);
        // ⟨ℓ, ox.d⟩ verdict per user: every combination's count is this
        // baseline plus a delta over the holders of its keywords.
        delta.q0.clear();
        let mut count0 = 0usize;
        for (pos, &u) in all_users.iter().enumerate() {
            let q = cc.qualifies_with_ss(ss[pos], &cc.spec.ox_doc, u);
            delta.q0.push(q);
            count0 += q as usize;
        }
        combos.reset(cc.spec.keywords.len(), k);
        while let Some(ix) = combos.next_ref() {
            // A combination can move at most its holders' verdicts.
            if count0 + delta.potential(ix.iter().copied()) <= best_count {
                continue;
            }
            let touched = delta.gather(ix.iter().copied());
            if count0 + touched <= best_count {
                continue;
            }
            combo_kw.clear();
            combo_kw.extend(ix.iter().map(|&i| cc.spec.keywords[i]));
            cand.assign_with_terms(&cc.spec.ox_doc, combo_kw);
            let mut count = count0;
            for &p in delta.touched() {
                let p = p as usize;
                let q1 = cc.qualifies_with_ss(ss[p], cand, all_users[p]);
                if q1 && !delta.q0[p] {
                    count += 1;
                } else if !q1 && delta.q0[p] {
                    count -= 1;
                }
            }
            if count > best_count {
                best_count = count;
                best_li = li;
                kw.clear();
                kw.extend_from_slice(combo_kw);
            }
        }
    }

    // Materialize the winner once (the scan above only counted).
    if best_count > 0 {
        out.location = best_li;
        out.keywords.extend_from_slice(kw);
        cc.fill_ss(&cc.spec.locations[best_li], all_users, ss);
        cand.assign_with_terms(&cc.spec.ox_doc, kw);
        cc.brstknn_into(cand, all_users, ss, users_out);
        std::mem::swap(users_out, &mut out.brstknn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::location::{select_candidate, KeywordSelector};
    use crate::select::test_fixture::fixture;
    use crate::select::CandidateContext;
    use crate::UserGroup;

    #[test]
    fn baseline_agrees_with_exact_algorithm() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let b = baseline_select(&cc);
        let e = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert_eq!(b.cardinality(), e.cardinality());
    }

    #[test]
    fn baseline_returns_exactly_ws_keywords() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let b = baseline_select(&cc);
        assert_eq!(b.keywords.len(), f.spec.ws);
    }

    /// The delta-scan enumeration must reproduce the naive full rescan —
    /// winning tuple and member list — on messy random instances
    /// (duplicate keywords, unreachable users, LM weights).
    #[test]
    fn baseline_matches_naive_rescan_on_random_instances() {
        use crate::select::exact::Combinations;
        use crate::select::test_fixture::random_fixture;
        for seed in 0..4 {
            let f = random_fixture(seed, 48, 9);
            let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
            let got = baseline_select(&cc);

            let all: Vec<usize> = (0..f.users.len()).collect();
            let k = f.spec.ws.min(f.spec.keywords.len());
            let mut best = QueryResult::default();
            for (li, loc) in f.spec.locations.iter().enumerate() {
                for ix in Combinations::new(f.spec.keywords.len(), k) {
                    let kw: Vec<_> = ix.iter().map(|&i| f.spec.keywords[i]).collect();
                    let cand = cc.with_keywords(&kw);
                    let users = cc.brstknn(loc, &cand, &all);
                    if users.len() > best.brstknn.len() {
                        best.location = li;
                        best.keywords = kw;
                        best.brstknn = users;
                    }
                }
            }
            assert_eq!(got.location, best.location, "seed {seed}");
            assert_eq!(got.keywords, best.keywords, "seed {seed}");
            assert_eq!(got.brstknn, best.brstknn, "seed {seed}");
        }
    }

    #[test]
    fn baseline_with_empty_keyword_set() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.keywords.clear();
        spec.ws = 0;
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let b = baseline_select(&cc);
        // Only ox.d's own terms can attract users.
        assert!(b.keywords.is_empty());
    }
}
