//! §4 baseline candidate selection: exhaustive enumeration.
//!
//! Generates every combination of exactly `ws` keywords from `W`, and for
//! every ⟨location, combination⟩ tuple scores *all* users — no bounds, no
//! pruning, no best-first ordering. This is the comparison point for the
//! candidate-selection runtimes in Figs. 5c–14c.

use text::TermId;

use crate::select::exact::Combinations;
use crate::select::CandidateContext;
use crate::QueryResult;

/// Exhaustive ⟨ℓ, c⟩ scan. Returns the best tuple (exact result, like
/// Algorithm 4, but at full enumeration cost).
///
/// # Panics
/// Panics when the query has no candidate locations.
pub fn baseline_select(cc: &CandidateContext<'_>) -> QueryResult {
    assert!(
        !cc.spec.locations.is_empty(),
        "MaxBRSTkNN requires at least one candidate location"
    );
    let all_users: Vec<usize> = (0..cc.users.len()).collect();

    // All combinations of exactly ws keywords (or all of W when smaller —
    // the baseline returns exactly ws keywords per the paper).
    let k = cc.spec.ws.min(cc.spec.keywords.len());
    let combos: Vec<Vec<TermId>> = if k == 0 {
        vec![Vec::new()]
    } else {
        Combinations::new(cc.spec.keywords.len(), k)
            .map(|ix| ix.iter().map(|&i| cc.spec.keywords[i]).collect())
            .collect()
    };

    let mut best = QueryResult {
        location: 0,
        keywords: Vec::new(),
        brstknn: Vec::new(),
    };
    for (li, loc) in cc.spec.locations.iter().enumerate() {
        for combo in &combos {
            let cand = cc.with_keywords(combo);
            let users = cc.brstknn(loc, &cand, &all_users);
            if users.len() > best.cardinality() {
                best = QueryResult {
                    location: li,
                    keywords: combo.clone(),
                    brstknn: users,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::location::{select_candidate, KeywordSelector};
    use crate::select::test_fixture::fixture;
    use crate::select::CandidateContext;
    use crate::UserGroup;

    #[test]
    fn baseline_agrees_with_exact_algorithm() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let su = UserGroup::from_users(&f.users, &f.ctx.text);
        let b = baseline_select(&cc);
        let e = select_candidate(&cc, &su, f64::NEG_INFINITY, KeywordSelector::Exact);
        assert_eq!(b.cardinality(), e.cardinality());
    }

    #[test]
    fn baseline_returns_exactly_ws_keywords() {
        let f = fixture();
        let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &f.rsk);
        let b = baseline_select(&cc);
        assert_eq!(b.keywords.len(), f.spec.ws);
    }

    #[test]
    fn baseline_with_empty_keyword_set() {
        let f = fixture();
        let mut spec = f.spec.clone();
        spec.keywords.clear();
        spec.ws = 0;
        let cc = CandidateContext::new(&f.ctx, &spec, &f.users, &f.rsk);
        let b = baseline_select(&cc);
        // Only ox.d's own terms can attract users.
        assert!(b.keywords.is_empty());
    }
}
