//! Upper and lower bound estimations between index entries and user groups
//! (§5.3, Lemma 2).
//!
//! For any MIR-tree entry `E` and any user `u` in a group `g`:
//!
//! ```text
//! UB(E, g) = α·MinSS(E.l, g.mbr) + (1−α)·MaxTS(E.d, g.dUni)  ≥  STS(E, u)
//! LB(E, g) = α·MaxSS(E.l, g.mbr) + (1−α)·MinTS(E.d, g.dInt)  ≤  STS(o, u)
//!                                             for every object o under E
//! ```
//!
//! `MaxTS` sums the posting maxima over the group's union keywords;
//! `MinTS` sums the posting minima over the group's intersection keywords
//! (minima are 0 for terms missing anywhere below `E`, so absent terms
//! contribute nothing, keeping the bound sound). Normalization uses the
//! group's `n_min`/`n_max` brackets — see [`crate::UserGroup`].

use geo::Point;
use text::{TermId, WeightedDoc};

use crate::{ScoreContext, UserGroup};

/// `UB(E, g)` for a node entry: `postings` is the entry's `(term, max,
/// min)` row over the group's union terms.
pub fn ub_entry(
    ctx: &ScoreContext,
    group: &UserGroup,
    entry_rect: &geo::Rect,
    postings: &[(TermId, f64, f64)],
) -> f64 {
    let ss = ctx.spatial.min_ss(entry_rect, &group.mbr);
    let sum_max: f64 = postings.iter().map(|&(_, mx, _)| mx).sum();
    ctx.combine(ss, group.ts_upper(sum_max))
}

/// `LB(E, g)` for a node entry: sums posting *minima* restricted to the
/// group's intersection keywords.
pub fn lb_entry(
    ctx: &ScoreContext,
    group: &UserGroup,
    entry_rect: &geo::Rect,
    postings: &[(TermId, f64, f64)],
) -> f64 {
    let ss = ctx.spatial.max_ss(entry_rect, &group.mbr);
    let sum_min: f64 = postings
        .iter()
        .filter(|&&(t, _, mn)| mn > 0.0 && group.d_int.contains(t))
        .map(|&(_, _, mn)| mn)
        .sum();
    ctx.combine(ss, group.ts_lower(sum_min))
}

/// `UB(o, g)` for a retrieved object with exact weights.
pub fn ub_object(
    ctx: &ScoreContext,
    group: &UserGroup,
    point: &Point,
    weights: &WeightedDoc,
) -> f64 {
    let ss = ctx.spatial.min_ss_point(point, &group.mbr);
    // Weights are already restricted to the query-term universe (d_uni).
    let sum_max: f64 = weights.entries.iter().map(|&(_, w)| w).sum();
    ctx.combine(ss, group.ts_upper(sum_max))
}

/// `LB(o, g)` for a retrieved object with exact weights.
pub fn lb_object(
    ctx: &ScoreContext,
    group: &UserGroup,
    point: &Point,
    weights: &WeightedDoc,
) -> f64 {
    let ss = ctx.spatial.max_ss_point(point, &group.mbr);
    let sum_min: f64 = weights
        .entries
        .iter()
        .filter(|&&(t, _)| group.d_int.contains(t))
        .map(|&(_, w)| w)
        .sum();
    ctx.combine(ss, group.ts_lower(sum_min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserData;
    use geo::{Rect, SpatialContext};
    use text::{Document, TextScorer, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// Fixture: 4 objects, 3 users; checks the Lemma-2 property directly.
    fn fixture() -> (ScoreContext, Vec<Document>, Vec<UserData>) {
        let docs = vec![
            Document::from_terms([t(0), t(1)]),
            Document::from_terms([t(0)]),
            Document::from_terms([t(1), t(2)]),
            Document::from_terms([t(2)]),
        ];
        let users = vec![
            UserData {
                id: 0,
                point: Point::new(1.0, 1.0),
                doc: Document::from_terms([t(0), t(1)]),
            },
            UserData {
                id: 1,
                point: Point::new(3.0, 2.0),
                doc: Document::from_terms([t(0), t(2)]),
            },
            UserData {
                id: 2,
                point: Point::new(2.0, 4.0),
                doc: Document::from_terms([t(0), t(1), t(2)]),
            },
        ];
        let text = TextScorer::from_docs(WeightModel::lm(), &docs);
        let ctx = ScoreContext::new(0.5, SpatialContext::with_dmax(20.0), text);
        (ctx, docs, users)
    }

    #[test]
    fn object_bounds_bracket_every_user_score() {
        let (ctx, docs, users) = fixture();
        let group = UserGroup::from_users(&users, &ctx.text);
        let points = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(2.0, 2.0),
            Point::new(9.0, 1.0),
        ];
        for (d, p) in docs.iter().zip(&points) {
            let w = ctx.text.weigh(d);
            let ub = ub_object(&ctx, &group, p, &w);
            let lb = lb_object(&ctx, &group, p, &w);
            assert!(lb <= ub + 1e-12);
            for u in &users {
                let n_u = ctx.text.normalizer(&u.doc);
                let sts = ctx.sts(p, &w, u, n_u);
                assert!(sts <= ub + 1e-9, "UB violated: {sts} > {ub}");
                assert!(sts >= lb - 1e-9, "LB violated: {sts} < {lb}");
            }
        }
    }

    #[test]
    fn entry_bounds_dominate_object_bounds() {
        // A synthetic node entry covering two objects: its postings carry
        // the max/min of the two docs; its rect covers both points.
        let (ctx, docs, users) = fixture();
        let group = UserGroup::from_users(&users, &ctx.text);
        let w0 = ctx.text.weigh(&docs[0]);
        let w1 = ctx.text.weigh(&docs[1]);
        let p0 = Point::new(0.0, 0.0);
        let p1 = Point::new(5.0, 5.0);
        let rect = Rect::bounding([p0, p1]).unwrap();

        // Build the entry's (term, max, min) row for the union terms.
        let uni = group.uni_terms();
        let mut postings = Vec::new();
        for &term in &uni {
            let a = w0.weight(term);
            let b = w1.weight(term);
            let mx = a.max(b);
            let mn = if a > 0.0 && b > 0.0 { a.min(b) } else { 0.0 };
            if mx > 0.0 {
                postings.push((term, mx, mn));
            }
        }

        let ub_e = ub_entry(&ctx, &group, &rect, &postings);
        let lb_e = lb_entry(&ctx, &group, &rect, &postings);
        for (p, w) in [(p0, &w0), (p1, &w1)] {
            assert!(ub_object(&ctx, &group, &p, w) <= ub_e + 1e-9);
            // LB(entry) lower-bounds every contained object's true scores.
            for u in &users {
                let n_u = ctx.text.normalizer(&u.doc);
                assert!(ctx.sts(&p, w, u, n_u) >= lb_e - 1e-9);
            }
        }
        assert!(lb_e <= ub_e + 1e-12);
    }

    #[test]
    fn empty_postings_fall_back_to_spatial() {
        let (ctx, _, users) = fixture();
        let group = UserGroup::from_users(&users, &ctx.text);
        let rect = Rect::from_point(Point::new(2.0, 2.0));
        let ub = ub_entry(&ctx, &group, &rect, &[]);
        let lb = lb_entry(&ctx, &group, &rect, &[]);
        // Purely spatial component remains.
        assert!(ub > 0.0);
        assert!(lb >= 0.0);
        assert!(lb <= ub);
    }
}
