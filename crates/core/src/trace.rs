//! Phase-level query tracing ([`Trace`], [`PhaseBreakdown`]).
//!
//! Every built-in [`crate::QueryStrategy`] splits into the same two
//! phases: a **top-k** phase (per-user `RSk` thresholds — Algorithms 1+2,
//! the §4 baseline scan, or the §7 seed) and a **selection** phase
//! (everything after: candidate locations, keyword selection, result
//! materialization). The [`Trace`] scratch lives in the
//! [`crate::QueryArena`]; a strategy re-arms it when execution starts and
//! stamps each phase boundary, and the engine surfaces the result as
//! [`crate::QueryStats`]`::phases`.
//!
//! Stamping takes *consecutive deltas* of the wall clock and of the
//! calling thread's I/O mirror ([`IoStats::thread_snapshot`]) — so the
//! per-phase I/O numbers **partition** the query's total exactly: for a
//! built-in strategy, `phases[TopK].io + phases[Select].io` equals the
//! query's `QueryStats.io` charge for charge. Everything is `Copy` and
//! fixed-size; tracing allocates nothing (see `tests/alloc_free.rs`).

use std::time::Instant;

use storage::{IoSnapshot, IoStats};

/// Number of phases every query decomposes into.
pub const PHASE_COUNT: usize = 2;

/// A query phase (the array index into [`PhaseBreakdown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Per-user top-k thresholds: joint MIR traversal + individual top-k,
    /// the §4 baseline all-users scan, or the §7 user-index seed.
    TopK = 0,
    /// Candidate-location and keyword selection over the thresholds.
    Select = 1,
}

impl Phase {
    /// Both phases, in execution order.
    pub const ALL: [Phase; PHASE_COUNT] = [Phase::TopK, Phase::Select];

    /// Stable lowercase name (used as a metric label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::TopK => "topk",
            Phase::Select => "select",
        }
    }
}

/// Wall time and exact simulated I/O charged by one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Wall-clock nanoseconds spent in the phase on the query's thread.
    pub nanos: u64,
    /// Simulated I/O charged during the phase (per-thread exact delta).
    pub io: IoSnapshot,
}

/// Per-phase cost of one query; `phases[TopK] + phases[Select]`
/// partitions the query's total I/O exactly for built-in strategies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    stats: [PhaseStat; PHASE_COUNT],
}

impl PhaseBreakdown {
    /// The cost of one phase.
    #[inline]
    pub fn get(&self, phase: Phase) -> PhaseStat {
        self.stats[phase as usize]
    }

    /// `(phase, cost)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseStat)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.get(p)))
    }

    /// Total traced wall-clock nanoseconds (sum over phases).
    pub fn total_nanos(&self) -> u64 {
        self.stats.iter().map(|s| s.nanos).sum()
    }

    /// Total traced I/O (sum over phases); equals the query's
    /// `QueryStats.io` for built-in strategies.
    pub fn total_io(&self) -> IoSnapshot {
        self.stats.iter().map(|s| s.io).sum()
    }

    /// Folds another breakdown in phase-wise (for batch aggregation).
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        for (a, b) in self.stats.iter_mut().zip(other.stats.iter()) {
            a.nanos = a.nanos.saturating_add(b.nanos);
            a.io = a.io + b.io;
        }
    }
}

/// The arena-owned tracing scratch each strategy stamps.
///
/// `arm()` zeroes the breakdown and baselines the clock and the thread's
/// I/O mirror; each `stamp(phase)` charges the delta since the previous
/// stamp (or the arming) to `phase` and re-baselines. Stamping the same
/// phase twice accumulates — a custom strategy that delegates to two
/// built-in strategies reports the union of their phases.
#[derive(Debug)]
pub struct Trace {
    mark: Instant,
    mark_io: IoSnapshot,
    breakdown: PhaseBreakdown,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            mark: Instant::now(),
            mark_io: IoSnapshot::default(),
            breakdown: PhaseBreakdown::default(),
        }
    }
}

impl Trace {
    /// Zeroes the breakdown and baselines time + thread I/O. Built-in
    /// strategies call this on entry to `execute`.
    #[inline]
    pub fn arm(&mut self) {
        self.breakdown = PhaseBreakdown::default();
        self.mark = Instant::now();
        self.mark_io = IoStats::thread_snapshot();
    }

    /// Charges everything since the last stamp (or [`Trace::arm`]) to
    /// `phase`, then re-baselines.
    #[inline]
    pub fn stamp(&mut self, phase: Phase) {
        let now = Instant::now();
        let io = IoStats::thread_snapshot();
        let slot = &mut self.breakdown.stats[phase as usize];
        slot.nanos = slot
            .nanos
            .saturating_add(now.duration_since(self.mark).as_nanos() as u64);
        slot.io = slot.io + (io - self.mark_io);
        self.mark = now;
        self.mark_io = io;
    }

    /// The breakdown of the most recently traced query.
    #[inline]
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_partition_and_accumulate() {
        let mut tr = Trace::default();
        tr.arm();
        tr.stamp(Phase::TopK);
        tr.stamp(Phase::Select);
        tr.stamp(Phase::Select); // double stamp accumulates, not replaces
        let bd = tr.breakdown();
        assert_eq!(
            bd.total_io(),
            bd.get(Phase::TopK).io + bd.get(Phase::Select).io
        );
        assert_eq!(
            bd.total_nanos(),
            bd.get(Phase::TopK).nanos + bd.get(Phase::Select).nanos
        );

        let mut sum = PhaseBreakdown::default();
        sum.accumulate(&bd);
        sum.accumulate(&bd);
        assert_eq!(sum.get(Phase::TopK).nanos, 2 * bd.get(Phase::TopK).nanos);
    }

    #[test]
    fn arm_resets_between_queries() {
        let mut tr = Trace::default();
        tr.arm();
        tr.stamp(Phase::TopK);
        tr.arm();
        assert_eq!(tr.breakdown(), PhaseBreakdown::default());
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::TopK.name(), "topk");
        assert_eq!(Phase::Select.name(), "select");
        assert_eq!(Phase::ALL.len(), PHASE_COUNT);
    }
}
