//! The bichromatic data model and query specification (Definition 1).

use geo::Point;
use text::{Document, TermId};

/// An object `o ∈ O`: a location and a text description.
#[derive(Debug, Clone)]
pub struct ObjectData {
    /// Dense object id (position in the object table).
    pub id: u32,
    /// Location `o.l`.
    pub point: Point,
    /// Text description `o.d`.
    pub doc: Document,
}

/// A user `u ∈ U`: a location and a keyword set.
#[derive(Debug, Clone)]
pub struct UserData {
    /// Dense user id (position in the user table).
    pub id: u32,
    /// Location `u.l`.
    pub point: Point,
    /// Keyword set `u.d`.
    pub doc: Document,
}

/// A `MaxBRSTkNN(ox, L, W, ws, k)` query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Existing text description of the query object `ox` (may be empty).
    pub ox_doc: Document,
    /// Candidate locations `L`.
    pub locations: Vec<Point>,
    /// Candidate keywords `W`.
    pub keywords: Vec<TermId>,
    /// Maximum number of candidate keywords to pick (`ws ≤ |W|`).
    pub ws: usize,
    /// Number of relevant objects considered per user (`k`).
    pub k: usize,
}

impl QuerySpec {
    /// Reference keyword-set length used when weighing candidate documents:
    /// the final ad can hold `|ox.d| + ws` distinct keywords.
    pub fn ref_len(&self) -> u64 {
        (self.ox_doc.num_terms() + self.ws).max(1) as u64
    }
}

/// The answer to a `MaxBRSTkNN` query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryResult {
    /// Index into [`QuerySpec::locations`] of the chosen location `ℓ`.
    pub location: usize,
    /// The chosen keyword set `W'` (ascending; may be smaller than `ws`,
    /// and empty when the location alone already wins every reachable user).
    pub keywords: Vec<TermId>,
    /// Ids of the users whose BRSTkNN contains `ox` at the chosen tuple.
    pub brstknn: Vec<u32>,
}

impl QueryResult {
    /// The optimization objective: `|BRSTkNN|` of the chosen tuple.
    pub fn cardinality(&self) -> usize {
        self.brstknn.len()
    }

    /// Resets to the empty answer at location 0, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.location = 0;
        self.keywords.clear();
        self.brstknn.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_len_accounts_for_existing_text() {
        let spec = QuerySpec {
            ox_doc: Document::from_terms([TermId(1), TermId(2)]),
            locations: vec![Point::new(0.0, 0.0)],
            keywords: vec![TermId(3)],
            ws: 3,
            k: 1,
        };
        assert_eq!(spec.ref_len(), 5);
    }

    #[test]
    fn ref_len_never_zero() {
        let spec = QuerySpec {
            ox_doc: Document::new(),
            locations: vec![],
            keywords: vec![],
            ws: 0,
            k: 1,
        };
        assert_eq!(spec.ref_len(), 1);
    }
}
