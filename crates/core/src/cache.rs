//! Cross-query top-k threshold cache — the serving-side complement of the
//! paper's per-query algorithms.
//!
//! Every built-in [`QueryStrategy`](crate::pipeline::QueryStrategy) starts
//! by computing per-user `RSk` thresholds (the top-k phase: `joint_topk` +
//! `individual_topk`, or the §4 baseline, or the §7 root traversal). Those
//! thresholds depend only on the engine and `k` — not on the query's
//! candidate locations or keywords — yet a naive server recomputes them
//! for every query. [`ThresholdCache`] memoizes them per `k` so a batch of
//! same-`k` queries pays the top-k phase (and its simulated I/O) exactly
//! once.
//!
//! The cache is opt-in ([`Engine::with_threshold_cache`]) because it
//! changes what the paper's *cold* experiments measure: with it enabled,
//! only the first query of a given `k` charges top-k I/O. Entries are
//! filled through a blocking once-cell per `k`, so concurrent batch
//! workers asking for the same `k` compute it exactly once — the unlucky
//! first worker is charged the I/O, everyone else waits and gets it free
//! (see the warm-accounting note on
//! [`Engine::query_batch`](crate::Engine::query_batch)).
//!
//! [`Engine::with_threshold_cache`]: crate::Engine::with_threshold_cache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::topk::{TopkOutcome, UserTopk};
use crate::user_index::UserIndexSeed;
use crate::UserGroup;

/// The joint top-k phase output shared by the §5+§6 strategies: the
/// super-user, the Algorithm-1 traversal outcome and every user's
/// Algorithm-2 refinement.
#[derive(Debug)]
pub struct JointThresholds {
    /// The super-user the traversal ran for (carried so consumers don't
    /// recompute the O(users) group summary).
    pub su: Arc<UserGroup>,
    /// `LO`, `RO` and `RSk(us)` from the Algorithm-1 traversal.
    pub out: TopkOutcome,
    /// Per-user top-k results (Algorithm 2), in user-table order.
    pub tks: Vec<UserTopk>,
    /// `RSk(u)` per user, in user-table order (extracted from `tks`).
    pub rsk: Vec<f64>,
}

/// A per-`k` map of blocking once-cells: the first caller computes, every
/// concurrent caller for the same `k` blocks on the cell and shares the
/// `Arc`.
#[derive(Debug)]
struct KeyedOnce<T> {
    map: RwLock<HashMap<usize, Arc<OnceLock<Arc<T>>>>>,
}

impl<T> KeyedOnce<T> {
    fn new() -> Self {
        KeyedOnce {
            map: RwLock::new(HashMap::new()),
        }
    }

    fn get_or_compute(
        &self,
        k: usize,
        hits: &AtomicU64,
        misses: &AtomicU64,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        let cell = {
            let read = self.map.read().unwrap();
            read.get(&k).cloned()
        };
        let cell = match cell {
            Some(c) => c,
            None => self
                .map
                .write()
                .unwrap()
                .entry(k)
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone(),
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                Arc::new(compute())
            })
            .clone();
        if computed {
            misses.fetch_add(1, Ordering::Relaxed);
        } else {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    fn clear(&self) {
        self.map.write().unwrap().clear();
    }
}

/// Thread-safe memo of the `(engine, k)`-dependent top-k phase outputs.
/// See the module docs for semantics and opt-in.
#[derive(Debug)]
pub struct ThresholdCache {
    joint: KeyedOnce<JointThresholds>,
    baseline: KeyedOnce<Vec<UserTopk>>,
    user_index: KeyedOnce<UserIndexSeed>,
    su: RwLock<Option<Arc<UserGroup>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ThresholdCache {
    /// An empty cache.
    pub fn new() -> Self {
        ThresholdCache {
            joint: KeyedOnce::new(),
            baseline: KeyedOnce::new(),
            user_index: KeyedOnce::new(),
            su: RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lookups served from the cache so far (across all three maps).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (across all three maps).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached entry, including the memoized super-user (the
    /// counters keep running). Required after any future mutation of the
    /// engine's data — see ROADMAP "Open items" on invalidation.
    pub fn clear(&self) {
        self.joint.clear();
        self.baseline.clear();
        self.user_index.clear();
        *self.su.write().unwrap() = None;
    }

    pub(crate) fn joint(
        &self,
        k: usize,
        compute: impl FnOnce() -> JointThresholds,
    ) -> Arc<JointThresholds> {
        self.joint
            .get_or_compute(k, &self.hits, &self.misses, compute)
    }

    pub(crate) fn baseline(
        &self,
        k: usize,
        compute: impl FnOnce() -> Vec<UserTopk>,
    ) -> Arc<Vec<UserTopk>> {
        self.baseline
            .get_or_compute(k, &self.hits, &self.misses, compute)
    }

    pub(crate) fn user_index(
        &self,
        k: usize,
        compute: impl FnOnce() -> UserIndexSeed,
    ) -> Arc<UserIndexSeed> {
        self.user_index
            .get_or_compute(k, &self.hits, &self.misses, compute)
    }

    pub(crate) fn super_user(&self, compute: impl FnOnce() -> UserGroup) -> Arc<UserGroup> {
        if let Some(su) = self.su.read().unwrap().clone() {
            return su;
        }
        let mut slot = self.su.write().unwrap();
        if let Some(su) = &*slot {
            return su.clone();
        }
        // Computed under the write lock: the group summary is CPU-only
        // (no I/O charges), so briefly serializing racers is fine and
        // guarantees a single computation.
        let su = Arc::new(compute());
        *slot = Some(su.clone());
        su
    }
}

impl Default for ThresholdCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_value() {
        let tc = ThresholdCache::new();
        let a = tc.baseline(3, Vec::new);
        let b = tc.baseline(3, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tc.hits(), 1);
        assert_eq!(tc.misses(), 1);
    }

    #[test]
    fn distinct_k_compute_independently() {
        let tc = ThresholdCache::new();
        tc.baseline(1, Vec::new);
        tc.baseline(2, Vec::new);
        assert_eq!(tc.misses(), 2);
        assert_eq!(tc.hits(), 0);
    }

    #[test]
    fn clear_forces_recompute() {
        let tc = ThresholdCache::new();
        tc.baseline(1, Vec::new);
        tc.clear();
        tc.baseline(1, Vec::new);
        assert_eq!(tc.misses(), 2);
    }

    fn dummy_group() -> UserGroup {
        UserGroup::from_node_entry(
            geo::Rect::new(geo::Point::new(0.0, 0.0), geo::Point::new(1.0, 1.0)),
            &[],
            &[],
            1,
            1.0,
            1.0,
        )
    }

    /// `clear` must drop the memoized super-user too — a stale group after
    /// a (future) data mutation would silently corrupt pruning bounds.
    #[test]
    fn clear_drops_memoized_super_user() {
        let tc = ThresholdCache::new();
        let a = tc.super_user(dummy_group);
        let b = tc.super_user(|| panic!("memoized"));
        assert!(Arc::ptr_eq(&a, &b));
        tc.clear();
        let c = tc.super_user(dummy_group);
        assert!(!Arc::ptr_eq(&a, &c), "cleared cell must recompute");
    }

    /// Concurrent same-k lookups compute exactly once: every other worker
    /// blocks on the once-cell and shares the Arc.
    #[test]
    fn concurrent_lookups_compute_exactly_once() {
        let tc = ThresholdCache::new();
        let computes = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (tc, computes) = (&tc, &computes);
                s.spawn(move || {
                    tc.baseline(7, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        Vec::new()
                    });
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        assert_eq!(tc.misses(), 1);
        assert_eq!(tc.hits(), 7);
    }
}
