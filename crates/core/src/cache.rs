//! Cross-query top-k threshold cache — the serving-side complement of the
//! paper's per-query algorithms.
//!
//! Every built-in [`QueryStrategy`](crate::pipeline::QueryStrategy) starts
//! by computing per-user `RSk` thresholds (the top-k phase: `joint_topk` +
//! `individual_topk`, or the §4 baseline, or the §7 root traversal). Those
//! thresholds depend only on the engine and `k` — not on the query's
//! candidate locations or keywords — yet a naive server recomputes them
//! for every query. [`ThresholdCache`] memoizes them per `k` so a batch of
//! same-`k` queries pays the top-k phase (and its simulated I/O) exactly
//! once.
//!
//! The cache is opt-in ([`Engine::with_threshold_cache`]) because it
//! changes what the paper's *cold* experiments measure: with it enabled,
//! only the first query of a given `k` charges top-k I/O. Entries are
//! filled through a blocking once-cell per `k`, so concurrent batch
//! workers asking for the same `k` compute it exactly once — the unlucky
//! first worker is charged the I/O, everyone else waits and gets it free
//! (see the warm-accounting note on
//! [`Engine::query_batch`](crate::Engine::query_batch)).
//!
//! Two serving-side safeguards wrap the memo:
//!
//! * **Epoch stamps.** Every slot records the engine epoch it was filled
//!   under. Mutations ([`crate::dynamic`]) bump the epoch, so a lookup
//!   that presents a newer epoch treats the slot as stale and recomputes —
//!   the invalidation signal works even if an eager clear was missed.
//! * **An LRU bound on the per-`k` maps.** A serving system facing
//!   adversarial `k` diversity must not retain a threshold set per
//!   distinct `k` forever; each map keeps at most its configured capacity
//!   ([`DEFAULT_K_CAPACITY`] unless [`ThresholdCache::with_capacity`])
//!   and evicts the least-recently-used `k`. Eviction drops the slot's
//!   once-cell from the map only — a worker blocked on (or computing
//!   into) that cell holds its own `Arc` and completes normally; nothing
//!   is poisoned.
//!
//! [`Engine::with_threshold_cache`]: crate::Engine::with_threshold_cache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::topk::{TopkOutcome, UserTopk};
use crate::user_index::UserIndexSeed;
use crate::UserGroup;

/// The joint top-k phase output shared by the §5+§6 strategies: the
/// super-user, the Algorithm-1 traversal outcome and every user's
/// Algorithm-2 refinement.
#[derive(Debug)]
pub struct JointThresholds {
    /// The super-user the traversal ran for (carried so consumers don't
    /// recompute the O(users) group summary).
    pub su: Arc<UserGroup>,
    /// `LO`, `RO` and `RSk(us)` from the Algorithm-1 traversal.
    pub out: TopkOutcome,
    /// Per-user top-k results (Algorithm 2), in user-table order.
    pub tks: Vec<UserTopk>,
    /// `RSk(u)` per user, in user-table order (extracted from `tks`).
    pub rsk: Vec<f64>,
}

/// Default bound on distinct `k` values retained per map (the paper
/// sweeps `k ∈ {1, 5, 10, 20, 50}`; a serving mix rarely needs more live
/// threshold sets than this at once).
pub const DEFAULT_K_CAPACITY: usize = 16;

/// One memo slot: the blocking once-cell plus the epoch it was filled
/// under and its LRU recency.
#[derive(Debug)]
struct Slot<T> {
    epoch: u64,
    last_used: AtomicU64,
    cell: Arc<OnceLock<Arc<T>>>,
}

/// A bounded per-`k` map of blocking once-cells: the first caller
/// computes, every concurrent caller for the same `(k, epoch)` blocks on
/// the cell and shares the `Arc`. Slots from older epochs are replaced on
/// access; beyond `cap` distinct `k`s the least-recently-used slot is
/// dropped (waiters keep their own `Arc` to the cell and are unaffected).
#[derive(Debug)]
struct KeyedOnce<T> {
    map: RwLock<HashMap<usize, Slot<T>>>,
    cap: usize,
    tick: AtomicU64,
}

impl<T> KeyedOnce<T> {
    fn new(cap: usize) -> Self {
        KeyedOnce {
            map: RwLock::new(HashMap::new()),
            cap: cap.max(1),
            tick: AtomicU64::new(0),
        }
    }

    fn get_or_compute(
        &self,
        k: usize,
        epoch: u64,
        hits: &AtomicU64,
        misses: &AtomicU64,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        // Fast path: a current-epoch slot already exists.
        let cell = {
            let read = self.map.read().unwrap();
            read.get(&k).and_then(|slot| {
                (slot.epoch == epoch).then(|| {
                    slot.last_used.store(now, Ordering::Relaxed);
                    slot.cell.clone()
                })
            })
        };
        let cell = match cell {
            Some(c) => c,
            None => {
                let mut map = self.map.write().unwrap();
                // Re-check under the write lock (another worker may have
                // installed the slot, or a stale one needs replacing).
                let cell = match map.get(&k) {
                    Some(slot) if slot.epoch == epoch => {
                        slot.last_used.store(now, Ordering::Relaxed);
                        slot.cell.clone()
                    }
                    _ => {
                        let cell = Arc::new(OnceLock::new());
                        map.insert(
                            k,
                            Slot {
                                epoch,
                                last_used: AtomicU64::new(now),
                                cell: cell.clone(),
                            },
                        );
                        cell
                    }
                };
                // LRU bound: evict the coldest other `k`s past capacity.
                while map.len() > self.cap {
                    let victim = map
                        .iter()
                        .filter(|&(&key, _)| key != k)
                        .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                        .map(|(&key, _)| key);
                    let Some(victim) = victim else { break };
                    map.remove(&victim);
                }
                cell
            }
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                Arc::new(compute())
            })
            .clone();
        if computed {
            misses.fetch_add(1, Ordering::Relaxed);
        } else {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    fn clear(&self) {
        self.map.write().unwrap().clear();
    }
}

/// Thread-safe memo of the `(engine, k)`-dependent top-k phase outputs.
/// See the module docs for semantics and opt-in.
#[derive(Debug)]
pub struct ThresholdCache {
    joint: KeyedOnce<JointThresholds>,
    baseline: KeyedOnce<Vec<UserTopk>>,
    user_index: KeyedOnce<UserIndexSeed>,
    /// Memoized super-user, stamped with the *user* epoch it was built
    /// under (user mutations clear it eagerly; the stamp is the lazy
    /// safety net, like the per-`k` slots).
    su: RwLock<Option<(u64, Arc<UserGroup>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ThresholdCache {
    /// An empty cache with the default per-`k` bound
    /// ([`DEFAULT_K_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_K_CAPACITY)
    }

    /// An empty cache retaining at most `k_capacity` distinct `k` values
    /// per map (minimum 1).
    pub fn with_capacity(k_capacity: usize) -> Self {
        ThresholdCache {
            joint: KeyedOnce::new(k_capacity),
            baseline: KeyedOnce::new(k_capacity),
            user_index: KeyedOnce::new(k_capacity),
            su: RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured bound on distinct `k` values per map (the
    /// corpus-refresh path reads it to hand a rebuilt engine a fresh cache
    /// of the same shape).
    pub fn k_capacity(&self) -> usize {
        self.joint.cap
    }

    /// Lookups served from the cache so far (across all three maps).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (across all three maps).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached entry, including the memoized super-user (the
    /// counters keep running). [`crate::dynamic`] calls this on user
    /// mutations; the epoch stamps additionally invalidate lazily even
    /// when nothing clears eagerly.
    pub fn clear(&self) {
        self.joint.clear();
        self.baseline.clear();
        self.user_index.clear();
        *self.su.write().unwrap() = None;
    }

    /// Drops the object-dependent entries (all three per-`k` maps) but
    /// keeps the memoized super-user, which depends on the user table
    /// only. The eager half of object-mutation invalidation.
    pub fn invalidate_objects(&self) {
        self.joint.clear();
        self.baseline.clear();
        self.user_index.clear();
    }

    pub(crate) fn joint(
        &self,
        k: usize,
        epoch: u64,
        compute: impl FnOnce() -> JointThresholds,
    ) -> Arc<JointThresholds> {
        self.joint
            .get_or_compute(k, epoch, &self.hits, &self.misses, compute)
    }

    pub(crate) fn baseline(
        &self,
        k: usize,
        epoch: u64,
        compute: impl FnOnce() -> Vec<UserTopk>,
    ) -> Arc<Vec<UserTopk>> {
        self.baseline
            .get_or_compute(k, epoch, &self.hits, &self.misses, compute)
    }

    pub(crate) fn user_index(
        &self,
        k: usize,
        epoch: u64,
        compute: impl FnOnce() -> UserIndexSeed,
    ) -> Arc<UserIndexSeed> {
        self.user_index
            .get_or_compute(k, epoch, &self.hits, &self.misses, compute)
    }

    pub(crate) fn super_user(
        &self,
        user_epoch: u64,
        compute: impl FnOnce() -> UserGroup,
    ) -> Arc<UserGroup> {
        if let Some((stamp, su)) = self.su.read().unwrap().clone() {
            if stamp == user_epoch {
                return su;
            }
        }
        let mut slot = self.su.write().unwrap();
        if let Some((stamp, su)) = &*slot {
            if *stamp == user_epoch {
                return su.clone();
            }
        }
        // Computed under the write lock: the group summary is CPU-only
        // (no I/O charges), so briefly serializing racers is fine and
        // guarantees a single computation.
        let su = Arc::new(compute());
        *slot = Some((user_epoch, su.clone()));
        su
    }
}

impl Default for ThresholdCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_value() {
        let tc = ThresholdCache::new();
        let a = tc.baseline(3, 0, Vec::new);
        let b = tc.baseline(3, 0, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tc.hits(), 1);
        assert_eq!(tc.misses(), 1);
    }

    #[test]
    fn distinct_k_compute_independently() {
        let tc = ThresholdCache::new();
        tc.baseline(1, 0, Vec::new);
        tc.baseline(2, 0, Vec::new);
        assert_eq!(tc.misses(), 2);
        assert_eq!(tc.hits(), 0);
    }

    #[test]
    fn clear_forces_recompute() {
        let tc = ThresholdCache::new();
        tc.baseline(1, 0, Vec::new);
        tc.clear();
        tc.baseline(1, 0, Vec::new);
        assert_eq!(tc.misses(), 2);
    }

    /// A slot filled under an older epoch is stale: presenting a newer
    /// epoch recomputes and replaces it, and the old `Arc` stays valid for
    /// whoever still holds it.
    #[test]
    fn stale_epoch_slot_recomputes() {
        let tc = ThresholdCache::new();
        let old = tc.baseline(5, 1, Vec::new);
        let new = tc.baseline(5, 2, Vec::new);
        assert!(!Arc::ptr_eq(&old, &new), "stale slot must be replaced");
        assert_eq!(tc.misses(), 2);
        // Same epoch again: hit on the fresh slot.
        let again = tc.baseline(5, 2, || panic!("current slot must hit"));
        assert!(Arc::ptr_eq(&new, &again));
        assert_eq!(tc.hits(), 1);
    }

    /// Older epochs never resurrect: after a newer fill, an old-epoch
    /// lookup recomputes too (the stamp must match exactly).
    #[test]
    fn epoch_mismatch_is_symmetric() {
        let tc = ThresholdCache::new();
        tc.baseline(5, 2, Vec::new);
        tc.baseline(5, 1, Vec::new);
        assert_eq!(tc.misses(), 2);
    }

    /// The per-`k` map holds at most its capacity: the coldest `k` is
    /// evicted, recently used ones survive.
    #[test]
    fn k_capacity_evicts_least_recently_used() {
        let tc = ThresholdCache::with_capacity(2);
        tc.baseline(1, 0, Vec::new);
        tc.baseline(2, 0, Vec::new);
        tc.baseline(1, 0, Vec::new); // touch 1 → 2 is coldest
        tc.baseline(3, 0, Vec::new); // evicts 2
        assert_eq!(tc.misses(), 3);
        tc.baseline(1, 0, || panic!("1 was just used, must survive"));
        tc.baseline(3, 0, || panic!("3 was just inserted, must survive"));
        assert_eq!(tc.hits(), 3, "the earlier touch of 1 plus these two");
        tc.baseline(2, 0, Vec::new); // recompute after eviction
        assert_eq!(tc.misses(), 4);
    }

    /// Eviction drops the once-cell from the map without poisoning anyone
    /// already holding it: concurrent fillers complete on their own Arc.
    #[test]
    fn eviction_does_not_poison_in_flight_waiters() {
        use std::sync::mpsc;
        let tc = Arc::new(ThresholdCache::with_capacity(1));
        let (enter_tx, enter_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let tc2 = tc.clone();
        let filler = std::thread::spawn(move || {
            tc2.baseline(7, 0, move || {
                enter_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                vec![]
            })
        });
        enter_rx.recv().unwrap(); // filler is inside compute for k=7
        tc.baseline(8, 0, Vec::new); // capacity 1 → evicts the k=7 slot
        release_tx.send(()).unwrap();
        let filled = filler.join().unwrap();
        assert!(filled.is_empty(), "evicted filler still completes");
        // The k=7 slot is gone from the map: next lookup recomputes.
        tc.baseline(7, 0, Vec::new);
        assert_eq!(tc.misses(), 3, "filler, k=8, and the post-eviction refill");
    }

    fn dummy_group() -> UserGroup {
        UserGroup::from_node_entry(
            geo::Rect::new(geo::Point::new(0.0, 0.0), geo::Point::new(1.0, 1.0)),
            &[],
            &[],
            1,
            1.0,
            1.0,
        )
    }

    /// `clear` must drop the memoized super-user too — a stale group after
    /// a data mutation would silently corrupt pruning bounds.
    #[test]
    fn clear_drops_memoized_super_user() {
        let tc = ThresholdCache::new();
        let a = tc.super_user(0, dummy_group);
        let b = tc.super_user(0, || panic!("memoized"));
        assert!(Arc::ptr_eq(&a, &b));
        tc.clear();
        let c = tc.super_user(0, dummy_group);
        assert!(!Arc::ptr_eq(&a, &c), "cleared cell must recompute");
    }

    /// The super-user memo is stamped with the user epoch: even without
    /// an eager clear, presenting a newer generation recomputes.
    #[test]
    fn stale_user_epoch_recomputes_super_user() {
        let tc = ThresholdCache::new();
        let a = tc.super_user(1, dummy_group);
        let b = tc.super_user(2, dummy_group);
        assert!(!Arc::ptr_eq(&a, &b), "stale stamp must not serve");
        let c = tc.super_user(2, || panic!("current stamp must serve"));
        assert!(Arc::ptr_eq(&b, &c));
    }

    /// Concurrent same-k lookups compute exactly once: every other worker
    /// blocks on the once-cell and shares the Arc.
    #[test]
    fn concurrent_lookups_compute_exactly_once() {
        let tc = ThresholdCache::new();
        let computes = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (tc, computes) = (&tc, &computes);
                s.spawn(move || {
                    tc.baseline(7, 0, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        Vec::new()
                    });
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        assert_eq!(tc.misses(), 1);
        assert_eq!(tc.hits(), 7);
    }
}
