//! [`Engine`]: a convenience facade over the full query pipeline.
//!
//! Builds the scorer, the spatial context and the disk-resident indexes
//! from raw objects/users, then answers `MaxBRSTkNN` queries with any of
//! the paper's methods. The lower-level modules remain public for callers
//! (like the benchmark harness) that need to time pipeline stages
//! separately.

use std::sync::Arc;

use geo::{Rect, SpatialContext};
use index::{IndexedObject, IndexedUser, MiurTree, PostingMode, StTree};
use storage::{CodecId, IoStats};
use text::{CorpusStats, TextScorer, WeightModel};

use mbrstk_obs::MetricsRegistry;

use crate::cache::{JointThresholds, ThresholdCache};
use crate::metrics::EngineMetrics;
use crate::pipeline::{
    QueryStrategy, BASELINE, JOINT_EXACT, JOINT_GREEDY, JOINT_GREEDY_PLUS, USER_INDEX_EXACT,
    USER_INDEX_GREEDY,
};
use crate::select::location::KeywordSelector;
use crate::select::CandidateContext;
use crate::topk::baseline::all_users_topk_baseline;
use crate::topk::individual::individual_topk;
use crate::topk::joint::joint_topk;
use crate::user_index::{compute_user_index_seed, UserIndexSeed};
use crate::{ObjectData, QueryResult, QuerySpec, ScoreContext, UserData, UserGroup, UserTopk};

/// Which end-to-end strategy answers the query.
///
/// Each variant is a thin handle resolving into a
/// [`QueryStrategy`](crate::pipeline::QueryStrategy) implementation via
/// [`Method::strategy`]; custom strategies bypass this enum entirely
/// through [`Engine::query_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// §4: per-user top-k on the IR-tree + exhaustive candidate scan.
    Baseline,
    /// §5+§6: joint top-k + Algorithm 3 with greedy keyword selection.
    JointGreedy,
    /// Extension: Algorithm 3 with realized-gain greedy keyword selection
    /// (see [`crate::select::greedy::greedy_plus_keywords`]).
    JointGreedyPlus,
    /// §5+§6: joint top-k + Algorithm 3 with exact keyword selection.
    JointExact,
    /// §7: MIUR-tree pipeline with greedy keyword selection.
    UserIndexGreedy,
    /// §7: MIUR-tree pipeline with exact keyword selection.
    UserIndexExact,
}

impl Method {
    /// Every built-in method, in presentation order.
    pub const ALL: [Method; 6] = [
        Method::Baseline,
        Method::JointGreedy,
        Method::JointGreedyPlus,
        Method::JointExact,
        Method::UserIndexGreedy,
        Method::UserIndexExact,
    ];

    /// Resolves the method into its strategy implementation.
    pub fn strategy(self) -> &'static dyn QueryStrategy {
        match self {
            Method::Baseline => &BASELINE,
            Method::JointGreedy => &JOINT_GREEDY,
            Method::JointGreedyPlus => &JOINT_GREEDY_PLUS,
            Method::JointExact => &JOINT_EXACT,
            Method::UserIndexGreedy => &USER_INDEX_GREEDY,
            Method::UserIndexExact => &USER_INDEX_EXACT,
        }
    }

    /// Stable kebab-case name (delegates to the strategy).
    pub fn name(self) -> &'static str {
        self.strategy().name()
    }

    /// Whether this method needs [`Engine::with_user_index`].
    pub fn requires_user_index(self) -> bool {
        self.strategy().requires_user_index()
    }
}

/// A ready-to-query MaxBRSTkNN system: scorer + indexes + data.
#[derive(Debug)]
pub struct Engine {
    /// Combined scoring context (α, `SS`, `TS`).
    pub ctx: ScoreContext,
    /// The object table.
    pub objects: Vec<ObjectData>,
    /// The user table.
    pub users: Vec<UserData>,
    /// MIR-tree over the objects (max+min postings).
    pub mir: StTree,
    /// IR-tree over the objects (max-only postings, for the baseline).
    pub ir: StTree,
    /// Optional MIUR-tree over the users (§7).
    pub miur: Option<MiurTree>,
    /// Simulated I/O counter shared by every index access. May carry a
    /// sharded page cache ([`Engine::with_page_cache`]).
    pub io: IoStats,
    /// Optional cross-query top-k threshold cache
    /// ([`Engine::with_threshold_cache`]).
    pub thresholds: Option<ThresholdCache>,
    /// Generation counter bumped by every mutation (see
    /// [`crate::dynamic`]); threshold-cache slots are stamped with it, so
    /// stale epochs are the invalidation signal. Crate-private: an
    /// external write could rewind the counter and resurrect stale cache
    /// slots — read it through [`Engine::epoch`] / [`Engine::epoch_guard`].
    pub(crate) epoch: u64,
    /// Generation counter bumped only by *user* mutations; stamps the
    /// memoized super-user (which depends on the user table alone), so a
    /// missed eager clear can never serve a stale group summary.
    pub(crate) user_epoch: u64,
    /// Object mutations since build or the last corpus refresh — the
    /// frozen scorer only ages with *object* churn (corpus statistics are
    /// computed over object documents), so this is what the drift
    /// thresholds in [`crate::refresh`] watch.
    pub(crate) obj_muts_since_refresh: u64,
    /// User mutations since build or the last corpus refresh (reported in
    /// [`crate::refresh::ScorerDrift`]; user churn never moves the corpus
    /// statistics but still ages the dataspace hull).
    pub(crate) user_muts_since_refresh: u64,
    /// True when a *bounded* incremental refresh left within-bound stale
    /// weights in the index that the (advanced) frozen scorer can no
    /// longer see — the next refresh must escalate to a full re-weigh.
    /// See [`Engine::has_stale_weights`](crate::refresh::incremental).
    pub(crate) stale_weights: bool,
    /// Always-on telemetry: per-method latency/I-O histograms plus cache
    /// hit-ratio gauges, with every handle resolved at build so the warm
    /// query path records through relaxed atomics only. Unlike the caches,
    /// the `Arc` is *shared* by clones and refreshes — serving history is
    /// continuous across copy-on-write fallbacks and engine swaps. Read it
    /// through [`Engine::metrics`].
    pub(crate) metrics: Arc<EngineMetrics>,
    /// When set, every (re)build of this engine scores distances against
    /// this externally supplied dataspace instead of the hull of its own
    /// records. [`crate::cluster`] pins each user shard to the fused
    /// head's dataspace so per-shard scores are bitwise identical to the
    /// fused engine's; `None` (the default) keeps the self-computed hull.
    pub(crate) pinned_spatial: Option<SpatialContext>,
}

/// A deep copy: tables and disk-resident indexes are duplicated
/// record-for-record, and the epoch counters carry over so snapshots of
/// the original and the clone stay comparable. The simulated I/O counter
/// and both caches restart *cold* with the same configuration (page-cache
/// capacity and shard layout, threshold-cache `k` bound) — cached state is
/// engine-local by design. The metrics registry is the one exception: the
/// clone *shares* it, so telemetry stays continuous across the serving
/// layer's copy-on-write fallbacks. The concurrent serving layer
/// ([`crate::refresh::ServingEngine`]) relies on this as its copy-on-write
/// fallback when a mutation races a long-lived reader snapshot.
impl Clone for Engine {
    fn clone(&self) -> Engine {
        Engine {
            ctx: self.ctx.clone(),
            objects: self.objects.clone(),
            users: self.users.clone(),
            mir: self.mir.clone(),
            ir: self.ir.clone(),
            miur: self.miur.clone(),
            io: self.io.fork(),
            thresholds: self
                .thresholds
                .as_ref()
                .map(|tc| ThresholdCache::with_capacity(tc.k_capacity())),
            epoch: self.epoch,
            user_epoch: self.user_epoch,
            obj_muts_since_refresh: self.obj_muts_since_refresh,
            user_muts_since_refresh: self.user_muts_since_refresh,
            stale_weights: self.stale_weights,
            metrics: Arc::clone(&self.metrics),
            pinned_spatial: self.pinned_spatial,
        }
    }
}

impl Engine {
    /// Builds scorer, spatial context and both object indexes with the
    /// default node fanout.
    ///
    /// # Panics
    /// Panics when `objects` or `users` is empty, or every location
    /// coincides (no dataspace extent).
    pub fn build(
        objects: Vec<ObjectData>,
        users: Vec<UserData>,
        model: WeightModel,
        alpha: f64,
    ) -> Self {
        Self::build_with_fanout(objects, users, model, alpha, index::DEFAULT_MAX_ENTRIES)
    }

    /// [`Engine::build`] with an explicit index fanout. The record codec
    /// is resolved from the `MBRSTK_CODEC` environment variable
    /// ([`CodecId::from_env`], default [`CodecId::Verbatim`]) — the engine
    /// is the configuration boundary; the index crate's own constructors
    /// stay deterministic.
    pub fn build_with_fanout(
        objects: Vec<ObjectData>,
        users: Vec<UserData>,
        model: WeightModel,
        alpha: f64,
        fanout: usize,
    ) -> Self {
        Self::build_with_fanout_codec(objects, users, model, alpha, fanout, CodecId::from_env())
    }

    /// [`Engine::build_with_fanout`] with an explicit record codec for
    /// every disk-resident index. The codec travels with the engine:
    /// mutations, compactions and corpus refreshes all re-encode with it.
    pub fn build_with_fanout_codec(
        objects: Vec<ObjectData>,
        users: Vec<UserData>,
        model: WeightModel,
        alpha: f64,
        fanout: usize,
        codec: CodecId,
    ) -> Self {
        Self::build_with_fanout_codec_pinned(objects, users, model, alpha, fanout, codec, None)
    }

    /// [`Engine::build_with_fanout_codec`] scoring against an externally
    /// pinned [`SpatialContext`] instead of the records' own hull. The
    /// cluster layer builds user shards this way: the scorer depends only
    /// on the object documents, so with the head's dataspace pinned a
    /// shard's scores are bitwise identical to the fused engine's. Only
    /// this variant accepts an *empty* user slice (mutation routing can
    /// legitimately drain a shard); the object set must still be
    /// non-empty.
    pub(crate) fn build_with_fanout_codec_pinned(
        objects: Vec<ObjectData>,
        users: Vec<UserData>,
        model: WeightModel,
        alpha: f64,
        fanout: usize,
        codec: CodecId,
        pinned: Option<SpatialContext>,
    ) -> Self {
        assert!(!objects.is_empty(), "object set must not be empty");
        assert!(
            pinned.is_some() || !users.is_empty(),
            "user set must not be empty"
        );

        let spatial = match pinned {
            Some(spatial) => spatial,
            None => {
                let space = Rect::bounding(
                    objects
                        .iter()
                        .map(|o| o.point)
                        .chain(users.iter().map(|u| u.point)),
                )
                .expect("non-empty dataset");
                SpatialContext::from_dataspace(&space)
            }
        };

        let stats = CorpusStats::build(objects.iter().map(|o| &o.doc));
        let text = TextScorer::build(model, stats, objects.iter().map(|o| &o.doc));

        let indexed: Vec<IndexedObject> = objects
            .iter()
            .map(|o| IndexedObject {
                id: o.id,
                point: o.point,
                doc: text.weigh(&o.doc),
            })
            .collect();
        let mir = StTree::build_with_fanout_codec(&indexed, PostingMode::MaxMin, fanout, codec);
        let ir = StTree::build_with_fanout_codec(&indexed, PostingMode::MaxOnly, fanout, codec);

        Engine {
            ctx: ScoreContext::new(alpha, spatial, text),
            objects,
            users,
            mir,
            ir,
            miur: None,
            io: IoStats::new(),
            thresholds: None,
            epoch: 0,
            user_epoch: 0,
            obj_muts_since_refresh: 0,
            user_muts_since_refresh: 0,
            stale_weights: false,
            metrics: EngineMetrics::new(),
            pinned_spatial: pinned,
        }
    }

    /// Additionally builds the MIUR-tree over the users, enabling the
    /// [`Method::UserIndexGreedy`] / [`Method::UserIndexExact`] paths.
    pub fn with_user_index(mut self) -> Self {
        let iu: Vec<IndexedUser> = self
            .users
            .iter()
            .map(|u| IndexedUser {
                id: u.id,
                point: u.point,
                doc: u.doc.clone(),
                norm: self.ctx.text.normalizer(&u.doc),
            })
            .collect();
        self.miur = Some(MiurTree::build_with_fanout_codec(
            &iu,
            self.mir.fanout(),
            self.codec(),
        ));
        self
    }

    /// The record codec every index of this engine is encoded with.
    #[inline]
    pub fn codec(&self) -> CodecId {
        self.mir.codec()
    }

    /// The engine's always-on metrics registry: per-method and per-phase
    /// latency/I-O histograms, cache hit/miss counters and hit-ratio
    /// gauges, recorded by every query since build. Snapshot it
    /// ([`MetricsRegistry::snapshot`]) for JSON export or render the
    /// Prometheus text format directly
    /// ([`MetricsRegistry::render_prometheus`]). The registry is shared
    /// (not forked) by [`Engine::clone`] and carried through corpus
    /// refreshes, so a [`crate::ServingEngine`]'s history is continuous
    /// across swaps.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(self.metrics.registry())
    }

    /// Byte footprint of every live index record as encoded on disk
    /// (compressed bytes under a compressing codec).
    pub fn physical_index_bytes(&self) -> u64 {
        self.mir.node_bytes()
            + self.mir.invfile_bytes()
            + self.ir.node_bytes()
            + self.ir.invfile_bytes()
            + self
                .miur
                .as_ref()
                .map_or(0, |m| m.node_bytes() + m.intuni_bytes())
    }

    /// Byte footprint the same records would occupy under the
    /// [`CodecId::Verbatim`] codec — the logical (uncompressed) size the
    /// compression ratio is measured against. Equals
    /// [`Engine::physical_index_bytes`] on a Verbatim engine.
    pub fn logical_index_bytes(&self) -> u64 {
        self.mir.logical_bytes()
            + self.ir.logical_bytes()
            + self.miur.as_ref().map_or(0, |m| m.logical_bytes())
    }

    /// Attaches a cross-query top-k threshold cache: per-user `RSk`
    /// thresholds depend only on `(engine, k)`, so with the cache enabled
    /// a batch of same-`k` queries pays the top-k phase (and its simulated
    /// I/O) exactly once. Opt-in because it changes what the paper's
    /// *cold* experiments measure — see [`ThresholdCache`].
    pub fn with_threshold_cache(mut self) -> Self {
        self.thresholds = Some(ThresholdCache::new());
        self
    }

    /// [`Engine::with_threshold_cache`] with an explicit bound on the
    /// distinct `k` values retained per map (adversarial-`k` protection;
    /// see [`ThresholdCache::with_capacity`]).
    pub fn with_threshold_cache_capacity(mut self, k_capacity: usize) -> Self {
        self.thresholds = Some(ThresholdCache::with_capacity(k_capacity));
        self
    }

    /// Attaches a sharded LRU page cache of `capacity_blocks` 4 KB blocks
    /// to the simulated I/O counter (warm-cache serving model; keyed index
    /// accesses that hit it are free). Replaces the engine's counter, so
    /// attach it before serving queries.
    pub fn with_page_cache(mut self, capacity_blocks: u64) -> Self {
        self.io = IoStats::with_cache(capacity_blocks);
        self
    }

    /// The super-user over the whole user table.
    pub fn super_user(&self) -> UserGroup {
        UserGroup::from_users(&self.users, &self.ctx.text)
    }

    /// [`Engine::super_user`] behind the threshold cache: computed once
    /// per user-table generation when the cache is enabled, fresh
    /// otherwise (the memo is stamped with the user epoch, so a stale
    /// group can never be served even without an eager clear).
    pub fn super_user_shared(&self) -> Arc<UserGroup> {
        match &self.thresholds {
            Some(tc) => tc.super_user(self.user_epoch, || self.super_user()),
            None => Arc::new(self.super_user()),
        }
    }

    /// The joint top-k phase (Algorithms 1+2) for `k`, served from the
    /// threshold cache when one is attached (only the filling query
    /// charges simulated I/O) and computed fresh otherwise. The result
    /// carries the super-user it ran for, so consumers need no second
    /// `O(users)` group computation.
    pub fn joint_thresholds(&self, k: usize) -> Arc<JointThresholds> {
        let compute = || {
            let su = self.super_user_shared();
            let out = joint_topk(&self.mir, &su, k, &self.ctx, &self.io);
            let tks = individual_topk(&self.users, &out, k, &self.ctx);
            let rsk = tks.iter().map(|t| t.rsk).collect();
            JointThresholds { su, out, tks, rsk }
        };
        match &self.thresholds {
            Some(tc) => tc.joint(k, self.epoch, compute),
            None => Arc::new(compute()),
        }
    }

    /// The §4 baseline top-k phase for `k`, served from the threshold
    /// cache when one is attached and computed fresh otherwise.
    pub fn baseline_thresholds(&self, k: usize) -> Arc<Vec<UserTopk>> {
        match &self.thresholds {
            Some(tc) => tc.baseline(k, self.epoch, || {
                all_users_topk_baseline(&self.ir, &self.users, k, &self.ctx, &self.io)
            }),
            None => Arc::new(all_users_topk_baseline(
                &self.ir,
                &self.users,
                k,
                &self.ctx,
                &self.io,
            )),
        }
    }

    /// The `k`-dependent prefix of the §7 pipeline (MIUR root as
    /// super-user + joint MIR traversal), served from the threshold cache
    /// when one is attached and computed fresh otherwise.
    ///
    /// # Panics
    /// Panics when [`Engine::with_user_index`] was not called.
    pub fn user_index_seed(&self, k: usize) -> Arc<UserIndexSeed> {
        let miur = self
            .miur
            .as_ref()
            .expect("call with_user_index() before querying with a user-index method");
        let compute = || compute_user_index_seed(miur, &self.mir, k, &self.ctx, &self.io);
        match &self.thresholds {
            Some(tc) => tc.user_index(k, self.epoch, compute),
            None => Arc::new(compute()),
        }
    }

    /// Computes every user's top-k with the joint algorithm (§5),
    /// returning the per-user results (including each `RSk(u)`).
    pub fn joint_user_topk(&self, k: usize) -> (Vec<UserTopk>, f64) {
        match &self.thresholds {
            Some(_) => {
                let jt = self.joint_thresholds(k);
                (jt.tks.clone(), jt.out.rsk_us)
            }
            // Uncached: compute by move, no Arc round trip or deep clone.
            None => {
                let su = self.super_user();
                let out = joint_topk(&self.mir, &su, k, &self.ctx, &self.io);
                let tks = individual_topk(&self.users, &out, k, &self.ctx);
                (tks, out.rsk_us)
            }
        }
    }

    /// Computes every user's top-k with the §4 baseline.
    pub fn baseline_user_topk(&self, k: usize) -> Vec<UserTopk> {
        match &self.thresholds {
            Some(_) => (*self.baseline_thresholds(k)).clone(),
            None => all_users_topk_baseline(&self.ir, &self.users, k, &self.ctx, &self.io),
        }
    }

    /// ℓ-MaxBRSTkNN: the `l` best ⟨location, keyword-set⟩ tuples (see
    /// [`crate::select::topl`]). Uses the joint top-k thresholds.
    pub fn query_top_l(
        &self,
        spec: &QuerySpec,
        selector: KeywordSelector,
        l: usize,
    ) -> Vec<QueryResult> {
        let jt = self.joint_thresholds(spec.k);
        let cc = CandidateContext::new(&self.ctx, spec, &self.users, &jt.rsk);
        crate::select::topl::select_top_l(&cc, &jt.su, jt.out.rsk_us, selector, l)
    }

    /// Answers a `MaxBRSTkNN` query with the chosen method.
    ///
    /// Resolves `method` into its [`QueryStrategy`] and executes it; batch
    /// workloads should prefer [`Engine::query_batch`], which fans specs
    /// out across threads and reports per-query costs.
    ///
    /// # Panics
    /// Panics when a user-index method is requested without
    /// [`Engine::with_user_index`].
    pub fn query(&self, spec: &QuerySpec, method: Method) -> QueryResult {
        self.query_with(spec, method.strategy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;
    use text::{Document, TermId};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn engine(model: WeightModel, alpha: f64) -> Engine {
        let objects: Vec<ObjectData> = (0..60)
            .map(|i| ObjectData {
                id: i,
                point: Point::new((i % 10) as f64, (i / 10) as f64),
                doc: Document::from_pairs([(t(i % 6), 1 + i % 2), (t(6), 1)]),
            })
            .collect();
        let users: Vec<UserData> = (0..15)
            .map(|i| UserData {
                id: i,
                point: Point::new((i % 8) as f64 + 0.3, (i % 5) as f64 + 0.6),
                doc: Document::from_terms([t(i % 6), t(6)]),
            })
            .collect();
        Engine::build_with_fanout(objects, users, model, alpha, 4)
    }

    fn spec() -> QuerySpec {
        QuerySpec {
            ox_doc: Document::from_terms([t(6)]),
            locations: vec![
                Point::new(4.0, 2.0),
                Point::new(0.5, 0.5),
                Point::new(9.0, 5.0),
            ],
            keywords: vec![t(0), t(1), t(2), t(3), t(4), t(5)],
            ws: 2,
            k: 4,
        }
    }

    /// All exact strategies must agree on the optimum cardinality.
    #[test]
    fn exact_methods_agree() {
        for model in [
            WeightModel::lm(),
            WeightModel::TfIdf,
            WeightModel::KeywordOverlap,
        ] {
            for alpha in [0.3, 0.7] {
                let eng = engine(model, alpha).with_user_index();
                let s = spec();
                let b = eng.query(&s, Method::Baseline);
                let e = eng.query(&s, Method::JointExact);
                let u = eng.query(&s, Method::UserIndexExact);
                assert_eq!(b.cardinality(), e.cardinality(), "{model:?} α={alpha}");
                assert_eq!(e.cardinality(), u.cardinality(), "{model:?} α={alpha}");
            }
        }
    }

    /// Greedy results never exceed exact and respect the budget.
    #[test]
    fn greedy_methods_bounded() {
        let eng = engine(WeightModel::lm(), 0.5).with_user_index();
        let s = spec();
        let e = eng.query(&s, Method::JointExact);
        for m in [Method::JointGreedy, Method::UserIndexGreedy] {
            let g = eng.query(&s, m);
            assert!(g.cardinality() <= e.cardinality());
            assert!(g.keywords.len() <= s.ws);
        }
    }

    /// Joint and baseline top-k produce identical thresholds.
    #[test]
    fn joint_and_baseline_topk_agree() {
        let eng = engine(WeightModel::lm(), 0.5);
        let (joint, _) = eng.joint_user_topk(3);
        let base = eng.baseline_user_topk(3);
        for (j, b) in joint.iter().zip(&base) {
            assert_eq!(j.user, b.user);
            assert!((j.rsk - b.rsk).abs() < 1e-9, "user {}", j.user);
        }
    }

    /// The realized-gain greedy sits between coverage greedy and exact.
    #[test]
    fn greedy_plus_is_sound_and_competitive() {
        let eng = engine(WeightModel::lm(), 0.5);
        let s = spec();
        let e = eng.query(&s, Method::JointExact);
        let gp = eng.query(&s, Method::JointGreedyPlus);
        assert!(gp.cardinality() <= e.cardinality());
        assert!(gp.keywords.len() <= s.ws);
        // Its reported users genuinely qualify (same invariant as greedy).
        let g = eng.query(&s, Method::JointGreedy);
        assert!(gp.cardinality() >= g.cardinality().saturating_sub(1) || gp.cardinality() > 0);
    }

    #[test]
    fn top_l_query_descends_and_heads_match_single() {
        let eng = engine(WeightModel::lm(), 0.5);
        let s = spec();
        let single = eng.query(&s, Method::JointExact);
        let top = eng.query_top_l(&s, KeywordSelector::Exact, 3);
        assert!(!top.is_empty());
        assert_eq!(top[0].cardinality(), single.cardinality());
        assert!(top
            .windows(2)
            .all(|w| w[0].cardinality() >= w[1].cardinality()));
    }

    #[test]
    #[should_panic(expected = "with_user_index")]
    fn user_index_method_requires_index() {
        let eng = engine(WeightModel::lm(), 0.5);
        eng.query(&spec(), Method::UserIndexExact);
    }

    /// α = 1 is the NP-hardness special case of Lemma 1: score is purely
    /// spatial but the overlap precondition still gates membership.
    #[test]
    fn alpha_one_special_case() {
        let eng = engine(WeightModel::lm(), 1.0).with_user_index();
        let s = spec();
        let b = eng.query(&s, Method::Baseline);
        let e = eng.query(&s, Method::JointExact);
        let u = eng.query(&s, Method::UserIndexExact);
        assert_eq!(b.cardinality(), e.cardinality());
        assert_eq!(e.cardinality(), u.cardinality());
    }

    /// α = 0: purely textual ranking.
    #[test]
    fn alpha_zero_pure_text() {
        let eng = engine(WeightModel::KeywordOverlap, 0.0);
        let s = spec();
        let b = eng.query(&s, Method::Baseline);
        let e = eng.query(&s, Method::JointExact);
        assert_eq!(b.cardinality(), e.cardinality());
    }

    /// Users stacked on identical locations (the generator samples user
    /// locations with replacement) must not break anything.
    #[test]
    fn duplicate_user_locations() {
        let objects: Vec<ObjectData> = (0..30)
            .map(|i| ObjectData {
                id: i,
                point: Point::new((i % 6) as f64, (i / 6) as f64),
                doc: Document::from_terms([t(i % 3), t(3)]),
            })
            .collect();
        let users: Vec<UserData> = (0..10)
            .map(|i| UserData {
                id: i,
                point: Point::new(2.0, 2.0), // everyone in one spot
                doc: Document::from_terms([t(i % 3), t(3)]),
            })
            .collect();
        let eng =
            Engine::build_with_fanout(objects, users, WeightModel::lm(), 0.5, 4).with_user_index();
        let s = QuerySpec {
            ox_doc: Document::new(),
            locations: vec![Point::new(2.0, 2.0), Point::new(5.0, 4.0)],
            keywords: vec![t(0), t(1), t(2), t(3)],
            ws: 2,
            k: 3,
        };
        let b = eng.query(&s, Method::Baseline);
        let e = eng.query(&s, Method::JointExact);
        let u = eng.query(&s, Method::UserIndexExact);
        assert_eq!(b.cardinality(), e.cardinality());
        assert_eq!(e.cardinality(), u.cardinality());
        assert!(e.cardinality() > 0);
    }

    /// The joint method costs (much) less I/O than the baseline for the
    /// same top-k work — the paper's central claim.
    #[test]
    fn joint_topk_uses_less_io_than_baseline() {
        let eng = engine(WeightModel::lm(), 0.5);
        eng.io.reset();
        let _ = eng.joint_user_topk(4);
        let joint_io = eng.io.total();
        eng.io.reset();
        let _ = eng.baseline_user_topk(4);
        let base_io = eng.io.total();
        assert!(
            joint_io < base_io,
            "joint {joint_io} should be below baseline {base_io}"
        );
    }
}
