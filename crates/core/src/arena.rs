//! Per-query reusable scratch memory ([`QueryArena`]).
//!
//! Steady-state serving answers the same shape of query over and over;
//! allocating fresh heaps, candidate buffers, and decode scratch for each
//! one costs more than the arithmetic it feeds. A [`QueryArena`] owns every
//! buffer the six query strategies need, is *reset* (cleared, never freed)
//! between queries, and is pooled per worker thread by
//! [`crate::Engine::query_batch`]. After one query of a given shape, a
//! warm-cache repeat allocates nothing (see `tests/alloc_free.rs`).
//!
//! The arena is deliberately opaque: strategies reach its fields inside the
//! crate, while external [`crate::QueryStrategy`] implementations just
//! thread it through to the built-in strategies they delegate to.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use geo::{Point, Rect};
use index::MiurScratch;
use storage::RecordId;
use text::{Document, TermId};

use crate::data::UserData;
use crate::group::UserGroup;
use crate::select::exact::Combinations;
use crate::select::DeltaScan;
use crate::topk::ByKey;
use crate::trace::{Phase, PhaseBreakdown, Trace};

/// Reusable backing storage for one [`crate::select::CandidateContext`].
///
/// The context takes the buffers by value ([`std::mem::take`] from the
/// arena), fills them for the query at hand, and hands them back through
/// `CandidateContext::into_scratch` when it drops — so the maps and the
/// per-user columns keep their capacity across queries.
#[derive(Debug, Default)]
pub(crate) struct CcScratch {
    pub(crate) cand_w: HashMap<TermId, f64>,
    pub(crate) n_u: Vec<f64>,
    pub(crate) ubl_ts: Vec<f64>,
    pub(crate) ucand_flat: Vec<(TermId, f64)>,
    pub(crate) ucand_off: Vec<u32>,
    pub(crate) ws_buf: RefCell<Vec<f64>>,
}

/// Scratch for the coverage/realized greedy keyword selectors.
#[derive(Debug, Default)]
pub(crate) struct GreedyScratch {
    /// `LUW_w` terms, parallel to `luw_members[..luw_terms.len()]`.
    pub(crate) luw_terms: Vec<TermId>,
    /// Member-position rows; pooled, row `i` is live iff `i < luw_terms.len()`.
    pub(crate) luw_members: Vec<Vec<usize>>,
    /// `(weight, keyword position, term)` rows for the `HW` construction.
    pub(crate) others: Vec<(f64, u32, TermId)>,
    pub(crate) hw: Vec<TermId>,
    pub(crate) hcand: Document,
    pub(crate) covered: Vec<bool>,
    pub(crate) used: Vec<bool>,
    pub(crate) trial: Vec<TermId>,
    /// Keyword-holder rows for the realized-gain trial scan.
    pub(crate) delta: DeltaScan,
}

/// Scratch for Algorithm 4 (exact keyword selection).
#[derive(Debug, Default)]
pub(crate) struct ExactScratch {
    pub(crate) wc: Vec<TermId>,
    /// Positions into the current `lu` list.
    pub(crate) certain: Vec<usize>,
    pub(crate) uncertain: Vec<usize>,
    pub(crate) combos: Combinations,
    pub(crate) chosen: Vec<TermId>,
    pub(crate) cand: Document,
    /// Keyword-holder rows over the uncertain users.
    pub(crate) delta: DeltaScan,
}

/// Scratch for the selection phase (Algorithm 3, the §4 baseline scan, and
/// the per-location keyword selection inside the §7 pipeline).
#[derive(Debug, Default)]
pub(crate) struct SelectScratch {
    /// Best-first location queue; payload is `(location idx, lu slot)`.
    pub(crate) ql: BinaryHeap<ByKey<(usize, usize)>>,
    /// Pooled per-location candidate-user lists.
    pub(crate) lu_bufs: Vec<Vec<usize>>,
    /// Spatial scores aligned with the `lu` list under evaluation.
    pub(crate) ss: Vec<f64>,
    /// The candidate document `ox.d ∪ W'` under evaluation.
    pub(crate) cand: Document,
    /// BRSTkNN user-id output buffer (swapped into the result on improvement).
    pub(crate) users_out: Vec<u32>,
    /// Chosen-keyword buffer.
    pub(crate) kw: Vec<TermId>,
    /// Keyword combination enumerator for the baseline scan.
    pub(crate) combos: Combinations,
    pub(crate) combo_kw: Vec<TermId>,
    /// Keyword-holder rows for the baseline scan.
    pub(crate) delta: DeltaScan,
    pub(crate) gr: GreedyScratch,
    pub(crate) ex: ExactScratch,
}

/// One pooled element of the §7 expansion frontier — the reusable twin of
/// `user_index::Elem`, with the query-independent fields of the seed copied
/// in and the per-query bound parts (`ubl_ts`, `reachable`) cached so the
/// keep-test per ⟨location, element⟩ is a couple of float ops.
#[derive(Debug)]
pub(crate) struct ElemSlot {
    pub(crate) is_group: bool,
    // Group fields (valid when `is_group`).
    pub(crate) node: RecordId,
    pub(crate) group: UserGroup,
    pub(crate) rsk_lb: f64,
    // User fields (valid otherwise).
    pub(crate) user: UserData,
    pub(crate) rsk: f64,
    pub(crate) n_u: f64,
    /// Location-independent textual part of this element's `UBL`.
    pub(crate) ubl_ts: f64,
    /// Users only: shares a term with `ox.d ∪ W`.
    pub(crate) reachable: bool,
}

impl ElemSlot {
    pub(crate) fn blank() -> Self {
        ElemSlot {
            is_group: false,
            node: RecordId(0),
            group: UserGroup {
                mbr: Rect::from_point(Point::new(0.0, 0.0)),
                d_uni: Document::new(),
                d_int: Document::new(),
                n_min: 0.0,
                n_max: 0.0,
                count: 0,
            },
            rsk_lb: 0.0,
            user: UserData {
                id: 0,
                point: Point::new(0.0, 0.0),
                doc: Document::new(),
            },
            rsk: 0.0,
            n_u: 0.0,
            ubl_ts: 0.0,
            reachable: false,
        }
    }

    /// Users this element stands for.
    pub(crate) fn count(&self) -> usize {
        if self.is_group {
            self.group.count
        } else {
            1
        }
    }
}

/// Scratch for the §7 user-index pipeline.
#[derive(Debug, Default)]
pub(crate) struct UserIndexScratch {
    /// Pooled frontier elements; slot `i` is live iff `i < live`.
    pub(crate) elems: Vec<ElemSlot>,
    pub(crate) live: usize,
    /// Flat child element-id lists, addressed by `expanded`.
    pub(crate) children: Vec<u32>,
    /// Node → `(start, len)` into `children`.
    pub(crate) expanded: HashMap<RecordId, (u32, u32)>,
    /// Per-location frontier element-id lists (pooled rows).
    pub(crate) lu_lists: Vec<Vec<u32>>,
    pub(crate) ql: BinaryHeap<ByKey<usize>>,
    /// `group_rsk_lb` lower-bound collection buffer.
    pub(crate) lbs: Vec<f64>,
    /// Reused min-heap for per-user `RSk` refinement at materialization.
    pub(crate) ind_heap: BinaryHeap<Reverse<ByKey<u32>>>,
    /// Pooled users/thresholds backing the per-location local context.
    pub(crate) users_buf: Vec<UserData>,
    pub(crate) rsk_buf: Vec<f64>,
    /// `0..n` identity list the local selection kernels index with.
    pub(crate) lu_seq: Vec<usize>,
    pub(crate) miur: MiurScratch,
}

/// Reusable per-query scratch memory for every built-in query strategy.
///
/// Create one with [`QueryArena::new`] (or [`Default`]), then pass it to
/// [`crate::Engine::query_reusing`] across queries: buffers are cleared,
/// never freed, so a warm arena makes steady-state queries allocation-free.
/// An arena is cheap when cold (every pool starts empty) and must not be
/// shared across threads mid-query; batch serving keeps one per worker.
#[derive(Debug, Default)]
pub struct QueryArena {
    /// Backing store for the outer candidate context.
    pub(crate) cc: CcScratch,
    /// Backing store for the §7 per-location local contexts.
    pub(crate) cc_local: CcScratch,
    /// Per-user thresholds for the baseline strategy.
    pub(crate) rsk: Vec<f64>,
    pub(crate) sel: SelectScratch,
    pub(crate) ui: UserIndexScratch,
    /// Phase-trace scratch the strategies stamp (see [`crate::trace`]).
    trace: Trace,
}

impl QueryArena {
    /// An empty arena; pools grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the phase trace: zeroes the breakdown and baselines the
    /// clock and this thread's I/O mirror. Built-in strategies call this
    /// on entry to `execute`; a custom strategy that delegates needs no
    /// call of its own (the delegate re-arms).
    #[inline]
    pub fn trace_arm(&mut self) {
        self.trace.arm();
    }

    /// Charges everything since the previous stamp (or
    /// [`QueryArena::trace_arm`]) to `phase`. Stamping a phase twice
    /// accumulates.
    #[inline]
    pub fn trace_stamp(&mut self, phase: Phase) {
        self.trace.stamp(phase);
    }

    /// Per-phase breakdown of the most recent query traced through this
    /// arena (what the engine surfaces as `QueryStats::phases`).
    #[inline]
    pub fn phases(&self) -> PhaseBreakdown {
        self.trace.breakdown()
    }
}
