//! Sharded scatter-gather serving: [`EngineCluster`].
//!
//! The MaxBRSTkNN objective is a *count* of qualifying users, and each
//! user's qualification (their `RSk` threshold and rank test) depends on
//! the object corpus and that user alone. Partitioning the **user table**
//! across N shards therefore makes the expensive per-user top-k phase
//! embarrassingly parallel: every shard holds the *full* object trees but
//! only a slice of the users, computes its slice's thresholds, and the
//! per-shard results merge back — the global candidate counts are exact
//! sums of per-shard counts, so the cluster answer is the fused answer.
//!
//! # Bit-identity by construction
//!
//! The cluster never re-implements the selection pipeline. A fused
//! **head** engine (all users, all objects) keeps answering queries; the
//! shards only compute the scattered top-k phase, and the gathered
//! per-user thresholds are installed into the head's [`ThresholdCache`]
//! *before* the head runs its unmodified pipeline. Equality of the final
//! answers thus reduces to equality of the top-k phase, which holds
//! bitwise because:
//!
//! * the text scorer is built from **object** documents only, and every
//!   shard carries the full object table → identical scorers;
//! * the spatial context is a single `dmax`, **pinned** to the head's
//!   dataspace at shard build (`Engine::build_with_fanout_codec_pinned`)
//!   → identical distance normalization even though a user slice's own
//!   hull would differ;
//! * the per-user kernels (`individual_topk`, `all_users_topk_baseline`)
//!   process users independently, so a slice computes exactly the fused
//!   values for its users.
//!
//! If the cache slot is evicted (or was never filled because the method
//! bypasses the scatter), the head simply recomputes the fused phase —
//! slower, never wrong.
//!
//! # Mutations, epochs, refresh
//!
//! The head is authoritative: a mutation applies there first, and only on
//! acceptance is it routed onward — object mutations broadcast to every
//! shard (they all hold the object table), user mutations route to the
//! **owning** shard (`id % N`). Each shard keeps its own epoch; the
//! *cluster epoch* is the vector of shard epochs ([`EngineCluster::epochs`]).
//! Refresh decisions stay independent per shard
//! ([`EngineCluster::refresh_due_shards`]) — a busy shard can re-weigh
//! while a quiet one keeps serving — with the caveat that an
//! independently refreshed shard's scorer runs ahead of the head's until
//! the next synchronized refresh ([`EngineCluster::refresh_synchronized`]),
//! which refreshes the head, re-pins every shard to the new dataspace and
//! rebuilds them, restoring exact bit-identity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mbrstk_obs::{Counter, Histogram, MetricsRegistry};

use crate::cache::{JointThresholds, ThresholdCache};
use crate::dynamic::{BatchReport, MaintenanceIo, Mutation};
use crate::refresh::{RefreshConfig, RefreshReport, RefreshTier};
use crate::topk::baseline::all_users_topk_baseline;
use crate::topk::individual::individual_topk;
use crate::topk::joint::joint_topk;
use crate::{Engine, Method, QueryResult, QuerySpec, UserTopk};

/// Which shard owns the user with `id` in an `nshards`-way partition.
#[inline]
pub fn owner(id: u32, nshards: usize) -> usize {
    id as usize % nshards
}

/// Pre-resolved per-shard telemetry handles, registered in the **head**
/// engine's registry (so the serving layer's metrics export carries them)
/// with the shard index as a label.
#[derive(Debug)]
pub(crate) struct ClusterMetrics {
    /// Wall time of one shard's slice of a scattered top-k phase.
    scatter_latency_us: Vec<Arc<Histogram>>,
    /// Mutations routed to each shard (broadcasts count every shard).
    mutations_routed: Vec<Arc<Counter>>,
    /// Completed per-shard refreshes (synchronized or independent).
    refreshes: Vec<Arc<Counter>>,
}

impl ClusterMetrics {
    fn new(reg: &MetricsRegistry, nshards: usize) -> ClusterMetrics {
        ClusterMetrics {
            scatter_latency_us: (0..nshards)
                .map(|i| reg.histogram(&format!("cluster_scatter_latency_us{{shard=\"{i}\"}}")))
                .collect(),
            mutations_routed: (0..nshards)
                .map(|i| reg.counter(&format!("cluster_mutations_routed_total{{shard=\"{i}\"}}")))
                .collect(),
            refreshes: (0..nshards)
                .map(|i| reg.counter(&format!("cluster_refreshes_total{{shard=\"{i}\"}}")))
                .collect(),
        }
    }
}

/// The shard engines plus their telemetry — split out of
/// [`EngineCluster`] so the serving layer can hold the shards behind
/// their own lock while the head lives in the published snapshot.
#[derive(Debug)]
pub(crate) struct ShardSet {
    pub(crate) shards: Vec<Engine>,
    pub(crate) metrics: ClusterMetrics,
}

impl ShardSet {
    /// Every shard's epoch, in shard order (the cluster epoch vector).
    pub(crate) fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }
}

/// A fused head engine plus N user shards answering as one engine.
/// See the module docs for the partitioning and merge argument.
#[derive(Debug)]
pub struct EngineCluster {
    head: Engine,
    set: ShardSet,
}

impl EngineCluster {
    /// Partitions `head`'s user table across `nshards` shards (each with
    /// the full object tables, built with the head's model, α, fanout and
    /// codec, and the head's dataspace pinned). The head keeps serving
    /// fused answers; a threshold cache is attached to it if missing
    /// (the scatter path installs gathered thresholds through it).
    ///
    /// # Panics
    /// Panics when `nshards == 0`, or when `head` has absorbed mutations
    /// since its build/refresh (a drifted head's frozen scorer differs
    /// from the cold scorer a shard build would compute — construct the
    /// cluster from a freshly built or freshly refreshed engine).
    pub fn from_engine(mut head: Engine, nshards: usize) -> EngineCluster {
        assert!(nshards >= 1, "a cluster needs at least one shard");
        assert!(
            head.mutations_since_refresh() == 0 && !head.has_stale_weights(),
            "build the cluster from a freshly built or refreshed engine: \
             a drifted head's frozen scorer cannot be reproduced by a \
             cold shard build"
        );
        if head.thresholds.is_none() {
            head.thresholds = Some(ThresholdCache::new());
        }
        let metrics = ClusterMetrics::new(head.metrics.registry(), nshards);
        let model = head.ctx.text.model();
        let alpha = head.ctx.alpha;
        let fanout = head.mir.fanout();
        let codec = head.codec();
        let pinned = head.ctx.spatial;
        let shards: Vec<Engine> = (0..nshards)
            .map(|s| {
                let slice: Vec<_> = head
                    .users
                    .iter()
                    .filter(|u| owner(u.id, nshards) == s)
                    .cloned()
                    .collect();
                Engine::build_with_fanout_codec_pinned(
                    head.objects.clone(),
                    slice,
                    model,
                    alpha,
                    fanout,
                    codec,
                    Some(pinned),
                )
            })
            .collect();
        EngineCluster {
            head,
            set: ShardSet { shards, metrics },
        }
    }

    /// Number of user shards.
    pub fn shard_count(&self) -> usize {
        self.set.shards.len()
    }

    /// The fused head engine (full tables; answers are read from here).
    pub fn head(&self) -> &Engine {
        &self.head
    }

    /// The head engine's epoch.
    pub fn epoch(&self) -> u64 {
        self.head.epoch()
    }

    /// The cluster epoch: every shard's epoch, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.set.epochs()
    }

    /// Answers one query: the top-k phase scatters across the shards
    /// (for the methods it helps), the gathered thresholds land in the
    /// head's cache, and the head's unmodified pipeline produces the
    /// answer — bit-identical to a fused [`Engine::query`].
    ///
    /// # Panics
    /// Panics when a user-index method is requested and the head was
    /// built without [`Engine::with_user_index`].
    pub fn query(&self, spec: &QuerySpec, method: Method) -> QueryResult {
        scatter_query(&self.head, &self.set, spec, method)
    }

    /// Applies one mutation: the head decides (rejected mutations touch
    /// no shard), then object changes broadcast to every shard and user
    /// changes route to the owning shard. Returns the head's maintenance
    /// I/O, like [`Engine`]'s mutation methods.
    pub fn apply(&mut self, mutation: Mutation) -> Option<MaintenanceIo> {
        let io = match mutation.clone() {
            Mutation::InsertObject(o) => self.head.insert_object(o),
            Mutation::RemoveObject(id) => self.head.remove_object(id),
            Mutation::InsertUser(u) => self.head.insert_user(u),
            Mutation::RemoveUser(id) => self.head.remove_user(id),
        };
        if io.is_some() {
            route_mutation(&mut self.set, &mutation);
        }
        io
    }

    /// Applies a stream of mutations in order, aggregating what happened
    /// (head-side I/O; rejected mutations are counted and skipped).
    pub fn apply_batch(&mut self, mutations: impl IntoIterator<Item = Mutation>) -> BatchReport {
        let mut report = BatchReport::default();
        for m in mutations {
            match self.apply(m) {
                Some(io) => {
                    report.applied += 1;
                    report.io += io;
                }
                None => report.rejected += 1,
            }
        }
        report
    }

    /// Refreshes the head, then re-pins every shard to the head's fresh
    /// dataspace and rebuilds it — after this, scattered and fused
    /// answers are bit-identical again even if shards had drifted apart
    /// through independent refreshes. Returns the head's report.
    pub fn refresh_synchronized(&mut self) -> RefreshReport {
        let report = self.head.refresh();
        refresh_shards_synchronized(&self.head, &mut self.set);
        report
    }

    /// Per-shard independent refresh: each shard checks `cfg`'s
    /// thresholds against its *own* mutation counters and drift and
    /// re-weighs at its own tier when due. Returns how many shards
    /// refreshed. A refreshed shard's scorer runs ahead of the head's
    /// (drift-bounded divergence, not bit-identity) until the next
    /// [`EngineCluster::refresh_synchronized`].
    pub fn refresh_due_shards(&mut self, cfg: &RefreshConfig) -> usize {
        refresh_due_shards(&mut self.set, cfg)
    }

    /// Splits the cluster into its head and shard set (the serving layer
    /// publishes the head as its snapshot and locks the shards
    /// separately).
    pub(crate) fn into_parts(self) -> (Engine, ShardSet) {
        (self.head, self.set)
    }
}

/// Runs `f` once per shard on scoped worker threads claiming shards off a
/// shared cursor (the same machinery as [`Engine::query_batch_with`]),
/// recording each shard's wall time. Results come back in shard order.
fn run_scattered<T: Send>(set: &ShardSet, f: &(dyn Fn(&Engine) -> T + Sync)) -> Vec<T> {
    let shards = &set.shards;
    if shards.len() == 1 {
        let start = Instant::now();
        let out = f(&shards[0]);
        set.metrics.scatter_latency_us[0].record_duration_us(start.elapsed());
        return vec![out];
    }
    let workers = shards.len().min(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(i) else { break };
                        let start = Instant::now();
                        let out = f(shard);
                        set.metrics.scatter_latency_us[i].record_duration_us(start.elapsed());
                        local.push((i, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(shards.len(), || None);
    for (i, value) in per_worker.into_iter().flatten() {
        out[i] = Some(value);
    }
    out.into_iter()
        .map(|o| o.expect("every shard index is claimed exactly once"))
        .collect()
}

/// Stitches per-shard top-k slices back into the head's user order. The
/// shard slices preserve the head table's relative order (partitioning
/// filters, it never reorders), so one cursor per shard reconstructs the
/// fused `Vec<UserTopk>` exactly.
fn gather_in_head_order(head: &Engine, per_shard: Vec<Vec<UserTopk>>) -> Vec<UserTopk> {
    let nshards = per_shard.len();
    let mut iters: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect();
    let mut tks = Vec::with_capacity(head.users.len());
    for u in &head.users {
        let tk = iters[owner(u.id, nshards)]
            .next()
            .expect("every head user is owned by exactly one shard");
        debug_assert_eq!(tk.user, u.id, "shard slice order must mirror the head");
        tks.push(tk);
    }
    debug_assert!(
        iters.iter_mut().all(|it| it.next().is_none()),
        "shards must not hold users the head does not"
    );
    tks
}

/// One scattered query: fill the head's threshold cache for `spec.k`
/// from per-shard top-k slices (joint and baseline methods; the §7
/// user-index pipelines depend on the fused MIUR tree shape and run on
/// the head outright), then let the head's unmodified pipeline answer.
pub(crate) fn scatter_query(
    head: &Engine,
    set: &ShardSet,
    spec: &QuerySpec,
    method: Method,
) -> QueryResult {
    let tc = head
        .thresholds
        .as_ref()
        .expect("a cluster head always carries a threshold cache");
    let k = spec.k;
    match method {
        Method::JointGreedy | Method::JointGreedyPlus | Method::JointExact => {
            // Mirrors Engine::joint_thresholds' compute closure, with the
            // per-user half scattered. On a warm slot the closure never
            // runs and no scatter happens.
            let _ = tc.joint(k, head.epoch, || {
                let su = head.super_user_shared();
                let out = joint_topk(&head.mir, &su, k, &head.ctx, &head.io);
                let per_shard = run_scattered(set, &|shard| {
                    individual_topk(&shard.users, &out, k, &shard.ctx)
                });
                let tks = gather_in_head_order(head, per_shard);
                let rsk = tks.iter().map(|t| t.rsk).collect();
                JointThresholds { su, out, tks, rsk }
            });
        }
        Method::Baseline => {
            let _ = tc.baseline(k, head.epoch, || {
                let per_shard = run_scattered(set, &|shard| {
                    all_users_topk_baseline(&shard.ir, &shard.users, k, &shard.ctx, &shard.io)
                });
                gather_in_head_order(head, per_shard)
            });
        }
        // §7: the MIUR traversal's pruning depends on the *fused* user
        // tree's node shape — per-shard trees would prune differently.
        // The head answers alone (still bit-identical, by definition).
        Method::UserIndexGreedy | Method::UserIndexExact => {}
    }
    head.query(spec, method)
}

/// Routes one head-accepted mutation onward: object changes broadcast to
/// every shard, user changes go to the owning shard. A shard with no
/// MIUR tree can be drained to its last user (unlike a standalone
/// engine), so removals bypass [`Engine::remove_user`]'s guard.
pub(crate) fn route_mutation(set: &mut ShardSet, mutation: &Mutation) {
    let ShardSet { shards, metrics } = set;
    let nshards = shards.len();
    match mutation {
        Mutation::InsertObject(o) => {
            for (i, shard) in shards.iter_mut().enumerate() {
                let applied = shard.insert_object(o.clone());
                debug_assert!(applied.is_some(), "head accepted ⇒ shards accept");
                metrics.mutations_routed[i].inc();
            }
        }
        Mutation::RemoveObject(id) => {
            for (i, shard) in shards.iter_mut().enumerate() {
                let applied = shard.remove_object(*id);
                debug_assert!(applied.is_some(), "head accepted ⇒ shards accept");
                metrics.mutations_routed[i].inc();
            }
        }
        Mutation::InsertUser(u) => {
            let s = owner(u.id, nshards);
            let applied = shards[s].insert_user(u.clone());
            debug_assert!(applied.is_some(), "head accepted ⇒ owner accepts");
            metrics.mutations_routed[s].inc();
        }
        Mutation::RemoveUser(id) => {
            let s = owner(*id, nshards);
            let shard = &mut shards[s];
            let pos = shard
                .users
                .iter()
                .position(|u| u.id == *id)
                .expect("head accepted ⇒ the owner holds the user");
            debug_assert!(
                shard.miur.is_none(),
                "shards are built without a user index"
            );
            shard.users.remove(pos);
            shard.finish_user_mutation();
            metrics.mutations_routed[s].inc();
        }
    }
}

/// Re-pins every shard to the (already refreshed) head's dataspace and
/// rebuilds it, restoring bit-identity between scattered and fused
/// answers. Empty shards rebuild too — the pinned build path accepts an
/// empty user slice.
pub(crate) fn refresh_shards_synchronized(head: &Engine, set: &mut ShardSet) {
    for (i, shard) in set.shards.iter_mut().enumerate() {
        shard.pinned_spatial = Some(head.ctx.spatial);
        *shard = shard.refreshed();
        set.metrics.refreshes[i].inc();
    }
}

/// Per-shard independent refresh (see
/// [`EngineCluster::refresh_due_shards`]): mirrors the serving layer's
/// tier decision — full past `full_refresh_drift` or with residual stale
/// weights, incremental otherwise. Empty shards never refresh (nothing
/// to re-weigh against their slice, and their pinned hull only moves at
/// the next synchronized refresh).
pub(crate) fn refresh_due_shards(set: &mut ShardSet, cfg: &RefreshConfig) -> usize {
    let mut refreshed = 0;
    for (i, shard) in set.shards.iter_mut().enumerate() {
        if shard.users.is_empty() || !shard_refresh_due(shard, cfg) {
            continue;
        }
        let incremental = if cfg.full_refresh_drift <= 0.0 || shard.has_stale_weights() {
            None
        } else {
            let (live, ledger) = shard.drift_parts(cfg.term_drift_bound);
            (ledger.drift.max_rel_error < cfg.full_refresh_drift).then_some((live, ledger))
        };
        let _report: RefreshReport = match incremental {
            Some((live, ledger)) => {
                let (fresh, report) = shard.refreshed_incremental_from(live, ledger);
                debug_assert_eq!(report.tier, RefreshTier::Incremental);
                *shard = fresh;
                report
            }
            None => shard.refresh(),
        };
        set.metrics.refreshes[i].inc();
        refreshed += 1;
    }
    refreshed
}

/// One shard's due test, against its own counters and drift — the same
/// thresholds [`crate::ServingEngine::needs_refresh`] applies to a fused
/// engine, minus the scan rate limiting (shard tables are a fraction of
/// the fused size, and the caller already batches these checks).
fn shard_refresh_due(shard: &Engine, cfg: &RefreshConfig) -> bool {
    let mutations = shard.mutations_since_refresh();
    if mutations == 0 {
        return false;
    }
    if mutations >= cfg.max_mutations {
        return true;
    }
    if !cfg.max_drift.is_finite() || mutations < cfg.drift_check_after.max(1) {
        return false;
    }
    shard.drift().max_rel_error >= cfg.max_drift
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectData, UserData};
    use geo::Point;
    use text::{Document, TermId, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn obj(id: u32, x: f64, y: f64, term: u32) -> ObjectData {
        ObjectData {
            id,
            point: Point::new(x, y),
            doc: Document::from_pairs([(t(term), 1 + id % 2), (t(7), 1)]),
        }
    }

    fn user(id: u32, x: f64, y: f64, term: u32) -> UserData {
        UserData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(7)]),
        }
    }

    fn fused() -> Engine {
        let objects: Vec<ObjectData> = (0..60)
            .map(|i| obj(i, (i % 10) as f64, (i / 10) as f64, i % 5))
            .collect();
        let users: Vec<UserData> = (0..17)
            .map(|i| user(i, (i % 8) as f64 + 0.4, (i % 5) as f64 + 0.7, i % 5))
            .collect();
        Engine::build_with_fanout(objects, users, WeightModel::lm(), 0.5, 4).with_user_index()
    }

    fn specs() -> Vec<QuerySpec> {
        (0..6)
            .map(|i| QuerySpec {
                ox_doc: Document::from_terms([t(7)]),
                locations: vec![
                    Point::new((i % 3) as f64 + 0.5, 1.2),
                    Point::new(8.0 - (i % 4) as f64, 3.6),
                ],
                keywords: vec![t(0), t(1), t(2), t(3), t(4)],
                ws: 2,
                k: 2 + i % 3,
            })
            .collect()
    }

    #[test]
    fn cluster_matches_fused_for_every_method_and_shard_count() {
        let reference = fused();
        for nshards in [1, 2, 3, 5] {
            let cluster = EngineCluster::from_engine(fused(), nshards);
            assert_eq!(cluster.shard_count(), nshards);
            for spec in &specs() {
                for m in Method::ALL {
                    assert_eq!(
                        cluster.query(spec, m),
                        reference.query(spec, m),
                        "{m:?} × {nshards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn shards_pin_the_head_dataspace_and_hold_user_slices() {
        let cluster = EngineCluster::from_engine(fused(), 3);
        let head = cluster.head();
        let total: usize = cluster.set.shards.iter().map(|s| s.users.len()).sum();
        assert_eq!(total, head.users.len());
        for (s, shard) in cluster.set.shards.iter().enumerate() {
            assert_eq!(shard.ctx.spatial, head.ctx.spatial, "shard {s} pinned");
            assert_eq!(shard.objects.len(), head.objects.len());
            assert!(shard.miur.is_none(), "shards carry no user index");
            assert!(shard.users.iter().all(|u| owner(u.id, 3) == s));
        }
    }

    #[test]
    fn mutations_route_and_identity_survives_churn() {
        let mut reference = fused();
        let mut cluster = EngineCluster::from_engine(fused(), 4);
        let stream = vec![
            Mutation::InsertObject(obj(100, 2.3, 1.1, 0)),
            Mutation::InsertUser(user(40, 3.1, 2.2, 1)),
            Mutation::RemoveObject(3),
            Mutation::RemoveUser(5),
            Mutation::InsertObject(obj(101, 6.0, 4.2, 2)),
            Mutation::RemoveObject(999), // rejected: unknown id
            Mutation::InsertUser(user(40, 0.0, 0.0, 0)), // rejected: duplicate
            Mutation::RemoveUser(12),
        ];
        for m in stream {
            let fused_applied = reference.apply_batch([m.clone()]).applied == 1;
            let cluster_applied = cluster.apply(m).is_some();
            assert_eq!(fused_applied, cluster_applied, "head and fused twin agree");
        }
        for spec in &specs() {
            for m in Method::ALL {
                assert_eq!(cluster.query(spec, m), reference.query(spec, m), "{m:?}");
            }
        }
        // The cluster epoch is the per-shard vector: only owners moved.
        let epochs = cluster.epochs();
        assert_eq!(epochs.len(), 4);
        assert!(epochs.iter().any(|&e| e > 0));
    }

    #[test]
    fn a_shard_can_drain_to_empty_and_keeps_answering() {
        // Two users across two shards → one each; removing one drains its
        // shard entirely (forbidden for a standalone engine).
        let objects: Vec<ObjectData> = (0..30)
            .map(|i| obj(i, (i % 6) as f64, (i / 6) as f64, i % 3))
            .collect();
        let users = vec![user(0, 1.2, 1.3, 0), user(1, 3.4, 2.1, 1)];
        let mut reference =
            Engine::build_with_fanout(objects.clone(), users.clone(), WeightModel::lm(), 0.5, 4);
        let engine = Engine::build_with_fanout(objects, users, WeightModel::lm(), 0.5, 4);
        let mut cluster = EngineCluster::from_engine(engine, 2);

        assert!(cluster.apply(Mutation::RemoveUser(0)).is_some());
        assert!(reference.remove_user(0).is_some());
        assert!(cluster.set.shards[0].users.is_empty());

        let spec = QuerySpec {
            ox_doc: Document::from_terms([t(7)]),
            locations: vec![Point::new(2.0, 1.0), Point::new(4.0, 3.0)],
            keywords: vec![t(0), t(1), t(2)],
            ws: 2,
            k: 2,
        };
        for m in [Method::Baseline, Method::JointExact, Method::JointGreedy] {
            assert_eq!(cluster.query(&spec, m), reference.query(&spec, m), "{m:?}");
        }

        // And the drained shard accepts its users back.
        assert!(cluster
            .apply(Mutation::InsertUser(user(2, 0.8, 0.9, 2)))
            .is_some());
        assert!(reference.insert_user(user(2, 0.8, 0.9, 2)).is_some());
        assert_eq!(cluster.set.shards[0].users.len(), 1);
        for m in [Method::Baseline, Method::JointExact] {
            assert_eq!(cluster.query(&spec, m), reference.query(&spec, m), "{m:?}");
        }
    }

    #[test]
    fn synchronized_refresh_restores_bit_identity() {
        let mut reference = fused();
        let mut cluster = EngineCluster::from_engine(fused(), 3);
        // One-sided churn so the LM scorer genuinely drifts.
        for i in 0..10u32 {
            let m = Mutation::InsertObject(ObjectData {
                id: 300 + i,
                point: Point::new((i % 5) as f64 + 0.2, 2.3),
                doc: Document::from_pairs([(t(0), 3), (t(7), 1)]),
            });
            assert!(cluster.apply(m.clone()).is_some());
            assert_eq!(reference.apply_batch([m]).applied, 1);
        }
        let report = cluster.refresh_synchronized();
        assert_eq!(report.replayed, 0);
        reference.refresh();
        assert_eq!(cluster.head().drift().max_rel_error, 0.0);
        for spec in &specs() {
            for m in Method::ALL {
                assert_eq!(cluster.query(spec, m), reference.query(spec, m), "{m:?}");
            }
        }
    }

    #[test]
    fn per_shard_refresh_decisions_are_independent() {
        let mut cluster = EngineCluster::from_engine(fused(), 4);
        // Route user churn at shard 1 only (ids ≡ 1 mod 4).
        for i in 0..6u32 {
            assert!(cluster
                .apply(Mutation::InsertUser(user(101 + 4 * i, 2.0, 2.0, 1)))
                .is_some());
        }
        let cfg = RefreshConfig {
            max_mutations: 4,
            max_drift: f64::INFINITY,
            ..RefreshConfig::default()
        };
        assert_eq!(cluster.refresh_due_shards(&cfg), 1, "only shard 1 is due");
        assert_eq!(cluster.set.shards[1].mutations_since_refresh(), 0);
        assert_eq!(cluster.set.shards[0].mutations_since_refresh(), 0);
        assert_eq!(cluster.set.shards[2].mutations_since_refresh(), 0);
    }

    #[test]
    #[should_panic(expected = "freshly built or refreshed")]
    fn from_engine_rejects_a_drifted_head() {
        let mut head = fused();
        head.insert_object(obj(500, 1.0, 1.0, 0)).unwrap();
        let _ = EngineCluster::from_engine(head, 2);
    }
}
