//! The incremental refresh tier: re-weigh only what drifted, splice the
//! rest.
//!
//! [`Engine::refreshed`] certifies: it re-weighs every document and
//! bulk-loads every index from scratch — O(|O| log |O|) work even when a
//! churn burst moved the statistics of a handful of terms. This module
//! disseminates: it exploits the fact that corpus statistics reach a
//! stored weight only through a per-term channel
//! ([`WeightModel::corpus_basis`]) to bound the refresh to the drifted
//! part of the corpus.
//!
//! 1. **Drift ledger** — [`Engine::drift_ledger`] compares the frozen
//!    scorer against a freshly computed live one *per term*: the basis
//!    (`idf` / `cf/|C|`) that feeds document weights and the maximum
//!    `wmax(t)` that feeds user normalizers. Terms whose relative error
//!    exceeds [`RefreshConfig::term_drift_bound`] are *drifted*; a
//!    reverse walk over the live tables collects the documents and users
//!    touching them (plus any document whose insert-time clamp fired —
//!    its stored weights are stale regardless of drift).
//! 2. **Partial re-weigh** — [`Engine::refreshed_incremental`] re-weighs
//!    exactly the affected documents under the live statistics, re-norms
//!    the affected users, and splices the new values into twins of the
//!    MIR/IR/MIUR trees ([`StTree::splice_reweighed`] /
//!    `MiurTree::splice_reweighed`): only root-to-leaf paths containing
//!    an affected entry are rewritten; every untouched subtree's records
//!    are copied verbatim at zero simulated I/O. Freed placeholder slots
//!    are reclaimed on the way, exactly as the full tier does.
//! 3. **Exactness** — with the default bound `0.0`, "drifted" means
//!    *changed at all*, so every stored weight left in place is bitwise
//!    equal to what a full re-weigh would compute: the incremental
//!    engine is bit-identical to [`Engine::refreshed`] (pinned for all
//!    six query methods by `tests/incremental_refresh.rs`). Positive
//!    bounds tolerate within-bound stale weights for even less I/O; the
//!    refreshed `wmax` is floored at the frozen values
//!    ([`text::TextScorer::raise_max_weight`]) so every pruning bound
//!    keeps dominating every weight left in the index.
//!
//! The cost model is the point: refresh I/O is proportional to the
//! number of affected root-to-leaf paths — sublinear in |O| whenever
//! drift is term-local — instead of the full index footprint.
//!
//! [`RefreshConfig::term_drift_bound`]: super::RefreshConfig::term_drift_bound
//! [`WeightModel::corpus_basis`]: text::WeightModel::corpus_basis
//! [`StTree::splice_reweighed`]: index::StTree::splice_reweighed

use std::collections::{HashMap, HashSet};

use geo::{Rect, SpatialContext};
use index::SpliceReport;
use storage::IoStats;
use text::{CorpusStats, TermId, TextScorer, WeightedDoc};

use super::{RefreshReport, RefreshTier, ScorerDrift};
use crate::cache::ThresholdCache;
use crate::{Engine, ScoreContext};

/// The per-term drift ledger: which terms moved, and what they touch.
///
/// Produced by [`Engine::drift_ledger`]; consumed by
/// [`Engine::refreshed_incremental`] and the bench layer (which charts
/// refresh I/O against the drifted fraction of the vocabulary).
#[derive(Debug, Clone)]
pub struct DriftLedger {
    /// The aggregate drift metric (identical to [`Engine::drift`]).
    pub drift: ScorerDrift,
    /// The relative bound a term had to exceed to enter
    /// [`DriftLedger::drifted_terms`].
    pub term_drift_bound: f64,
    /// Terms whose statistics moved past the bound: the relative error
    /// of the weight basis ([`text::WeightModel::corpus_basis`]) *or* of
    /// the per-term maximum `wmax(t)`, whichever is larger.
    pub drifted_terms: Vec<TermId>,
    /// Objects whose stored weights may be stale: every object touching
    /// a drifted term, plus every object whose insert-time clamp to the
    /// frozen `wmax` fired (its stored weights were never the frozen
    /// model's to begin with).
    pub reweigh_objects: Vec<u32>,
    /// Users touching a drifted term (their normalizer `N(u)` sums the
    /// per-term maxima, so only `wmax` movement can age it).
    pub reweigh_users: Vec<u32>,
    /// Terms that moved but stayed *within* the bound (`0 < rel ≤
    /// bound`; always 0 at the exact bound). Documents touching only
    /// these terms are spliced without re-weighing — the tolerated
    /// staleness a bounded refresh leaves in the index.
    pub within_bound_terms: usize,
}

impl DriftLedger {
    /// Drifted terms as a fraction of the compared vocabulary, in
    /// `[0, 1]` (0 when nothing was compared).
    pub fn drifted_fraction(&self) -> f64 {
        if self.drift.terms_compared == 0 {
            return 0.0;
        }
        self.drifted_terms.len() as f64 / self.drift.terms_compared as f64
    }
}

/// A freshly computed scorer over the live object documents — the target
/// model both refresh tiers converge to.
fn live_scorer(engine: &Engine) -> TextScorer {
    let stats = CorpusStats::build(engine.objects.iter().map(|o| &o.doc));
    TextScorer::build(
        engine.ctx.text.model(),
        stats,
        engine.objects.iter().map(|o| &o.doc),
    )
}

/// The stored weight vector of one object under the frozen scorer: what
/// build time wrote, and what [`Engine::insert_object`] wrote after
/// clamping to the frozen `wmax` (a no-op for build-time documents,
/// whose weights defined the maxima).
fn stored_weights(frozen: &TextScorer, doc: &text::Document) -> WeightedDoc {
    WeightedDoc::from_pairs(
        frozen
            .weigh(doc)
            .entries
            .iter()
            .map(|&(t, w)| (t, w.min(frozen.max_weight(t))))
            .collect(),
    )
}

/// One pass over the vocabulary and the live tables: the drift metric,
/// the drifted-term set, and the touched documents/users.
fn ledger_scan(engine: &Engine, live: &TextScorer, bound: f64) -> DriftLedger {
    let frozen = &engine.ctx.text;
    let model = frozen.model();
    let vocab = frozen.stats().vocab_len().max(live.stats().vocab_len());

    let rel = |f: f64, l: f64| -> f64 {
        let denom = f.max(l);
        if denom <= 0.0 {
            0.0
        } else {
            (f - l).abs() / denom
        }
    };

    let mut drifted: HashSet<TermId> = HashSet::new();
    let (mut max_rel, mut sum, mut compared) = (0.0f64, 0.0f64, 0usize);
    let mut within_bound_terms = 0usize;
    for i in 0..vocab {
        let t = TermId(i as u32);
        let f_max = frozen.max_weight(t);
        let l_max = live.max_weight(t);
        // The aggregate metric stays the wmax comparison of
        // `Engine::drift` (every pruning bound consumes wmax), counting
        // only terms with weight mass on either side.
        if f_max.max(l_max) > 0.0 {
            let r = rel(f_max, l_max);
            max_rel = max_rel.max(r);
            sum += r;
            compared += 1;
        }
        // A term is *drifted* when either channel moved past the bound:
        // the weight basis ages stored document weights, the maximum
        // ages user normalizers.
        let basis_rel = rel(
            model.corpus_basis(t, frozen.stats()),
            model.corpus_basis(t, live.stats()),
        );
        let combined = rel(f_max, l_max).max(basis_rel);
        if combined > bound {
            drifted.insert(t);
        } else if combined > 0.0 {
            within_bound_terms += 1;
        }
    }

    // The table walks only matter for a finite bound — with `bound =
    // ∞` (the plain `Engine::drift` metric) nothing can drift, so the
    // candidate sets are empty by construction.
    let mut reweigh_objects = Vec::new();
    let mut reweigh_users = Vec::new();
    if bound.is_finite() {
        for o in &engine.objects {
            let touches = o.doc.terms().any(|t| drifted.contains(&t));
            // The clamp check catches inserted outliers whose stored
            // weight is the frozen cap, not the frozen model — stale
            // even when none of their terms drifted.
            let clamped = || {
                o.doc.entries().iter().any(|&(t, tf)| {
                    model.weight(t, tf, o.doc.len(), frozen.stats()) > frozen.max_weight(t)
                })
            };
            if touches || clamped() {
                reweigh_objects.push(o.id);
            }
        }
        reweigh_users = engine
            .users
            .iter()
            .filter(|u| u.doc.terms().any(|t| drifted.contains(&t)))
            .map(|u| u.id)
            .collect();
    }

    let mut drifted_terms: Vec<TermId> = drifted.into_iter().collect();
    drifted_terms.sort_unstable();

    DriftLedger {
        drift: ScorerDrift {
            object_mutations: engine.obj_muts_since_refresh,
            user_mutations: engine.user_muts_since_refresh,
            max_rel_error: max_rel,
            mean_rel_error: if compared > 0 {
                sum / compared as f64
            } else {
                0.0
            },
            terms_compared: compared,
        },
        term_drift_bound: bound,
        drifted_terms,
        reweigh_objects,
        reweigh_users,
        within_bound_terms,
    }
}

impl Engine {
    /// [`Engine::drift`] extended into the per-term ledger the
    /// incremental refresh consumes: the set of terms whose statistics
    /// moved past `term_drift_bound` (relative, in `[0, 1]`; `0.0` means
    /// "changed at all") and the documents/users touching them. One
    /// O(|O| + vocab) scan, no tree work, no simulated I/O. An infinite
    /// bound degenerates to the plain [`Engine::drift`] metric (empty
    /// term and candidate sets).
    pub fn drift_ledger(&self, term_drift_bound: f64) -> DriftLedger {
        self.drift_parts(term_drift_bound).1
    }

    /// The live scorer and its ledger in one scan (the serving layer's
    /// tier decision reuses both, so the O(|O|) work is paid once).
    pub(crate) fn drift_parts(&self, term_drift_bound: f64) -> (TextScorer, DriftLedger) {
        let live = live_scorer(self);
        let ledger = ledger_scan(self, &live, term_drift_bound);
        (live, ledger)
    }

    /// True when a previous *bounded* incremental refresh left
    /// within-bound stale weights in the index. The refresh that spliced
    /// them also advanced the frozen scorer past them, so no later drift
    /// ledger can see them — the next refresh must be a full re-weigh to
    /// certify again, and both [`Engine::refreshed_incremental`] and the
    /// serving tier selection escalate accordingly.
    pub fn has_stale_weights(&self) -> bool {
        self.stale_weights
    }

    /// The incremental twin of [`Engine::refreshed`] at the exact bound
    /// (`term_drift_bound = 0.0`): answers are bit-identical to a full
    /// refresh — and to a cold build over the live tables — but the
    /// refresh I/O is proportional to the drifted part of the corpus.
    /// Returns the re-weighed engine together with its
    /// [`RefreshReport`].
    pub fn refreshed_incremental(&self) -> (Engine, RefreshReport) {
        self.refreshed_incremental_bounded(0.0)
    }

    /// [`Engine::refreshed_incremental`] with an explicit per-term drift
    /// bound. Positive bounds splice documents whose terms drifted by at
    /// most the bound *without* re-weighing them: cheaper still, exact
    /// under a blended model whose `wmax` is floored at the frozen
    /// values so pruning stays sound over the retained weights. The
    /// tolerated staleness is remembered ([`Engine::has_stale_weights`])
    /// and the *next* refresh escalates to the full tier — the ledger
    /// compares against the frozen scorer, which a bounded refresh
    /// advances past the weights it spliced, so only a full re-weigh can
    /// repair them.
    pub fn refreshed_incremental_bounded(&self, term_drift_bound: f64) -> (Engine, RefreshReport) {
        let (live, ledger) = self.drift_parts(term_drift_bound);
        self.refreshed_incremental_from(live, ledger)
    }

    /// The splice half of [`Engine::refreshed_incremental_bounded`],
    /// taking an already-computed live scorer and ledger (so the serving
    /// layer's tier decision and the refresh share one scan).
    pub(crate) fn refreshed_incremental_from(
        &self,
        mut live: TextScorer,
        ledger: DriftLedger,
    ) -> (Engine, RefreshReport) {
        if self.stale_weights {
            // Residual staleness from an earlier bounded refresh is
            // invisible to the ledger: escalate to the full tier.
            let fresh = self.refreshed();
            let report = RefreshReport {
                epoch: fresh.epoch,
                reclaimed_records: self.freed_record_slots(),
                replayed: 0,
                tier: RefreshTier::Full,
                reweighed_docs: fresh.objects.len() as u64,
                reweighed_users: fresh.users.len() as u64,
                spliced_records: 0,
                refresh_io: fresh.rebuild_io_cost(),
            };
            return (fresh, report);
        }
        let frozen = &self.ctx.text;
        let term_drift_bound = ledger.term_drift_bound;

        // Soundness floor for spliced stale weights: a non-drifted term
        // keeps (within the bound) its old stored weights, which were
        // bounded by the *frozen* wmax — the refreshed scorer must not
        // report a smaller maximum. Exact mode never fires this (a
        // non-drifted term's maxima are bitwise equal).
        let drifted: HashSet<TermId> = ledger.drifted_terms.iter().copied().collect();
        let vocab = frozen.stats().vocab_len().max(live.stats().vocab_len());
        for i in 0..vocab {
            let t = TermId(i as u32);
            if !drifted.contains(&t) {
                let floor = frozen.max_weight(t);
                if floor > live.max_weight(t) {
                    live.raise_max_weight(t, floor);
                }
            }
        }

        // Re-weigh exactly the affected entries, skipping no-op rewrites
        // (a candidate whose recomputed values are bitwise unchanged
        // splices like everything else).
        let object_candidates: HashSet<u32> = ledger.reweigh_objects.iter().copied().collect();
        let mut new_weights: HashMap<u32, WeightedDoc> = HashMap::new();
        for o in &self.objects {
            if !object_candidates.contains(&o.id) {
                continue;
            }
            let fresh = live.weigh(&o.doc);
            if stored_weights(frozen, &o.doc) != fresh {
                new_weights.insert(o.id, fresh);
            }
        }
        let user_candidates: HashSet<u32> = ledger.reweigh_users.iter().copied().collect();
        let mut new_norms: HashMap<u32, f64> = HashMap::new();
        for u in &self.users {
            if !user_candidates.contains(&u.id) {
                continue;
            }
            let fresh = live.normalizer(&u.doc);
            if frozen.normalizer(&u.doc) != fresh {
                new_norms.insert(u.id, fresh);
            }
        }

        // Splice the three indexes: affected paths rewritten, the rest
        // carried verbatim into fresh dense block files.
        let mut splice = SpliceReport::default();
        let (mir, rep) = self.mir.splice_reweighed(&new_weights);
        splice.absorb(rep);
        let (ir, rep) = self.ir.splice_reweighed(&new_weights);
        splice.absorb(rep);
        let miur = self.miur.as_ref().map(|m| {
            let (tree, rep) = m.splice_reweighed(&new_norms);
            splice.absorb(rep);
            tree
        });

        // The dataspace hull ages with churn exactly like the scorer;
        // recompute it the way a cold build would (an O(|O|+|U|) scan —
        // the hull is not disk-resident, so this charges nothing). A
        // pinned engine (a cluster shard) keeps its externally supplied
        // dataspace instead, mirroring the pinned build path.
        let spatial = match self.pinned_spatial {
            Some(spatial) => spatial,
            None => {
                let space = Rect::bounding(
                    self.objects
                        .iter()
                        .map(|o| o.point)
                        .chain(self.users.iter().map(|u| u.point)),
                )
                .expect("non-empty dataset");
                SpatialContext::from_dataspace(&space)
            }
        };

        let fresh = Engine {
            ctx: ScoreContext::new(self.ctx.alpha, spatial, live),
            objects: self.objects.clone(),
            users: self.users.clone(),
            mir,
            ir,
            miur,
            // Serving configuration survives with fresh (cold) caches,
            // exactly like the full tier: no page or threshold state can
            // leak across a scorer change.
            io: match self.io.cache() {
                Some(c) => IoStats::with_cache_sharded(c.capacity_blocks(), c.num_shards()),
                None => IoStats::new(),
            },
            thresholds: self
                .thresholds
                .as_ref()
                .map(|tc| ThresholdCache::with_capacity(tc.k_capacity())),
            // Strictly monotone epochs across the swap, as in the full
            // tier.
            epoch: self.epoch + 1,
            user_epoch: self.user_epoch + 1,
            obj_muts_since_refresh: 0,
            user_muts_since_refresh: 0,
            // Telemetry is swap-stable: the spliced engine keeps recording
            // into the same registry (see `Engine::metrics`).
            metrics: std::sync::Arc::clone(&self.metrics),
            // A bounded refresh that tolerated any within-bound movement
            // leaves stale weights behind that this very refresh makes
            // invisible (the frozen scorer advances to `live`): remember
            // it, so the next refresh escalates to a full re-weigh.
            stale_weights: term_drift_bound > 0.0 && ledger.within_bound_terms > 0,
            pinned_spatial: self.pinned_spatial,
        };

        let report = RefreshReport {
            epoch: fresh.epoch,
            reclaimed_records: self.freed_record_slots(),
            replayed: 0,
            tier: RefreshTier::Incremental,
            reweighed_docs: new_weights.len() as u64,
            reweighed_users: new_norms.len() as u64,
            spliced_records: splice.spliced_records,
            refresh_io: splice.io_total(),
        };
        (fresh, report)
    }

    /// In-place [`Engine::refreshed_incremental`]: replaces this engine
    /// with its incrementally re-weighed twin and resets the
    /// mutations-since-refresh counters. Single-threaded convenience —
    /// concurrent serving goes through
    /// [`ServingEngine`](super::ServingEngine), whose worker picks the
    /// tier from measured drift.
    pub fn refresh_incremental(&mut self) -> RefreshReport {
        let (fresh, report) = self.refreshed_incremental();
        *self = fresh;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, ObjectData, QuerySpec, UserData};
    use geo::Point;
    use text::{Document, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn obj(id: u32, x: f64, y: f64, term: u32) -> ObjectData {
        ObjectData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(9)]),
        }
    }

    fn user(id: u32, x: f64, y: f64, term: u32) -> UserData {
        UserData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(9)]),
        }
    }

    fn engine(model: WeightModel) -> Engine {
        let objects: Vec<ObjectData> = (0..40)
            .map(|i| obj(i, (i % 8) as f64, (i / 8) as f64, i % 4))
            .collect();
        let users: Vec<UserData> = (0..10)
            .map(|i| user(i, (i % 6) as f64 + 0.4, (i % 4) as f64 + 0.3, i % 4))
            .collect();
        Engine::build_with_fanout(objects, users, model, 0.5, 4).with_user_index()
    }

    fn spec() -> QuerySpec {
        QuerySpec {
            ox_doc: Document::from_terms([t(9)]),
            locations: vec![Point::new(2.0, 1.5), Point::new(6.0, 3.0)],
            keywords: vec![t(0), t(1), t(2), t(3)],
            ws: 2,
            k: 3,
        }
    }

    #[test]
    fn fresh_engine_has_an_empty_ledger() {
        for model in [
            WeightModel::lm(),
            WeightModel::TfIdf,
            WeightModel::KeywordOverlap,
        ] {
            let eng = engine(model);
            let ledger = eng.drift_ledger(0.0);
            assert!(ledger.drifted_terms.is_empty(), "{model:?}");
            assert!(ledger.reweigh_objects.is_empty(), "{model:?}");
            assert!(ledger.reweigh_users.is_empty(), "{model:?}");
            assert_eq!(ledger.drifted_fraction(), 0.0);
            assert_eq!(ledger.drift.max_rel_error, eng.drift().max_rel_error);
        }
    }

    /// Flooding one term registers it (and everything it touches) in the
    /// ledger; the shared term 9 drifts alongside under LM because the
    /// background estimate renormalizes over |C|.
    #[test]
    fn ledger_tracks_flooded_terms_and_their_documents() {
        let mut eng = engine(WeightModel::lm());
        for i in 0..6 {
            eng.insert_object(ObjectData {
                id: 200 + i,
                point: Point::new((i % 5) as f64 + 0.2, 2.1),
                doc: Document::from_pairs([(t(0), 4)]),
            })
            .unwrap();
        }
        let ledger = eng.drift_ledger(0.0);
        assert!(ledger.drifted_terms.contains(&t(0)));
        assert!(!ledger.drifted_terms.is_empty());
        // Every inserted flooder touches t0 and must be re-weighed.
        for i in 0..6 {
            assert!(ledger.reweigh_objects.contains(&(200 + i)));
        }
        // |C| moved, so every LM term drifts and every user (all touch
        // t9) is a re-norm candidate.
        assert_eq!(ledger.reweigh_users.len(), 10);
        assert!(ledger.drifted_fraction() > 0.0);
    }

    /// The exact incremental refresh is bit-identical to the full tier
    /// (same queries, zero residual drift, counters reset, placeholders
    /// reclaimed) while reporting what it spliced.
    #[test]
    fn incremental_matches_full_refresh_bit_for_bit() {
        for model in [WeightModel::lm(), WeightModel::TfIdf] {
            let mut eng = engine(model)
                .with_threshold_cache()
                .with_page_cache(1 << 12);
            for i in 0..10 {
                eng.insert_object(ObjectData {
                    id: 300 + i,
                    point: Point::new((i % 5) as f64 + 0.3, 2.4),
                    doc: Document::from_pairs([(t(0), 3), (t(9), 1)]),
                })
                .unwrap();
                eng.remove_object(i).unwrap();
            }
            eng.insert_user(user(50, 3.0, 2.0, 2)).unwrap();
            assert!(eng.freed_record_slots() > 0);

            let full = eng.refreshed();
            let (inc, report) = eng.refreshed_incremental();
            assert_eq!(report.tier, RefreshTier::Incremental);
            assert_eq!(report.epoch, eng.epoch() + 1);
            assert!(report.reclaimed_records > 0);
            assert_eq!(inc.epoch(), full.epoch());
            assert_eq!(inc.drift().max_rel_error, 0.0, "{model:?}");
            assert_eq!(inc.mutations_since_refresh(), 0);
            assert_eq!(inc.freed_record_slots(), 0);
            assert!(inc.thresholds.is_some() && inc.io.cache().is_some());

            let s = spec();
            for m in Method::ALL {
                let a = inc.query(&s, m);
                let b = full.query(&s, m);
                // The §7 methods break objective ties by MIUR expansion
                // order, which follows the index shape — and the whole
                // point of the incremental tier is to keep the mutated
                // shape while the full tier re-tiles. Pin the Definition-1
                // objective for them, the full payload for the rest.
                assert_eq!(a.cardinality(), b.cardinality(), "{model:?} {m:?}");
                if !matches!(m, Method::UserIndexGreedy | Method::UserIndexExact) {
                    assert_eq!(a.location, b.location, "{model:?} {m:?}");
                    assert_eq!(a.keywords, b.keywords, "{model:?} {m:?}");
                }
            }
            assert_eq!(
                inc.query(&s, Method::JointExact),
                full.query(&s, Method::JointExact),
                "{model:?}"
            );
        }
    }

    /// Corpus-independent weights (KO) never drift: the incremental tier
    /// degenerates to a pure splice — zero refresh I/O, nothing
    /// re-weighed — while the full tier would have rewritten everything.
    #[test]
    fn keyword_overlap_refreshes_for_free() {
        let mut eng = engine(WeightModel::KeywordOverlap);
        for i in 0..8 {
            eng.insert_object(obj(400 + i, (i % 5) as f64 + 0.1, 3.2, i % 4))
                .unwrap();
            eng.remove_object(i).unwrap();
        }
        let (inc, report) = eng.refreshed_incremental();
        assert_eq!(report.reweighed_docs, 0);
        assert_eq!(report.reweighed_users, 0);
        assert_eq!(report.refresh_io, 0, "pure splice charges nothing");
        assert!(report.spliced_records > 0);
        let full = eng.refreshed();
        assert!(
            full.rebuild_io_cost() > 0,
            "the full tier would write the whole footprint"
        );
        let s = spec();
        assert_eq!(
            inc.query(&s, Method::JointExact),
            full.query(&s, Method::JointExact)
        );
    }

    /// A positive bound splices within-bound drift: less I/O than the
    /// exact mode, internally consistent answers (the floored wmax keeps
    /// every exact method agreeing on the optimum).
    #[test]
    fn bounded_mode_trades_exactness_for_io() {
        let mut eng = engine(WeightModel::lm());
        for i in 0..6 {
            eng.insert_object(ObjectData {
                id: 500 + i,
                point: Point::new((i % 5) as f64 + 0.15, 1.9),
                doc: Document::from_pairs([(t(0), 5), (t(9), 1)]),
            })
            .unwrap();
        }
        let (exact, exact_report) = eng.refreshed_incremental();
        assert!(
            !exact.has_stale_weights(),
            "the exact bound leaves nothing stale"
        );
        let (loose, loose_report) = eng.refreshed_incremental_bounded(0.9);
        assert!(
            loose_report.reweighed_docs <= exact_report.reweighed_docs,
            "a loose bound cannot re-weigh more"
        );
        assert!(loose_report.refresh_io <= exact_report.refresh_io);
        let s = spec();
        let b = loose.query(&s, Method::Baseline);
        let e = loose.query(&s, Method::JointExact);
        let u = loose.query(&s, Method::UserIndexExact);
        assert_eq!(b.cardinality(), e.cardinality());
        assert_eq!(e.cardinality(), u.cardinality());

        // The bounded refresh advanced the frozen scorer past the stale
        // weights it spliced: the engine remembers, because measured
        // drift alone can no longer identify them (what remains visible
        // is only the within-bound wmax floor, far below any plausible
        // full-refresh threshold), and the next incremental refresh
        // escalates to a full re-weigh that certifies again.
        assert!(
            loose.has_stale_weights(),
            "within-bound splices must be remembered"
        );
        assert!(
            loose.drift().max_rel_error <= 0.9,
            "residual drift stays within the tolerated bound"
        );
        let (repaired, repair_report) = loose.refreshed_incremental();
        assert_eq!(
            repair_report.tier,
            RefreshTier::Full,
            "stale engines must escalate"
        );
        assert!(!repaired.has_stale_weights());
        let cold = Engine::build_with_fanout(
            repaired.objects.clone(),
            repaired.users.clone(),
            WeightModel::lm(),
            0.5,
            4,
        )
        .with_user_index();
        assert_eq!(
            repaired.query(&s, Method::JointExact),
            cold.query(&s, Method::JointExact),
            "the escalated full tier restores cold-build equivalence"
        );
    }

    /// The in-place wrapper mirrors `Engine::refresh` semantics.
    #[test]
    fn refresh_incremental_in_place() {
        let mut eng = engine(WeightModel::lm());
        for i in 0..5 {
            eng.insert_object(ObjectData {
                id: 600 + i,
                point: Point::new(1.0 + f64::from(i) * 0.3, 2.8),
                doc: Document::from_pairs([(t(1), 3), (t(9), 1)]),
            })
            .unwrap();
        }
        let before = eng.epoch();
        let report = eng.refresh_incremental();
        assert_eq!(report.epoch, eng.epoch());
        assert!(eng.epoch() > before);
        assert_eq!(eng.drift().max_rel_error, 0.0);
        assert_eq!(eng.mutations_since_refresh(), 0);
    }
}
