//! Background corpus re-weigh with an atomic engine swap.
//!
//! [`crate::dynamic`] freezes the build-time scorer: inserted objects are
//! weighed under the corpus statistics captured at [`Engine::build`] time,
//! and their weights are clamped to the frozen per-term maxima `wmax(t)`
//! so the pruning bounds stay sound. The price is *drift* — under LM and
//! TF-IDF the live corpus statistics walk away from the frozen ones as
//! the corpus churns, exactly as IDF ages in production search engines.
//! This module bounds that drift:
//!
//! * **Drift tracking** — [`Engine::drift`] recomputes the live
//!   `CorpusStats`/`wmax` with one O(|O|) scan (no tree work, no simulated
//!   I/O) and reports the relative error against the frozen scorer as a
//!   [`ScorerDrift`], together with the per-engine mutation counters the
//!   refresh thresholds watch.
//! * **Re-weigh** — [`Engine::refreshed`] rebuilds the scorer, the
//!   dataspace hull and all three disk-resident indexes (MIR, IR, MIUR)
//!   from the live tables into *fresh* block files, which reclaims every
//!   freed placeholder record as a side effect (block-file compaction
//!   falls out for free). [`Engine::refresh`] does the same in place. The
//!   rebuilt engine re-weighs every document unclamped under the new
//!   `wmax`, so a previously clamped TF-IDF outlier gets its true weight
//!   back — and is bit-identical to a cold [`Engine::build`] over the
//!   surviving tables.
//! * **Atomic swap** — [`ServingEngine`] publishes the engine behind an
//!   `Arc`: queries grab a snapshot and run lock-free on it, mutations
//!   serialize on the writer side (falling back to a copy-on-write clone
//!   when a long-lived snapshot is still held), and a refresh rebuilds
//!   entirely off-lock before swapping the fresh `Arc` in. In-flight
//!   queries finish on their old snapshot without ever blocking on the
//!   rebuild; new queries land on the refreshed engine. Caches are handed
//!   off by *dropping*: the rebuilt engine carries fresh (same-shape)
//!   threshold and page caches, and because the refreshed epoch is
//!   strictly above every epoch the old engine ever had, no stale
//!   threshold stamp could survive the swap even if one leaked.
//!
//! # Two refresh tiers
//!
//! A refresh can run at either of two costs ([`RefreshTier`]):
//!
//! * **Full** — the cold rebuild above: every document re-weighed, every
//!   index bulk-loaded from scratch, O(|O| log |O|) work and a write of
//!   the entire index footprint.
//! * **Incremental** ([`incremental`]) — a per-term drift ledger
//!   identifies exactly which terms' statistics moved and which
//!   documents/users those terms touch; only the affected root-to-leaf
//!   paths of MIR/IR/MIUR are rewritten with recomputed aggregates, and
//!   every untouched subtree's records are spliced verbatim into the
//!   fresh block files at zero simulated I/O. With the default exact
//!   bound (`term_drift_bound = 0`) the result is bit-identical to a
//!   full refresh, at I/O proportional to the drifted fraction of the
//!   corpus rather than to its size.
//!
//! [`ServingEngine::refresh_now`] (and therefore the background worker)
//! picks the tier from measured drift: past
//! [`RefreshConfig::full_refresh_drift`] the corpus has churned so
//! broadly that a cold rebuild is cheaper than path-by-path repair;
//! below it the incremental tier keeps background refresh cheap enough
//! to run continuously on a serving box.
//!
//! # Epoch discipline
//!
//! Epochs are strictly monotone across the engine's whole service life,
//! including refreshes: the rebuilt engine starts at `old_epoch + 1` and
//! replaying the mutations that landed during the rebuild bumps it
//! further, so it always publishes *above* the live engine it replaces.
//! An [`EpochGuard`] taken on a pre-swap snapshot therefore reports
//! stale against any post-swap snapshot — "valid for the old epoch" is an
//! observable, testable property (see `tests/refresh_soak.rs`).

pub mod incremental;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use text::WeightModel;

use crate::cache::ThresholdCache;
use crate::cluster::{self, EngineCluster, ShardSet};
use crate::dynamic::{BatchReport, EpochGuard, MaintenanceIo, Mutation};
use crate::metrics::{EngineMetrics, ServingMetrics};
use crate::{Engine, Method, ObjectData, QueryResult, QuerySpec, UserData};

/// How far the frozen scorer has walked away from the live corpus.
///
/// The per-term error compares the frozen `wmax(t)` against the `wmax` a
/// fresh scorer over the live object documents would compute, normalized
/// by the larger of the two (so every term's error is in `[0, 1]` and the
/// metric is symmetric in growth and shrinkage). `wmax` folds both the
/// corpus statistics and the per-document maxima, which makes it the one
/// number every pruning bound in the engine actually consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScorerDrift {
    /// Object mutations since build or the last refresh (the only churn
    /// that moves corpus statistics).
    pub object_mutations: u64,
    /// User mutations since build or the last refresh.
    pub user_mutations: u64,
    /// Largest per-term relative `wmax` error, in `[0, 1]`.
    pub max_rel_error: f64,
    /// Mean per-term relative `wmax` error over the compared terms.
    pub mean_rel_error: f64,
    /// Terms with weight mass on either side that entered the comparison.
    pub terms_compared: usize,
}

impl ScorerDrift {
    /// Total mutations since build or the last refresh.
    pub fn total_mutations(&self) -> u64 {
        self.object_mutations + self.user_mutations
    }
}

/// Thresholds steering [`ServingEngine::needs_refresh`] and the
/// background worker ([`ServingEngine::start_refresher`]).
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Refresh unconditionally once this many mutations accumulated
    /// (objects + users; the user index and the dataspace hull age too).
    pub max_mutations: u64,
    /// Refresh once [`ScorerDrift::max_rel_error`] reaches this. Set to
    /// `f64::INFINITY` to refresh on mutation count alone.
    pub max_drift: f64,
    /// Don't pay the O(|O|) drift scan before this many mutations landed
    /// (a handful of mutations cannot move the statistics of a large
    /// corpus far enough to matter).
    pub drift_check_after: u64,
    /// Per-term relative drift a term must exceed to be *re-weighed* by
    /// the incremental tier (see
    /// [`incremental::DriftLedger`]). `0.0` (the default) is the exact
    /// mode: any term whose statistics moved at all is re-weighed, and
    /// the incremental refresh is bit-identical to a full one. Positive
    /// bounds trade exactness for even less refresh I/O — within-bound
    /// stale weights stay in the index (pruning soundness is preserved
    /// by flooring the refreshed `wmax` at the frozen values).
    pub term_drift_bound: f64,
    /// Measured [`ScorerDrift::max_rel_error`] at or above which
    /// [`ServingEngine::refresh_now`] picks the full tier: broad drift
    /// means most paths would be rewritten anyway, so the cold rebuild
    /// is the cheaper certification. Set to `0.0` to force the full tier
    /// always, or `f64::INFINITY` to always refresh incrementally.
    pub full_refresh_drift: f64,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            max_mutations: 4096,
            max_drift: 0.05,
            drift_check_after: 64,
            term_drift_bound: 0.0,
            full_refresh_drift: 0.35,
        }
    }
}

/// Which tier a refresh ran at (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshTier {
    /// Cold rebuild: every document re-weighed, indexes bulk-loaded.
    Full,
    /// Drift-ledger splice: only affected root-to-leaf paths rewritten.
    Incremental,
}

/// What one refresh did.
#[derive(Debug, Clone, Copy)]
pub struct RefreshReport {
    /// Engine epoch after the refresh (strictly above every epoch the
    /// replaced engine ever had).
    pub epoch: u64,
    /// Freed placeholder record slots the rebuild reclaimed across the
    /// MIR, IR and MIUR block files (both tiers write fresh dense files).
    pub reclaimed_records: u64,
    /// Mutations that landed while the rebuild ran and were replayed onto
    /// the fresh engine before the swap (always 0 for the in-place
    /// [`Engine::refresh`]).
    pub replayed: usize,
    /// Which tier this refresh ran at.
    pub tier: RefreshTier,
    /// Object documents actually re-weighed (`|O|` for the full tier).
    pub reweighed_docs: u64,
    /// Users whose normalizer was recomputed (`|U|` for the full tier).
    pub reweighed_users: u64,
    /// Index records carried into the fresh block files verbatim at zero
    /// simulated I/O (always 0 for the full tier).
    pub spliced_records: u64,
    /// Simulated I/O the refresh write path cost: the full index
    /// footprint for the full tier, the rewritten paths' reads + writes
    /// for the incremental tier. This is the number the bench layer
    /// charts against the fraction of drifted terms.
    pub refresh_io: u64,
}

/// Everything a refresh needs from a snapshot, captured cheaply so the
/// expensive rebuild can run without holding the snapshot `Arc` (holding
/// it would force every concurrent mutation into the copy-on-write
/// fallback for the whole rebuild).
struct RefreshSeed {
    objects: Vec<ObjectData>,
    users: Vec<UserData>,
    model: WeightModel,
    alpha: f64,
    fanout: usize,
    codec: storage::CodecId,
    user_index: bool,
    threshold_capacity: Option<usize>,
    page_cache: Option<(u64, usize)>,
    epoch: u64,
    user_epoch: u64,
    /// The captured engine's telemetry, carried into the rebuilt engine
    /// by `Arc` so metrics history is continuous across the swap.
    metrics: Arc<EngineMetrics>,
    /// Externally pinned dataspace (cluster shards): the rebuild must
    /// score against the same hull as the fused head, not re-derive one
    /// from its own (partial, possibly empty) user slice.
    pinned_spatial: Option<geo::SpatialContext>,
}

impl RefreshSeed {
    fn capture(engine: &Engine) -> RefreshSeed {
        RefreshSeed {
            objects: engine.objects.clone(),
            users: engine.users.clone(),
            model: engine.ctx.text.model(),
            alpha: engine.ctx.alpha,
            fanout: engine.mir.fanout(),
            codec: engine.codec(),
            user_index: engine.miur.is_some(),
            threshold_capacity: engine.thresholds.as_ref().map(|tc| tc.k_capacity()),
            page_cache: engine
                .io
                .cache()
                .map(|c| (c.capacity_blocks(), c.num_shards())),
            epoch: engine.epoch,
            user_epoch: engine.user_epoch,
            metrics: Arc::clone(&engine.metrics),
            pinned_spatial: engine.pinned_spatial,
        }
    }

    /// The actual re-weigh: a cold build over the captured tables (same
    /// model, α, fanout, record codec — so the result is bit-identical to
    /// [`Engine::build_with_fanout`] over the survivors; the codec is the
    /// *captured* engine's, not re-read from the environment) with the
    /// serving configuration restored and the epoch carried strictly
    /// forward.
    fn build(self) -> Engine {
        let mut fresh = Engine::build_with_fanout_codec_pinned(
            self.objects,
            self.users,
            self.model,
            self.alpha,
            self.fanout,
            self.codec,
            self.pinned_spatial,
        );
        if self.user_index {
            fresh = fresh.with_user_index();
        }
        if let Some(cap) = self.threshold_capacity {
            fresh.thresholds = Some(ThresholdCache::with_capacity(cap));
        }
        if let Some((blocks, shards)) = self.page_cache {
            fresh.io = storage::IoStats::with_cache_sharded(blocks, shards);
        }
        // Strictly monotone epochs across the swap: every stamp the old
        // engine ever issued is below the refreshed generation, so no
        // stale threshold-cache slot can validate against it.
        fresh.epoch = self.epoch + 1;
        fresh.user_epoch = self.user_epoch + 1;
        // Telemetry survives the swap (the cold build made a fresh
        // registry; replace it with the captured engine's).
        fresh.metrics = self.metrics;
        fresh
    }
}

impl Engine {
    /// Mutations absorbed since build or the last corpus refresh
    /// (objects + users).
    pub fn mutations_since_refresh(&self) -> u64 {
        self.obj_muts_since_refresh + self.user_muts_since_refresh
    }

    /// Measures how far the frozen scorer drifted from the live corpus:
    /// one O(|O|) scan recomputes `CorpusStats` and `wmax` over the
    /// current object documents and compares per term against the frozen
    /// values (see [`ScorerDrift`]). Cheap relative to a refresh — no
    /// tree work — and charges no simulated I/O (it is bookkeeping, not a
    /// query). The per-term breakdown lives in
    /// [`Engine::drift_ledger`](incremental); this is its aggregate.
    ///
    /// Exactly `0.0` on a freshly built or freshly refreshed engine;
    /// grows under one-sided churn; corpus-independent models
    /// (`WeightModel::KeywordOverlap`) only drift on vocabulary changes.
    pub fn drift(&self) -> ScorerDrift {
        self.drift_ledger(f64::INFINITY).drift
    }

    /// Freed placeholder record slots across the MIR, IR and (when built)
    /// MIUR block files — what a refresh (or the trees' `compacted`
    /// paths) would reclaim.
    pub fn freed_record_slots(&self) -> u64 {
        self.mir.freed_records()
            + self.ir.freed_records()
            + self.miur.as_ref().map_or(0, |m| m.freed_records())
    }

    /// A re-weighed twin of this engine: scorer, dataspace hull and all
    /// indexes rebuilt from the live tables into fresh block files
    /// (reclaiming freed placeholders), serving configuration (caches'
    /// shapes, user index, fanout) preserved, epochs carried strictly
    /// forward. Takes `&self` so a background worker can rebuild off an
    /// immutable snapshot; answers are bit-identical to a cold
    /// [`Engine::build_with_fanout`] over the same tables.
    pub fn refreshed(&self) -> Engine {
        RefreshSeed::capture(self).build()
    }

    /// In-place [`Engine::refreshed`]: replaces this engine's scorer and
    /// indexes with the re-weighed rebuild and resets the
    /// mutations-since-refresh counters. Single-threaded convenience —
    /// concurrent serving goes through [`ServingEngine`]. Always the
    /// full tier; see [`Engine::refresh_incremental`] for the two-tier
    /// alternative.
    pub fn refresh(&mut self) -> RefreshReport {
        let reclaimed = self.freed_record_slots();
        *self = self.refreshed();
        RefreshReport {
            epoch: self.epoch,
            reclaimed_records: reclaimed,
            replayed: 0,
            tier: RefreshTier::Full,
            reweighed_docs: self.objects.len() as u64,
            reweighed_users: self.users.len() as u64,
            spliced_records: 0,
            // The full tier writes every live node record and payload of
            // the fresh indexes.
            refresh_io: self.rebuild_io_cost(),
        }
    }
}

/// Signals between mutators and the background refresher thread.
#[derive(Debug, Default)]
struct Signal {
    /// Mutations landed since the worker last looked.
    pending: bool,
    /// The handle asked the worker to exit.
    stop: bool,
}

/// A concurrently servable engine with background corpus refresh.
///
/// * **Queries** take an [`ServingEngine::snapshot`] (`Arc<Engine>`) and
///   run lock-free on it; the publish lock is held only for the clone.
/// * **Mutations** ([`ServingEngine::apply`]) serialize on the write side
///   of the publish lock and maintain the engine in place. When a query
///   (or anything else) still holds a snapshot `Arc`, the mutation waits
///   briefly for it to drop — new snapshots are blocked, so the holder
///   count only shrinks — and falls back to a copy-on-write clone of the
///   engine for genuinely long-lived holders, guaranteeing progress
///   without ever mutating shared state.
/// * **Refreshes** ([`ServingEngine::refresh_now`], or the background
///   worker from [`ServingEngine::start_refresher`]) capture the live
///   tables, rebuild a re-weighed engine entirely off-lock, replay the
///   mutations that landed meanwhile from an internal journal, and swap
///   the fresh `Arc` in. In-flight queries keep their old snapshot; the
///   old engine is dropped when its last snapshot is.
///
/// Memory note: the journal is only fed while a rebuild is in flight and
/// is drained at every swap, so its footprint is bounded by the mutations
/// one rebuild overlaps — not by the refresh cadence.
#[derive(Debug)]
pub struct ServingEngine {
    /// The published snapshot.
    snap: RwLock<Arc<Engine>>,
    /// Mutations applied while a rebuild is in flight, for replay onto
    /// the rebuilt engine. Lock order: `snap` before `journal`.
    journal: Mutex<Vec<Mutation>>,
    /// True between a refresh's capture announcement and its swap —
    /// mutations journal themselves only in that window (outside it the
    /// next capture would contain them anyway).
    rebuilding: std::sync::atomic::AtomicBool,
    /// Serializes refreshers (the rebuild phase must not run twice).
    refresh_gate: Mutex<()>,
    cfg: RefreshConfig,
    refreshes: AtomicU64,
    incremental_refreshes: AtomicU64,
    /// Mutation-count bucket of the last drift scan (rate-limits the
    /// O(|O|) scan in [`ServingEngine::needs_refresh`]).
    drift_scan_bucket: AtomicU64,
    signal: Mutex<Signal>,
    wake: Condvar,
    /// Serving-layer telemetry handles, drawn from the wrapped engine's
    /// (swap-stable) registry at construction.
    metrics: ServingMetrics,
    /// Cluster backend ([`ServingEngine::new_cluster`]): the user shards
    /// the query path scatters the top-k phase across, while the fused
    /// head lives in `snap` as usual. Lock order: `shards` before `snap`
    /// before `journal` — mutations and refreshes take the shard write
    /// lock first, so routed shard state can never skew from the head.
    shards: Option<RwLock<ShardSet>>,
}

impl ServingEngine {
    /// Wraps an engine for concurrent serving with the default
    /// [`RefreshConfig`].
    pub fn new(engine: Engine) -> Arc<Self> {
        Self::with_config(engine, RefreshConfig::default())
    }

    /// [`ServingEngine::new`] with explicit refresh thresholds.
    pub fn with_config(engine: Engine, cfg: RefreshConfig) -> Arc<Self> {
        Self::with_config_parts(engine, None, cfg)
    }

    /// Wraps an [`EngineCluster`] for concurrent serving: the fused head
    /// becomes the published snapshot (so every fused code path — §7
    /// methods, stats, metrics export — works unchanged) and queries
    /// scatter their top-k phase across the cluster's user shards.
    /// Mutations route to owning shards under the shard lock; refreshes
    /// are synchronized (head first, then every shard re-pinned and
    /// rebuilt) so cluster answers stay bit-identical to a fused engine
    /// across swaps.
    pub fn new_cluster(cluster: EngineCluster) -> Arc<Self> {
        Self::with_config_cluster(cluster, RefreshConfig::default())
    }

    /// [`ServingEngine::new_cluster`] with explicit refresh thresholds.
    pub fn with_config_cluster(cluster: EngineCluster, cfg: RefreshConfig) -> Arc<Self> {
        let (head, set) = cluster.into_parts();
        Self::with_config_parts(head, Some(RwLock::new(set)), cfg)
    }

    fn with_config_parts(
        engine: Engine,
        shards: Option<RwLock<ShardSet>>,
        cfg: RefreshConfig,
    ) -> Arc<Self> {
        let metrics = ServingMetrics::new(engine.metrics.registry());
        Arc::new(ServingEngine {
            snap: RwLock::new(Arc::new(engine)),
            journal: Mutex::new(Vec::new()),
            rebuilding: std::sync::atomic::AtomicBool::new(false),
            refresh_gate: Mutex::new(()),
            cfg,
            refreshes: AtomicU64::new(0),
            incremental_refreshes: AtomicU64::new(0),
            drift_scan_bucket: AtomicU64::new(0),
            signal: Mutex::new(Signal::default()),
            wake: Condvar::new(),
            metrics,
            shards,
        })
    }

    /// Number of user shards behind this serving engine (0 when it wraps
    /// a plain fused engine).
    pub fn shard_count(&self) -> usize {
        self.shards
            .as_ref()
            .map_or(0, |lock| lock.read().unwrap().shards.len())
    }

    /// The cluster epoch: every shard's epoch in shard order (empty when
    /// not cluster-backed). The head's own epoch is
    /// [`ServingEngine::epoch`], as ever.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards
            .as_ref()
            .map_or_else(Vec::new, |lock| lock.read().unwrap().epochs())
    }

    /// The refresh thresholds in force.
    pub fn config(&self) -> &RefreshConfig {
        &self.cfg
    }

    /// The current published snapshot. Queries on it never block on (and
    /// are never torn by) concurrent mutations or swaps; pair it with
    /// [`Engine::epoch_guard`] to detect afterwards whether the results
    /// describe a superseded generation.
    pub fn snapshot(&self) -> Arc<Engine> {
        self.snap.read().unwrap().clone()
    }

    /// Epoch of the published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Completed refreshes over this serving engine's lifetime.
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// How many of those refreshes ran at the incremental tier (the rest
    /// were full rebuilds).
    pub fn incremental_refreshes(&self) -> u64 {
        self.incremental_refreshes.load(Ordering::Relaxed)
    }

    /// Mutations currently journaled for replay onto an in-flight
    /// rebuild. Zero outside a rebuild window (every swap drains the
    /// journal); growth during a rebuild measures the write-path backlog
    /// a swap will have to replay, which is what the network layer's
    /// admission control watches to shed mutations under pressure.
    pub fn journal_depth(&self) -> usize {
        self.journal.lock().unwrap().len()
    }

    /// Answers one query on the current snapshot, returning the result
    /// with the guard that certifies which generation computed it. On a
    /// cluster backend the top-k phase scatters across the user shards
    /// (shard read lock held for the query; mutations and refreshes take
    /// it exclusively, so the gathered thresholds always match the
    /// snapshot they are installed into).
    pub fn query(&self, spec: &QuerySpec, method: Method) -> (QueryResult, EpochGuard) {
        if let Some(lock) = &self.shards {
            let set = lock.read().unwrap();
            let snap = self.snapshot();
            let guard = snap.epoch_guard();
            return (cluster::scatter_query(&snap, &set, spec, method), guard);
        }
        let snap = self.snapshot();
        let guard = snap.epoch_guard();
        (snap.query(spec, method), guard)
    }

    /// Applies one mutation (see [`Engine::insert_object`] and friends for
    /// semantics); rejected mutations return `None`. Wakes the background
    /// refresher, if one is running. On a cluster backend the mutation is
    /// additionally routed under the shard write lock — to every shard
    /// for object changes, to the owning shard for user changes — only
    /// after the authoritative head accepted it.
    pub fn apply(&self, mutation: Mutation) -> Option<MaintenanceIo> {
        if let Some(lock) = &self.shards {
            let mut set = lock.write().unwrap();
            let io = self.apply_fused(mutation.clone());
            if io.is_some() {
                cluster::route_mutation(&mut set, &mutation);
            }
            return io;
        }
        self.apply_fused(mutation)
    }

    fn apply_fused(&self, mutation: Mutation) -> Option<MaintenanceIo> {
        let io = {
            let mut published = self.snap.write().unwrap();
            let engine = self.exclusive(&mut published);
            // Journal only while a rebuild is in flight. The flag is read
            // under the write lock and *set* by the refresher under the
            // read lock of the same `RwLock` (see `refresh_now`), so the
            // two critical sections are totally ordered: either this
            // mutation completed before the capture acquired the read
            // lock — the captured snapshot contains it, and any spurious
            // journal entry is cleared under that same read lock — or this
            // write-lock acquisition synchronizes-with the capture's
            // read-lock release and the `SeqCst` load below is guaranteed
            // to observe `true`, so the mutation journals itself and is
            // replayed onto the rebuilt engine before the swap. A
            // `Relaxed` load here (the pre-fix code) had no such
            // guarantee: a mutation landing right after the capture could
            // read a stale `false`, skip the journal, and be silently
            // dropped by the swap.
            let journal = self.rebuilding.load(Ordering::SeqCst);
            let mutate_start = Instant::now();
            let io = match mutation.clone() {
                Mutation::InsertObject(o) => engine.insert_object(o),
                Mutation::RemoveObject(id) => engine.remove_object(id),
                Mutation::InsertUser(u) => engine.insert_user(u),
                Mutation::RemoveUser(id) => engine.remove_user(id),
            };
            self.metrics
                .mutation_latency_us
                .record_duration_us(mutate_start.elapsed());
            if io.is_some() && journal {
                let mut j = self.journal.lock().unwrap();
                j.push(mutation);
                self.metrics.journal_depth.set(j.len() as f64);
            }
            io
        };
        if io.is_some() {
            let mut s = self.signal.lock().unwrap();
            s.pending = true;
            self.wake.notify_one();
        }
        io
    }

    /// Applies a stream of mutations in order (each one is individually
    /// published — queries may interleave anywhere).
    pub fn apply_batch(&self, mutations: impl IntoIterator<Item = Mutation>) -> BatchReport {
        let mut report = BatchReport::default();
        for m in mutations {
            match self.apply(m) {
                Some(io) => {
                    report.applied += 1;
                    report.io += io;
                }
                None => report.rejected += 1,
            }
        }
        report
    }

    /// Exclusive access to the published engine for a writer already
    /// holding the write lock. Waits briefly for in-flight snapshot
    /// holders to drain (the write lock blocks new snapshots, so the
    /// count only shrinks), then falls back to a copy-on-write clone so a
    /// long-running reader can never stall mutations — it simply keeps
    /// its private pre-mutation engine alive until it drops the `Arc`.
    /// The drain wait lands in `serving_swap_wait_us`; a taken fallback
    /// bumps `serving_cow_fallbacks_total`.
    fn exclusive<'a>(&self, published: &'a mut Arc<Engine>) -> &'a mut Engine {
        let wait_start = Instant::now();
        for _ in 0..64 {
            if Arc::get_mut(published).is_some() {
                break;
            }
            std::thread::yield_now();
        }
        if Arc::get_mut(published).is_none() {
            self.metrics.cow_fallbacks.inc();
            let copy = Engine::clone(published);
            *published = Arc::new(copy);
        }
        self.metrics
            .swap_wait_us
            .record_duration_us(wait_start.elapsed());
        Arc::get_mut(published).expect("writer holds the only new reference")
    }

    /// Whether the configured thresholds say it is time to re-weigh:
    /// unconditionally past `max_mutations`, or when the measured
    /// [`ScorerDrift`] exceeds `max_drift`. The O(|O|) drift scan is
    /// rate-limited to once per `drift_check_after` mutations (it also
    /// pins a snapshot for its duration, pushing concurrent mutations
    /// into the copy-on-write fallback — another reason not to run it per
    /// wake), so between scan points this can return `false` while the
    /// true drift is already past the bound; the answer is advisory by a
    /// bounded amount of churn.
    pub fn needs_refresh(&self) -> bool {
        let snap = self.snapshot();
        let mutations = snap.mutations_since_refresh();
        if mutations == 0 {
            return false;
        }
        if mutations >= self.cfg.max_mutations {
            return true;
        }
        if !self.cfg.max_drift.is_finite() || mutations < self.cfg.drift_check_after.max(1) {
            return false;
        }
        let bucket = mutations / self.cfg.drift_check_after.max(1);
        if bucket <= self.drift_scan_bucket.load(Ordering::Relaxed) {
            return false;
        }
        self.drift_scan_bucket.store(bucket, Ordering::Relaxed);
        snap.drift().max_rel_error >= self.cfg.max_drift
    }

    /// Runs one refresh now, on the calling thread: capture the live
    /// tables, rebuild off-lock, replay the mutations that landed during
    /// the rebuild, swap. Concurrent callers serialize; queries keep
    /// running on the old snapshot throughout and only the final swap
    /// takes the (briefly held) write lock.
    ///
    /// The tier is chosen from measured drift (see
    /// [`RefreshConfig::full_refresh_drift`]): broad drift certifies with
    /// a full cold rebuild, term-local drift disseminates with the
    /// incremental splice ([`Engine::refreshed_incremental`]). The
    /// incremental tier rebuilds off the pinned snapshot `Arc`, so
    /// mutations racing it take the copy-on-write fallback for its
    /// (short) duration; the full tier clones the tables out first,
    /// exactly as before.
    pub fn refresh_now(&self) -> RefreshReport {
        if let Some(lock) = &self.shards {
            // Cluster refresh is synchronized: the shard write lock is
            // held across the whole head refresh (mutations block, so
            // the journal replay below is necessarily empty; snapshot
            // reads keep flowing), then every shard is re-pinned to the
            // fresh head's dataspace and rebuilt — scattered answers are
            // bit-identical to the fused engine again on the other side.
            let mut set = lock.write().unwrap();
            let report = self.refresh_now_fused();
            debug_assert_eq!(report.replayed, 0, "shard lock blocks mutations");
            let head = self.snapshot();
            cluster::refresh_shards_synchronized(&head, &mut set);
            return report;
        }
        self.refresh_now_fused()
    }

    fn refresh_now_fused(&self) -> RefreshReport {
        let _gate = self.refresh_gate.lock().unwrap();
        let refresh_start = Instant::now();

        // Phase 1: announce the rebuild and capture under one read-lock
        // critical section. Ordering matters: mutations check the flag
        // under the *write* lock of the same `RwLock`, so publishing the
        // flag inside the read-locked section means every mutation either
        // completed before the capture (and is contained in the snapshot;
        // its journal entry, if any, is cleared here) or starts after the
        // capture's read lock released (and is then guaranteed to observe
        // the flag and journal itself). Setting the flag *before* taking
        // the read lock — the pre-fix code, with `Relaxed` ordering on
        // both sides — left a window where a mutation landing right after
        // the capture could miss both the snapshot and the journal and be
        // silently dropped by the swap.
        let (snapshot, reclaimed) = {
            let published = self.snap.read().unwrap();
            self.rebuilding.store(true, Ordering::SeqCst);
            self.journal.lock().unwrap().clear();
            // The journal is empty: anything it held was applied before
            // this read lock and is in the captured snapshot.
            self.metrics.journal_depth.set(0.0);
            (Arc::clone(&published), published.freed_record_slots())
        };

        // Phase 2: the expensive rebuild — no locks held. The tier
        // decision pays one O(|O|) drift scan unless the config forces
        // the full tier; the incremental path reuses the same scan for
        // its ledger. An engine carrying within-bound stale weights from
        // an earlier bounded refresh always escalates to the full tier
        // (the ledger cannot see that staleness).
        let incremental = if self.cfg.full_refresh_drift <= 0.0 || snapshot.has_stale_weights() {
            None
        } else {
            let (live, ledger) = snapshot.drift_parts(self.cfg.term_drift_bound);
            (ledger.drift.max_rel_error < self.cfg.full_refresh_drift).then_some((live, ledger))
        };
        let (mut fresh, mut report) = match incremental {
            Some((live, ledger)) => {
                let (fresh, mut report) = snapshot.refreshed_incremental_from(live, ledger);
                report.reclaimed_records = reclaimed;
                drop(snapshot);
                (fresh, report)
            }
            None => {
                let seed = RefreshSeed::capture(&snapshot);
                drop(snapshot); // release before the rebuild: mutations stay cheap
                let fresh = seed.build();
                let report = RefreshReport {
                    epoch: 0, // filled after replay
                    reclaimed_records: reclaimed,
                    replayed: 0,
                    tier: RefreshTier::Full,
                    reweighed_docs: fresh.objects.len() as u64,
                    reweighed_users: fresh.users.len() as u64,
                    spliced_records: 0,
                    refresh_io: fresh.rebuild_io_cost(),
                };
                (fresh, report)
            }
        };

        // Phase 3: swap. Replay what landed during the rebuild, then
        // publish. The epoch ends at `captured + 1 + replayed`, strictly
        // above the live engine's `captured + replayed`.
        let swap_wait = Instant::now();
        let mut published = self.snap.write().unwrap();
        self.metrics
            .swap_wait_us
            .record_duration_us(swap_wait.elapsed());
        let mut journal = self.journal.lock().unwrap();
        report.replayed = journal.len();
        let replay = fresh.apply_batch(journal.drain(..));
        debug_assert_eq!(
            replay.rejected, 0,
            "journaled mutations applied once and must replay cleanly"
        );
        report.epoch = fresh.epoch();
        *published = Arc::new(fresh);
        self.rebuilding.store(false, Ordering::SeqCst);
        // Replay drained the journal: without this reset the gauge kept
        // the last pushed depth forever, reporting a phantom backlog.
        self.metrics.journal_depth.set(0.0);
        drop(journal);
        drop(published);
        self.drift_scan_bucket.store(0, Ordering::Relaxed);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        if report.tier == RefreshTier::Incremental {
            self.incremental_refreshes.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics
            .record_refresh(report.tier, refresh_start.elapsed(), report.replayed);
        report
    }

    /// Spawns the background re-weigh worker: it sleeps until mutations
    /// land, re-checks [`ServingEngine::needs_refresh`], and runs
    /// [`ServingEngine::refresh_now`] when the thresholds say so. Drop
    /// (or [`RefresherHandle::stop`]) the returned handle to stop and
    /// join the worker.
    pub fn start_refresher(self: &Arc<Self>) -> RefresherHandle {
        let owner = Arc::clone(self);
        let thread = std::thread::spawn(move || loop {
            {
                let mut s = owner.signal.lock().unwrap();
                while !s.pending && !s.stop {
                    s = owner.wake.wait(s).unwrap();
                }
                if s.stop {
                    return;
                }
                s.pending = false;
            }
            if owner.needs_refresh() {
                owner.refresh_now();
            }
        });
        RefresherHandle {
            owner: Arc::clone(self),
            thread: Some(thread),
        }
    }

    fn stop_worker(&self, thread: &mut Option<JoinHandle<()>>) {
        if let Some(handle) = thread.take() {
            self.signal.lock().unwrap().stop = true;
            self.wake.notify_all();
            handle.join().expect("refresher worker must not panic");
            // Allow a future `start_refresher` on the same engine.
            self.signal.lock().unwrap().stop = false;
        }
    }
}

/// Handle to the background re-weigh worker of a [`ServingEngine`].
/// Stopping (explicitly or by drop) joins the thread; a refresh already
/// in progress completes first.
#[derive(Debug)]
pub struct RefresherHandle {
    owner: Arc<ServingEngine>,
    thread: Option<JoinHandle<()>>,
}

impl RefresherHandle {
    /// Stops and joins the worker, returning how many refreshes the
    /// serving engine has completed in total.
    pub fn stop(mut self) -> u64 {
        self.owner.stop_worker(&mut self.thread);
        self.owner.refreshes()
    }
}

impl Drop for RefresherHandle {
    fn drop(&mut self) {
        self.owner.stop_worker(&mut self.thread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;
    use text::{Document, TermId};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn obj(id: u32, x: f64, y: f64, term: u32) -> ObjectData {
        ObjectData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(9)]),
        }
    }

    fn user(id: u32, x: f64, y: f64, term: u32) -> UserData {
        UserData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(9)]),
        }
    }

    fn engine(model: WeightModel) -> Engine {
        let objects: Vec<ObjectData> = (0..40)
            .map(|i| obj(i, (i % 8) as f64, (i / 8) as f64, i % 4))
            .collect();
        let users: Vec<UserData> = (0..10)
            .map(|i| user(i, (i % 6) as f64 + 0.4, (i % 4) as f64 + 0.3, i % 4))
            .collect();
        Engine::build_with_fanout(objects, users, model, 0.5, 4).with_user_index()
    }

    fn spec() -> QuerySpec {
        QuerySpec {
            ox_doc: Document::from_terms([t(9)]),
            locations: vec![Point::new(2.0, 1.5), Point::new(6.0, 3.0)],
            keywords: vec![t(0), t(1), t(2), t(3)],
            ws: 2,
            k: 3,
        }
    }

    #[test]
    fn fresh_engine_has_zero_drift() {
        for model in [
            WeightModel::lm(),
            WeightModel::TfIdf,
            WeightModel::KeywordOverlap,
        ] {
            let eng = engine(model);
            let d = eng.drift();
            assert_eq!(d.max_rel_error, 0.0, "{model:?}");
            assert_eq!(d.mean_rel_error, 0.0, "{model:?}");
            assert_eq!(d.total_mutations(), 0);
            assert!(d.terms_compared > 0);
        }
    }

    #[test]
    fn drift_counts_mutations_per_side() {
        let mut eng = engine(WeightModel::lm());
        eng.insert_object(obj(100, 1.1, 1.1, 0)).unwrap();
        eng.insert_user(user(100, 1.2, 1.2, 1)).unwrap();
        eng.remove_object(100).unwrap();
        let d = eng.drift();
        assert_eq!(d.object_mutations, 2);
        assert_eq!(d.user_mutations, 1);
        assert_eq!(eng.mutations_since_refresh(), 3);
    }

    /// In-place refresh: bit-identical to a cold build over the live
    /// tables, drift back to zero, counters reset, placeholders gone,
    /// epochs strictly advanced.
    #[test]
    fn refresh_restores_cold_build_equivalence() {
        let mut eng = engine(WeightModel::lm())
            .with_threshold_cache()
            .with_page_cache(1 << 12);
        for i in 0..12 {
            // One-sided churn: inserted docs flood term 0 with a heavier
            // term frequency than anything in the build-time corpus, so
            // the LM background model (cf/|C|) genuinely moves.
            eng.insert_object(ObjectData {
                id: 200 + i,
                point: Point::new((i % 5) as f64 + 0.2, 2.1),
                doc: Document::from_pairs([(t(0), 3), (t(9), 1)]),
            })
            .unwrap();
            eng.remove_object(i).unwrap();
        }
        eng.insert_user(user(50, 3.0, 2.0, 2)).unwrap();
        assert!(eng.drift().max_rel_error > 0.0, "LM must drift under churn");
        assert!(eng.freed_record_slots() > 0);
        let epoch_before = eng.epoch();

        let report = eng.refresh();
        assert!(report.reclaimed_records > 0);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.epoch, eng.epoch());
        assert!(eng.epoch() > epoch_before);
        assert_eq!(eng.drift().max_rel_error, 0.0);
        assert_eq!(eng.mutations_since_refresh(), 0);
        assert_eq!(eng.freed_record_slots(), 0);
        // Serving configuration survives the rebuild.
        assert!(eng.thresholds.is_some());
        assert!(eng.io.cache().is_some());

        let cold = Engine::build_with_fanout(
            eng.objects.clone(),
            eng.users.clone(),
            WeightModel::lm(),
            0.5,
            4,
        )
        .with_user_index();
        let s = spec();
        for m in Method::ALL {
            assert_eq!(
                eng.query(&s, m).cardinality(),
                cold.query(&s, m).cardinality(),
                "{m:?}"
            );
        }
        assert_eq!(
            eng.query(&s, Method::JointExact),
            cold.query(&s, Method::JointExact)
        );
    }

    #[test]
    fn clone_is_deep_and_cold() {
        let eng = engine(WeightModel::lm())
            .with_threshold_cache()
            .with_page_cache(1 << 12);
        let s = spec();
        let _ = eng.query(&s, Method::JointExact); // warm caches + counters
        let twin = eng.clone();
        assert_eq!(twin.io.total(), 0, "clone starts with cold counters");
        assert_eq!(twin.epoch(), eng.epoch());
        // Mutating the clone leaves the original untouched.
        let mut twin = twin;
        twin.remove_object(0).unwrap();
        assert_eq!(eng.objects.len(), 40);
        assert_eq!(twin.objects.len(), 39);
        assert_eq!(twin.epoch(), eng.epoch() + 1);
        assert_eq!(
            eng.query(&s, Method::JointExact),
            engine(WeightModel::lm()).query(&s, Method::JointExact),
            "original still answers like a fresh twin"
        );
    }

    #[test]
    fn serving_engine_applies_and_journals_only_during_rebuilds() {
        let serving = ServingEngine::new(engine(WeightModel::KeywordOverlap));
        assert!(serving
            .apply(Mutation::InsertObject(obj(100, 1.0, 1.0, 1)))
            .is_some());
        assert!(
            serving.apply(Mutation::RemoveObject(999)).is_none(),
            "unknown id is rejected"
        );
        assert!(
            serving.journal.lock().unwrap().is_empty(),
            "no rebuild in flight → nothing to journal (the next capture contains it)"
        );
        assert_eq!(serving.epoch(), 1);
        assert_eq!(serving.snapshot().objects.len(), 41);

        // With the rebuild window open, applied mutations journal and
        // rejected ones still do not.
        serving.rebuilding.store(true, Ordering::Relaxed);
        assert!(serving
            .apply(Mutation::InsertObject(obj(101, 1.5, 1.0, 2)))
            .is_some());
        assert!(serving.apply(Mutation::RemoveObject(999)).is_none());
        serving.rebuilding.store(false, Ordering::Relaxed);
        assert_eq!(serving.journal.lock().unwrap().len(), 1);
    }

    /// Mutations racing a refresh are never lost: whatever lands during
    /// the rebuild is replayed onto the fresh engine before the swap, and
    /// the journal never retains anything once the refresh completes.
    #[test]
    fn concurrent_mutations_during_refresh_are_replayed() {
        let serving = ServingEngine::new(engine(WeightModel::lm()));
        std::thread::scope(|s| {
            let serving = &serving;
            let refresher = s.spawn(move || {
                let mut reports = Vec::new();
                for _ in 0..3 {
                    reports.push(serving.refresh_now());
                }
                reports
            });
            for i in 0..30u32 {
                assert!(serving
                    .apply(Mutation::InsertObject(obj(
                        400 + i,
                        (i % 6) as f64 + 0.2,
                        1.7,
                        i % 4
                    )))
                    .is_some());
                std::thread::yield_now();
            }
            let reports = refresher.join().unwrap();
            // Epochs strictly advance across refreshes regardless of the
            // interleaving.
            for w in reports.windows(2) {
                assert!(w[1].epoch > w[0].epoch);
            }
        });
        let snap = serving.snapshot();
        assert_eq!(snap.objects.len(), 70, "no insert may be lost");
        for i in 0..30u32 {
            assert!(snap.objects.iter().any(|o| o.id == 400 + i), "object {i}");
        }
        assert!(serving.journal.lock().unwrap().is_empty());
        // And the final state still answers like a cold rebuild.
        serving.refresh_now();
        let snap = serving.snapshot();
        let cold = Engine::build_with_fanout(
            snap.objects.clone(),
            snap.users.clone(),
            WeightModel::lm(),
            0.5,
            4,
        )
        .with_user_index();
        let s_ = spec();
        assert_eq!(
            snap.query(&s_, Method::JointExact),
            cold.query(&s_, Method::JointExact)
        );
    }

    #[test]
    fn refresh_now_replays_nothing_when_quiesced_and_swaps() {
        let serving = ServingEngine::new(engine(WeightModel::lm()));
        serving.apply_batch((0..8).map(|i| Mutation::InsertObject(obj(100 + i, 2.0, 2.0, 0))));
        let before = serving.epoch();
        let report = serving.refresh_now();
        assert_eq!(report.replayed, 0);
        assert!(report.epoch > before);
        assert_eq!(serving.epoch(), report.epoch);
        assert_eq!(serving.refreshes(), 1);
        assert_eq!(serving.snapshot().drift().max_rel_error, 0.0);
        assert!(serving.journal.lock().unwrap().is_empty());
    }

    #[test]
    fn needs_refresh_tracks_mutation_threshold() {
        let cfg = RefreshConfig {
            max_mutations: 3,
            max_drift: f64::INFINITY,
            drift_check_after: 1,
            ..RefreshConfig::default()
        };
        let serving = ServingEngine::with_config(engine(WeightModel::KeywordOverlap), cfg);
        assert!(!serving.needs_refresh());
        serving.apply(Mutation::InsertObject(obj(100, 1.0, 1.0, 0)));
        serving.apply(Mutation::InsertObject(obj(101, 1.5, 1.0, 1)));
        assert!(!serving.needs_refresh());
        serving.apply(Mutation::InsertObject(obj(102, 1.5, 2.0, 2)));
        assert!(serving.needs_refresh());
        serving.refresh_now();
        assert!(!serving.needs_refresh(), "counters reset with the swap");
    }

    /// The background worker refreshes on its own once the threshold is
    /// crossed, and the handle joins cleanly.
    #[test]
    fn background_worker_refreshes_past_threshold() {
        let cfg = RefreshConfig {
            max_mutations: 5,
            max_drift: f64::INFINITY,
            drift_check_after: 1,
            ..RefreshConfig::default()
        };
        let serving = ServingEngine::with_config(engine(WeightModel::lm()), cfg);
        let worker = serving.start_refresher();
        for i in 0..20 {
            serving.apply(Mutation::InsertObject(obj(
                300 + i,
                (i % 4) as f64 + 0.1,
                1.0,
                i % 4,
            )));
        }
        // The worker owes us at least one refresh; give it a moment.
        for _ in 0..2_000 {
            if serving.refreshes() > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let refreshes = worker.stop();
        assert!(refreshes > 0, "worker must have refreshed at least once");
        assert!(serving.snapshot().mutations_since_refresh() < 20);
    }

    /// Copy-on-write fallback: a mutation applied while a snapshot is
    /// pinned makes progress on a private copy; the pinned snapshot stays
    /// bit-stable.
    #[test]
    fn mutation_progresses_while_snapshot_is_pinned() {
        let serving = ServingEngine::new(engine(WeightModel::KeywordOverlap));
        let pinned = serving.snapshot();
        let objects_before = pinned.objects.len();
        assert!(serving.apply(Mutation::RemoveObject(0)).is_some());
        assert_eq!(
            pinned.objects.len(),
            objects_before,
            "pinned snapshot untouched"
        );
        assert_eq!(serving.snapshot().objects.len(), objects_before - 1);
        assert!(pinned.objects.iter().any(|o| o.id == 0));
    }
}
