//! §7: candidate selection with disk-resident users (MIUR-tree pipeline).
//!
//! When the user set is large (or sparse), the paper indexes the users in
//! an MIUR-tree and drives candidate selection through it. The root plays
//! the super-user's role for the joint object traversal; the per-location
//! lists `LU_ℓ` may then contain whole user *subtrees*, each summarized by
//! its MBR, IntUni vectors and user count. A subtree is only expanded when
//! the best-first loop actually needs it — users inside subtrees whose
//! upper bound never justifies expansion are *pruned*: their top-k objects
//! (and `RSk(u)`) are never computed. The fraction of such users is the
//! paper's "Users pruned (%)" metric (Fig. 15b).

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

use geo::Point;
use index::{MiurTree, PostingMode, StTree, UserRef};
use storage::{IoStats, RecordId};
use text::Document;

use crate::arena::{ElemSlot, QueryArena, SelectScratch, UserIndexScratch};
use crate::bounds::lb_object;
use crate::select::location::KeywordSelector;
use crate::select::{exact, greedy, CandidateContext};
use crate::topk::individual::{individual_topk_user, refine_user_heap};
use crate::topk::joint::joint_topk;
use crate::topk::{ByKey, TopkOutcome};
use crate::{QueryResult, QuerySpec, ScoreContext, UserData, UserGroup};

/// Outcome of the §7 pipeline: the query answer plus pruning statistics.
#[derive(Debug, Clone)]
pub struct UserIndexOutcome {
    /// The selected ⟨location, keyword-set⟩ and its BRSTkNN users.
    pub result: QueryResult,
    /// Users whose `RSk(u)` was actually computed.
    pub users_scored: usize,
    /// Users skipped entirely (never retrieved from a leaf, or retrieved
    /// but never individually scored).
    pub users_pruned: usize,
}

/// The `k`-dependent, location-independent prefix of the §7 pipeline: the
/// MIUR root treated as super-user, the joint object traversal run for
/// it, and the root's materialized elements. Memoized per `k` by
/// [`crate::ThresholdCache`]; built by [`compute_user_index_seed`].
#[derive(Debug, Clone)]
pub struct UserIndexSeed {
    /// Super-user summary of the whole MIUR root.
    pub root_group: UserGroup,
    /// Joint traversal outcome for `root_group`.
    pub out: TopkOutcome,
    /// Materialized root entries (subtree groups with `RSk` lower bounds,
    /// concrete users with exact thresholds).
    pub(crate) root_elems: Vec<Elem>,
    /// Users scored while materializing the root (folded into every
    /// query's `users_scored`).
    pub(crate) root_scored: usize,
}

/// One element of a location's candidate list `LU_ℓ`.
#[derive(Debug, Clone)]
pub(crate) enum Elem {
    /// An unexpanded user subtree.
    Group {
        node: RecordId,
        group: UserGroup,
        /// Lower bound on `RSk(u)` for every user below (k-th best
        /// `LB(o, group)` over the retrieved objects).
        rsk_lb: f64,
    },
    /// A concrete user with an exact threshold.
    User { data: UserData, rsk: f64, n_u: f64 },
}

/// Lower bound on the `RSk` of every user in `group`: the k-th largest
/// `LB(o, group)` over the retrieved objects `LO ∪ RO`.
fn group_rsk_lb(out: &TopkOutcome, group: &UserGroup, k: usize, ctx: &ScoreContext) -> f64 {
    group_rsk_lb_in(out, group, k, ctx, &mut Vec::new())
}

/// [`group_rsk_lb`] into a caller-provided collection buffer.
fn group_rsk_lb_in(
    out: &TopkOutcome,
    group: &UserGroup,
    k: usize,
    ctx: &ScoreContext,
    lbs: &mut Vec<f64>,
) -> f64 {
    lbs.clear();
    lbs.extend(
        out.lo
            .iter()
            .chain(out.ro.iter())
            .map(|o| lb_object(ctx, group, &o.point, &o.weights)),
    );
    if lbs.len() < k {
        return f64::NEG_INFINITY;
    }
    lbs.sort_unstable_by(|a, b| b.total_cmp(a));
    lbs[k - 1]
}

/// Summarizes an already-read MIUR root node as the super-user group.
fn group_from_root(root: &index::MiurNodeView) -> UserGroup {
    let mbr = geo::Rect::bounding_rects(root.entries.iter().map(|e| e.rect))
        .expect("MIUR root with no entries");
    let uni: Vec<text::TermId> = {
        let mut v: Vec<text::TermId> = root
            .entries
            .iter()
            .flat_map(|e| e.uni.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let int: Vec<text::TermId> = {
        let mut acc: Vec<text::TermId> = root.entries[0].int.clone();
        for e in &root.entries[1..] {
            acc.retain(|t| e.int.contains(t));
        }
        acc
    };
    let count: usize = root.entries.iter().map(|e| e.count as usize).sum();
    let n_min = root
        .entries
        .iter()
        .map(|e| e.norm_min)
        .fold(f64::INFINITY, f64::min);
    let n_max = root
        .entries
        .iter()
        .map(|e| e.norm_max)
        .fold(0.0f64, f64::max);
    UserGroup::from_node_entry(mbr, &uni, &int, count, n_min, n_max)
}

/// Materializes a node view's entries into the element arena: subtrees
/// become [`Elem::Group`]s with their `RSk` lower bounds, concrete users
/// get their exact thresholds via Algorithm 2. Location-independent —
/// everything derives from `(node, out, k)`.
fn materialize_node(
    node: &index::MiurNodeView,
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
    elems: &mut Vec<Elem>,
    scored: &mut usize,
) -> Vec<usize> {
    node.entries
        .iter()
        .map(|e| {
            let elem = match e.child {
                UserRef::Node(rec) => {
                    let g = UserGroup::from_node_entry(
                        e.rect,
                        &e.uni,
                        &e.int,
                        e.count as usize,
                        e.norm_min,
                        e.norm_max,
                    );
                    let rsk_lb = group_rsk_lb(out, &g, k, ctx);
                    Elem::Group {
                        node: rec,
                        group: g,
                        rsk_lb,
                    }
                }
                UserRef::User(uid) => {
                    let data = UserData {
                        id: uid,
                        point: e.rect.min,
                        doc: Document::from_terms(e.uni.iter().copied()),
                    };
                    let tk = individual_topk_user(&data, out, k, ctx);
                    *scored += 1;
                    let n_u = ctx.text.normalizer(&data.doc);
                    Elem::User {
                        data,
                        rsk: tk.rsk,
                        n_u,
                    }
                }
            };
            elems.push(elem);
            elems.len() - 1
        })
        .collect()
}

/// Computes the `(engine, k)`-dependent prefix of the §7 pipeline — the
/// MIUR root as super-user, the joint object traversal for it, and the
/// materialized root elements — which
/// [`crate::ThresholdCache`] memoizes across queries.
pub fn compute_user_index_seed(
    miur: &MiurTree,
    mir: &StTree,
    k: usize,
    ctx: &ScoreContext,
    io: &IoStats,
) -> UserIndexSeed {
    assert_eq!(
        mir.mode(),
        PostingMode::MaxMin,
        "object index must be a MIR-tree"
    );
    let root = miur.read_node(miur.root(), io);
    let root_group = group_from_root(&root);
    let out = joint_topk(mir, &root_group, k, ctx, io);
    let mut root_elems = Vec::new();
    let mut root_scored = 0usize;
    materialize_node(&root, &out, k, ctx, &mut root_elems, &mut root_scored);
    UserIndexSeed {
        root_group,
        out,
        root_elems,
        root_scored,
    }
}

/// Runs the §7 pipeline.
///
/// `mir` indexes the objects (MaxMin mode); `miur` indexes the users. The
/// user table is *not* consulted: users are materialized from MIUR leaf
/// entries, mirroring a disk-resident user set.
pub fn select_with_user_index(
    miur: &MiurTree,
    mir: &StTree,
    spec: &QuerySpec,
    ctx: &ScoreContext,
    selector: KeywordSelector,
    io: &IoStats,
) -> UserIndexOutcome {
    assert!(
        !spec.locations.is_empty(),
        "MaxBRSTkNN requires at least one candidate location"
    );
    // Cold path: build the seed inline (one root read, one traversal, one
    // root materialization — the same work as before the seed existed)
    // and move its parts into the selection.
    let seed = compute_user_index_seed(miur, mir, spec.k, ctx, io);
    let mut arena = QueryArena::new();
    let mut result = QueryResult::default();
    let (users_scored, users_pruned) = run_selection(
        miur,
        spec,
        ctx,
        selector,
        io,
        &seed,
        &mut arena,
        &mut result,
    );
    UserIndexOutcome {
        result,
        users_scored,
        users_pruned,
    }
}

/// [`select_with_user_index`] with the top-k prefix supplied by a
/// [`UserIndexSeed`] (typically from the engine's threshold cache): the
/// MIUR root read, the joint MIR traversal and the root materialization
/// are all skipped — only the location-dependent subtree expansion and
/// keyword selection run, so a seeded query charges I/O solely for the
/// nodes it expands.
pub fn select_with_user_index_seeded(
    miur: &MiurTree,
    spec: &QuerySpec,
    ctx: &ScoreContext,
    selector: KeywordSelector,
    io: &IoStats,
    seed: &UserIndexSeed,
) -> UserIndexOutcome {
    assert!(
        !spec.locations.is_empty(),
        "MaxBRSTkNN requires at least one candidate location"
    );
    let mut arena = QueryArena::new();
    let mut result = QueryResult::default();
    let (users_scored, users_pruned) =
        run_selection(miur, spec, ctx, selector, io, seed, &mut arena, &mut result);
    UserIndexOutcome {
        result,
        users_scored,
        users_pruned,
    }
}

/// Hands out the next pooled frontier slot (the slot's `Document`s keep
/// their buffers across queries).
fn alloc_slot<'a>(elems: &'a mut Vec<ElemSlot>, live: &mut usize) -> (u32, &'a mut ElemSlot) {
    if *live == elems.len() {
        elems.push(ElemSlot::blank());
    }
    let id = *live as u32;
    *live += 1;
    (id, &mut elems[id as usize])
}

/// The reachability precondition of Algorithm 3: the user shares a term
/// with `ox.d ∪ W`.
fn user_reachable_doc(doc: &Document, spec: &QuerySpec) -> bool {
    doc.overlaps(&spec.ox_doc) || spec.keywords.iter().any(|&t| doc.contains(t))
}

/// Copies a seed element into a pooled slot and caches the per-query bound
/// parts (location-independent `UBL` text, reachability) so the keep-test
/// per ⟨location, element⟩ is a couple of float ops.
fn fill_slot_from_elem(slot: &mut ElemSlot, e: &Elem, cc: &CandidateContext<'_>, spec: &QuerySpec) {
    match e {
        Elem::Group {
            node,
            group,
            rsk_lb,
        } => {
            slot.is_group = true;
            slot.node = *node;
            slot.group.mbr = group.mbr;
            slot.group.d_uni.clone_from(&group.d_uni);
            slot.group.d_int.clone_from(&group.d_int);
            slot.group.n_min = group.n_min;
            slot.group.n_max = group.n_max;
            slot.group.count = group.count;
            slot.rsk_lb = *rsk_lb;
            slot.ubl_ts = cc.ubl_group_ts(&slot.group);
            slot.reachable = true;
        }
        Elem::User { data, rsk, n_u } => {
            slot.is_group = false;
            slot.user.id = data.id;
            slot.user.point = data.point;
            slot.user.doc.clone_from(&data.doc);
            slot.rsk = *rsk;
            slot.n_u = *n_u;
            slot.ubl_ts = cc.ubl_ts_doc(&slot.user.doc, *n_u);
            slot.reachable = user_reachable_doc(&slot.user.doc, spec);
        }
    }
}

/// The pooled twin of [`materialize_node`]'s per-entry step: fills one
/// slot from a zero-copy MIUR entry view, scoring concrete users via the
/// reusable refinement heap.
#[allow(clippy::too_many_arguments)]
fn fill_slot_from_entry(
    slot: &mut ElemSlot,
    e: &index::MiurEntryView,
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
    cc: &CandidateContext<'_>,
    spec: &QuerySpec,
    lbs: &mut Vec<f64>,
    ind_heap: &mut BinaryHeap<Reverse<ByKey<u32>>>,
    scored: &mut usize,
) {
    match e.child {
        UserRef::Node(rec) => {
            slot.is_group = true;
            slot.node = rec;
            slot.group.mbr = e.rect;
            slot.group.d_uni.assign_unit_terms(&e.uni);
            slot.group.d_int.assign_unit_terms(&e.int);
            slot.group.n_min = e.norm_min;
            slot.group.n_max = e.norm_max;
            slot.group.count = e.count as usize;
            slot.rsk_lb = group_rsk_lb_in(out, &slot.group, k, ctx, lbs);
            slot.ubl_ts = cc.ubl_group_ts(&slot.group);
            slot.reachable = true;
        }
        UserRef::User(uid) => {
            slot.is_group = false;
            slot.user.id = uid;
            slot.user.point = e.rect.min;
            slot.user.doc.assign_unit_terms(&e.uni);
            slot.rsk = refine_user_heap(&slot.user, out, k, ctx, ind_heap);
            *scored += 1;
            slot.n_u = ctx.text.normalizer(&slot.user.doc);
            slot.ubl_ts = cc.ubl_ts_doc(&slot.user.doc, slot.n_u);
            slot.reachable = user_reachable_doc(&slot.user.doc, spec);
        }
    }
}

/// The location-dependent remainder of the §7 pipeline: per-location
/// candidate lists, best-first subtree expansion and keyword selection.
/// Every buffer — the frontier element pool, the expansion memo, the
/// per-location lists, and the keyword-selection scratch — comes from
/// `arena`, so a warm arena runs this allocation-free. Returns
/// `(users_scored, users_pruned)`; the winning tuple lands in `result`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_selection(
    miur: &MiurTree,
    spec: &QuerySpec,
    ctx: &ScoreContext,
    selector: KeywordSelector,
    io: &IoStats,
    seed: &UserIndexSeed,
    arena: &mut QueryArena,
    result: &mut QueryResult,
) -> (usize, usize) {
    debug_assert!(!spec.locations.is_empty(), "checked at both entry points");
    let out = &seed.out;
    let total_users = seed.root_group.count;
    let rsk_us = out.rsk_us;
    let k = spec.k;
    let mut users_scored = seed.root_scored;
    result.clear();

    // Bounds-only candidate context (no user slice).
    let cc = CandidateContext::new_reusing(ctx, spec, &[], &[], std::mem::take(&mut arena.cc));

    let UserIndexScratch {
        elems,
        live,
        children,
        expanded,
        lu_lists,
        ql,
        lbs,
        ind_heap,
        users_buf,
        rsk_buf,
        lu_seq,
        miur: miur_scratch,
    } = &mut arena.ui;
    let SelectScratch {
        ss,
        cand,
        users_out,
        kw,
        gr,
        ex,
        ..
    } = &mut arena.sel;

    // Seed the element pool with the root's materialized entries; the
    // root's child list occupies `children[0..root_len]`.
    *live = 0;
    children.clear();
    expanded.clear();
    for e in &seed.root_elems {
        let (id, slot) = alloc_slot(elems, live);
        fill_slot_from_elem(slot, e, &cc, spec);
        children.push(id);
    }
    let root_len = seed.root_elems.len() as u32;
    expanded.insert(miur.root(), (0, root_len));

    // The root's UBL text part, hoisted across the location loop.
    let root_ts = cc.ubl_group_ts(&seed.root_group);

    let keep = |slot: &ElemSlot, loc: &Point| -> bool {
        if slot.is_group {
            cc.ubl_group_with_ts(loc, &slot.group, slot.ubl_ts) >= slot.rsk_lb
        } else {
            slot.reachable
                && ctx.combine(ctx.spatial.ss_points(loc, &slot.user.point), slot.ubl_ts)
                    >= slot.rsk
        }
    };

    // --- Per-location lists, filtered by the UBL bounds. ---
    while lu_lists.len() < spec.locations.len() {
        lu_lists.push(Vec::new());
    }
    ql.clear();
    for (li, loc) in spec.locations.iter().enumerate() {
        let list = &mut lu_lists[li];
        list.clear();
        if cc.ubl_group_with_ts(loc, &seed.root_group, root_ts) >= rsk_us {
            for id in 0..root_len {
                if keep(&elems[id as usize], loc) {
                    list.push(id);
                }
            }
        }
        let count: usize = list.iter().map(|&e| elems[e as usize].count()).sum();
        if count > 0 {
            ql.push(ByKey {
                key: count as f64,
                item: li,
            });
        }
    }

    while let Some(ByKey { key, item: li }) = ql.pop() {
        let current: usize = lu_lists[li]
            .iter()
            .map(|&e| elems[e as usize].count())
            .sum();
        if current != key as usize {
            // Stale entry (a shared subtree was refined since queuing).
            if current > 0 {
                ql.push(ByKey {
                    key: current as f64,
                    item: li,
                });
            }
            continue;
        }
        if current <= result.brstknn.len() && !result.brstknn.is_empty() {
            break;
        }
        let loc = spec.locations[li];

        // Find the largest unexpanded group in this list, if any.
        let group_pos = lu_lists[li]
            .iter()
            .enumerate()
            .filter(|&(_, &e)| elems[e as usize].is_group)
            .max_by_key(|&(_, &e)| elems[e as usize].count())
            .map(|(pos, _)| pos);

        if let Some(pos) = group_pos {
            let eid = lu_lists[li][pos];
            let node = elems[eid as usize].node;
            // Expand once globally (at most one disk access per node).
            let (start, len) = match expanded.entry(node) {
                Entry::Occupied(o) => *o.get(),
                Entry::Vacant(v) => {
                    let view = miur.read_node_ref(node, io, miur_scratch);
                    let start = children.len() as u32;
                    for entry in view.entries {
                        let (id, slot) = alloc_slot(elems, live);
                        fill_slot_from_entry(
                            slot,
                            entry,
                            out,
                            k,
                            ctx,
                            &cc,
                            spec,
                            lbs,
                            ind_heap,
                            &mut users_scored,
                        );
                        children.push(id);
                    }
                    *v.insert((start, children.len() as u32 - start))
                }
            };
            // Replace the group in every list that holds it.
            for (lj, list) in lu_lists.iter_mut().enumerate() {
                if let Some(p) = list.iter().position(|&e| e == eid) {
                    list.swap_remove(p);
                    let locj = spec.locations[lj];
                    for ci in start..start + len {
                        let c = children[ci as usize];
                        if keep(&elems[c as usize], &locj) {
                            list.push(c);
                        }
                    }
                }
            }
            let count: usize = lu_lists[li]
                .iter()
                .map(|&e| elems[e as usize].count())
                .sum();
            if count > 0 {
                ql.push(ByKey {
                    key: count as f64,
                    item: li,
                });
            }
            continue;
        }

        // All elements are concrete users: run keyword selection against a
        // pooled local context (slot-reused user column + thresholds).
        let n = lu_lists[li].len();
        while users_buf.len() < n {
            users_buf.push(UserData {
                id: 0,
                point: Point::new(0.0, 0.0),
                doc: Document::new(),
            });
        }
        rsk_buf.clear();
        for (i, &e) in lu_lists[li].iter().enumerate() {
            let slot = &elems[e as usize];
            let ub = &mut users_buf[i];
            ub.id = slot.user.id;
            ub.point = slot.user.point;
            ub.doc.clone_from(&slot.user.doc);
            rsk_buf.push(slot.rsk);
        }
        let local = CandidateContext::new_reusing(
            ctx,
            spec,
            &users_buf[..n],
            &rsk_buf[..n],
            std::mem::take(&mut arena.cc_local),
        );
        lu_seq.clear();
        lu_seq.extend(0..n);
        local.fill_ss(&loc, lu_seq, ss);

        // LBL shortcut, as in Algorithm 3.
        let all_qualify = !spec.ox_doc.is_empty()
            && lu_seq
                .iter()
                .all(|&u| local.qualifies_with_ss(ss[u], &spec.ox_doc, u));
        if all_qualify {
            kw.clear();
        } else {
            match selector {
                KeywordSelector::Greedy => greedy::greedy_keywords_into(&local, lu_seq, ss, gr, kw),
                KeywordSelector::GreedyPlus => {
                    greedy::greedy_plus_keywords_into(&local, lu_seq, ss, gr, kw)
                }
                KeywordSelector::Exact => exact::exact_keywords_into(&local, lu_seq, ss, ex, kw),
            }
        }
        cand.assign_with_terms(&spec.ox_doc, kw);
        local.brstknn_into(cand, lu_seq, ss, users_out);
        if users_out.len() > result.brstknn.len() {
            result.location = li;
            result.keywords.clear();
            result.keywords.extend_from_slice(kw);
            std::mem::swap(users_out, &mut result.brstknn);
        }
        arena.cc_local = local.into_scratch();
    }

    arena.cc = cc.into_scratch();
    (users_scored, total_users - users_scored.min(total_users))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::location::select_candidate;
    use crate::topk::individual::individual_topk;
    use geo::{Point, Rect, SpatialContext};
    use index::{IndexedObject, IndexedUser};
    use text::{TermId, TextScorer, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    struct Fix {
        ctx: ScoreContext,
        users: Vec<UserData>,
        spec: QuerySpec,
        mir: StTree,
        miur: MiurTree,
    }

    fn fixture(num_users: u32) -> Fix {
        let docs: Vec<Document> = (0..50)
            .map(|i| Document::from_terms([t(i % 5), t(5)]))
            .collect();
        let text = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let objects: Vec<IndexedObject> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| IndexedObject {
                id: i as u32,
                point: Point::new((i % 10) as f64, (i / 10) as f64),
                doc: text.weigh(d),
            })
            .collect();
        let users: Vec<UserData> = (0..num_users)
            .map(|i| UserData {
                id: i,
                point: Point::new((i % 9) as f64 + 0.5, (i % 4) as f64 + 0.25),
                doc: Document::from_terms([t(i % 5), t(5)]),
            })
            .collect();
        let iu: Vec<IndexedUser> = users
            .iter()
            .map(|u| IndexedUser {
                id: u.id,
                point: u.point,
                doc: u.doc.clone(),
                norm: text.normalizer(&u.doc),
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
        let ctx = ScoreContext::new(0.5, SpatialContext::from_dataspace(&space), text);
        let spec = QuerySpec {
            ox_doc: Document::from_terms([t(5)]),
            locations: vec![
                Point::new(2.0, 2.0),
                Point::new(8.0, 1.0),
                Point::new(5.0, 4.0),
            ],
            keywords: vec![t(0), t(1), t(2), t(3), t(4)],
            ws: 2,
            k: 3,
        };
        let mir = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let miur = MiurTree::build_with_fanout(&iu, 4);
        Fix {
            ctx,
            users,
            spec,
            mir,
            miur,
        }
    }

    /// The §7 pipeline must reach the same optimum as the in-memory
    /// Algorithm 3 with exact keyword selection.
    #[test]
    fn user_index_matches_in_memory_exact() {
        for n in [12u32, 40] {
            let f = fixture(n);
            let io = IoStats::new();

            // Reference: joint top-k + Algorithm 3 on in-memory users.
            let su = UserGroup::from_users(&f.users, &f.ctx.text);
            let out = joint_topk(&f.mir, &su, f.spec.k, &f.ctx, &io);
            let tks = individual_topk(&f.users, &out, f.spec.k, &f.ctx);
            let rsk: Vec<f64> = tks.iter().map(|t| t.rsk).collect();
            let cc = CandidateContext::new(&f.ctx, &f.spec, &f.users, &rsk);
            let want = select_candidate(&cc, &su, out.rsk_us, KeywordSelector::Exact);

            let got = select_with_user_index(
                &f.miur,
                &f.mir,
                &f.spec,
                &f.ctx,
                KeywordSelector::Exact,
                &io,
            );
            assert_eq!(
                got.result.cardinality(),
                want.cardinality(),
                "n={n}: user-index found {} vs in-memory {}",
                got.result.cardinality(),
                want.cardinality()
            );
        }
    }

    #[test]
    fn pruning_statistics_are_consistent() {
        let f = fixture(40);
        let io = IoStats::new();
        let got = select_with_user_index(
            &f.miur,
            &f.mir,
            &f.spec,
            &f.ctx,
            KeywordSelector::Greedy,
            &io,
        );
        assert_eq!(got.users_scored + got.users_pruned, 40);
    }

    #[test]
    fn greedy_variant_bounded_by_exact() {
        let f = fixture(24);
        let io = IoStats::new();
        let e = select_with_user_index(
            &f.miur,
            &f.mir,
            &f.spec,
            &f.ctx,
            KeywordSelector::Exact,
            &io,
        );
        let g = select_with_user_index(
            &f.miur,
            &f.mir,
            &f.spec,
            &f.ctx,
            KeywordSelector::Greedy,
            &io,
        );
        assert!(g.result.cardinality() <= e.result.cardinality());
    }

    /// Seeding the pipeline with a precomputed `(root group, joint
    /// outcome)` must not change the answer or the pruning statistics —
    /// only skip the MIR traversal I/O.
    #[test]
    fn seeded_pipeline_matches_unseeded() {
        let f = fixture(40);
        for selector in [KeywordSelector::Greedy, KeywordSelector::Exact] {
            let io_cold = IoStats::new();
            let cold = select_with_user_index(&f.miur, &f.mir, &f.spec, &f.ctx, selector, &io_cold);

            let io_seed = IoStats::new();
            let seed = compute_user_index_seed(&f.miur, &f.mir, f.spec.k, &f.ctx, &io_seed);
            let seed_fill_io = io_seed.total();
            let warm =
                select_with_user_index_seeded(&f.miur, &f.spec, &f.ctx, selector, &io_seed, &seed);

            assert_eq!(warm.result, cold.result, "{selector:?}");
            assert_eq!(warm.users_scored, cold.users_scored);
            assert_eq!(warm.users_pruned, cold.users_pruned);
            // The seeded run itself charges only MIUR reads — strictly less
            // than the cold run, which also pays the MIR traversal.
            let warm_io = io_seed.total() - seed_fill_io;
            assert!(
                warm_io < io_cold.total(),
                "{selector:?}: seeded {warm_io} vs cold {}",
                io_cold.total()
            );
        }
    }

    #[test]
    fn miur_nodes_read_at_most_once() {
        let f = fixture(40);
        let io = IoStats::new();
        select_with_user_index(
            &f.miur,
            &f.mir,
            &f.spec,
            &f.ctx,
            KeywordSelector::Exact,
            &io,
        );
        // 40 users, fanout 4 → ≤ 10 leaves + 3 inner + root + margin; each
        // read at most once plus the root read.
        assert!(io.snapshot().node_visits < 60);
    }
}
