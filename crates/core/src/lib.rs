//! MaxBRSTkNN query processing — the paper's primary contribution.
//!
//! Given a bichromatic dataset of users `U` and objects `O`, a
//! `MaxBRSTkNN(ox, L, W, ws, k)` query finds the candidate location `ℓ ∈ L`
//! and keyword set `W' ⊆ W` (|W'| ≤ ws) that maximize how many users would
//! rank `ox` — placed at `ℓ` with text `ox.d ∪ W'` — among their top-k
//! spatial-textual objects (Definition 1). The keyword-selection subproblem
//! is NP-hard (Lemma 1, reduction from Maximum Coverage).
//!
//! The crate implements every method the paper evaluates:
//!
//! | Paper | Module |
//! |---|---|
//! | §4 baseline per-user top-k on the IR-tree | [`topk::baseline`] |
//! | §5 Algorithm 1 (joint top-k traversal of the MIR-tree) | [`topk::joint`] |
//! | §5 Algorithm 2 (individual top-k from `LO`/`RO`) | [`topk::individual`] |
//! | §6 Algorithm 3 (candidate location selection) | [`select::location`] |
//! | §6.2.1 greedy (1−1/e) keyword selection | [`select::greedy`] |
//! | §6.2.2 Algorithm 4 (exact keyword selection) | [`select::exact`] |
//! | §4 exhaustive baseline candidate scan | [`select::baseline`] |
//! | §7 MIUR-tree user-index pipeline | [`user_index`] |
//!
//! [`Engine`] ties everything together behind one convenient entry point;
//! the individual modules stay public because the paper evaluates them
//! separately (and the joint top-k is of independent interest).

#![deny(clippy::redundant_clone)]

mod arena;
mod bounds;
mod cache;
pub mod cluster;
mod data;
pub mod dynamic;
mod group;
mod metrics;
pub mod pipeline;
mod query;
pub mod refresh;
mod score;
pub mod select;
pub mod topk;
pub mod trace;
pub mod user_index;

pub use arena::QueryArena;
pub use cache::{JointThresholds, ThresholdCache, DEFAULT_K_CAPACITY};
pub use cluster::EngineCluster;
pub use data::{ObjectData, QueryResult, QuerySpec, UserData};
pub use dynamic::{BatchReport, EpochGuard, MaintenanceIo, Mutation};
pub use group::UserGroup;
pub use pipeline::{BatchOutcome, QueryStats, QueryStrategy};
pub use query::{Engine, Method};
pub use refresh::incremental::DriftLedger;
pub use refresh::{
    RefreshConfig, RefreshReport, RefreshTier, RefresherHandle, ScorerDrift, ServingEngine,
};
pub use score::ScoreContext;
pub use topk::{ScoredObject, TopkOutcome, UserTopk};
pub use trace::{Phase, PhaseBreakdown, PhaseStat};
pub use user_index::UserIndexSeed;
