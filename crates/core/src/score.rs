//! The combined spatial-textual score `STS` (Eq. 1).

use geo::{Point, SpatialContext};
use text::{Document, TextScorer, WeightedDoc};

use crate::UserData;

/// Everything needed to evaluate `STS(o, u) = α·SS + (1−α)·TS`.
#[derive(Debug, Clone)]
pub struct ScoreContext {
    /// Preference parameter `α ∈ [0, 1]` (1 = purely spatial).
    pub alpha: f64,
    /// Normalized spatial proximity (Eq. 2).
    pub spatial: SpatialContext,
    /// Normalized text relevance (Eq. 3–4 / KO / TF-IDF).
    pub text: TextScorer,
}

impl ScoreContext {
    /// Creates a context, validating `α`.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64, spatial: SpatialContext, text: TextScorer) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        ScoreContext {
            alpha,
            spatial,
            text,
        }
    }

    /// Exact `STS` between an object (point + precomputed weights) and a
    /// user, given the user's normalizer `n_u` (see
    /// [`text::TextScorer::normalizer`]).
    ///
    /// Callers that score one user against many objects should compute
    /// `n_u` once; that is why it is a parameter rather than derived here.
    #[inline]
    pub fn sts(
        &self,
        obj_point: &Point,
        obj_weights: &WeightedDoc,
        user: &UserData,
        n_u: f64,
    ) -> f64 {
        let ss = self.spatial.ss_points(obj_point, &user.point);
        let ts = if n_u > 0.0 {
            obj_weights.dot_terms(&user.doc) / n_u
        } else {
            0.0
        };
        self.alpha * ss + (1.0 - self.alpha) * ts
    }

    /// `STS` between the candidate object `ox` — placed at `loc` with
    /// keyword set `cand` evaluated at reference length `ref_len` — and a
    /// user.
    #[inline]
    pub fn sts_candidate(
        &self,
        loc: &Point,
        cand: &Document,
        ref_len: u64,
        user: &UserData,
    ) -> f64 {
        let ss = self.spatial.ss_points(loc, &user.point);
        let ts = self.text.candidate_ts(cand, &user.doc, ref_len);
        self.alpha * ss + (1.0 - self.alpha) * ts
    }

    /// Combines separately-computed spatial and textual components.
    #[inline]
    pub fn combine(&self, ss: f64, ts: f64) -> f64 {
        self.alpha * ss + (1.0 - self.alpha) * ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use text::{TermId, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn setup() -> (ScoreContext, Vec<Document>) {
        let docs = vec![
            Document::from_terms([t(0), t(1)]),
            Document::from_terms([t(1)]),
        ];
        let text = TextScorer::from_docs(WeightModel::KeywordOverlap, &docs);
        let spatial = SpatialContext::with_dmax(10.0);
        (ScoreContext::new(0.5, spatial, text), docs)
    }

    #[test]
    fn sts_mixes_components() {
        let (ctx, docs) = setup();
        let user = UserData {
            id: 0,
            point: Point::new(3.0, 4.0), // dist 5 from origin → SS = 0.5
            doc: Document::from_terms([t(0), t(1)]),
        };
        let n_u = ctx.text.normalizer(&user.doc);
        let w = ctx.text.weigh(&docs[0]);
        // TS = 2/2 = 1.0; STS = 0.5·0.5 + 0.5·1.0 = 0.75.
        let sts = ctx.sts(&Point::new(0.0, 0.0), &w, &user, n_u);
        assert!((sts - 0.75).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_is_purely_spatial() {
        let (ctx, docs) = setup();
        let ctx = ScoreContext::new(1.0, ctx.spatial, ctx.text);
        let user = UserData {
            id: 0,
            point: Point::new(0.0, 0.0),
            doc: Document::from_terms([t(0)]),
        };
        let n_u = ctx.text.normalizer(&user.doc);
        let w = ctx.text.weigh(&docs[1]); // no overlap with user
        let sts = ctx.sts(&Point::new(0.0, 0.0), &w, &user, n_u);
        assert_eq!(sts, 1.0);
    }

    #[test]
    fn alpha_zero_is_purely_textual() {
        let (ctx, docs) = setup();
        let ctx = ScoreContext::new(0.0, ctx.spatial, ctx.text);
        let user = UserData {
            id: 0,
            point: Point::new(9.0, 0.0),
            doc: Document::from_terms([t(1)]),
        };
        let n_u = ctx.text.normalizer(&user.doc);
        let w = ctx.text.weigh(&docs[1]);
        assert_eq!(ctx.sts(&Point::new(0.0, 0.0), &w, &user, n_u), 1.0);
    }

    #[test]
    fn zero_normalizer_yields_spatial_only() {
        let (ctx, docs) = setup();
        let user = UserData {
            id: 0,
            point: Point::new(0.0, 0.0),
            doc: Document::new(),
        };
        let w = ctx.text.weigh(&docs[0]);
        let sts = ctx.sts(&Point::new(0.0, 0.0), &w, &user, 0.0);
        assert_eq!(sts, 0.5); // α·1 + (1−α)·0
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn invalid_alpha_panics() {
        let (ctx, _) = setup();
        ScoreContext::new(1.5, ctx.spatial, ctx.text);
    }

    #[test]
    fn candidate_sts_matches_manual() {
        let (ctx, _) = setup();
        let user = UserData {
            id: 0,
            point: Point::new(0.0, 0.0),
            doc: Document::from_terms([t(0), t(1)]),
        };
        let cand = Document::from_terms([t(0)]);
        // KO candidate weight = 1, N(u) = 2 → TS = 0.5; SS = 1.
        let sts = ctx.sts_candidate(&Point::new(0.0, 0.0), &cand, 2, &user);
        assert!((sts - 0.75).abs() < 1e-12);
    }
}
