//! Always-on engine/serving telemetry (the [`mbrstk_obs`] integration).
//!
//! One [`MetricsRegistry`] is born with every [`crate::Engine`] and then
//! travels: copy-on-write clones and corpus refreshes *share* the `Arc`
//! (unlike the caches, which restart cold), so the serving layer
//! accumulates one continuous history across swaps. All handles are
//! resolved here, once, at engine build — the warm query path records
//! through cached `Arc`s with relaxed atomics only, keeping
//! `Engine::query_reusing` allocation-free with telemetry enabled.
//!
//! Metric families (label sets in Prometheus notation):
//!
//! * `engine_query_latency_us{method}` / `engine_query_io_ops{method}` —
//!   per-query wall time and simulated I/O, one histogram per built-in
//!   strategy.
//! * `engine_query_phase_latency_us{method,phase}` /
//!   `engine_query_phase_io_ops{method,phase}` — the [`Phase`] split of
//!   the same queries; phase I/O sums reconcile exactly with the query
//!   totals (see `tests/obs_telemetry.rs`).
//! * `engine_query_cache_hits_total{method}` / `..misses_total{method}` —
//!   the PR 2 page-cache counters, attributed per method.
//! * `page_cache_hit_ratio` / `threshold_cache_hit_ratio` — gauges over
//!   the engine's [`ShardedLru`](storage::ShardedLru) page cache and
//!   [`ThresholdCache`] counters (last-writer-wins across clones).
//! * `serving_*` — [`crate::ServingEngine`] mutation latency, swap-wait,
//!   CoW fallbacks, journal depth, refresh tier/duration.

use std::sync::Arc;
use std::time::Duration;

use mbrstk_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use storage::IoStats;

use crate::cache::ThresholdCache;
use crate::pipeline::QueryStats;
use crate::refresh::RefreshTier;
use crate::trace::{Phase, PHASE_COUNT};

/// The six built-in strategy names, in [`crate::Method::ALL`] order.
const METHOD_NAMES: [&str; 6] = [
    "baseline",
    "joint-greedy",
    "joint-greedy-plus",
    "joint-exact",
    "user-index-greedy",
    "user-index-exact",
];

/// Pre-resolved handles for one built-in strategy.
#[derive(Debug)]
struct MethodMetrics {
    latency_us: Arc<Histogram>,
    io_ops: Arc<Histogram>,
    phase_latency_us: [Arc<Histogram>; PHASE_COUNT],
    phase_io_ops: [Arc<Histogram>; PHASE_COUNT],
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
}

impl MethodMetrics {
    fn new(reg: &MetricsRegistry, method: &str) -> MethodMetrics {
        let h = |family: &str| reg.histogram(&format!("{family}{{method=\"{method}\"}}"));
        let ph = |family: &str, i: usize| {
            reg.histogram(&format!(
                "{family}{{method=\"{method}\",phase=\"{}\"}}",
                Phase::ALL[i].name()
            ))
        };
        MethodMetrics {
            latency_us: h("engine_query_latency_us"),
            io_ops: h("engine_query_io_ops"),
            phase_latency_us: std::array::from_fn(|i| ph("engine_query_phase_latency_us", i)),
            phase_io_ops: std::array::from_fn(|i| ph("engine_query_phase_io_ops", i)),
            cache_hits: reg.counter(&format!(
                "engine_query_cache_hits_total{{method=\"{method}\"}}"
            )),
            cache_misses: reg.counter(&format!(
                "engine_query_cache_misses_total{{method=\"{method}\"}}"
            )),
        }
    }

    /// Pure relaxed-atomic recording — no locks, no allocation.
    fn record(&self, stats: &QueryStats) {
        self.latency_us.record_duration_us(stats.elapsed);
        self.io_ops.record(stats.io.total());
        self.cache_hits.add(stats.io.cache_hits);
        self.cache_misses.add(stats.io.cache_misses);
        for (phase, ps) in stats.phases.iter() {
            self.phase_latency_us[phase as usize].record(ps.nanos / 1_000);
            self.phase_io_ops[phase as usize].record(ps.io.total());
        }
    }
}

/// Per-engine telemetry: the shared registry plus every handle the query
/// path needs, resolved once at build.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    methods: [MethodMetrics; 6],
    page_hit_ratio: Arc<Gauge>,
    threshold_hit_ratio: Arc<Gauge>,
}

impl EngineMetrics {
    pub(crate) fn new() -> Arc<EngineMetrics> {
        let registry = Arc::new(MetricsRegistry::new());
        let methods = std::array::from_fn(|i| MethodMetrics::new(&registry, METHOD_NAMES[i]));
        let page_hit_ratio = registry.gauge("page_cache_hit_ratio");
        let threshold_hit_ratio = registry.gauge("threshold_cache_hit_ratio");
        Arc::new(EngineMetrics {
            registry,
            methods,
            page_hit_ratio,
            threshold_hit_ratio,
        })
    }

    pub(crate) fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records one finished query. The method resolves by a linear scan
    /// over six static names (no allocation); custom strategies outside
    /// the built-in table skip the per-method histograms but still move
    /// the cache-ratio gauges.
    pub(crate) fn record_query(
        &self,
        method: &str,
        stats: &QueryStats,
        io: &IoStats,
        thresholds: Option<&ThresholdCache>,
    ) {
        if let Some(i) = METHOD_NAMES.iter().position(|&n| n == method) {
            self.methods[i].record(stats);
        }
        // Hit-ratio gauges over the engine-lifetime counters: the page
        // cache's keyed accesses (ShardedLru hits are counted by IoStats)
        // and the threshold cache's lookups. Atomic loads + one store.
        let snap = io.snapshot();
        let keyed = snap.cache_hits + snap.cache_misses;
        if keyed > 0 {
            self.page_hit_ratio
                .set(snap.cache_hits as f64 / keyed as f64);
        }
        if let Some(tc) = thresholds {
            let (h, m) = (tc.hits(), tc.misses());
            if h + m > 0 {
                self.threshold_hit_ratio.set(h as f64 / (h + m) as f64);
            }
        }
    }
}

/// Pre-resolved handles for the [`crate::ServingEngine`] layer, drawn
/// from the wrapped engine's registry at construction (the registry is
/// swap-stable, so the handles outlive every refresh).
#[derive(Debug)]
pub(crate) struct ServingMetrics {
    /// Engine-mutation latency under the publish lock.
    pub(crate) mutation_latency_us: Arc<Histogram>,
    /// Time writers spent waiting for snapshot holders to drain — in the
    /// mutation path's exclusive-access spin and at the refresh swap.
    pub(crate) swap_wait_us: Arc<Histogram>,
    /// Mutations that gave up waiting and took the copy-on-write clone.
    pub(crate) cow_fallbacks: Arc<Counter>,
    /// Current rebuild-journal depth (drained to 0 at every swap).
    pub(crate) journal_depth: Arc<Gauge>,
    /// Journaled mutations replayed onto fresh engines, lifetime total.
    pub(crate) replayed_total: Arc<Counter>,
    refresh_total: [Arc<Counter>; 2],
    refresh_duration_us: [Arc<Histogram>; 2],
}

fn tier_index(tier: RefreshTier) -> usize {
    match tier {
        RefreshTier::Full => 0,
        RefreshTier::Incremental => 1,
    }
}

impl ServingMetrics {
    pub(crate) fn new(reg: &MetricsRegistry) -> ServingMetrics {
        const TIERS: [&str; 2] = ["full", "incremental"];
        ServingMetrics {
            mutation_latency_us: reg.histogram("serving_mutation_latency_us"),
            swap_wait_us: reg.histogram("serving_swap_wait_us"),
            cow_fallbacks: reg.counter("serving_cow_fallbacks_total"),
            journal_depth: reg.gauge("serving_journal_depth"),
            replayed_total: reg.counter("serving_replayed_mutations_total"),
            refresh_total: std::array::from_fn(|i| {
                reg.counter(&format!("serving_refreshes_total{{tier=\"{}\"}}", TIERS[i]))
            }),
            refresh_duration_us: std::array::from_fn(|i| {
                reg.histogram(&format!(
                    "serving_refresh_duration_us{{tier=\"{}\"}}",
                    TIERS[i]
                ))
            }),
        }
    }

    /// Records one completed refresh (tier, duration, replay depth).
    pub(crate) fn record_refresh(&self, tier: RefreshTier, elapsed: Duration, replayed: usize) {
        self.refresh_total[tier_index(tier)].inc();
        self.refresh_duration_us[tier_index(tier)].record_duration_us(elapsed);
        self.replayed_total.add(replayed as u64);
        self.journal_depth.set(0.0);
    }
}
