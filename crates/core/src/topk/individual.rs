//! Algorithm 2: INDIVIDUAL-TOPK — per-user top-k from `LO` and `RO`.
//!
//! After the joint traversal, `LO ∪ RO` is guaranteed to contain every
//! user's top-k objects (see the proof sketch in [`crate::topk::joint`]).
//! Each user first scores the k objects of `LO` exactly, establishing
//! `RSk(u)`; the remaining candidates in `RO` are then scanned in
//! descending `UB(o, us)` order, stopping as soon as the upper bound drops
//! below the user's own threshold — objects after that point cannot enter
//! the user's top-k.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::topk::{ByKey, TopkOutcome, UserTopk};
use crate::{ScoreContext, UserData};

/// The refinement core shared by the top-k listing and the `RSk`-only path
/// of the §7 pipeline: fills `hu` (min-heap by score, best k kept) and
/// returns `RSk(u)`. The heap is cleared first, so a pooled heap can be
/// reused across users without reallocating.
///
/// # Panics
/// Panics when `k == 0`.
pub(crate) fn refine_user_heap(
    user: &UserData,
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
    hu: &mut BinaryHeap<Reverse<ByKey<u32>>>,
) -> f64 {
    assert!(k > 0, "k must be positive");
    let n_u = ctx.text.normalizer(&user.doc);
    hu.clear();
    let mut rsk = f64::NEG_INFINITY;

    for obj in &out.lo {
        let s = ctx.sts(&obj.point, &obj.weights, user, n_u);
        hu.push(Reverse(ByKey {
            key: s,
            item: obj.id,
        }));
        if hu.len() > k {
            hu.pop();
        }
    }
    if hu.len() == k {
        rsk = hu.peek().unwrap().0.key;
    }

    for obj in &out.ro {
        if hu.len() == k && obj.ub < rsk {
            break; // RO descends by UB: nothing further can qualify.
        }
        let s = ctx.sts(&obj.point, &obj.weights, user, n_u);
        if hu.len() < k || s >= rsk {
            hu.push(Reverse(ByKey {
                key: s,
                item: obj.id,
            }));
            if hu.len() > k {
                hu.pop();
            }
            if hu.len() == k {
                rsk = hu.peek().unwrap().0.key;
            }
        }
    }
    rsk
}

/// Computes the top-k of a single user from a joint-traversal outcome.
pub fn individual_topk_user(
    user: &UserData,
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
) -> UserTopk {
    individual_topk_user_with(user, out, k, ctx, &mut BinaryHeap::new())
}

fn individual_topk_user_with(
    user: &UserData,
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
    hu: &mut BinaryHeap<Reverse<ByKey<u32>>>,
) -> UserTopk {
    let rsk = refine_user_heap(user, out, k, ctx, hu);
    let mut topk: Vec<(u32, f64)> = hu.drain().map(|r| (r.0.item, r.0.key)).collect();
    topk.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    UserTopk {
        user: user.id,
        topk,
        rsk,
    }
}

/// Algorithm 2 over all users (one pooled heap across the user loop).
pub fn individual_topk(
    users: &[UserData],
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
) -> Vec<UserTopk> {
    let mut hu: BinaryHeap<Reverse<ByKey<u32>>> = BinaryHeap::new();
    users
        .iter()
        .map(|u| individual_topk_user_with(u, out, k, ctx, &mut hu))
        .collect()
}

/// Algorithm 2 over all users, fanned out over `threads` OS threads.
///
/// Engineering extension: the per-user refinements are embarrassingly
/// parallel once `LO`/`RO` are in memory, and this stage dominates joint
/// top-k runtime at large `|U|`. The paper's (and this crate's default)
/// measurement path stays single-threaded; results are identical.
pub fn individual_topk_parallel(
    users: &[UserData],
    out: &TopkOutcome,
    k: usize,
    ctx: &ScoreContext,
    threads: usize,
) -> Vec<UserTopk> {
    let threads = threads.max(1).min(users.len().max(1));
    if threads <= 1 {
        return individual_topk(users, out, k, ctx);
    }
    let chunk = users.len().div_ceil(threads);
    let mut results: Vec<Vec<UserTopk>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = users
            .chunks(chunk)
            .map(|part| scope.spawn(move || individual_topk(part, out, k, ctx)))
            .collect();
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::joint::joint_topk;
    use crate::UserGroup;
    use geo::{Point, Rect, SpatialContext};
    use index::{IndexedObject, PostingMode, StTree};
    use storage::IoStats;
    use text::{Document, TermId, TextScorer, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    struct Fix {
        objects: Vec<IndexedObject>,
        users: Vec<UserData>,
        ctx: ScoreContext,
        tree: StTree,
    }

    fn fixture(model: WeightModel, alpha: f64) -> Fix {
        let docs: Vec<Document> = (0..40)
            .map(|i| Document::from_pairs([(t(i % 4), 1 + i % 2), (t(4), 1), (t(5 + i % 2), 2)]))
            .collect();
        let text = TextScorer::from_docs(model, &docs);
        let objects: Vec<IndexedObject> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| IndexedObject {
                id: i as u32,
                point: Point::new((i % 8) as f64, (i / 8) as f64),
                doc: text.weigh(d),
            })
            .collect();
        let users: Vec<UserData> = (0..6)
            .map(|i| UserData {
                id: i,
                point: Point::new(1.0 + (i as f64), 2.5),
                doc: Document::from_terms([t(i % 4), t(4)]),
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(8.0, 5.0));
        let ctx = ScoreContext::new(alpha, SpatialContext::from_dataspace(&space), text);
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        Fix {
            objects,
            users,
            ctx,
            tree,
        }
    }

    fn brute(fix: &Fix, user: &UserData, k: usize) -> Vec<(u32, f64)> {
        let n_u = fix.ctx.text.normalizer(&user.doc);
        let mut all: Vec<(u32, f64)> = fix
            .objects
            .iter()
            .map(|o| (o.id, fix.ctx.sts(&o.point, &o.doc, user, n_u)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// End-to-end Algorithm 1 + 2 equals brute force for every model, α, k.
    #[test]
    fn joint_plus_individual_matches_brute_force() {
        for model in [
            WeightModel::lm(),
            WeightModel::TfIdf,
            WeightModel::KeywordOverlap,
        ] {
            for alpha in [0.1, 0.5, 0.9] {
                let fix = fixture(model, alpha);
                let io = IoStats::new();
                let group = UserGroup::from_users(&fix.users, &fix.ctx.text);
                for k in [1, 2, 5] {
                    let out = joint_topk(&fix.tree, &group, k, &fix.ctx, &io);
                    let results = individual_topk(&fix.users, &out, k, &fix.ctx);
                    for (u, res) in fix.users.iter().zip(&results) {
                        let want = brute(&fix, u, k);
                        let got_scores: Vec<f64> = res.topk.iter().map(|&(_, s)| s).collect();
                        let want_scores: Vec<f64> = want.iter().map(|&(_, s)| s).collect();
                        for (g, w) in got_scores.iter().zip(&want_scores) {
                            assert!(
                                (g - w).abs() < 1e-9,
                                "{model:?} α={alpha} k={k} user {}: scores {got_scores:?} vs {want_scores:?}",
                                u.id
                            );
                        }
                        assert!(
                            (res.rsk - want.last().unwrap().1).abs() < 1e-9,
                            "RSk mismatch for user {}",
                            u.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn topk_is_sorted_descending() {
        let fix = fixture(WeightModel::lm(), 0.5);
        let io = IoStats::new();
        let group = UserGroup::from_users(&fix.users, &fix.ctx.text);
        let out = joint_topk(&fix.tree, &group, 4, &fix.ctx, &io);
        for res in individual_topk(&fix.users, &out, 4, &fix.ctx) {
            assert!(res.topk.windows(2).all(|w| w[0].1 >= w[1].1));
            assert_eq!(res.topk.len(), 4);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let fix = fixture(WeightModel::lm(), 0.5);
        let io = IoStats::new();
        let group = UserGroup::from_users(&fix.users, &fix.ctx.text);
        let out = joint_topk(&fix.tree, &group, 3, &fix.ctx, &io);
        let seq = individual_topk(&fix.users, &out, 3, &fix.ctx);
        for threads in [1, 2, 4, 16] {
            let par = individual_topk_parallel(&fix.users, &out, 3, &fix.ctx, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.user, b.user);
                assert_eq!(a.topk, b.topk);
            }
        }
    }

    #[test]
    fn fewer_objects_than_k() {
        let fix = fixture(WeightModel::lm(), 0.5);
        let small: Vec<IndexedObject> = fix.objects[..2].to_vec();
        let tree = StTree::build_with_fanout(&small, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let group = UserGroup::from_users(&fix.users, &fix.ctx.text);
        let out = joint_topk(&tree, &group, 5, &fix.ctx, &io);
        let res = individual_topk(&fix.users, &out, 5, &fix.ctx);
        for r in res {
            assert_eq!(r.topk.len(), 2);
            assert_eq!(r.rsk, f64::NEG_INFINITY);
        }
    }
}
