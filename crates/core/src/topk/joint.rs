//! Algorithm 1: JOINT-TOPK — one MIR-tree traversal for all users.
//!
//! The tree is traversed for the super-user `us` instead of each individual
//! user, ordered by *lower* bound so objects with strong guaranteed scores
//! surface early and tighten the global pruning threshold `RSk(us)` (the
//! k-th best lower bound seen so far). A node or object is pruned as soon
//! as its upper bound w.r.t. `us` falls below `RSk(us)` — by Lemma 2 no
//! user's top-k can then involve anything below it. Every node and
//! inverted file is read at most once, which is the source of the joint
//! method's I/O savings over the per-user baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use index::{ChildRef, NodeScratch, PostingMode, PostingsScratch, StTree};
use storage::{IoStats, RecordId};
use text::WeightedDoc;

use crate::bounds::{lb_entry, lb_object, ub_entry, ub_object};
use crate::topk::{ByKey, ScoredObject, TopkOutcome};
use crate::{ScoreContext, UserGroup};

/// Work items on the traversal queue `PQ` (keyed by lower bound).
enum Item {
    /// An unexpanded node with its parent-derived upper bound.
    Node { rec: RecordId, ub: f64 },
    /// A retrieved object.
    Obj(ScoredObject),
}

/// Runs the Algorithm-1 traversal and returns `LO`, `RO` and `RSk(us)`.
///
/// `tree` must be an MIR-tree ([`PostingMode::MaxMin`]): the lower-bound
/// keys need posting minima.
///
/// # Panics
/// Panics when `k == 0` or when `tree` lacks minima.
pub fn joint_topk(
    tree: &StTree,
    group: &UserGroup,
    k: usize,
    ctx: &ScoreContext,
    io: &IoStats,
) -> TopkOutcome {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        tree.mode(),
        PostingMode::MaxMin,
        "joint top-k requires the MIR-tree (max+min postings)"
    );

    let uni = group.uni_terms();
    let mut node_scratch = NodeScratch::default();
    let mut postings_scratch = PostingsScratch::default();
    let mut pq: BinaryHeap<ByKey<Item>> = BinaryHeap::new();
    // LO: min-heap by LB holding the k best lower-bounded objects.
    let mut lo: BinaryHeap<Reverse<ByKey<ScoredObject>>> = BinaryHeap::new();
    let mut ro: Vec<ScoredObject> = Vec::new();
    let mut rsk_us = f64::NEG_INFINITY;

    pq.push(ByKey {
        key: f64::INFINITY,
        item: Item::Node {
            rec: tree.root(),
            ub: f64::INFINITY,
        },
    });

    while let Some(ByKey { item, .. }) = pq.pop() {
        match item {
            Item::Obj(obj) => {
                if lo.len() < k {
                    let lb = obj.lb;
                    lo.push(Reverse(ByKey { key: lb, item: obj }));
                    if lo.len() == k {
                        rsk_us = lo.peek().unwrap().0.key;
                    }
                } else if obj.ub >= rsk_us {
                    let lb = obj.lb;
                    lo.push(Reverse(ByKey { key: lb, item: obj }));
                    let evicted = lo.pop().unwrap().0.item;
                    rsk_us = lo.peek().unwrap().0.key;
                    if evicted.ub >= rsk_us {
                        ro.push(evicted);
                    }
                }
                // Otherwise the object is pruned outright: its UB cannot
                // beat the k-th best LB for any user.
            }
            Item::Node { rec, ub } => {
                if lo.len() >= k && ub < rsk_us {
                    continue; // pruned (RSk grew since this node was queued)
                }
                let node = tree.read_node_ref(rec, io, &mut node_scratch);
                let postings = tree.read_postings_ref(&node, &uni, io, &mut postings_scratch);
                for i in 0..node.len() {
                    let row = postings.entry(i);
                    match node.child(i) {
                        ChildRef::Object(oid) => {
                            let point = node.point(i);
                            let weights = WeightedDoc::from_pairs(
                                row.iter().map(|&(t, mx, _)| (t, mx)).collect(),
                            );
                            let obj_ub = ub_object(ctx, group, &point, &weights);
                            if lo.len() >= k && obj_ub < rsk_us {
                                continue;
                            }
                            let obj_lb = lb_object(ctx, group, &point, &weights);
                            pq.push(ByKey {
                                key: obj_lb,
                                item: Item::Obj(ScoredObject {
                                    id: oid,
                                    point,
                                    weights,
                                    lb: obj_lb,
                                    ub: obj_ub,
                                }),
                            });
                        }
                        ChildRef::Node(child) => {
                            let rect = node.rect(i);
                            let child_ub = ub_entry(ctx, group, &rect, row);
                            if lo.len() >= k && child_ub < rsk_us {
                                continue;
                            }
                            let child_lb = lb_entry(ctx, group, &rect, row);
                            pq.push(ByKey {
                                key: child_lb,
                                item: Item::Node {
                                    rec: child,
                                    ub: child_ub,
                                },
                            });
                        }
                    }
                }
            }
        }
    }

    // RO must descend by UB for Algorithm 2's early break.
    ro.sort_by(|a, b| b.ub.total_cmp(&a.ub));
    let lo: Vec<ScoredObject> = lo.into_iter().map(|r| r.0.item).collect();
    let rsk_us = if lo.len() == k {
        rsk_us
    } else {
        f64::NEG_INFINITY
    };
    TopkOutcome { lo, ro, rsk_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserData;
    use geo::{Point, Rect, SpatialContext};
    use index::IndexedObject;
    use text::{Document, TermId, TextScorer, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// 30 objects on a 6×5 grid with three rotating terms plus a common
    /// term, 5 users clustered near the middle.
    fn fixture() -> (
        Vec<Document>,
        Vec<IndexedObject>,
        Vec<UserData>,
        ScoreContext,
    ) {
        let docs: Vec<Document> = (0..30)
            .map(|i| Document::from_terms([t(i % 3), t(3)]))
            .collect();
        let text = TextScorer::from_docs(WeightModel::lm(), &docs);
        let objects: Vec<IndexedObject> = docs
            .iter()
            .enumerate()
            .map(|(i, d)| IndexedObject {
                id: i as u32,
                point: Point::new((i % 6) as f64, (i / 6) as f64),
                doc: text.weigh(d),
            })
            .collect();
        let users: Vec<UserData> = (0..5)
            .map(|i| UserData {
                id: i,
                point: Point::new(2.0 + (i as f64) * 0.3, 2.0),
                doc: Document::from_terms([t(i % 3), t(3)]),
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(6.0, 5.0));
        let ctx = ScoreContext::new(0.5, SpatialContext::from_dataspace(&space), text);
        (docs, objects, users, ctx)
    }

    /// Brute-force reference: exact top-k per user by scanning all objects.
    fn brute_topk(
        docs: &[Document],
        objects: &[IndexedObject],
        user: &UserData,
        k: usize,
        ctx: &ScoreContext,
    ) -> Vec<(u32, f64)> {
        let n_u = ctx.text.normalizer(&user.doc);
        let mut scored: Vec<(u32, f64)> = docs
            .iter()
            .zip(objects)
            .map(|(_, o)| (o.id, ctx.sts(&o.point, &o.doc, user, n_u)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn lo_ro_contain_every_users_topk() {
        let (docs, objects, users, ctx) = fixture();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        for k in [1, 3, 5] {
            let group = UserGroup::from_users(&users, &ctx.text);
            let out = joint_topk(&tree, &group, k, &ctx, &io);
            assert_eq!(out.lo.len(), k);
            let kept: std::collections::HashSet<u32> =
                out.lo.iter().chain(out.ro.iter()).map(|o| o.id).collect();
            for u in &users {
                for (oid, _) in brute_topk(&docs, &objects, u, k, &ctx) {
                    assert!(
                        kept.contains(&oid),
                        "k={k}: user {} top-k object {oid} missing from LO∪RO",
                        u.id
                    );
                }
            }
        }
    }

    #[test]
    fn rsk_us_lower_bounds_every_user_rsk() {
        let (docs, objects, users, ctx) = fixture();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let k = 3;
        let group = UserGroup::from_users(&users, &ctx.text);
        let out = joint_topk(&tree, &group, k, &ctx, &io);
        for u in &users {
            let ref_topk = brute_topk(&docs, &objects, u, k, &ctx);
            let rsk_u = ref_topk.last().unwrap().1;
            assert!(
                out.rsk_us <= rsk_u + 1e-9,
                "RSk(us)={} exceeds RSk(u{})={}",
                out.rsk_us,
                u.id,
                rsk_u
            );
        }
    }

    #[test]
    fn ro_is_sorted_descending_by_ub() {
        let (_, objects, users, ctx) = fixture();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let group = UserGroup::from_users(&users, &ctx.text);
        let out = joint_topk(&tree, &group, 2, &ctx, &io);
        assert!(out.ro.windows(2).all(|w| w[0].ub >= w[1].ub));
    }

    #[test]
    fn every_node_read_at_most_once() {
        let (_, objects, users, ctx) = fixture();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let group = UserGroup::from_users(&users, &ctx.text);
        joint_topk(&tree, &group, 3, &ctx, &io);
        // The tree has ~30/4 leaves + inner nodes; visiting each once means
        // node visits can never exceed the node count.
        let total_nodes = 8 + 2 + 1 + 1; // generous upper bound for 30 items, fanout 4
        assert!(io.snapshot().node_visits <= total_nodes + 3);
    }

    #[test]
    fn k_larger_than_dataset_keeps_everything() {
        let (_, objects, users, ctx) = fixture();
        let small = &objects[..3];
        let tree = StTree::build_with_fanout(small, PostingMode::MaxMin, 4);
        let io = IoStats::new();
        let group = UserGroup::from_users(&users, &ctx.text);
        let out = joint_topk(&tree, &group, 10, &ctx, &io);
        assert_eq!(out.lo.len(), 3);
        assert_eq!(out.rsk_us, f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "MIR-tree")]
    fn rejects_max_only_tree() {
        let (_, objects, users, ctx) = fixture();
        let tree = StTree::build_with_fanout(&objects, PostingMode::MaxOnly, 4);
        let io = IoStats::new();
        let group = UserGroup::from_users(&users, &ctx.text);
        joint_topk(&tree, &group, 1, &ctx, &io);
    }
}
