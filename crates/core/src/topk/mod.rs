//! Top-k computation: the §4 baseline and the §5 joint processing.
//!
//! The `MaxBRSTkNN` pipeline first needs `RSk(u)` — the score of the k-th
//! ranked object — for (potentially) every user. The baseline computes each
//! user's top-k independently on the IR-tree; the joint algorithm traverses
//! the MIR-tree once for a super-user and shares every node and inverted
//! file access across all users.

pub mod baseline;
pub mod individual;
pub mod joint;

use geo::Point;
use text::WeightedDoc;

/// An object retrieved from an MIR-tree leaf during joint processing, with
/// its exact term weights (restricted to the query-term universe
/// `us.dUni`) and its bounds w.r.t. the super-user.
#[derive(Debug, Clone)]
pub struct ScoredObject {
    /// Object id.
    pub id: u32,
    /// Object location.
    pub point: Point,
    /// Exact model weights for the union keywords.
    pub weights: WeightedDoc,
    /// `LB(o, us)` — lower bound on `STS(o, u)` for every user.
    pub lb: f64,
    /// `UB(o, us)` — upper bound on `STS(o, u)` for every user.
    pub ub: f64,
}

/// Result of the Algorithm-1 tree traversal.
#[derive(Debug, Clone)]
pub struct TopkOutcome {
    /// `LO`: the k objects with the best lower bounds (any order).
    pub lo: Vec<ScoredObject>,
    /// `RO`: evicted objects that may still reach some user's top-k,
    /// descending by `UB(o, us)` — the order Algorithm 2's early break
    /// requires.
    pub ro: Vec<ScoredObject>,
    /// `RSk(us)`: the k-th best lower bound seen (−∞ when fewer than `k`
    /// objects exist).
    pub rsk_us: f64,
}

/// One user's top-k result.
#[derive(Debug, Clone)]
pub struct UserTopk {
    /// The user's id.
    pub user: u32,
    /// `(object id, STS)` pairs, descending by score, at most `k`.
    pub topk: Vec<(u32, f64)>,
    /// `RSk(u)`: score of the k-th ranked object (−∞ when the user has
    /// fewer than `k` scored objects).
    pub rsk: f64,
}

/// Max-heap adapter ordering payloads by an `f64` key.
#[derive(Debug, Clone)]
pub(crate) struct ByKey<T> {
    pub key: f64,
    pub item: T,
}

impl<T> PartialEq for ByKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for ByKey<T> {}
impl<T> PartialOrd for ByKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ByKey<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.total_cmp(&other.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn bykey_is_a_max_heap_key() {
        let mut h = BinaryHeap::new();
        h.push(ByKey {
            key: 0.3,
            item: "a",
        });
        h.push(ByKey {
            key: 0.9,
            item: "b",
        });
        h.push(ByKey {
            key: 0.5,
            item: "c",
        });
        assert_eq!(h.pop().unwrap().item, "b");
        assert_eq!(h.pop().unwrap().item, "c");
        assert_eq!(h.pop().unwrap().item, "a");
    }

    #[test]
    fn reverse_bykey_is_a_min_heap_key() {
        let mut h = BinaryHeap::new();
        for k in [0.3, 0.9, 0.5] {
            h.push(Reverse(ByKey { key: k, item: () }));
        }
        assert_eq!(h.pop().unwrap().0.key, 0.3);
    }
}
