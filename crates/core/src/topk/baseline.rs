//! §4 baseline: independent per-user top-k on the IR-tree.
//!
//! This is the classic best-first top-k spatial keyword search of Cong et
//! al. (the paper's ref. 3): a priority queue ordered by upper-bound score,
//! node upper bounds from the IR-tree's per-term *maximum* weights, exact
//! scores at the leaves. Each user traverses the tree from scratch, so the
//! same nodes and inverted files are fetched over and over across users —
//! the I/O redundancy the joint algorithm (§5) eliminates.

use std::collections::BinaryHeap;

use index::{ChildRef, NodeScratch, PostingsScratch, StTree};
use storage::{IoStats, RecordId};
use text::TermId;

use crate::topk::{ByKey, UserTopk};
use crate::{ScoreContext, UserData};

enum Item {
    Node(RecordId),
    Obj(u32),
}

/// Reusable traversal state for the per-user searches: the priority queue,
/// the user's term list, and the zero-copy node/postings decode scratch.
/// Hoisted across the user loop so repeated searches reuse one set of
/// buffers instead of rebuilding heaps per user.
#[derive(Default)]
struct BaselineTopkScratch {
    pq: BinaryHeap<ByKey<Item>>,
    terms: Vec<TermId>,
    node: NodeScratch,
    postings: PostingsScratch,
}

/// Computes one user's exact top-k by best-first IR-tree search.
///
/// Works on either posting mode (only maxima are consulted).
///
/// # Panics
/// Panics when `k == 0`.
pub fn user_topk_baseline(
    tree: &StTree,
    user: &UserData,
    k: usize,
    ctx: &ScoreContext,
    io: &IoStats,
) -> UserTopk {
    user_topk_baseline_with(tree, user, k, ctx, io, &mut BaselineTopkScratch::default())
}

fn user_topk_baseline_with(
    tree: &StTree,
    user: &UserData,
    k: usize,
    ctx: &ScoreContext,
    io: &IoStats,
    scratch: &mut BaselineTopkScratch,
) -> UserTopk {
    assert!(k > 0, "k must be positive");
    let BaselineTopkScratch {
        pq,
        terms,
        node: node_scratch,
        postings: postings_scratch,
    } = scratch;
    terms.clear();
    terms.extend(user.doc.terms());
    let n_u = ctx.text.normalizer(&user.doc);

    pq.clear();
    pq.push(ByKey {
        key: f64::INFINITY,
        item: Item::Node(tree.root()),
    });

    let mut topk: Vec<(u32, f64)> = Vec::with_capacity(k);
    while let Some(ByKey { key, item }) = pq.pop() {
        match item {
            Item::Obj(oid) => {
                // Exact score dominates every remaining upper bound, so
                // this object is the next best.
                topk.push((oid, key));
                if topk.len() == k {
                    break;
                }
            }
            Item::Node(rec) => {
                let node = tree.read_node_ref(rec, io, node_scratch);
                let postings = tree.read_postings_ref(&node, terms, io, postings_scratch);
                for i in 0..node.len() {
                    let sum_max: f64 = postings.entry(i).iter().map(|&(_, mx, _)| mx).sum();
                    let ts_ub = if n_u > 0.0 {
                        (sum_max / n_u).min(1.0)
                    } else {
                        0.0
                    };
                    match node.child(i) {
                        ChildRef::Object(oid) => {
                            // Leaf postings are exact weights → exact STS.
                            let ss = ctx.spatial.ss_points(&node.point(i), &user.point);
                            pq.push(ByKey {
                                key: ctx.combine(ss, ts_ub),
                                item: Item::Obj(oid),
                            });
                        }
                        ChildRef::Node(child) => {
                            let ss = ctx
                                .spatial
                                .proximity(node.rect(i).min_dist_point(&user.point));
                            pq.push(ByKey {
                                key: ctx.combine(ss, ts_ub),
                                item: Item::Node(child),
                            });
                        }
                    }
                }
            }
        }
    }

    let rsk = if topk.len() == k {
        topk[k - 1].1
    } else {
        f64::NEG_INFINITY
    };
    UserTopk {
        user: user.id,
        topk,
        rsk,
    }
}

/// The full §4 baseline: every user independently (shared scratch — the
/// queue and decode buffers warm up on the first user and are reused).
pub fn all_users_topk_baseline(
    tree: &StTree,
    users: &[UserData],
    k: usize,
    ctx: &ScoreContext,
    io: &IoStats,
) -> Vec<UserTopk> {
    let mut scratch = BaselineTopkScratch::default();
    users
        .iter()
        .map(|u| user_topk_baseline_with(tree, u, k, ctx, io, &mut scratch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::{Point, Rect, SpatialContext};
    use index::{IndexedObject, PostingMode};
    use text::{Document, TextScorer, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    struct Fix {
        objects: Vec<IndexedObject>,
        users: Vec<UserData>,
        ctx: ScoreContext,
    }

    fn fixture(model: WeightModel) -> Fix {
        let docs: Vec<Document> = (0..35)
            .map(|i| Document::from_pairs([(t(i % 5), 1 + i % 3), (t(5), 1)]))
            .collect();
        let text = TextScorer::from_docs(model, &docs);
        let objects = docs
            .iter()
            .enumerate()
            .map(|(i, d)| IndexedObject {
                id: i as u32,
                point: Point::new((i % 7) as f64, (i / 7) as f64),
                doc: text.weigh(d),
            })
            .collect();
        let users = (0..4)
            .map(|i| UserData {
                id: i,
                point: Point::new(3.0, 1.0 + i as f64),
                doc: Document::from_terms([t(i % 5), t(5)]),
            })
            .collect();
        let space = Rect::new(Point::new(0.0, 0.0), Point::new(7.0, 5.0));
        let ctx = ScoreContext::new(0.4, SpatialContext::from_dataspace(&space), text);
        Fix {
            objects,
            users,
            ctx,
        }
    }

    fn brute(fix: &Fix, user: &UserData, k: usize) -> Vec<(u32, f64)> {
        let n_u = fix.ctx.text.normalizer(&user.doc);
        let mut all: Vec<(u32, f64)> = fix
            .objects
            .iter()
            .map(|o| (o.id, fix.ctx.sts(&o.point, &o.doc, user, n_u)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn baseline_matches_brute_force_on_ir_and_mir() {
        for model in [
            WeightModel::lm(),
            WeightModel::TfIdf,
            WeightModel::KeywordOverlap,
        ] {
            let fix = fixture(model);
            for mode in [PostingMode::MaxOnly, PostingMode::MaxMin] {
                let tree = StTree::build_with_fanout(&fix.objects, mode, 4);
                let io = IoStats::new();
                for u in &fix.users {
                    for k in [1, 3, 7] {
                        let got = user_topk_baseline(&tree, u, k, &fix.ctx, &io);
                        let want = brute(&fix, u, k);
                        assert_eq!(got.topk.len(), k);
                        for ((_, gs), (_, ws)) in got.topk.iter().zip(&want) {
                            assert!(
                                (gs - ws).abs() < 1e-9,
                                "{model:?} {mode:?} k={k} user {}",
                                u.id
                            );
                        }
                        assert!((got.rsk - want[k - 1].1).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_users_multiply_io() {
        let fix = fixture(WeightModel::lm());
        let tree = StTree::build_with_fanout(&fix.objects, PostingMode::MaxOnly, 4);
        let io = IoStats::new();
        user_topk_baseline(&tree, &fix.users[0], 3, &fix.ctx, &io);
        let one = io.total();
        user_topk_baseline(&tree, &fix.users[0], 3, &fix.ctx, &io);
        // Cold repetition costs the same again — no cache in the substrate.
        assert_eq!(io.total(), 2 * one);
    }

    #[test]
    fn fewer_objects_than_k_returns_all() {
        let fix = fixture(WeightModel::lm());
        let small = &fix.objects[..2];
        let tree = StTree::build_with_fanout(small, PostingMode::MaxOnly, 4);
        let io = IoStats::new();
        let got = user_topk_baseline(&tree, &fix.users[0], 6, &fix.ctx, &io);
        assert_eq!(got.topk.len(), 2);
        assert_eq!(got.rsk, f64::NEG_INFINITY);
    }
}
