//! The super-user and its generalization to arbitrary user groups.
//!
//! §5.2 groups all users into one "super-user" `us`: the MBR of their
//! locations, the union `us.dUni` and intersection `us.dInt` of their
//! keyword sets. §7 applies the same idea to MIUR-tree nodes — any subtree
//! of users is summarized the same way. [`UserGroup`] covers both.
//!
//! Beyond the paper's three fields we also carry bounds on the user text
//! normalizer `N(u)` (the paper's `Pmax`): `n_min ≤ N(u) ≤ n_max` for every
//! user in the group. These make the `MaxTS`/`MinTS` estimations provably
//! correct even when users weigh their keyword sets differently (the
//! paper's generated users all share one normalizer, in which case
//! `n_min = n_max` and the bounds coincide with Eq. 4's `Pmax`).

use geo::Rect;
use text::{Document, TermId, TextScorer};

use crate::UserData;

/// A summarized set of users: the super-user (§5.2) or an MIUR node (§7).
#[derive(Debug, Clone)]
pub struct UserGroup {
    /// MBR of the member locations (`us.l`).
    pub mbr: Rect,
    /// Union of member keyword sets (`us.dUni`).
    pub d_uni: Document,
    /// Intersection of member keyword sets (`us.dInt`).
    pub d_int: Document,
    /// Lower bound on any member's normalizer `N(u)`.
    pub n_min: f64,
    /// Upper bound on any member's normalizer `N(u)`.
    pub n_max: f64,
    /// Number of users summarized.
    pub count: usize,
}

impl UserGroup {
    /// Builds the super-user over concrete users, with *exact* normalizer
    /// extremes.
    ///
    /// # Panics
    /// Panics when `users` is empty.
    pub fn from_users(users: &[UserData], scorer: &TextScorer) -> Self {
        assert!(!users.is_empty(), "super-user over an empty user set");
        let mbr = Rect::bounding(users.iter().map(|u| u.point)).unwrap();

        let mut uni: Vec<TermId> = Vec::new();
        for u in users {
            uni.extend(u.doc.terms());
        }
        uni.sort_unstable();
        uni.dedup();

        let mut int: Vec<TermId> = users[0].doc.terms().collect();
        for u in &users[1..] {
            int.retain(|&t| u.doc.contains(t));
        }

        let mut n_min = f64::INFINITY;
        let mut n_max: f64 = 0.0;
        for u in users {
            let n = scorer.normalizer(&u.doc);
            n_min = n_min.min(n);
            n_max = n_max.max(n);
        }

        UserGroup {
            mbr,
            d_uni: Document::from_terms(uni),
            d_int: Document::from_terms(int),
            n_min,
            n_max,
            count: users.len(),
        }
    }

    /// Builds a group from an MIUR-tree node entry's summary: MBR, union,
    /// intersection and user count. Normalizer extremes are bounded from
    /// the keyword vectors: `N(u) ≥ Σ_{t∈int} wmax(t)` (every member has at
    /// least the shared keywords) and `N(u) ≤ Σ_{t∈uni} wmax(t)`.
    pub fn from_summary(
        mbr: Rect,
        uni: &[TermId],
        int: &[TermId],
        count: usize,
        scorer: &TextScorer,
    ) -> Self {
        let n_min = int.iter().map(|&t| scorer.max_weight(t)).sum();
        let n_max = uni.iter().map(|&t| scorer.max_weight(t)).sum();
        UserGroup {
            mbr,
            d_uni: Document::from_terms(uni.iter().copied()),
            d_int: Document::from_terms(int.iter().copied()),
            n_min,
            n_max,
            count,
        }
    }

    /// Builds a group from an MIUR node entry carrying exact normalizer
    /// brackets (stored at index-build time; see
    /// [`index::IndexedUser::norm`]). Tighter than
    /// [`UserGroup::from_summary`], whose `n_min` collapses to 0 for
    /// groups with an empty keyword intersection.
    pub fn from_node_entry(
        mbr: Rect,
        uni: &[TermId],
        int: &[TermId],
        count: usize,
        n_min: f64,
        n_max: f64,
    ) -> Self {
        UserGroup {
            mbr,
            d_uni: Document::from_terms(uni.iter().copied()),
            d_int: Document::from_terms(int.iter().copied()),
            n_min,
            n_max,
            count,
        }
    }

    /// Sorted union terms (query-term universe for index accesses).
    pub fn uni_terms(&self) -> Vec<TermId> {
        self.d_uni.terms().collect()
    }

    /// Upper-bounds a raw weight sum over `d_uni` as a normalized `TS`
    /// value: `min(1, sum / n_min)`.
    ///
    /// `TS(o, u) = Σ_{t∈u.d} w / N(u) ≤ Σ_{t∈uni} wmax / n_min`, and `TS`
    /// is always ≤ 1, so the cap never cuts below a true score.
    #[inline]
    pub fn ts_upper(&self, sum_over_uni: f64) -> f64 {
        if sum_over_uni <= 0.0 {
            0.0
        } else if self.n_min <= 0.0 {
            1.0
        } else {
            (sum_over_uni / self.n_min).min(1.0)
        }
    }

    /// Lower-bounds a raw weight sum over `d_int` as a normalized `TS`
    /// value: `sum / n_max` (0 when the group shares no keyword).
    #[inline]
    pub fn ts_lower(&self, sum_over_int: f64) -> f64 {
        if self.n_max <= 0.0 {
            0.0
        } else {
            sum_over_int / self.n_max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;
    use text::WeightModel;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn users() -> Vec<UserData> {
        vec![
            UserData {
                id: 0,
                point: Point::new(0.0, 0.0),
                doc: Document::from_terms([t(0), t(1)]),
            },
            UserData {
                id: 1,
                point: Point::new(4.0, 2.0),
                doc: Document::from_terms([t(0), t(2)]),
            },
            UserData {
                id: 2,
                point: Point::new(2.0, 6.0),
                doc: Document::from_terms([t(0), t(1), t(2)]),
            },
        ]
    }

    fn scorer() -> TextScorer {
        let docs = vec![
            Document::from_terms([t(0), t(1)]),
            Document::from_terms([t(2)]),
        ];
        TextScorer::from_docs(WeightModel::KeywordOverlap, &docs)
    }

    #[test]
    fn super_user_fields_match_example_semantics() {
        let su = UserGroup::from_users(&users(), &scorer());
        assert_eq!(
            su.mbr,
            Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 6.0))
        );
        assert_eq!(su.d_uni.terms().collect::<Vec<_>>(), vec![t(0), t(1), t(2)]);
        assert_eq!(su.d_int.terms().collect::<Vec<_>>(), vec![t(0)]);
        assert_eq!(su.count, 3);
    }

    #[test]
    fn normalizer_extremes_bracket_every_user() {
        let sc = scorer();
        let us = users();
        let su = UserGroup::from_users(&us, &sc);
        for u in &us {
            let n = sc.normalizer(&u.doc);
            assert!(su.n_min <= n + 1e-12);
            assert!(su.n_max >= n - 1e-12);
        }
    }

    #[test]
    fn summary_bounds_are_looser_or_equal() {
        let sc = scorer();
        let us = users();
        let exact = UserGroup::from_users(&us, &sc);
        let uni: Vec<TermId> = exact.d_uni.terms().collect();
        let int: Vec<TermId> = exact.d_int.terms().collect();
        let summary = UserGroup::from_summary(exact.mbr, &uni, &int, 3, &sc);
        assert!(summary.n_min <= exact.n_min + 1e-12);
        assert!(summary.n_max >= exact.n_max - 1e-12);
    }

    #[test]
    fn ts_upper_caps_at_one() {
        let su = UserGroup::from_users(&users(), &scorer());
        assert_eq!(su.ts_upper(1e12), 1.0);
        assert_eq!(su.ts_upper(0.0), 0.0);
        assert!(su.ts_upper(su.n_min / 2.0) <= 0.5 + 1e-12);
    }

    #[test]
    fn ts_lower_zero_on_empty_intersection() {
        let mut us = users();
        us.push(UserData {
            id: 3,
            point: Point::new(1.0, 1.0),
            doc: Document::from_terms([t(5)]),
        });
        let su = UserGroup::from_users(&us, &scorer());
        assert!(su.d_int.is_empty());
        assert_eq!(su.ts_lower(0.0), 0.0);
    }

    #[test]
    fn singleton_group_is_exact() {
        let sc = scorer();
        let us = &users()[..1];
        let su = UserGroup::from_users(us, &sc);
        let n = sc.normalizer(&us[0].doc);
        assert_eq!(su.n_min, n);
        assert_eq!(su.n_max, n);
        assert_eq!(su.d_uni, us[0].doc);
        assert_eq!(su.d_int, us[0].doc);
    }
}
