//! Dynamic updates: epoch-versioned mutations with incremental index
//! maintenance and cache invalidation.
//!
//! The paper evaluates static object/user sets; a serving system must
//! absorb inserts and deletes without a full rebuild. This module makes
//! [`Engine`] updatable:
//!
//! * **Mutation API** — [`Engine::insert_object`] /
//!   [`Engine::remove_object`] / [`Engine::insert_user`] /
//!   [`Engine::remove_user`], plus [`Engine::apply_batch`] over
//!   [`Mutation`] streams. Object mutations maintain both disk-resident
//!   object trees (MIR + IR) incrementally; user mutations maintain the
//!   MIUR-tree, repairing the IntUni vectors, user counts and normalizer
//!   brackets along the affected root-to-leaf path.
//! * **Epoch versioning** — every mutation bumps the engine's generation
//!   counter. Rust's borrow rules already guarantee snapshot consistency
//!   (mutations take `&mut Engine`, so no query can run concurrently with
//!   one, and an entire `query_batch` sees one frozen engine); the epoch
//!   makes the generation *observable*: an [`EpochGuard`] taken before a
//!   batch tells a serving layer, after releasing the borrow, whether its
//!   results — or any derived state it kept — came from a stale snapshot.
//!   Threshold-cache slots are stamped with the epoch, so stale epochs are
//!   the invalidation signal even if an eager clear were ever missed.
//! * **Invalidation wiring** — every mutation flushes the page-cache keys
//!   of the records it rewrote (see [`index::TreeEdit`]) from the engine's
//!   [`storage::ShardedLru`], and invalidates the
//!   [`ThresholdCache`](crate::ThresholdCache): object mutations drop the
//!   per-`k` maps but keep the memoized super-user (it depends on users
//!   only); user mutations drop everything.
//!
//! # Frozen scoring model
//!
//! The text scorer (corpus statistics, per-term maxima) and the spatial
//! normalization context are frozen at [`Engine::build`] time; inserted
//! objects are weighed under that build-time model. For corpus-independent
//! relevance (`WeightModel::KeywordOverlap`) a mutated engine is
//! *exactly* equivalent to a fresh build over the surviving sets — the
//! mutation-equivalence suite pins this bit-for-bit. For corpus-dependent
//! models (LM, TF-IDF) the global statistics drift as the corpus churns,
//! exactly as IDF drifts in production search engines; the two-tier
//! refresh subsystem ([`crate::refresh`]) re-weighs them in the
//! background — a full cold rebuild when drift is broad, an incremental
//! ledger-driven splice ([`crate::refresh::incremental`]) when it is
//! term-local. Soundness is never at stake: inserted weights are clamped
//! to the frozen `wmax(t)` (see [`Engine::insert_object`]), so every
//! pruning bound keeps dominating every indexed score and the answers
//! stay exact *under the frozen model* — only the model itself ages
//! (the clamp is also why the incremental drift ledger re-weighs clamped
//! outliers even when none of their terms drifted).
//!
//! # Cost model
//!
//! Maintenance I/O follows the paper's accounting (1 simulated I/O per
//! node record, ⌈bytes/4096⌉ per textual payload) but lands in the
//! returned [`MaintenanceIo`], not the engine's query-side counter —
//! mutating must not pollute the query metrics. `figures -- churn`
//! compares this incremental cost against [`Engine::rebuild_io_cost`].

use index::{IndexedObject, IndexedUser, TreeEdit};

use crate::{Engine, ObjectData, UserData};

/// One engine mutation, for batch application and generated churn
/// streams.
#[derive(Debug, Clone)]
pub enum Mutation {
    /// Add an object (id must be unused).
    InsertObject(ObjectData),
    /// Remove the object with this id.
    RemoveObject(u32),
    /// Add a user (id must be unused).
    InsertUser(UserData),
    /// Remove the user with this id.
    RemoveUser(u32),
}

/// Simulated I/O one mutation (or batch) spent maintaining the indexes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceIo {
    /// Reads while locating and repairing affected paths.
    pub reads: u64,
    /// Node records written.
    pub node_writes: u64,
    /// 4 KB blocks of textual payload written.
    pub payload_blocks: u64,
}

impl MaintenanceIo {
    /// Total simulated maintenance I/O.
    pub fn total(&self) -> u64 {
        self.reads + self.node_writes + self.payload_blocks
    }
}

impl std::ops::AddAssign for MaintenanceIo {
    fn add_assign(&mut self, rhs: MaintenanceIo) {
        self.reads += rhs.reads;
        self.node_writes += rhs.node_writes;
        self.payload_blocks += rhs.payload_blocks;
    }
}

/// Outcome of [`Engine::apply_batch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchReport {
    /// Mutations applied.
    pub applied: usize,
    /// Mutations rejected (duplicate insert id, unknown remove id).
    pub rejected: usize,
    /// Total maintenance I/O of the applied mutations.
    pub io: MaintenanceIo,
}

/// A snapshot of the engine's generation counter.
///
/// Take one before running queries whose results (or derived state) will
/// outlive the `&Engine` borrow; once the borrow is released and mutations
/// may have run, [`EpochGuard::is_current`] says whether those results
/// still describe the live engine. In-flight queries never see a torn
/// state — `&mut` exclusivity guarantees mutations wait for them — so a
/// stale guard means "computed against a consistent but older snapshot".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochGuard {
    epoch: u64,
}

impl EpochGuard {
    /// The generation this guard was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when no mutation has run since the guard was taken.
    pub fn is_current(&self, engine: &Engine) -> bool {
        self.epoch == engine.epoch()
    }
}

impl Engine {
    /// The engine's generation counter (bumped by every mutation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Captures the current generation (see [`EpochGuard`]).
    pub fn epoch_guard(&self) -> EpochGuard {
        EpochGuard { epoch: self.epoch }
    }

    /// Inserts an object into the table and both object indexes (MIR and
    /// IR), weighing its document under the frozen build-time model.
    /// Returns `None` without touching anything when the id is already in
    /// use.
    ///
    /// Weights are clamped to the frozen per-term maxima `wmax(t)`: every
    /// pruning bound in the engine (group `TS` caps, baseline upper
    /// bounds, Lemma 3) assumes no indexed weight exceeds `wmax`. Under
    /// LM and KeywordOverlap the clamp never fires — any document's
    /// weight is bounded by the keyword-unit ceiling already folded into
    /// `wmax` — but TF-IDF's `tf · idf` is unbounded in `tf`, and an
    /// unclamped outlier would make exact methods silently unsound.
    pub fn insert_object(&mut self, obj: ObjectData) -> Option<MaintenanceIo> {
        if self.objects.iter().any(|o| o.id == obj.id) {
            return None;
        }
        let weighed = self.ctx.text.weigh(&obj.doc);
        let indexed = IndexedObject {
            id: obj.id,
            point: obj.point,
            doc: text::WeightedDoc::from_pairs(
                weighed
                    .entries
                    .iter()
                    .map(|&(t, w)| (t, w.min(self.ctx.text.max_weight(t))))
                    .collect(),
            ),
        };
        let mut io = MaintenanceIo::default();
        let edit = self.mir.insert(&indexed);
        self.flush_edit(edit, &mut io);
        let edit = self.ir.insert(&indexed);
        self.flush_edit(edit, &mut io);
        self.objects.push(obj);
        self.finish_object_mutation();
        Some(io)
    }

    /// Removes the object with `id` from the table and both object
    /// indexes. Returns `None` when the id is unknown.
    ///
    /// # Panics
    /// Panics when asked to remove the last object — an engine over an
    /// empty object set is not queryable.
    pub fn remove_object(&mut self, id: u32) -> Option<MaintenanceIo> {
        let pos = self.objects.iter().position(|o| o.id == id)?;
        assert!(
            self.objects.len() > 1,
            "cannot remove the last object: an empty engine is not queryable"
        );
        let point = self.objects[pos].point;
        let mut io = MaintenanceIo::default();
        let edit = self.mir.remove(id, point).expect("object indexed in MIR");
        self.flush_edit(edit, &mut io);
        let edit = self.ir.remove(id, point).expect("object indexed in IR");
        self.flush_edit(edit, &mut io);
        self.objects.remove(pos);
        self.finish_object_mutation();
        Some(io)
    }

    /// Inserts a user into the table and, when built, the MIUR-tree (with
    /// its normalizer computed under the frozen model). Returns `None`
    /// when the id is already in use.
    pub fn insert_user(&mut self, user: UserData) -> Option<MaintenanceIo> {
        if self.users.iter().any(|u| u.id == user.id) {
            return None;
        }
        let mut io = MaintenanceIo::default();
        let indexed = IndexedUser {
            id: user.id,
            point: user.point,
            doc: user.doc.clone(),
            norm: self.ctx.text.normalizer(&user.doc),
        };
        let edit = self.miur.as_mut().map(|miur| miur.insert(&indexed));
        if let Some(edit) = edit {
            self.flush_edit(edit, &mut io);
        }
        self.users.push(user);
        self.finish_user_mutation();
        Some(io)
    }

    /// Removes the user with `id` from the table and the MIUR-tree.
    /// Returns `None` when the id is unknown.
    ///
    /// # Panics
    /// Panics when asked to remove the last user.
    pub fn remove_user(&mut self, id: u32) -> Option<MaintenanceIo> {
        let pos = self.users.iter().position(|u| u.id == id)?;
        assert!(
            self.users.len() > 1,
            "cannot remove the last user: an empty engine is not queryable"
        );
        let point = self.users[pos].point;
        let mut io = MaintenanceIo::default();
        if let Some(miur) = self.miur.as_mut() {
            let edit = miur.remove(id, point).expect("user indexed in MIUR");
            self.flush_edit(edit, &mut io);
        }
        self.users.remove(pos);
        self.finish_user_mutation();
        Some(io)
    }

    /// Applies a stream of mutations in order, aggregating what happened.
    /// Rejected mutations (duplicate insert ids, unknown remove ids) are
    /// counted and skipped; the rest of the batch still applies.
    pub fn apply_batch(&mut self, mutations: impl IntoIterator<Item = Mutation>) -> BatchReport {
        let mut report = BatchReport::default();
        for m in mutations {
            let outcome = match m {
                Mutation::InsertObject(o) => self.insert_object(o),
                Mutation::RemoveObject(id) => self.remove_object(id),
                Mutation::InsertUser(u) => self.insert_user(u),
                Mutation::RemoveUser(id) => self.remove_user(id),
            };
            match outcome {
                Some(io) => {
                    report.applied += 1;
                    report.io += io;
                }
                None => report.rejected += 1,
            }
        }
        report
    }

    /// Simulated I/O a full index rebuild would cost right now: writing
    /// every live node record and textual payload of the MIR, IR and (when
    /// built) MIUR trees. The yardstick incremental maintenance is
    /// measured against — see the `figures -- churn` experiment and the
    /// `tests/dynamic_updates.rs` acceptance bound.
    pub fn rebuild_io_cost(&self) -> u64 {
        self.mir.footprint_io()
            + self.ir.footprint_io()
            + self.miur.as_ref().map_or(0, |m| m.footprint_io())
    }

    /// Folds a tree edit into the running maintenance tally and flushes
    /// its stale pages from the attached page cache (if any).
    fn flush_edit(&self, edit: TreeEdit, io: &mut MaintenanceIo) {
        self.io.evict_keys(edit.stale_keys.iter().copied());
        io.reads += edit.read_ios;
        io.node_writes += edit.node_writes;
        io.payload_blocks += edit.payload_blocks;
    }

    /// Post-mutation bookkeeping for object changes: bump the epoch and
    /// eagerly drop the object-dependent threshold-cache entries (the
    /// memoized super-user depends on users only and survives).
    fn finish_object_mutation(&mut self) {
        self.epoch += 1;
        self.obj_muts_since_refresh += 1;
        if let Some(tc) = &self.thresholds {
            tc.invalidate_objects();
        }
    }

    /// Post-mutation bookkeeping for user changes: bump both generation
    /// counters and drop every threshold-cache entry including the
    /// memoized super-user. Crate-visible so [`crate::cluster`] can drain
    /// a user shard to empty (a path [`Engine::remove_user`] forbids for
    /// standalone engines) while keeping the epochs honest.
    pub(crate) fn finish_user_mutation(&mut self) {
        self.epoch += 1;
        self.user_epoch += 1;
        self.user_muts_since_refresh += 1;
        if let Some(tc) = &self.thresholds {
            tc.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, QuerySpec};
    use geo::Point;
    use text::{Document, TermId, WeightModel};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn obj(id: u32, x: f64, y: f64, term: u32) -> ObjectData {
        ObjectData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(9)]),
        }
    }

    fn user(id: u32, x: f64, y: f64, term: u32) -> UserData {
        UserData {
            id,
            point: Point::new(x, y),
            doc: Document::from_terms([t(term), t(9)]),
        }
    }

    fn engine() -> Engine {
        let objects: Vec<ObjectData> = (0..40)
            .map(|i| obj(i, (i % 8) as f64, (i / 8) as f64, i % 4))
            .collect();
        let users: Vec<UserData> = (0..10)
            .map(|i| user(i, (i % 6) as f64 + 0.4, (i % 4) as f64 + 0.3, i % 4))
            .collect();
        Engine::build_with_fanout(objects, users, WeightModel::KeywordOverlap, 0.5, 4)
            .with_user_index()
    }

    fn spec() -> QuerySpec {
        QuerySpec {
            ox_doc: Document::from_terms([t(9)]),
            locations: vec![Point::new(2.0, 1.5), Point::new(6.0, 3.0)],
            keywords: vec![t(0), t(1), t(2), t(3)],
            ws: 2,
            k: 3,
        }
    }

    #[test]
    fn mutations_bump_the_epoch_and_guards_notice() {
        let mut eng = engine();
        let guard = eng.epoch_guard();
        assert!(guard.is_current(&eng));
        eng.insert_object(obj(100, 3.5, 3.5, 1)).unwrap();
        assert!(!guard.is_current(&eng));
        assert_eq!(eng.epoch(), guard.epoch() + 1);
        eng.remove_user(0).unwrap();
        assert_eq!(eng.epoch(), guard.epoch() + 2);
    }

    #[test]
    fn duplicate_insert_and_unknown_remove_are_rejected() {
        let mut eng = engine();
        let before = eng.epoch();
        assert!(eng.insert_object(obj(0, 1.0, 1.0, 0)).is_none());
        assert!(eng.remove_object(999).is_none());
        assert!(eng.insert_user(user(0, 1.0, 1.0, 0)).is_none());
        assert!(eng.remove_user(999).is_none());
        assert_eq!(eng.epoch(), before, "rejected mutations must not bump");
        assert_eq!(eng.objects.len(), 40);
        assert_eq!(eng.users.len(), 10);
    }

    #[test]
    fn apply_batch_counts_and_aggregates() {
        let mut eng = engine();
        let report = eng.apply_batch(vec![
            Mutation::InsertObject(obj(100, 2.2, 2.2, 1)),
            Mutation::RemoveObject(3),
            Mutation::InsertUser(user(50, 3.0, 1.0, 2)),
            Mutation::RemoveUser(999),                     // unknown
            Mutation::InsertObject(obj(100, 0.0, 0.0, 0)), // duplicate
        ]);
        assert_eq!(report.applied, 3);
        assert_eq!(report.rejected, 2);
        assert!(report.io.total() > 0);
        assert_eq!(eng.objects.len(), 40);
        assert_eq!(eng.users.len(), 11);
        assert_eq!(eng.mir.num_objects(), 40);
        assert_eq!(eng.miur.as_ref().unwrap().num_users(), 11);
    }

    /// Object mutations keep the memoized super-user (users unchanged)
    /// but drop every per-`k` slot; user mutations drop the super-user
    /// too. Either way the next same-`k` query is a miss.
    #[test]
    fn threshold_cache_is_invalidated_per_mutation_kind() {
        let mut eng = engine().with_threshold_cache();
        let s = spec();
        let _ = eng.query(&s, Method::JointExact);
        let su_before = eng.super_user_shared();
        let misses_before = eng.thresholds.as_ref().unwrap().misses();

        eng.insert_object(obj(100, 3.3, 1.1, 2)).unwrap();
        let su_after = eng.super_user_shared();
        assert!(
            std::sync::Arc::ptr_eq(&su_before, &su_after),
            "object mutation must keep the user-only super-user memo"
        );
        let _ = eng.query(&s, Method::JointExact);
        assert!(
            eng.thresholds.as_ref().unwrap().misses() > misses_before,
            "same-k query after an object mutation must recompute"
        );

        eng.insert_user(user(50, 2.0, 2.0, 1)).unwrap();
        let su_fresh = eng.super_user_shared();
        assert!(
            !std::sync::Arc::ptr_eq(&su_after, &su_fresh),
            "user mutation must drop the super-user memo"
        );
        assert_eq!(su_fresh.count, 11);
    }

    /// The epoch stamp alone invalidates: even bypassing the eager clear
    /// (simulated by stamping a slot under an old epoch), a lookup with
    /// the current epoch recomputes.
    #[test]
    fn stale_epoch_is_a_sufficient_invalidation_signal() {
        let mut eng = engine().with_threshold_cache();
        let s = spec();
        let _ = eng.query(&s, Method::Baseline);
        // Bump the epoch without touching the cache (not a real mutation
        // path; isolates the stamp mechanism).
        eng.epoch += 1;
        let before = eng.thresholds.as_ref().unwrap().misses();
        let _ = eng.query(&s, Method::Baseline);
        assert_eq!(
            eng.thresholds.as_ref().unwrap().misses(),
            before + 1,
            "stale stamp must force a recompute"
        );
    }

    /// Mutations flush rewritten pages from an attached page cache: a
    /// post-mutation query must never be satisfied by a stale page. (The
    /// record ids are fresh, so the direct symptom of a missing flush is
    /// unbounded cache growth; the eviction keeps held blocks tied to
    /// live records.)
    #[test]
    fn page_cache_sheds_rewritten_pages() {
        let mut eng = engine().with_page_cache(1 << 12);
        let s = spec();
        let _ = eng.query(&s, Method::JointExact); // warm the page cache
        let held_before = eng.io.cache().unwrap().held_blocks();
        assert!(held_before > 0);
        // Churn enough that many nodes are rewritten.
        for i in 0..20 {
            eng.insert_object(obj(200 + i, (i % 5) as f64 + 0.1, 2.0, i % 4))
                .unwrap();
            eng.remove_object(i).unwrap();
        }
        // Warm pages for retired records were evicted; the cache only
        // retains pages that can still be read.
        let _ = eng.query(&s, Method::JointExact);
        assert!(eng.io.cache().unwrap().held_blocks() > 0);
    }

    #[test]
    fn rebuild_cost_reflects_live_footprint() {
        let mut eng = engine();
        let before = eng.rebuild_io_cost();
        assert!(before > 0);
        for i in 0..30 {
            eng.remove_object(i).unwrap();
        }
        assert!(
            eng.rebuild_io_cost() < before,
            "three quarters of the objects gone, rebuild must be cheaper"
        );
    }

    #[test]
    #[should_panic(expected = "last user")]
    fn removing_the_last_user_panics() {
        let objects = vec![obj(0, 0.0, 0.0, 0), obj(1, 1.0, 1.0, 1)];
        let users = vec![user(0, 0.5, 0.5, 0)];
        let mut eng =
            Engine::build_with_fanout(objects, users, WeightModel::KeywordOverlap, 0.5, 4);
        eng.remove_user(0);
    }
}
