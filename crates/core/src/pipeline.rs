//! Strategy-based query pipeline and batch-parallel execution.
//!
//! The paper evaluates six end-to-end ways of answering a `MaxBRSTkNN`
//! query. Each one is a [`QueryStrategy`]: a stateless, thread-safe plan
//! that takes the [`Engine`] and a [`QuerySpec`] and produces a
//! [`QueryResult`]. [`Method`] stays the convenient public
//! handle — it is now a thin resolver into the strategy table below — and
//! callers that want behaviour outside the built-in six (custom pruning,
//! different selection, instrumentation) can implement the trait themselves
//! and run through [`Engine::query_with`] / [`Engine::query_batch_with`]
//! without touching the engine.
//!
//! Batching is the scaling primitive this layer adds: a production service
//! answers many queries against one (read-only) engine, so
//! [`Engine::query_batch`] fans a slice of specs out across threads. All
//! strategies are deterministic and take `&Engine`, so batched results are
//! bit-identical to sequential ones; per-query cost comes back as
//! [`QueryStats`] via the storage layer's per-thread I/O accounting
//! ([`IoStats::scoped`](storage::IoStats::scoped)).
//!
//! # Implementing a custom strategy
//!
//! ```ignore
//! struct FirstLocationOnly;
//!
//! impl QueryStrategy for FirstLocationOnly {
//!     fn name(&self) -> &'static str { "first-location-only" }
//!     fn execute(
//!         &self,
//!         engine: &Engine,
//!         spec: &QuerySpec,
//!         arena: &mut QueryArena,
//!         out: &mut QueryResult,
//!     ) {
//!         let narrowed = QuerySpec { locations: spec.locations[..1].to_vec(), ..spec.clone() };
//!         JOINT_GREEDY.execute(engine, &narrowed, arena, out);
//!     }
//! }
//!
//! let outcomes = engine.query_batch_with(&specs, &FirstLocationOnly, 4);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use storage::IoSnapshot;

use crate::arena::QueryArena;
use crate::select::baseline::baseline_select_into;
use crate::select::location::{select_candidate_into, KeywordSelector};
use crate::select::CandidateContext;
use crate::trace::{Phase, PhaseBreakdown};
use crate::user_index::{compute_user_index_seed, run_selection};
use crate::{Engine, Method, QueryResult, QuerySpec};

/// One end-to-end way of answering a `MaxBRSTkNN` query.
///
/// Implementations must be stateless with respect to the engine (they get
/// `&Engine`) and are required to be `Send + Sync` so batches can share
/// them across worker threads.
pub trait QueryStrategy: Send + Sync {
    /// Stable, kebab-case identifier (used in logs, benches and reports).
    fn name(&self) -> &'static str;

    /// Whether the strategy needs [`Engine::with_user_index`] to have been
    /// called (the §7 MIUR-tree pipelines do).
    fn requires_user_index(&self) -> bool {
        false
    }

    /// Answers the query into `out` (overwritten, not appended — buffer
    /// capacity is the only state that survives from its previous value).
    /// `arena` supplies every scratch buffer the built-in kernels use;
    /// passing the same arena across calls makes warm queries
    /// allocation-free, and a fresh [`QueryArena`] is always valid. Custom
    /// strategies just thread both through to the built-in strategies they
    /// delegate to.
    ///
    /// Must be deterministic (the same engine and spec give the same
    /// result, on any thread, whatever the arena's history) and must do
    /// all its work on the calling thread: per-query I/O accounting in
    /// [`Engine::query_batch`] measures the calling thread's charges, so
    /// an implementation that spawns threads of its own would silently
    /// under-report its I/O.
    fn execute(
        &self,
        engine: &Engine,
        spec: &QuerySpec,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    );
}

/// §4: per-user top-k on the IR-tree + exhaustive candidate scan.
#[derive(Debug, Clone, Copy)]
pub struct BaselineScan;

impl QueryStrategy for BaselineScan {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn execute(
        &self,
        engine: &Engine,
        spec: &QuerySpec,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    ) {
        arena.trace_arm();
        let tks = engine.baseline_thresholds(spec.k);
        arena.trace_stamp(Phase::TopK);
        arena.rsk.clear();
        arena.rsk.extend(tks.iter().map(|t| t.rsk));
        let cc = CandidateContext::new_reusing(
            &engine.ctx,
            spec,
            &engine.users,
            &arena.rsk,
            std::mem::take(&mut arena.cc),
        );
        baseline_select_into(&cc, &mut arena.sel, out);
        arena.cc = cc.into_scratch();
        arena.trace_stamp(Phase::Select);
    }
}

/// §5+§6: joint top-k (Algorithms 1+2) + Algorithm 3 with the configured
/// keyword selector.
#[derive(Debug, Clone, Copy)]
pub struct JointPipeline {
    /// Keyword-selection subroutine for Algorithm 3.
    pub selector: KeywordSelector,
}

impl QueryStrategy for JointPipeline {
    fn name(&self) -> &'static str {
        match self.selector {
            KeywordSelector::Greedy => "joint-greedy",
            KeywordSelector::GreedyPlus => "joint-greedy-plus",
            KeywordSelector::Exact => "joint-exact",
        }
    }

    fn execute(
        &self,
        engine: &Engine,
        spec: &QuerySpec,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    ) {
        arena.trace_arm();
        let jt = engine.joint_thresholds(spec.k);
        arena.trace_stamp(Phase::TopK);
        let cc = CandidateContext::new_reusing(
            &engine.ctx,
            spec,
            &engine.users,
            &jt.rsk,
            std::mem::take(&mut arena.cc),
        );
        select_candidate_into(
            &cc,
            &jt.su,
            jt.out.rsk_us,
            self.selector,
            &mut arena.sel,
            out,
        );
        arena.cc = cc.into_scratch();
        arena.trace_stamp(Phase::Select);
    }
}

/// §7: MIUR-tree user-index pipeline with the configured keyword selector.
#[derive(Debug, Clone, Copy)]
pub struct UserIndexPipeline {
    /// Keyword-selection subroutine for the per-location refinement.
    pub selector: KeywordSelector,
}

impl QueryStrategy for UserIndexPipeline {
    fn name(&self) -> &'static str {
        match self.selector {
            KeywordSelector::Greedy => "user-index-greedy",
            KeywordSelector::GreedyPlus => "user-index-greedy-plus",
            KeywordSelector::Exact => "user-index-exact",
        }
    }

    fn requires_user_index(&self) -> bool {
        true
    }

    fn execute(
        &self,
        engine: &Engine,
        spec: &QuerySpec,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    ) {
        assert!(
            !spec.locations.is_empty(),
            "MaxBRSTkNN requires at least one candidate location"
        );
        let miur = engine
            .miur
            .as_ref()
            .expect("call with_user_index() before querying with a user-index method");
        arena.trace_arm();
        if engine.thresholds.is_some() {
            // Cached mode: the k-dependent prefix (root super-user + joint
            // MIR traversal) comes from the threshold cache; only the
            // location-dependent MIUR expansion runs per query.
            let seed = engine.user_index_seed(spec.k);
            arena.trace_stamp(Phase::TopK);
            run_selection(
                miur,
                spec,
                &engine.ctx,
                self.selector,
                &engine.io,
                &seed,
                arena,
                out,
            );
        } else {
            let seed = compute_user_index_seed(miur, &engine.mir, spec.k, &engine.ctx, &engine.io);
            arena.trace_stamp(Phase::TopK);
            run_selection(
                miur,
                spec,
                &engine.ctx,
                self.selector,
                &engine.io,
                &seed,
                arena,
                out,
            );
        }
        arena.trace_stamp(Phase::Select);
    }
}

/// The built-in strategy table [`Method`] resolves into.
pub static BASELINE: BaselineScan = BaselineScan;
/// §5+§6 with greedy keyword selection.
pub static JOINT_GREEDY: JointPipeline = JointPipeline {
    selector: KeywordSelector::Greedy,
};
/// §5+§6 with realized-gain greedy keyword selection.
pub static JOINT_GREEDY_PLUS: JointPipeline = JointPipeline {
    selector: KeywordSelector::GreedyPlus,
};
/// §5+§6 with exact keyword selection.
pub static JOINT_EXACT: JointPipeline = JointPipeline {
    selector: KeywordSelector::Exact,
};
/// §7 with greedy keyword selection.
pub static USER_INDEX_GREEDY: UserIndexPipeline = UserIndexPipeline {
    selector: KeywordSelector::Greedy,
};
/// §7 with exact keyword selection.
pub static USER_INDEX_EXACT: UserIndexPipeline = UserIndexPipeline {
    selector: KeywordSelector::Exact,
};

/// Per-query cost measured by the batch executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Wall-clock time of this query on its worker thread.
    pub elapsed: Duration,
    /// Simulated I/O charged by this query alone — exact under concurrency
    /// because the delta comes from the per-thread mirror (see
    /// [`storage::IoStats::scoped`]). The mirror is process-wide, so a
    /// custom strategy that charges a *different* `IoStats` instance during
    /// `execute` would fold those charges in too; the built-in strategies
    /// only ever touch their engine's counter.
    ///
    /// With a page cache attached the snapshot also carries this query's
    /// cache hits and misses. Note that *which* query of a batch gets the
    /// miss (and its charge) is interleaving-dependent — see the warm-cache
    /// note on [`Engine::query_batch`].
    pub io: IoSnapshot,
    /// Per-phase split of `elapsed`/`io` (top-k vs. selection), stamped by
    /// the strategy through the arena's [`crate::trace::Trace`]. For
    /// built-in strategies the phase I/O *partitions* `io` exactly:
    /// `phases.total_io() == io`. A custom strategy that never stamps
    /// reports an all-zero breakdown.
    pub phases: PhaseBreakdown,
}

/// One query's answer plus its measured cost.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The query answer — bit-identical to what [`Engine::query`] returns
    /// for the same spec and method.
    pub result: QueryResult,
    /// Measured cost of this query.
    pub stats: QueryStats,
}

impl Engine {
    /// Single-sourced precondition check for every strategy entry point.
    fn assert_strategy_ready(&self, strategy: &dyn QueryStrategy) {
        assert!(
            !strategy.requires_user_index() || self.miur.is_some(),
            "call with_user_index() before querying with a user-index method"
        );
    }

    /// Answers a query with an arbitrary [`QueryStrategy`].
    ///
    /// # Panics
    /// Panics when the strategy requires the user index and
    /// [`Engine::with_user_index`] was not called.
    pub fn query_with(&self, spec: &QuerySpec, strategy: &dyn QueryStrategy) -> QueryResult {
        let mut arena = QueryArena::new();
        let mut out = QueryResult::default();
        self.query_with_reusing(spec, strategy, &mut arena, &mut out);
        out
    }

    /// [`Engine::query`] into caller-owned scratch: the answer lands in
    /// `out` (overwritten) and every intermediate buffer comes from
    /// `arena`. Passing the same arena across calls makes warm steady-state
    /// queries allocation-free (see `tests/alloc_free.rs`); results are
    /// bit-identical to [`Engine::query`] whatever the arena's history.
    ///
    /// # Panics
    /// Panics when a user-index method is requested without
    /// [`Engine::with_user_index`].
    pub fn query_reusing(
        &self,
        spec: &QuerySpec,
        method: Method,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    ) {
        self.query_with_reusing(spec, method.strategy(), arena, out);
    }

    /// [`Engine::query_with`] into caller-owned scratch (the strategy
    /// counterpart of [`Engine::query_reusing`]).
    ///
    /// # Panics
    /// Panics when the strategy requires the user index and
    /// [`Engine::with_user_index`] was not called.
    pub fn query_with_reusing(
        &self,
        spec: &QuerySpec,
        strategy: &dyn QueryStrategy,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    ) {
        self.assert_strategy_ready(strategy);
        let _ = self.run_instrumented(spec, strategy, arena, out);
    }

    /// The one execution point every query funnels through: runs the
    /// strategy under wall-clock + per-thread I/O measurement and records
    /// the outcome into the engine's always-on telemetry
    /// ([`Engine::metrics`]). Recording is relaxed atomics through handles
    /// resolved at engine build, so a warm call stays allocation-free
    /// (`tests/alloc_free.rs` pins this with telemetry enabled).
    fn run_instrumented(
        &self,
        spec: &QuerySpec,
        strategy: &dyn QueryStrategy,
        arena: &mut QueryArena,
        out: &mut QueryResult,
    ) -> QueryStats {
        // Arm before executing so a custom strategy that never stamps
        // reports an all-zero breakdown instead of the previous query's.
        // Built-in strategies re-arm on entry (harmless).
        arena.trace_arm();
        let start = Instant::now();
        let ((), io) = self.io.scoped(|| strategy.execute(self, spec, arena, out));
        let stats = QueryStats {
            elapsed: start.elapsed(),
            io,
            phases: arena.phases(),
        };
        self.metrics
            .record_query(strategy.name(), &stats, &self.io, self.thresholds.as_ref());
        stats
    }

    /// Answers a whole batch of queries in parallel, using all available
    /// parallelism: workers claim specs off a shared cursor
    /// (work-stealing), so uneven query costs don't leave threads idle.
    ///
    /// Results are in spec order and bit-identical to calling
    /// [`Engine::query`] sequentially: every strategy is deterministic and
    /// only reads the engine. Per-query [`QueryStats`] come from the
    /// storage layer's per-thread accounting, so each query's I/O delta is
    /// exact even though all workers share one
    /// [`IoStats`](storage::IoStats); the engine-level counter still
    /// accumulates the batch total.
    ///
    /// **Warm-cache accounting caveat.** With a page cache
    /// ([`Engine::with_page_cache`]) or a threshold cache
    /// ([`Engine::with_threshold_cache`]) attached, the *result payloads*
    /// are still bit-identical to sequential execution, but the
    /// per-query I/O split is interleaving-dependent: which worker takes
    /// the cache miss (and its charge) depends on thread scheduling, as
    /// does which same-`k` query fills the threshold cache. Only the batch
    /// *total* is meaningful under warm caches, and it is at most the cold
    /// total. Pin down nothing about individual warm `QueryStats.io`
    /// values in tests.
    pub fn query_batch(&self, specs: &[QuerySpec], method: Method) -> Vec<BatchOutcome> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.query_batch_threads(specs, method, threads)
    }

    /// [`Engine::query_batch`] with an explicit worker-thread budget.
    pub fn query_batch_threads(
        &self,
        specs: &[QuerySpec],
        method: Method,
        threads: usize,
    ) -> Vec<BatchOutcome> {
        self.query_batch_with(specs, method.strategy(), threads)
    }

    /// Batch execution of an arbitrary [`QueryStrategy`] across `threads`
    /// workers (clamped to `1..=specs.len()`).
    ///
    /// # Panics
    /// Panics when the strategy requires the user index and
    /// [`Engine::with_user_index`] was not called.
    pub fn query_batch_with(
        &self,
        specs: &[QuerySpec],
        strategy: &dyn QueryStrategy,
        threads: usize,
    ) -> Vec<BatchOutcome> {
        self.assert_strategy_ready(strategy);
        if specs.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, specs.len());

        // Work stealing off a shared cursor rather than static chunking:
        // query costs vary (k, |L|, selector), so pre-assigned contiguous
        // blocks would leave workers idle behind whichever block drew the
        // expensive queries. Each worker pops the next unclaimed spec until
        // the batch is drained, and results are stitched back into spec
        // order afterwards.
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, BatchOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        // One arena per worker: buffers warm up on the
                        // worker's first query and are reused for every
                        // spec it claims afterwards.
                        let mut arena = QueryArena::new();
                        let mut result = QueryResult::default();
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(spec) = specs.get(i) else { break };
                            let stats =
                                self.run_instrumented(spec, strategy, &mut arena, &mut result);
                            local.push((
                                i,
                                BatchOutcome {
                                    result: result.clone(),
                                    stats,
                                },
                            ));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        });

        let mut out: Vec<Option<BatchOutcome>> = Vec::new();
        out.resize_with(specs.len(), || None);
        for (i, outcome) in per_worker.into_iter().flatten() {
            out[i] = Some(outcome);
        }
        out.into_iter()
            .map(|o| o.expect("every spec index is claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Point;
    use text::{Document, TermId, WeightModel};

    use crate::{ObjectData, UserData};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn engine() -> Engine {
        let objects: Vec<ObjectData> = (0..50)
            .map(|i| ObjectData {
                id: i,
                point: Point::new((i % 10) as f64, (i / 10) as f64),
                doc: Document::from_pairs([(t(i % 5), 1 + i % 2), (t(5), 1)]),
            })
            .collect();
        let users: Vec<UserData> = (0..12)
            .map(|i| UserData {
                id: i,
                point: Point::new((i % 7) as f64 + 0.4, (i % 4) as f64 + 0.7),
                doc: Document::from_terms([t(i % 5), t(5)]),
            })
            .collect();
        Engine::build_with_fanout(objects, users, WeightModel::lm(), 0.5, 4).with_user_index()
    }

    fn specs() -> Vec<QuerySpec> {
        (0..9)
            .map(|i| QuerySpec {
                ox_doc: Document::from_terms([t(5)]),
                locations: vec![
                    Point::new((i % 3) as f64 + 0.5, 1.0),
                    Point::new(8.0 - (i % 4) as f64, 3.5),
                ],
                keywords: vec![t(0), t(1), t(2), t(3), t(4)],
                ws: 2,
                k: 2 + i % 3,
            })
            .collect()
    }

    #[test]
    fn method_resolves_to_matching_strategy_names() {
        let names: Vec<&str> = Method::ALL.iter().map(|m| m.strategy().name()).collect();
        assert_eq!(
            names,
            vec![
                "baseline",
                "joint-greedy",
                "joint-greedy-plus",
                "joint-exact",
                "user-index-greedy",
                "user-index-exact",
            ]
        );
    }

    #[test]
    fn only_user_index_strategies_require_the_index() {
        for m in Method::ALL {
            let wants = matches!(m, Method::UserIndexGreedy | Method::UserIndexExact);
            assert_eq!(m.strategy().requires_user_index(), wants, "{m:?}");
        }
    }

    #[test]
    fn batch_matches_sequential_for_every_method() {
        let eng = engine();
        let specs = specs();
        for m in Method::ALL {
            let sequential: Vec<_> = specs.iter().map(|s| eng.query(s, m)).collect();
            let batch = eng.query_batch_threads(&specs, m, 4);
            assert_eq!(batch.len(), sequential.len());
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(&b.result, s, "{m:?}");
            }
        }
    }

    #[test]
    fn batch_stats_sum_to_engine_total() {
        let eng = engine();
        let specs = specs();
        eng.io.reset();
        let before = eng.io.snapshot();
        let batch = eng.query_batch_threads(&specs, Method::JointExact, 4);
        let delta = eng.io.snapshot() - before;
        let summed: IoSnapshot = batch.iter().map(|o| o.stats.io).sum();
        assert_eq!(summed, delta);
        assert!(delta.total() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let eng = engine();
        assert!(eng.query_batch_threads(&[], Method::Baseline, 4).is_empty());
    }

    #[test]
    fn more_threads_than_specs_is_fine() {
        let eng = engine();
        let specs = &specs()[..2];
        let batch = eng.query_batch_threads(specs, Method::JointGreedy, 16);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    #[should_panic(expected = "with_user_index")]
    fn batch_rejects_user_index_method_without_index() {
        let objects = vec![ObjectData {
            id: 0,
            point: Point::new(0.0, 0.0),
            doc: Document::from_terms([t(0)]),
        }];
        let users = vec![UserData {
            id: 0,
            point: Point::new(1.0, 1.0),
            doc: Document::from_terms([t(0)]),
        }];
        let eng = Engine::build(objects, users, WeightModel::lm(), 0.5);
        eng.query_batch_threads(&specs()[..1], Method::UserIndexExact, 2);
    }

    /// With the threshold cache enabled, batch answers stay bit-identical
    /// to a cold engine's for every method, and a same-`k` batch charges
    /// less engine I/O than the cold run (the top-k phase is paid once).
    #[test]
    fn threshold_cached_batch_matches_cold_results() {
        let cold = engine();
        let cached = engine().with_threshold_cache();
        let specs = specs();
        for m in Method::ALL {
            let want: Vec<_> = specs.iter().map(|s| cold.query(s, m)).collect();
            let got = cached.query_batch_threads(&specs, m, 4);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(&g.result, w, "{m:?}");
            }
        }
        let tc = cached.thresholds.as_ref().unwrap();
        assert!(tc.hits() > 0, "repeat (method, k) lookups must hit");
    }

    /// Same-`k` queries after the first charge zero top-k I/O; the joint
    /// strategies' selection stage is in-memory, so their second query
    /// charges nothing at all.
    #[test]
    fn threshold_cache_eliminates_repeat_topk_io() {
        let eng = engine().with_threshold_cache();
        let spec = &specs()[0];
        for m in [Method::Baseline, Method::JointExact] {
            let _ = eng.query(spec, m); // fills the cache for (m, k)
            let before = eng.io.snapshot();
            let _ = eng.query(spec, m);
            let delta = eng.io.snapshot() - before;
            assert_eq!(delta.total(), 0, "{m:?} second query charged I/O");
        }
    }

    /// A caller-defined strategy runs through the same batch machinery.
    #[test]
    fn custom_strategy_via_batch() {
        struct FirstLocationOnly;
        impl QueryStrategy for FirstLocationOnly {
            fn name(&self) -> &'static str {
                "first-location-only"
            }
            fn execute(
                &self,
                engine: &Engine,
                spec: &QuerySpec,
                arena: &mut QueryArena,
                out: &mut QueryResult,
            ) {
                let narrowed = QuerySpec {
                    locations: spec.locations[..1].to_vec(),
                    ..spec.clone()
                };
                JOINT_EXACT.execute(engine, &narrowed, arena, out);
            }
        }

        let eng = engine();
        let specs = specs();
        let batch = eng.query_batch_with(&specs, &FirstLocationOnly, 4);
        for out in &batch {
            assert_eq!(out.result.location, 0, "restricted to the first location");
        }
    }
}
