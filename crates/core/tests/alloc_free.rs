//! Allocation-count harness: steady-state queries are allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator. After one
//! cold query (which fills the engine's threshold cache) and one settling
//! repeat (which finishes growing every pool in the caller's
//! [`QueryArena`]), a further repeat of the identical query must perform
//! **zero** heap allocations — for all six methods, under both record
//! codecs. This pins the tentpole property of the zero-copy read path:
//! node and postings decode go through caller scratch, candidate contexts
//! recycle their backing buffers, and every selection kernel writes into
//! pooled output vectors.
//!
//! Everything runs inside a single `#[test]` so no concurrently running
//! test can perturb the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use geo::Point;
use mbrstk_core::{Engine, Method, ObjectData, QueryArena, QueryResult, QuerySpec, UserData};
use storage::CodecId;
use text::{Document, TermId, WeightModel};

/// System allocator with an allocation counter (frees are not counted:
/// the property under test is "no new memory", not "no drops").
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn t(i: u32) -> TermId {
    TermId(i)
}

fn engine(codec: CodecId) -> Engine {
    let objects: Vec<ObjectData> = (0..100)
        .map(|i| ObjectData {
            id: i,
            point: Point::new((i % 10) as f64, (i / 10) as f64),
            doc: Document::from_pairs([(t(i % 6), 1 + i % 3), (t(6), 1)]),
        })
        .collect();
    let users: Vec<UserData> = (0..20)
        .map(|i| UserData {
            id: i,
            point: Point::new((i % 9) as f64 + 0.4, (i % 5) as f64 + 0.6),
            doc: Document::from_terms([t(i % 6), t(6)]),
        })
        .collect();
    Engine::build_with_fanout_codec(objects, users, WeightModel::lm(), 0.5, 4, codec)
        .with_user_index()
        .with_threshold_cache()
}

fn spec() -> QuerySpec {
    QuerySpec {
        ox_doc: Document::from_terms([t(6)]),
        locations: vec![
            Point::new(4.0, 2.0),
            Point::new(0.5, 0.5),
            Point::new(8.5, 7.0),
            Point::new(2.0, 6.0),
        ],
        keywords: vec![t(0), t(1), t(2), t(3), t(4), t(5)],
        ws: 2,
        k: 3,
    }
}

#[test]
fn steady_state_queries_allocate_nothing() {
    for codec in [CodecId::Verbatim, CodecId::Columnar] {
        let eng = engine(codec);
        let spec = spec();
        for m in Method::ALL {
            let mut arena = QueryArena::new();
            let mut out = QueryResult::default();

            // Cold query: fills the threshold cache and grows the arena.
            let before_cold = allocs();
            eng.query_reusing(&spec, m, &mut arena, &mut out);
            assert!(
                allocs() > before_cold,
                "{m:?}/{codec:?}: counter must see the cold query's work"
            );
            let cold = out.clone();

            // Settling repeat: any pool that only reaches its steady-state
            // footprint on reuse gets its last growth here.
            eng.query_reusing(&spec, m, &mut arena, &mut out);

            // Warm repeat: identical query, warm caches, warm arena.
            let before = allocs();
            eng.query_reusing(&spec, m, &mut arena, &mut out);
            let delta = allocs() - before;
            assert_eq!(
                delta, 0,
                "{m:?}/{codec:?}: warm repeat allocated {delta} times"
            );

            // The recycled buffers answer correctly: warm equals cold
            // equals a fresh-arena query on the same engine.
            assert_eq!(out, cold, "{m:?}/{codec:?}: warm result drifted");
            assert_eq!(
                out,
                eng.query(&spec, m),
                "{m:?}/{codec:?}: arena reuse changed the answer"
            );

            // Telemetry was live the whole time: the always-on registry
            // recorded all four queries above — including the warm repeat
            // that just proved itself allocation-free. (The snapshot
            // itself allocates, so it sits outside the counted region.)
            let snap = eng.metrics().snapshot();
            let key = format!("engine_query_latency_us{{method=\"{}\"}}", m.name());
            let recorded = snap
                .histogram(&key)
                .unwrap_or_else(|| panic!("{m:?}/{codec:?}: no latency histogram"))
                .count();
            assert_eq!(
                recorded, 4,
                "{m:?}/{codec:?}: telemetry missed instrumented queries"
            );
        }
    }
}
