//! Differential leg for the zero-copy read path.
//!
//! Two claims are pinned here:
//!
//! 1. **Index level** — for every node of an StTree (both posting modes)
//!    and of a MiurTree, under both codecs, the borrowed views
//!    (`read_node_ref`, `read_postings_ref`) materialize to exactly what
//!    the owned readers (`read_node`, `read_postings`) return, and charge
//!    exactly the same simulated I/O.
//! 2. **Engine level** — queries answered through a long-lived
//!    [`QueryArena`] (`query_reusing`) are bit-identical to fresh-arena
//!    queries (`query`) across all six methods and both codecs, with
//!    identical per-query I/O charges.
//!
//! Views carry `f64`s and no `PartialEq`, so equality is checked on their
//! `Debug` renderings: Rust prints floats with shortest-roundtrip
//! precision, which makes the comparison bit-exact.

use geo::Point;
use index::{ChildRef, MiurScratch, MiurTree, NodeScratch, PostingsScratch};
use mbrstk_core::{Engine, Method, ObjectData, QueryArena, QueryResult, QuerySpec, UserData};
use storage::{CodecId, IoStats, RecordId};
use text::{Document, TermId, WeightModel};

fn t(i: u32) -> TermId {
    TermId(i)
}

fn engine(codec: CodecId) -> Engine {
    let objects: Vec<ObjectData> = (0..90)
        .map(|i| ObjectData {
            id: i,
            point: Point::new((i % 9) as f64, (i / 9) as f64),
            doc: Document::from_pairs([(t(i % 7), 1 + i % 3), (t(7), 1)]),
        })
        .collect();
    let users: Vec<UserData> = (0..18)
        .map(|i| UserData {
            id: i,
            point: Point::new((i % 8) as f64 + 0.3, (i % 6) as f64 + 0.5),
            doc: Document::from_terms([t(i % 7), t(7)]),
        })
        .collect();
    Engine::build_with_fanout_codec(objects, users, WeightModel::lm(), 0.5, 4, codec)
        .with_user_index()
}

fn specs() -> Vec<QuerySpec> {
    (0..8)
        .map(|i| QuerySpec {
            ox_doc: if i % 3 == 0 {
                Document::new()
            } else {
                Document::from_terms([t(7)])
            },
            locations: (0..1 + i % 3)
                .map(|j| Point::new((2 * j + i % 4) as f64 + 0.5, (i % 5) as f64 + 1.0))
                .collect(),
            keywords: vec![t(0), t(1), t(2), t(3), t(4), t(5), t(6)],
            ws: 1 + i % 3,
            k: 2 + i % 3,
        })
        .collect()
}

/// Every StTree node: ref view == owned view, ref postings == owned
/// postings, and both read paths charge identical simulated I/O.
#[test]
fn st_tree_ref_views_match_owned_reads() {
    for codec in [CodecId::Verbatim, CodecId::Columnar] {
        let eng = engine(codec);
        let terms: Vec<TermId> = (0..8).map(t).collect();
        for tree in [&eng.mir, &eng.ir] {
            let io_owned = IoStats::new();
            let io_ref = IoStats::new();
            let mut node_scratch = NodeScratch::default();
            let mut postings_scratch = PostingsScratch::default();

            let mut frontier: Vec<RecordId> = vec![tree.root()];
            let mut nodes = 0usize;
            while let Some(rec) = frontier.pop() {
                nodes += 1;
                let owned = tree.read_node(rec, &io_owned);
                let owned_postings = tree.read_postings(&owned, &terms, &io_owned);

                let view = tree.read_node_ref(rec, &io_ref, &mut node_scratch);
                let ref_postings =
                    tree.read_postings_ref(&view, &terms, &io_ref, &mut postings_scratch);
                assert_eq!(
                    format!("{:?}", view.to_owned_view().entries),
                    format!("{:?}", owned.entries),
                    "{codec:?} node {rec:?}: entry mismatch"
                );
                assert_eq!(view.is_leaf(), owned.is_leaf);
                assert_eq!(view.id(), owned.id);
                assert_eq!(
                    format!("{:?}", ref_postings.to_owned_postings().per_entry),
                    format!("{:?}", owned_postings.per_entry),
                    "{codec:?} node {rec:?}: postings mismatch"
                );

                for i in 0..owned.entries.len() {
                    if let ChildRef::Node(child) = owned.entries[i].child {
                        frontier.push(child);
                    }
                }
            }
            assert!(nodes > 1, "fixture must produce a multi-node tree");
            assert_eq!(
                io_owned.snapshot(),
                io_ref.snapshot(),
                "{codec:?}: owned and ref reads must charge identically"
            );
        }
    }
}

/// Every MiurTree node: ref view == owned view with identical charges.
#[test]
fn miur_tree_ref_views_match_owned_reads() {
    for codec in [CodecId::Verbatim, CodecId::Columnar] {
        let eng = engine(codec);
        let miur: &MiurTree = eng.miur.as_ref().unwrap();
        let io_owned = IoStats::new();
        let io_ref = IoStats::new();
        let mut scratch = MiurScratch::default();

        let mut frontier: Vec<RecordId> = vec![miur.root()];
        let mut nodes = 0usize;
        while let Some(rec) = frontier.pop() {
            nodes += 1;
            let owned = miur.read_node(rec, &io_owned);
            let view = miur.read_node_ref(rec, &io_ref, &mut scratch);
            assert_eq!(
                format!("{:?}", view.to_owned_view()),
                format!("{owned:?}"),
                "{codec:?} node {rec:?}: view mismatch"
            );
            for e in &owned.entries {
                if let index::UserRef::Node(child) = e.child {
                    frontier.push(child);
                }
            }
        }
        assert!(nodes > 1, "fixture must produce a multi-node MIUR-tree");
        assert_eq!(
            io_owned.snapshot(),
            io_ref.snapshot(),
            "{codec:?}: owned and ref MIUR reads must charge identically"
        );
    }
}

/// A long-lived arena answers a varied query stream bit-identically to
/// fresh-arena execution, with unchanged per-query I/O charges — six
/// methods, both codecs.
#[test]
fn arena_reuse_is_bit_identical_with_equal_io() {
    for codec in [CodecId::Verbatim, CodecId::Columnar] {
        // Two engines built from identical inputs: one serves fresh-arena
        // queries, one serves a reused arena. Separate I/O counters make
        // the per-query charges directly comparable.
        let fresh = engine(codec);
        let reused = engine(codec);
        let specs = specs();
        for m in Method::ALL {
            let mut arena = QueryArena::new();
            let mut out = QueryResult::default();
            for (i, spec) in specs.iter().enumerate() {
                let before_fresh = fresh.io.snapshot();
                let want = fresh.query(spec, m);
                let fresh_io = fresh.io.snapshot() - before_fresh;

                let before_reused = reused.io.snapshot();
                reused.query_reusing(spec, m, &mut arena, &mut out);
                let reused_io = reused.io.snapshot() - before_reused;

                assert_eq!(out, want, "{m:?}/{codec:?} spec {i}: result drifted");
                assert_eq!(
                    reused_io, fresh_io,
                    "{m:?}/{codec:?} spec {i}: I/O charges drifted"
                );
            }
        }
    }
}
