//! Seeded SplitMix64 stream — the workspace's single canonical PRNG core.
//!
//! The build environment has no network access to crates.io, so the
//! workspace carries its own deterministic generator instead of `rand`.
//! This crate is the one implementation of the algorithm: `datagen::rng`
//! builds its `rand`-shaped API on top of it, and the leaf crates'
//! randomized test suites (`geo`, `text`, `storage`, `index` — which sit
//! *below* `datagen` in the dependency graph) dev-depend on it directly.
//!
//! SplitMix64 is small, fast, passes BigCrush on its 64-bit output, and —
//! unlike external PRNG crates — is guaranteed stable forever, so seeded
//! datasets and test cases reproduce byte-for-byte across toolchains.

/// Maps a raw 64-bit draw onto `0..n` (Lemire multiply-shift bounded
/// draw; bias is < 2⁻⁶⁴ per draw, far below anything the statistical
/// tests observe).
#[inline]
pub fn bounded(raw: u64, n: u64) -> u64 {
    ((raw as u128 * n as u128) >> 64) as u64
}

/// Maps a raw 64-bit draw onto `[0, 1)` with 53 bits of precision (the
/// full mantissa of an `f64`).
#[inline]
pub fn unit_from(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded SplitMix64 stream. Equal seeds give equal streams.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        bounded(self.next_u64(), n)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        unit_from(self.next_u64())
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64(9);
        let mut b = SplitMix64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64(1);
        let mut b = SplitMix64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut g = SplitMix64(3);
        for _ in 0..10_000 {
            let x = g.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_and_respects_bound() {
        let mut g = SplitMix64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[g.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = SplitMix64(5);
        for _ in 0..10_000 {
            let x = g.range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
