//! 2-D points and point-to-point distances.

/// A location in the 2-D dataspace.
///
/// The paper's objects and users each carry a spatial location `o.l` / `u.l`;
/// this is that location. Coordinates are `f64` degrees (or any consistent
/// planar unit — all scores are normalized by the dataspace diameter, so the
/// unit cancels).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (longitude in the paper's datasets).
    pub x: f64,
    /// Vertical coordinate (latitude in the paper's datasets).
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in comparisons: it avoids the square
    /// root and is therefore cheaper inside tree-traversal hot loops.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other` (Eq. 2's `dist`).
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = Point::new(3.5, -2.0);
        assert_eq!(p.dist(&p), 0.0);
        assert_eq!(p.dist_sq(&p), 0.0);
    }

    #[test]
    fn pythagorean_triple() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.25, 7.5);
        let b = Point::new(-3.0, 2.0);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn negative_coordinates() {
        let a = Point::new(-1.0, -1.0);
        let b = Point::new(-4.0, -5.0);
        assert_eq!(a.dist(&b), 5.0);
    }
}
